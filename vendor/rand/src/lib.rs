//! A minimal, dependency-free stand-in for the parts of the `rand`
//! crate this workspace uses, so the build works in fully offline
//! environments.
//!
//! Provided surface:
//!
//! * [`rngs::SmallRng`] — xoshiro256++ (the same family the real
//!   `SmallRng` uses on 64-bit targets), seeded via SplitMix64;
//! * [`SeedableRng::seed_from_u64`];
//! * [`Rng`] with `gen`, `gen_range` (half-open and inclusive integer
//!   ranges), and `gen_bool`.
//!
//! The streams are deterministic and high quality, but are **not**
//! guaranteed to match upstream `rand` bit-for-bit; nothing in this
//! workspace depends on upstream's exact sequences, only on
//! reproducibility under a fixed seed.

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their full domain by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Integer types usable as [`Rng::gen_range`] bounds.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[low, high)`; `high > low` guaranteed by the
    /// caller.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                // Widening-multiply range reduction (Lemire); the bias is
                // below 2^-64 per draw, far under simulation noise.
                let span = (high as i128 - low as i128) as u128;
                let r = (rng.next_u64() as u128 * span) >> 64;
                (low as i128 + r as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

macro_rules! impl_sample_range_inclusive {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (low, high) = (*self.start(), *self.end());
                assert!(low <= high, "cannot sample empty range");
                let span = (high as i128 - low as i128 + 1) as u128;
                let r = (rng.next_u64() as u128 * span) >> 64;
                (low as i128 + r as i128) as $t
            }
        }
    )*};
}

impl_sample_range_inclusive!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly over the type's full domain (`[0, 1)`
    /// for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = Self::splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce four zero outputs in a row, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        for _ in 0..32 {
            let x = a.gen::<u64>();
            assert_eq!(x, b.gen::<u64>());
            assert_ne!(x, c.gen::<u64>());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen0 = false;
        let mut seen9 = false;
        for _ in 0..1000 {
            let v = rng.gen_range(0usize..10);
            assert!(v < 10);
            seen0 |= v == 0;
            seen9 |= v == 9;
            let w = rng.gen_range(3i64..=5);
            assert!((3..=5).contains(&w));
        }
        assert!(seen0 && seen9, "range endpoints never sampled");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn float_samples_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
