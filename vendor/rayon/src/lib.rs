//! A minimal, dependency-free stand-in for the parts of `rayon` this
//! workspace uses, built on `std::thread::scope`.
//!
//! Supported surface:
//!
//! * [`ThreadPoolBuilder`] → [`ThreadPool`] with [`ThreadPool::install`];
//! * `slice.par_iter().map(f).collect::<Vec<_>>()` (via
//!   [`prelude::IntoParallelRefIterator`]), with **deterministic result
//!   ordering**: results come back in input order regardless of which
//!   worker ran which item;
//! * [`current_num_threads`].
//!
//! Work distribution is dynamic (an atomic next-item counter), so
//! uneven item costs — e.g. saturated vs drained simulation runs —
//! balance across workers. Worker panics propagate to the caller.

#![deny(missing_docs)]

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

thread_local! {
    /// Thread count installed by the innermost `ThreadPool::install`.
    static INSTALLED_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of threads parallel iterators will use on this thread: the
/// installed pool's size, or the machine's available parallelism.
pub fn current_num_threads() -> usize {
    INSTALLED_THREADS.with(|c| c.get()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Error building a thread pool (kept for API compatibility; the shim
/// cannot actually fail).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a bounded [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// New builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Caps the pool at `num` threads (0 means "automatic").
    pub fn num_threads(mut self, num: usize) -> Self {
        self.num_threads = if num == 0 { None } else { Some(num) };
        self
    }

    /// Builds the pool.
    ///
    /// # Errors
    ///
    /// Never fails in this shim; the `Result` mirrors rayon's API.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = self.num_threads.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
        Ok(ThreadPool {
            threads: threads.max(1),
        })
    }
}

/// A bounded thread pool. Workers are spawned per parallel call (scoped
/// threads), bounded by the pool size; there are no idle persistent
/// threads.
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// The pool's thread bound.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }

    /// Runs `op` with this pool installed: parallel iterators inside
    /// `op` (on this thread) use at most this pool's thread count.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        let prev = INSTALLED_THREADS.with(|c| c.replace(Some(self.threads)));
        let result = op();
        INSTALLED_THREADS.with(|c| c.set(prev));
        result
    }
}

/// Runs `f` over `0..len` on up to `threads` workers, returning results
/// in index order. Items are handed out dynamically via an atomic
/// counter; each worker keeps `(index, result)` pairs and the caller
/// reassembles them, so ordering is deterministic.
fn parallel_map_indexed<R, F>(len: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = threads.min(len).max(1);
    if workers == 1 {
        return (0..len).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let shards: Vec<Vec<(usize, R)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= len {
                            break;
                        }
                        out.push((i, f(i)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    });
    let mut slots: Vec<Option<R>> = (0..len).map(|_| None).collect();
    for shard in shards {
        for (i, r) in shard {
            debug_assert!(slots[i].is_none());
            slots[i] = Some(r);
        }
    }
    slots
        .into_iter()
        .map(|o| o.expect("parallel worker skipped an item"))
        .collect()
}

/// Parallel iterator types.
pub mod iter {
    use super::{current_num_threads, parallel_map_indexed};

    /// Borrowing parallel iterator over a slice.
    #[derive(Debug)]
    pub struct ParIter<'a, T> {
        items: &'a [T],
    }

    /// A mapped parallel iterator (the only adapter the shim provides).
    pub struct Map<'a, T, F> {
        items: &'a [T],
        f: F,
    }

    impl<'a, T: Sync> ParIter<'a, T> {
        /// Maps each item through `f` in parallel.
        pub fn map<R, F>(self, f: F) -> Map<'a, T, F>
        where
            F: Fn(&'a T) -> R + Sync,
            R: Send,
        {
            Map {
                items: self.items,
                f,
            }
        }
    }

    impl<'a, T, R, F> Map<'a, T, F>
    where
        T: Sync,
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        /// Executes the map across the installed pool and collects the
        /// results in input order.
        pub fn collect<C: FromIterator<R>>(self) -> C {
            let f = &self.f;
            parallel_map_indexed(self.items.len(), current_num_threads(), |i| {
                f(&self.items[i])
            })
            .into_iter()
            .collect()
        }
    }

    /// Conversion of `&self` into a parallel iterator (subset of
    /// rayon's trait of the same name).
    pub trait IntoParallelRefIterator<'a> {
        /// Borrowed item type.
        type Item: Sync + 'a;

        /// A parallel iterator over borrowed items.
        fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = T;

        fn par_iter(&'a self) -> ParIter<'a, T> {
            ParIter { items: self }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = T;

        fn par_iter(&'a self) -> ParIter<'a, T> {
            ParIter { items: self }
        }
    }
}

/// Glob-importable names, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::IntoParallelRefIterator;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let doubled: Vec<u64> = pool.install(|| items.par_iter().map(|&x| x * 2).collect());
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn install_is_scoped() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let outer = current_num_threads();
        let inner = pool.install(current_num_threads);
        assert_eq!(inner, 3);
        assert_eq!(current_num_threads(), outer);
    }

    #[test]
    fn empty_and_single_item_inputs() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [7u32];
        let out: Vec<u32> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn uneven_work_balances() {
        // Items with wildly different costs still come back in order.
        let items: Vec<u64> = (0..64).collect();
        let pool = ThreadPoolBuilder::new().num_threads(8).build().unwrap();
        let out: Vec<u64> = pool.install(|| {
            items
                .par_iter()
                .map(|&x| {
                    let spins = if x % 7 == 0 { 20_000 } else { 10 };
                    let mut acc = x;
                    for i in 0..spins {
                        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
                    }
                    let _ = acc;
                    x
                })
                .collect()
        });
        assert_eq!(out, items);
    }
}
