//! A minimal, dependency-free stand-in for the parts of `criterion`
//! this workspace's benches use, so `cargo bench` works in fully
//! offline environments.
//!
//! Each registered benchmark closure is warmed once, then timed over a
//! handful of iterations; mean wall time per iteration is printed. No
//! statistics, plots or baselines — just enough to run the benches and
//! eyeball relative cost. Set `CRITERION_SAMPLES` to change the sample
//! count (default 10).

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimiser from discarding a value (re-export of
/// `std::hint::black_box`).
pub use std::hint::black_box;

/// Benchmark registry and runner.
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let samples = std::env::var("CRITERION_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(10);
        Criterion { samples }
    }
}

impl Criterion {
    /// Sets the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_named(name, self.samples, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            samples: self.samples,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_named(&format!("{}/{}", self.name, name), self.samples, f);
        self
    }

    /// Runs one parameterised benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_named(&format!("{}/{}", self.name, id), self.samples, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier combining a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Times the closure handed to `bench_function` / `bench_with_input`.
pub struct Bencher {
    samples: usize,
    /// Mean wall time per iteration, filled by [`Bencher::iter`].
    mean: Option<Duration>,
}

impl Bencher {
    /// Measures `routine`, running it `samples` times after one warm-up.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.mean = Some(start.elapsed() / self.samples as u32);
    }
}

fn run_named<F>(name: &str, samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        samples,
        mean: None,
    };
    f(&mut b);
    match b.mean {
        Some(mean) => println!("{name:<48} {mean:>12.2?}/iter  ({samples} samples)"),
        None => println!("{name:<48} (no measurement)"),
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        c.sample_size(2);
        let mut runs = 0;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        // One warm-up plus two samples.
        assert_eq!(runs, 3);
    }

    #[test]
    fn group_and_ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("1k").to_string(), "1k");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(1);
        g.bench_with_input(BenchmarkId::new("a", 1), &5, |b, &x| {
            b.iter(|| x * 2);
        });
        g.finish();
    }
}
