//! The paper's core routing story on one page: run the worst-case
//! adversarial pattern (every node in group `i` sends to group `i+1`)
//! under each routing algorithm and watch minimal routing collapse,
//! Valiant recover half the bandwidth, and indirect-adaptive UGAL
//! variants approach the UGAL-G oracle.
//!
//! Run with: `cargo run --release --example adversarial_traffic`

use dragonfly::{DragonflyParams, DragonflySim, RoutingChoice, TrafficChoice};

fn main() {
    // The paper's evaluation network: 1K nodes, p = h = 4, a = 8.
    let params = DragonflyParams::new(4, 8, 4).expect("valid parameters");
    let sim = DragonflySim::new(params);
    println!(
        "worst-case traffic on a {}-node dragonfly ({} groups)",
        params.num_terminals(),
        params.num_groups()
    );
    println!(
        "minimal routing must push a whole group's traffic through one \
         global channel: theoretical cap = 1/(a*h) = {:.4}\n",
        1.0 / (params.routers_per_group() * params.global_ports_per_router()) as f64
    );

    println!(
        "{:<12} {:>10} {:>12} {:>12} {:>10}",
        "routing", "capacity", "latency@0.2", "min-pkt lat", "min %"
    );
    for choice in [
        RoutingChoice::Min,
        RoutingChoice::Valiant,
        RoutingChoice::UgalL,
        RoutingChoice::UgalLVcH,
        RoutingChoice::UgalLCr,
        RoutingChoice::UgalG,
    ] {
        // Saturation throughput: offer full load, measure what arrives.
        let mut cap_cfg = sim.config(1.0);
        cap_cfg.warmup = 1_500;
        cap_cfg.measure = 1_500;
        cap_cfg.drain_cap = 0;
        let cap = sim
            .run(choice, TrafficChoice::WorstCase, cap_cfg)
            .accepted_rate;

        // Latency at an intermediate load the adaptive variants handle.
        let mut cfg = sim.config(0.2);
        cfg.warmup = 1_500;
        cfg.measure = 2_000;
        cfg.drain_cap = 20_000;
        let stats = sim.run(choice, TrafficChoice::WorstCase, cfg);
        let lat = |v: Option<f64>| v.map(|x| format!("{x:.1}")).unwrap_or_else(|| "-".into());
        println!(
            "{:<12} {:>10.3} {:>12} {:>12} {:>9.0}%",
            choice.label(),
            cap,
            if stats.drained {
                lat(stats.avg_latency())
            } else {
                "sat".into()
            },
            if stats.drained {
                lat(stats.minimal_latency.mean())
            } else {
                "sat".into()
            },
            stats.minimal_fraction().unwrap_or(0.0) * 100.0,
        );
    }
    println!(
        "\nNote how UGAL-L delivers throughput but minimally-routed packets \
         pay a huge latency (the paper's 'Problem II'), and how the credit \
         round-trip variant (UGAL-L_CR) brings that latency down to near \
         the UGAL-G oracle."
    );
}
