//! Capacity planning with the cost model: size a dragonfly for a target
//! machine, then compare its bill of materials against a flattened
//! butterfly, a folded Clos and a 3-D torus — the paper's §5 analysis as
//! a design tool.
//!
//! Run with: `cargo run --release --example system_design [nodes]`

use dfly_cost::{radix_for_single_global_hop, CostConfig};
use dragonfly::DragonflyParams;

fn main() {
    let nodes: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16 * 1024);

    println!("designing an interconnect for {nodes} nodes\n");

    // Why a dragonfly at all: a flat fully-connected network would need
    // radix ~2*sqrt(N) routers.
    println!(
        "single-router groups would need radix-{} parts; grouping 512-node \
         virtual routers needs only radix-64",
        radix_for_single_global_hop(nodes)
    );

    // The dragonfly the cost model builds (512-node groups, radix <= 64).
    let p = 16;
    let a = 32;
    let h = 16;
    let g = nodes.div_ceil(a * p).max(2);
    if let Ok(params) = DragonflyParams::with_groups(p, a, h, g) {
        println!(
            "dragonfly: {} groups of {} routers -> {} terminals, diameter 3 \
             (local-global-local), {} global channels",
            params.num_groups(),
            params.routers_per_group(),
            params.num_terminals(),
            params.num_groups() * params.global_ports_per_group() / 2,
        );
    }

    let cfg = CostConfig::default();
    let candidates = [
        cfg.dragonfly(nodes),
        cfg.flattened_butterfly(nodes),
        cfg.folded_clos(nodes),
        cfg.torus_3d(nodes),
    ];
    println!(
        "\n{:<22} {:>8} {:>9} {:>9} {:>9} {:>8} {:>8}",
        "topology", "$/node", "routers", "elec", "optical", "mean m", "total $"
    );
    let best = candidates
        .iter()
        .map(|c| c.per_node())
        .fold(f64::INFINITY, f64::min);
    for c in &candidates {
        println!(
            "{:<22} {:>8.1} {:>9} {:>9} {:>9} {:>8.1} {:>8.0}{}",
            c.topology,
            c.per_node(),
            c.routers,
            c.cables.electrical,
            c.cables.optical,
            c.cables.mean_cable_length_m(),
            c.total(),
            if (c.per_node() - best).abs() < 1e-9 {
                "  <- cheapest"
            } else {
                ""
            }
        );
    }
    println!(
        "\n(the cost model normalises every network to the same per-node \
         bandwidth; see dfly-cost's documentation for the calibration)"
    );
}
