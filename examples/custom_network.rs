//! Using the simulator substrate directly: wire a custom network (here
//! a star of four leaf routers around a hub), drive it with a traffic
//! pattern, and route it with the built-in shortest-path tables.
//!
//! The dragonfly crate builds exactly this kind of `NetworkSpec` — this
//! example shows the lower-level API any other topology would use.
//!
//! Run with: `cargo run --release --example custom_network`

use dfly_netsim::{
    ChannelClass, Connection, NetworkSpec, PortSpec, RouterSpec, ShortestPathRouting, SimConfig,
    Simulation,
};
use dfly_traffic::UniformRandom;

fn term(t: u32) -> PortSpec {
    PortSpec {
        conn: Connection::Terminal { terminal: t },
        latency: 1,
        class: ChannelClass::Terminal,
    }
}

fn link(router: u32, port: u32, latency: u32) -> PortSpec {
    PortSpec {
        conn: Connection::Router { router, port },
        latency,
        class: ChannelClass::Local,
    }
}

fn main() {
    // Router 0 is the hub (no terminals); routers 1-4 each host two
    // terminals. Hub links have 2-cycle latency.
    let mut routers = vec![RouterSpec {
        ports: (1..=4).map(|r| link(r, 2, 2)).collect(),
    }];
    for leaf in 0..4u32 {
        routers.push(RouterSpec {
            ports: vec![term(2 * leaf), term(2 * leaf + 1), link(0, leaf, 2)],
        });
    }
    let spec = NetworkSpec::validated(routers, 2).expect("star wiring is consistent");
    println!(
        "custom star network: {} routers, {} terminals",
        spec.num_routers(),
        spec.num_terminals()
    );

    let routing = ShortestPathRouting::new(&spec);
    let pattern = UniformRandom::new(spec.num_terminals());
    let mut cfg = SimConfig::paper_default(0.15);
    cfg.warmup = 500;
    cfg.measure = 3_000;

    let stats = Simulation::new(&spec, &routing, &pattern, cfg)
        .expect("valid configuration")
        .run();

    println!("uniform random at 0.15:");
    println!("  accepted  {:.3} flits/node/cycle", stats.accepted_rate);
    println!(
        "  latency   avg {:.1}, min {}, max {}",
        stats.avg_latency().unwrap_or(f64::NAN),
        stats.latency.min,
        stats.latency.max
    );
    // Same-leaf packets pay inject 1 + eject 1; cross-leaf packets add
    // two 2-cycle hub hops.
    assert!(stats.latency.min >= 2);
    assert!(stats.latency.max >= 6);
    assert!(stats.drained);

    // The hub is the bottleneck: show its channel utilisation.
    for load in stats.channel_loads.iter().filter(|c| c.router == 0) {
        println!(
            "  hub port {} -> utilisation {:.2}",
            load.port, load.utilization
        );
    }
}
