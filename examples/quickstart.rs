//! Quickstart: build the paper's 72-terminal example dragonfly
//! (Figure 5: p = h = 2, a = 4), run adaptive routing under benign
//! traffic, and print what the network did.
//!
//! Run with: `cargo run --release --example quickstart`

use dragonfly::{DragonflyParams, DragonflySim, RoutingChoice, TrafficChoice};

fn main() {
    // p terminals/router, a routers/group, h global channels/router.
    let params = DragonflyParams::new(2, 4, 2).expect("valid parameters");
    println!(
        "dragonfly: N={} terminals, {} groups of {} routers, router radix {}, virtual-router radix {}",
        params.num_terminals(),
        params.num_groups(),
        params.routers_per_group(),
        params.router_radix(),
        params.effective_radix(),
    );

    let sim = DragonflySim::new(params);

    // 30% injection, uniform random traffic, the paper's hybrid UGAL.
    let mut cfg = sim.config(0.30);
    cfg.warmup = 1_000;
    cfg.measure = 2_000;
    let stats = sim.run(RoutingChoice::UgalLVcH, TrafficChoice::Uniform, cfg);

    println!("\nuniform random at 0.30 offered load:");
    println!(
        "  accepted throughput : {:.3} flits/node/cycle",
        stats.accepted_rate
    );
    println!(
        "  average latency     : {:.1} cycles (min {} / max {})",
        stats.avg_latency().unwrap_or(f64::NAN),
        stats.latency.min,
        stats.latency.max
    );
    println!(
        "  minimally routed    : {:.1}% of packets",
        stats.minimal_fraction().unwrap_or(0.0) * 100.0
    );
    let globals = stats.global_channel_loads();
    let avg_util: f64 = globals.iter().map(|c| c.utilization).sum::<f64>() / globals.len() as f64;
    println!(
        "  global channels     : {} directed, average utilisation {:.2}",
        globals.len(),
        avg_util
    );
    assert!(stats.drained, "the network should be far from saturation");
}
