//! Randomized invariants across the whole stack: any valid dragonfly
//! configuration must wire consistently, route without loss or
//! deadlock under any routing algorithm, and respect the paper's VC
//! ordering.
//!
//! Cases are drawn from a seeded RNG (no external property-testing
//! dependency — the container builds offline), so every run exercises
//! the same deterministic case set.

use dfly_traffic::rng_for;
use rand::rngs::SmallRng;
use rand::Rng;

use dragonfly::{DragonflyParams, DragonflySim, RoutingChoice, TrafficChoice};

/// Samples small-but-varied dragonfly parameters, including non-maximal
/// group counts.
fn sample_params(rng: &mut SmallRng) -> DragonflyParams {
    let p = rng.gen_range(1usize..=3);
    let a = rng.gen_range(2usize..=5);
    let h = rng.gen_range(1usize..=3);
    let max_g = a * h + 1;
    let g = rng.gen_range(2usize..=max_g);
    DragonflyParams::with_groups(p, a, h, g).unwrap()
}

/// The generated wiring always validates and every global slot pair is
/// involutive.
#[test]
fn wiring_is_consistent() {
    for case in 0..24u64 {
        let mut rng = rng_for(0x111, case);
        let params = sample_params(&mut rng);
        let df = dragonfly::Dragonfly::new(params);
        let spec = df.build_spec();
        assert_eq!(spec.num_terminals(), params.num_terminals());
        assert_eq!(spec.num_routers(), params.num_routers());
        let ah = params.global_ports_per_group();
        for group in 0..params.num_groups() {
            for q in 0..ah {
                if let Some((pg, pq)) = df.global_slot_target(group, q) {
                    assert_eq!(df.global_slot_target(pg, pq), Some((group, q)));
                    assert_ne!(pg, group);
                }
            }
        }
        // Every pair of groups is connected (global diameter one).
        let g = params.num_groups();
        for i in 0..g {
            for j in 0..g {
                if i != j {
                    assert!(
                        df.global_slot_count(i, j) > 0,
                        "groups {i} and {j} unconnected"
                    );
                }
            }
        }
    }
}

/// Every packet injected at light load is delivered (no loss, no
/// deadlock) under each routing family member, including with the
/// credit round-trip mechanism enabled.
#[test]
fn all_packets_delivered() {
    for case in 0..24u64 {
        let mut rng = rng_for(0x222, case);
        let params = sample_params(&mut rng);
        let choice = RoutingChoice::ALL[rng.gen_range(0usize..7)];
        let seed = rng.gen_range(0u64..1000);
        let sim = DragonflySim::new(params);
        let mut cfg = sim.config(0.08);
        cfg.warmup = 100;
        cfg.measure = 500;
        cfg.drain_cap = 20_000;
        cfg.seed = seed;
        let stats = sim.run(choice, TrafficChoice::Uniform, cfg);
        assert!(
            stats.drained,
            "case {case}: {} lost packets ({params:?}, seed {seed})",
            choice.label()
        );
        assert!(stats.latency.count > 0, "case {case}");
    }
}

/// The adversarial pattern at a load below the Valiant bound drains
/// under non-minimal and adaptive routing.
#[test]
fn adversarial_drains_under_valiant() {
    let mut done = 0u32;
    let mut case = 0u64;
    // Resample until 24 configurations with >= 3 groups (so an
    // intermediate group exists) have been exercised.
    while done < 24 {
        let mut rng = rng_for(0x333, case);
        case += 1;
        let params = sample_params(&mut rng);
        if params.num_groups() < 3 {
            continue;
        }
        done += 1;
        let choice = [RoutingChoice::Valiant, RoutingChoice::UgalG][rng.gen_range(0usize..2)];
        let sim = DragonflySim::new(params);
        let mut cfg = sim.config(0.05);
        cfg.warmup = 100;
        cfg.measure = 400;
        cfg.drain_cap = 30_000;
        let stats = sim.run(choice, TrafficChoice::WorstCase, cfg);
        assert!(
            stats.drained,
            "case {case}: {} lost packets ({params:?})",
            choice.label()
        );
    }
}

/// Accepted throughput equals offered load below saturation, for any
/// seed.
#[test]
fn throughput_conservation() {
    for case in 0..24u64 {
        let mut rng = rng_for(0x444, case);
        let seed = rng.gen_range(0u64..500);
        let sim = DragonflySim::new(DragonflyParams::new(2, 4, 2).unwrap());
        let mut cfg = sim.config(0.2);
        cfg.warmup = 300;
        cfg.measure = 1_500;
        cfg.seed = seed;
        let stats = sim.run(RoutingChoice::UgalLVcH, TrafficChoice::Uniform, cfg);
        assert!(stats.drained, "seed {seed}");
        assert!(
            (stats.accepted_rate - 0.2).abs() < 0.04,
            "seed {seed}: accepted {}",
            stats.accepted_rate
        );
    }
}

/// Latency is bounded below by the zero-load path length: injection +
/// at most (local, global, local) + ejection for minimal routes.
#[test]
fn latency_lower_bound() {
    for case in 0..24u64 {
        let mut rng = rng_for(0x555, case);
        let seed = rng.gen_range(0u64..200);
        let sim = DragonflySim::new(DragonflyParams::new(2, 4, 2).unwrap());
        let mut cfg = sim.config(0.05);
        cfg.warmup = 100;
        cfg.measure = 800;
        cfg.seed = seed;
        let stats = sim.run(RoutingChoice::Min, TrafficChoice::Uniform, cfg);
        assert!(stats.drained, "seed {seed}");
        // Same-router traffic: inject (1) + eject (1).
        assert!(stats.latency.min >= 2, "seed {seed}");
        // And nothing exceeds a generous zero-loadish cap at this load.
        assert!(
            stats.latency.max < 100,
            "seed {seed}: max {}",
            stats.latency.max
        );
    }
}

mod traffic_properties {
    use super::*;
    use dfly_traffic::{GroupAdversarial, TrafficPattern, UniformRandom};

    /// Destinations are always in range and never the source.
    #[test]
    fn uniform_destinations_valid() {
        for case in 0..64u64 {
            let mut g = rng_for(0x666, case);
            let n = g.gen_range(2usize..200);
            let src_frac = g.gen::<f64>();
            let seed = g.gen_range(0u64..99);
            let ur = UniformRandom::new(n);
            let src = ((n - 1) as f64 * src_frac) as usize;
            let mut rng = rng_for(seed, 0);
            for _ in 0..16 {
                let d = ur.destination(src, &mut rng);
                assert!(d < n, "case {case}");
                assert_ne!(d, src, "case {case}");
            }
        }
    }

    /// The adversarial pattern always targets the configured group.
    #[test]
    fn adversarial_group_offset() {
        let mut done = 0u32;
        let mut case = 0u64;
        while done < 64 {
            let mut g = rng_for(0x777, case);
            case += 1;
            let groups = g.gen_range(2usize..20);
            let size = g.gen_range(1usize..16);
            let offset = g.gen_range(1usize..19);
            let seed = g.gen_range(0u64..99);
            if offset % groups == 0 {
                continue;
            }
            done += 1;
            let n = groups * size;
            let wc = GroupAdversarial::new(n, size, offset);
            let mut rng = rng_for(seed, 1);
            for src in (0..n).step_by((n / 7).max(1)) {
                let d = wc.destination(src, &mut rng);
                assert_eq!(
                    d / size,
                    (src / size + offset) % groups,
                    "groups={groups} size={size} offset={offset} src={src}"
                );
            }
        }
    }
}

mod route_structure {
    use super::*;
    use dfly_netsim::{ChannelClass, RouteInfo};
    use dragonfly::{trace_route, Dragonfly};

    /// Every minimal route crosses at most one global channel — the
    /// paper's defining property — and every Valiant route at most two,
    /// for any configuration and endpoints.
    #[test]
    fn global_hop_bounds() {
        for case in 0..16u64 {
            let mut g = rng_for(0x888, case);
            let params = sample_params(&mut g);
            let seed = g.gen_range(0u64..100);
            let df = Dragonfly::new(params);
            let n = params.num_terminals();
            let mut rng = rng_for(seed, 3);
            for _ in 0..12 {
                let src = rng.gen_range(0..n);
                let dest = rng.gen_range(0..n);
                if src == dest {
                    continue;
                }
                let salt: u32 = rng.gen();
                let hops = trace_route(&df, src, dest, RouteInfo::minimal().with_salt(salt))
                    .expect("minimal route completes");
                let globals = hops
                    .iter()
                    .filter(|h| h.class == ChannelClass::Global)
                    .count();
                assert!(globals <= 1, "{src}->{dest}: {globals} globals on MIN");

                let gs = params.group_of_terminal(src);
                let gd = params.group_of_terminal(dest);
                if gs != gd && params.num_groups() >= 3 {
                    let gi = (0..params.num_groups())
                        .find(|&x| x != gs && x != gd)
                        .unwrap();
                    let hops = trace_route(
                        &df,
                        src,
                        dest,
                        RouteInfo::non_minimal(gi as u32).with_salt(salt),
                    )
                    .expect("valiant route completes");
                    let globals = hops
                        .iter()
                        .filter(|h| h.class == ChannelClass::Global)
                        .count();
                    assert!(globals <= 2, "{src}->{dest} via {gi}: {globals} globals");
                }
            }
        }
    }

    /// The (channel-class, VC) rank never decreases along any route —
    /// the acyclicity invariant behind Figure 7's deadlock freedom.
    #[test]
    fn vc_rank_is_monotone() {
        fn rank(class: ChannelClass, vc: usize) -> usize {
            match class {
                ChannelClass::Local => 2 * vc,
                ChannelClass::Global => 2 * vc + 1,
                ChannelClass::Terminal => usize::MAX,
            }
        }
        for case in 0..16u64 {
            let mut g = rng_for(0x999, case);
            let params = sample_params(&mut g);
            let seed = g.gen_range(0u64..100);
            let df = Dragonfly::new(params);
            let n = params.num_terminals();
            let mut rng = rng_for(seed, 4);
            for _ in 0..12 {
                let src = rng.gen_range(0..n);
                let dest = rng.gen_range(0..n);
                if src == dest {
                    continue;
                }
                let gs = params.group_of_terminal(src);
                let gd = params.group_of_terminal(dest);
                let mut routes = vec![RouteInfo::minimal().with_salt(rng.gen())];
                if gs != gd && params.num_groups() >= 3 {
                    let gi = (0..params.num_groups())
                        .find(|&x| x != gs && x != gd)
                        .unwrap() as u32;
                    routes.push(RouteInfo::non_minimal(gi).with_salt(rng.gen()));
                }
                for route in routes {
                    let hops = trace_route(&df, src, dest, route).expect("route completes");
                    let ranks: Vec<usize> = hops.iter().map(|h| rank(h.class, h.vc)).collect();
                    for w in ranks.windows(2) {
                        assert!(w[0] <= w[1], "{src}->{dest}: ranks {ranks:?}");
                    }
                }
            }
        }
    }
}
