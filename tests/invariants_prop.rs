//! Property-based invariants across the whole stack: any valid
//! dragonfly configuration must wire consistently, route without loss
//! or deadlock under any routing algorithm, and respect the paper's VC
//! ordering.

use proptest::prelude::*;

use dragonfly::{DragonflyParams, DragonflySim, RoutingChoice, TrafficChoice};

/// Strategy over small-but-varied dragonfly parameters, including
/// non-maximal group counts.
fn params() -> impl Strategy<Value = DragonflyParams> {
    (1usize..=3, 2usize..=5, 1usize..=3)
        .prop_flat_map(|(p, a, h)| {
            let max_g = a * h + 1;
            (Just(p), Just(a), Just(h), 2usize..=max_g)
        })
        .prop_map(|(p, a, h, g)| DragonflyParams::with_groups(p, a, h, g).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The generated wiring always validates and every global slot pair
    /// is involutive.
    #[test]
    fn wiring_is_consistent(params in params()) {
        let df = dragonfly::Dragonfly::new(params);
        let spec = df.build_spec();
        prop_assert_eq!(spec.num_terminals(), params.num_terminals());
        prop_assert_eq!(spec.num_routers(), params.num_routers());
        let ah = params.global_ports_per_group();
        for group in 0..params.num_groups() {
            for q in 0..ah {
                if let Some((pg, pq)) = df.global_slot_target(group, q) {
                    prop_assert_eq!(df.global_slot_target(pg, pq), Some((group, q)));
                    prop_assert_ne!(pg, group);
                }
            }
        }
        // Every pair of groups is connected (global diameter one).
        let g = params.num_groups();
        for i in 0..g {
            for j in 0..g {
                if i != j {
                    prop_assert!(!df.global_slots(i, j).is_empty(),
                        "groups {} and {} unconnected", i, j);
                }
            }
        }
    }

    /// Every packet injected at light load is delivered (no loss, no
    /// deadlock) under each routing family member, including with the
    /// credit round-trip mechanism enabled.
    #[test]
    fn all_packets_delivered(params in params(), choice_idx in 0usize..7, seed in 0u64..1000) {
        let choice = RoutingChoice::ALL[choice_idx];
        let sim = DragonflySim::new(params);
        let mut cfg = sim.config(0.08);
        cfg.warmup = 100;
        cfg.measure = 500;
        cfg.drain_cap = 20_000;
        cfg.seed = seed;
        let stats = sim.run(choice, TrafficChoice::Uniform, cfg);
        prop_assert!(stats.drained, "{} lost packets", choice.label());
        prop_assert!(stats.latency.count > 0);
    }

    /// The adversarial pattern at a load below the Valiant bound drains
    /// under non-minimal and adaptive routing.
    #[test]
    fn adversarial_drains_under_valiant(params in params(), choice_idx in 0usize..2) {
        // Restrict to >= 3 groups so an intermediate group exists.
        prop_assume!(params.num_groups() >= 3);
        let choice = [RoutingChoice::Valiant, RoutingChoice::UgalG][choice_idx];
        let sim = DragonflySim::new(params);
        let mut cfg = sim.config(0.05);
        cfg.warmup = 100;
        cfg.measure = 400;
        cfg.drain_cap = 30_000;
        let stats = sim.run(choice, TrafficChoice::WorstCase, cfg);
        prop_assert!(stats.drained, "{} lost packets", choice.label());
    }

    /// Accepted throughput equals offered load below saturation, for
    /// any seed.
    #[test]
    fn throughput_conservation(seed in 0u64..500) {
        let sim = DragonflySim::new(DragonflyParams::new(2, 4, 2).unwrap());
        let mut cfg = sim.config(0.2);
        cfg.warmup = 300;
        cfg.measure = 1_500;
        cfg.seed = seed;
        let stats = sim.run(RoutingChoice::UgalLVcH, TrafficChoice::Uniform, cfg);
        prop_assert!(stats.drained);
        prop_assert!((stats.accepted_rate - 0.2).abs() < 0.04,
            "accepted {}", stats.accepted_rate);
    }

    /// Latency is bounded below by the zero-load path length: injection
    /// + at most (local, global, local) + ejection for minimal routes.
    #[test]
    fn latency_lower_bound(seed in 0u64..200) {
        let sim = DragonflySim::new(DragonflyParams::new(2, 4, 2).unwrap());
        let mut cfg = sim.config(0.05);
        cfg.warmup = 100;
        cfg.measure = 800;
        cfg.seed = seed;
        let stats = sim.run(RoutingChoice::Min, TrafficChoice::Uniform, cfg);
        prop_assert!(stats.drained);
        // Same-router traffic: inject (1) + eject (1).
        prop_assert!(stats.latency.min >= 2);
        // And nothing exceeds a generous zero-loadish cap at this load.
        prop_assert!(stats.latency.max < 100, "max {}", stats.latency.max);
    }
}

mod traffic_properties {
    use super::*;
    use dfly_traffic::{rng_for, GroupAdversarial, TrafficPattern, UniformRandom};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Destinations are always in range and never the source.
        #[test]
        fn uniform_destinations_valid(n in 2usize..200, src_frac in 0.0f64..1.0, seed in 0u64..99) {
            let ur = UniformRandom::new(n);
            let src = ((n - 1) as f64 * src_frac) as usize;
            let mut rng = rng_for(seed, 0);
            for _ in 0..16 {
                let d = ur.destination(src, &mut rng);
                prop_assert!(d < n);
                prop_assert_ne!(d, src);
            }
        }

        /// The adversarial pattern always targets the configured group.
        #[test]
        fn adversarial_group_offset(groups in 2usize..20, size in 1usize..16,
                                    offset in 1usize..19, seed in 0u64..99) {
            prop_assume!(offset % groups != 0);
            let n = groups * size;
            let wc = GroupAdversarial::new(n, size, offset);
            let mut rng = rng_for(seed, 1);
            for src in (0..n).step_by((n / 7).max(1)) {
                let d = wc.destination(src, &mut rng);
                prop_assert_eq!(d / size, (src / size + offset) % groups);
            }
        }
    }
}

mod route_structure {
    use super::*;
    use dfly_netsim::{ChannelClass, RouteInfo};
    use dragonfly::{trace_route, Dragonfly};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Every minimal route crosses at most one global channel — the
        /// paper's defining property — and every Valiant route at most
        /// two, for any configuration and endpoints.
        #[test]
        fn global_hop_bounds(params in params(), seed in 0u64..100) {
            let df = Dragonfly::new(params);
            let n = params.num_terminals();
            let mut rng = dfly_traffic::rng_for(seed, 3);
            use rand::Rng;
            for _ in 0..12 {
                let src = rng.gen_range(0..n);
                let dest = rng.gen_range(0..n);
                if src == dest {
                    continue;
                }
                let salt: u32 = rng.gen();
                let hops = trace_route(&df, src, dest, RouteInfo::minimal().with_salt(salt))
                    .expect("minimal route completes");
                let globals = hops.iter().filter(|h| h.class == ChannelClass::Global).count();
                prop_assert!(globals <= 1, "{src}->{dest}: {globals} globals on MIN");

                let gs = params.group_of_terminal(src);
                let gd = params.group_of_terminal(dest);
                if gs != gd && params.num_groups() >= 3 {
                    let gi = (0..params.num_groups())
                        .find(|&x| x != gs && x != gd)
                        .unwrap();
                    let hops = trace_route(
                        &df,
                        src,
                        dest,
                        RouteInfo::non_minimal(gi as u32).with_salt(salt),
                    )
                    .expect("valiant route completes");
                    let globals =
                        hops.iter().filter(|h| h.class == ChannelClass::Global).count();
                    prop_assert!(globals <= 2, "{src}->{dest} via {gi}: {globals} globals");
                }
            }
        }

        /// The (channel-class, VC) rank never decreases along any route —
        /// the acyclicity invariant behind Figure 7's deadlock freedom.
        #[test]
        fn vc_rank_is_monotone(params in params(), seed in 0u64..100) {
            fn rank(class: ChannelClass, vc: usize) -> usize {
                match class {
                    ChannelClass::Local => 2 * vc,
                    ChannelClass::Global => 2 * vc + 1,
                    ChannelClass::Terminal => usize::MAX,
                }
            }
            let df = Dragonfly::new(params);
            let n = params.num_terminals();
            let mut rng = dfly_traffic::rng_for(seed, 4);
            use rand::Rng;
            for _ in 0..12 {
                let src = rng.gen_range(0..n);
                let dest = rng.gen_range(0..n);
                if src == dest {
                    continue;
                }
                let gs = params.group_of_terminal(src);
                let gd = params.group_of_terminal(dest);
                let mut routes = vec![RouteInfo::minimal().with_salt(rng.gen())];
                if gs != gd && params.num_groups() >= 3 {
                    let gi = (0..params.num_groups())
                        .find(|&x| x != gs && x != gd)
                        .unwrap() as u32;
                    routes.push(RouteInfo::non_minimal(gi).with_salt(rng.gen()));
                }
                for route in routes {
                    let hops = trace_route(&df, src, dest, route).expect("route completes");
                    let ranks: Vec<usize> =
                        hops.iter().map(|h| rank(h.class, h.vc)).collect();
                    for w in ranks.windows(2) {
                        prop_assert!(w[0] <= w[1], "{src}->{dest}: ranks {ranks:?}");
                    }
                }
            }
        }
    }
}
