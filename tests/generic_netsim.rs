//! The simulator substrate on non-dragonfly networks: the engine is
//! topology-agnostic and must behave on arbitrary wirings.

use dfly_netsim::{
    ChannelClass, Connection, NetworkSpec, PortSpec, RouterSpec, ShortestPathRouting, SimConfig,
    Simulation,
};
use dfly_traffic::{Shift, TrafficPattern, UniformRandom};

fn term(t: u32) -> PortSpec {
    PortSpec {
        conn: Connection::Terminal { terminal: t },
        latency: 1,
        class: ChannelClass::Terminal,
    }
}

fn link(router: u32, port: u32) -> PortSpec {
    PortSpec {
        conn: Connection::Router { router, port },
        latency: 1,
        class: ChannelClass::Local,
    }
}

/// A binary tree of 7 routers, terminals on the 4 leaves.
fn tree_spec() -> NetworkSpec {
    // Router 0 root; 1,2 mid; 3..6 leaves with 2 terminals each.
    NetworkSpec::validated(
        vec![
            RouterSpec {
                ports: vec![link(1, 0), link(2, 0)],
            },
            RouterSpec {
                ports: vec![link(0, 0), link(3, 0), link(4, 0)],
            },
            RouterSpec {
                ports: vec![link(0, 1), link(5, 0), link(6, 0)],
            },
            RouterSpec {
                ports: vec![link(1, 1), term(0), term(1)],
            },
            RouterSpec {
                ports: vec![link(1, 2), term(2), term(3)],
            },
            RouterSpec {
                ports: vec![link(2, 1), term(4), term(5)],
            },
            RouterSpec {
                ports: vec![link(2, 2), term(6), term(7)],
            },
        ],
        2,
    )
    .unwrap()
}

#[test]
fn tree_network_delivers_and_bounds_latency() {
    let spec = tree_spec();
    let routing = ShortestPathRouting::new(&spec);
    let pattern = UniformRandom::new(8);
    let mut cfg = SimConfig::paper_default(0.08);
    cfg.warmup = 200;
    cfg.measure = 2_000;
    let stats = Simulation::new(&spec, &routing, &pattern, cfg)
        .unwrap()
        .run();
    assert!(stats.drained);
    // Worst path: leaf -> root -> leaf = 4 links + inject + eject = 6.
    assert!(stats.latency.max >= 6);
    assert!(stats.latency.min >= 2);
}

#[test]
fn root_is_the_tree_bottleneck() {
    // Shift by half the terminals forces all traffic across the root:
    // 8 terminals at rate r need 4r of the root's 1+1 link capacity
    // each way, so saturation sits near 0.25 per terminal.
    let spec = tree_spec();
    let routing = ShortestPathRouting::new(&spec);
    let pattern = Shift::new(8, 4);
    let mut cfg = SimConfig::paper_default(1.0);
    cfg.warmup = 500;
    cfg.measure = 2_000;
    cfg.drain_cap = 0;
    let stats = Simulation::new(&spec, &routing, &pattern, cfg)
        .unwrap()
        .run();
    assert!(
        (0.2..0.3).contains(&stats.accepted_rate),
        "root-limited throughput {}",
        stats.accepted_rate
    );
    // Root links saturated.
    for load in stats.channel_loads.iter().filter(|c| c.router == 0) {
        assert!(load.utilization > 0.9, "root port {}", load.port);
    }
}

#[test]
fn single_pair_ping() {
    // Two terminals, two routers: a packet each way per cycle at most.
    let spec = NetworkSpec::validated(
        vec![
            RouterSpec {
                ports: vec![term(0), link(1, 0)],
            },
            RouterSpec {
                ports: vec![link(0, 1), term(1)],
            },
        ],
        1,
    )
    .unwrap();
    let routing = ShortestPathRouting::new(&spec);
    let pattern = Shift::new(2, 1);
    let mut cfg = SimConfig::paper_default(0.95);
    cfg.warmup = 200;
    cfg.measure = 2_000;
    cfg.drain_cap = 10_000;
    let stats = Simulation::new(&spec, &routing, &pattern, cfg)
        .unwrap()
        .run();
    assert!(stats.drained);
    assert!(
        (stats.accepted_rate - 0.95).abs() < 0.03,
        "full-rate ping {}",
        stats.accepted_rate
    );
    // Zero contention: every packet takes exactly inject+link+eject.
    assert_eq!(stats.latency.min, 3);
    assert!(stats.latency.mean().unwrap() < 6.0);
}

#[test]
fn heterogeneous_latencies_accumulate() {
    // One long channel (10 cycles) between two routers.
    let long = |router: u32, port: u32| PortSpec {
        conn: Connection::Router { router, port },
        latency: 10,
        class: ChannelClass::Global,
    };
    let spec = NetworkSpec::validated(
        vec![
            RouterSpec {
                ports: vec![term(0), long(1, 0)],
            },
            RouterSpec {
                ports: vec![long(0, 1), term(1)],
            },
        ],
        1,
    )
    .unwrap();
    let routing = ShortestPathRouting::new(&spec);
    let pattern = Shift::new(2, 1);
    let mut cfg = SimConfig::paper_default(0.02);
    cfg.warmup = 100;
    cfg.measure = 3_000;
    let stats = Simulation::new(&spec, &routing, &pattern, cfg)
        .unwrap()
        .run();
    assert!(stats.drained);
    assert_eq!(stats.latency.min, 12); // 1 + 10 + 1
}

#[test]
fn credits_limit_inflight_on_long_channels() {
    // With buffer depth 4 and a 10-cycle channel, at most 4 flits can
    // be outstanding: throughput caps at 4 / (2*10+eps) per VC even
    // though demand is higher.
    let long = |router: u32, port: u32| PortSpec {
        conn: Connection::Router { router, port },
        latency: 10,
        class: ChannelClass::Global,
    };
    let spec = NetworkSpec::validated(
        vec![
            RouterSpec {
                ports: vec![term(0), long(1, 0)],
            },
            RouterSpec {
                ports: vec![long(0, 1), term(1)],
            },
        ],
        1,
    )
    .unwrap();
    let routing = ShortestPathRouting::new(&spec);
    #[derive(Debug)]
    struct ZeroToOne;
    impl TrafficPattern for ZeroToOne {
        fn name(&self) -> &'static str {
            "zero-to-one"
        }
        fn num_terminals(&self) -> usize {
            2
        }
        fn destination(&self, source: usize, _rng: &mut rand::rngs::SmallRng) -> usize {
            1 - source
        }
    }
    let mut cfg = SimConfig::paper_default(1.0);
    cfg.buffer_depth = 4;
    cfg.warmup = 500;
    cfg.measure = 4_000;
    cfg.drain_cap = 0;
    let stats = Simulation::new(&spec, &routing, &ZeroToOne, cfg)
        .unwrap()
        .run();
    // Credit round trip is ~20 cycles; 4 credits -> ~0.2 flits/cycle on
    // the channel; per-terminal accepted ~0.2 for terminal 0's flow
    // (plus the reverse flow), so the average accepted rate per node
    // sits near 0.2.
    assert!(
        (0.15..0.30).contains(&stats.accepted_rate),
        "bandwidth-delay limited rate {}",
        stats.accepted_rate
    );
}
