//! Regression test: fanning a run grid across a thread pool must
//! produce bit-identical statistics to executing it serially, in the
//! same order. This pins the determinism contract of the parallel
//! harness on the paper's 1K-node network, and — now that every
//! topology routes through the shared adaptive layer — one adaptive
//! sweep per baseline topology as well.

use std::sync::Arc;

use dfly_netsim::{CreditMode, SimConfig, Simulation, TelemetryConfig, Termination};
use dfly_topo::{FlattenedButterfly, FoldedClos, Torus};
use dfly_traffic::{AllReduce, Barrier, UniformRandom, Workload};

use dragonfly::butterfly::{ButterflyNetwork, ButterflyRouting};
use dragonfly::clos_sim::{ClosNetwork, ClosRouting};
use dragonfly::torus_sim::{TorusNetwork, TorusRouting};
use dragonfly::{RoutingChoice, RunGrid, RunPlan, TrafficChoice, UgalVariant};

#[test]
fn run_grid_parallel_matches_serial_on_paper_network() {
    let sim = dfly_bench::paper_network();
    let mut base = sim.config(0.1);
    base.warmup = 100;
    base.measure = 300;
    base.drain_cap = 4_000;
    base.seed = 7;

    let grid = RunGrid::cross(
        &[
            RoutingChoice::Min,
            RoutingChoice::Valiant,
            RoutingChoice::UgalLVcH,
        ],
        &[TrafficChoice::Uniform, TrafficChoice::WorstCase],
        &[0.05, 0.15],
        &base,
    );

    let serial = grid.execute_serial(&sim);
    for threads in [2, 4, 8] {
        let parallel = grid.execute_on(&sim, threads);
        assert_eq!(
            serial, parallel,
            "parallel ({threads} threads) diverged from serial"
        );
    }
}

#[test]
fn run_grid_deterministic_with_round_trip_credits() {
    // UGAL-L_CR flips on the credit round-trip machinery, exercising
    // the calendar-queue credit path under parallel fan-out.
    let sim = dfly_bench::paper_network();
    let mut base = sim.config(0.1);
    base.warmup = 100;
    base.measure = 200;
    base.drain_cap = 3_000;
    base.seed = 3;

    let mut grid = RunGrid::new();
    for &load in &[0.05, 0.1] {
        grid.push(RunPlan::at_load(
            RoutingChoice::UgalLCr,
            TrafficChoice::WorstCase,
            &base,
            load,
        ));
    }
    assert_eq!(grid.execute_serial(&sim), grid.execute_on(&sim, 4));
}

#[test]
fn repeated_parallel_executions_are_stable() {
    // Two parallel executions of the same grid (different scheduling)
    // must also agree with each other.
    let sim = dfly_bench::paper_network();
    let mut base = sim.config(0.2);
    base.warmup = 100;
    base.measure = 200;
    base.drain_cap = 3_000;
    base.seed = 11;

    let grid = RunGrid::load_sweep(
        RoutingChoice::UgalG,
        TrafficChoice::Uniform,
        &[0.1, 0.2, 0.3],
        &base,
    );
    assert_eq!(grid.execute_on(&sim, 3), grid.execute_on(&sim, 3));
}

fn fast_cfg(seed: u64) -> SimConfig {
    let mut cfg = SimConfig::paper_default(0.1);
    cfg.warmup = 150;
    cfg.measure = 300;
    cfg.drain_cap = 5_000;
    cfg.seed = seed;
    // Telemetry on in every baseline sweep: the channel series and the
    // seeded flit trace are part of `RunStats` equality below, so the
    // serial-vs-parallel comparison pins their determinism too.
    cfg.telemetry = TelemetryConfig {
        sample_every: 16,
        trace_rate: 0.25,
        trace_seed: 9,
    };
    cfg
}

/// Telemetry must not perturb the simulation: the same grid with
/// sampling and tracing enabled yields the same core statistics, and
/// its trace/series/registry JSON is byte-identical between a serial
/// and a parallel execution.
#[test]
fn telemetry_output_bit_identical_serial_vs_parallel() {
    let sim = dragonfly::DragonflySim::new(dragonfly::DragonflyParams::new(2, 4, 2).unwrap());
    let mut base = sim.config(0.1);
    base.warmup = 150;
    base.measure = 300;
    base.drain_cap = 4_000;
    base.seed = 21;
    base.telemetry = TelemetryConfig {
        sample_every: 16,
        trace_rate: 0.25,
        trace_seed: 9,
    };
    let grid = RunGrid::cross(
        &[RoutingChoice::UgalL, RoutingChoice::UgalLVcH],
        &[TrafficChoice::Uniform],
        &[0.1, 0.2],
        &base,
    );

    let (serial, serial_reg) = grid.execute_with_metrics_on(&sim, 1);
    let (parallel, parallel_reg) = grid.execute_with_metrics_on(&sim, 4);
    assert_eq!(serial, parallel, "telemetry-enabled grid diverged");
    assert_eq!(
        serial_reg.to_json(),
        parallel_reg.to_json(),
        "merged registries diverged"
    );
    for (s, p) in serial.iter().zip(&parallel) {
        let (st, pt) = (s.trace.as_ref().unwrap(), p.trace.as_ref().unwrap());
        assert!(!st.events.is_empty(), "tracer sampled no packets");
        assert_eq!(st.to_chrome_json(), pt.to_chrome_json());
        let (ss, ps) = (s.series.as_ref().unwrap(), p.series.as_ref().unwrap());
        assert!(!ss.ticks.is_empty(), "sampler recorded no ticks");
        assert_eq!(ss.to_json(), ps.to_json());
        assert_eq!(s.latency_log.to_json(), p.latency_log.to_json());
        assert_eq!(s.scoreboard.to_json(), p.scoreboard.to_json());
        assert!(s.scoreboard.scored > 0, "no scored adaptive decisions");
    }
}

/// One adaptive sweep per baseline topology: the parallel fan-out must
/// be bit-identical to running each load point serially, with the new
/// routing telemetry included in the comparison (`LoadPoint` equality
/// covers the whole `RunStats`).
#[test]
fn adaptive_sweeps_deterministic_on_every_topology() {
    let loads = [0.05, 0.15];

    // Flattened butterfly under UGAL-L(CR) — the credit-round-trip
    // estimator running on a non-dragonfly topology.
    let fb = Arc::new(ButterflyNetwork::new(FlattenedButterfly::new(2, 4, 2)));
    let fb_routing = ButterflyRouting::ugal_credit(fb.clone());
    let mut fb_cfg = fast_cfg(5);
    fb_cfg.credit_mode = CreditMode::round_trip();
    let fb_pattern = UniformRandom::new(fb.build_spec().num_terminals());
    check_sweep_matches_serial(&fb.build_spec(), &fb_routing, &fb_pattern, &loads, &fb_cfg);

    // Folded Clos spreading over its equal-length uplinks adaptively.
    let clos = Arc::new(ClosNetwork::new(FoldedClos::new(3, 8)));
    let clos_routing = ClosRouting::adaptive(clos.clone(), UgalVariant::Local);
    let clos_pattern = UniformRandom::new(clos.build_spec().num_terminals());
    check_sweep_matches_serial(
        &clos.build_spec(),
        &clos_routing,
        &clos_pattern,
        &loads,
        &fast_cfg(6),
    );

    // Torus choosing between the short and the long way around.
    let torus = Arc::new(TorusNetwork::new(Torus::new(2, 4, 1)));
    let torus_routing = TorusRouting::adaptive(torus.clone(), UgalVariant::Local);
    let torus_pattern = UniformRandom::new(torus.build_spec().num_terminals());
    check_sweep_matches_serial(
        &torus.build_spec(),
        &torus_routing,
        &torus_pattern,
        &loads,
        &fast_cfg(8),
    );
}

fn check_sweep_matches_serial(
    spec: &dfly_netsim::NetworkSpec,
    routing: &(dyn dfly_netsim::RoutingAlgorithm + Sync),
    pattern: &(dyn dfly_traffic::TrafficPattern + Sync),
    loads: &[f64],
    base: &SimConfig,
) {
    let parallel = dragonfly::parallel::sweep_network(spec, routing, pattern, loads, base)
        .expect("sweep configuration must be valid");
    assert_eq!(parallel.len(), loads.len());
    for point in &parallel {
        let mut cfg = base.clone();
        cfg.injection = dfly_netsim::InjectionKind::Bernoulli { rate: point.load };
        let serial = Simulation::new(spec, routing, pattern, cfg)
            .unwrap()
            .finish();
        assert_eq!(
            serial,
            point.stats,
            "{} sweep diverged from serial at load {}",
            routing.name(),
            point.load
        );
        assert!(point.stats.drained, "{} did not drain", routing.name());
        // Struct equality already implies it, but the exported bytes
        // are the product — compare them directly too.
        if let (Some(st), Some(pt)) = (&serial.trace, &point.stats.trace) {
            assert!(!st.events.is_empty(), "{}: empty trace", routing.name());
            assert_eq!(st.to_chrome_json(), pt.to_chrome_json());
        }
        if let (Some(ss), Some(ps)) = (&serial.series, &point.stats.series) {
            assert_eq!(ss.to_json(), ps.to_json());
        }
    }
}

/// Runs one `(spec, routing, pattern, cfg)` point at several shard
/// counts and asserts everything the engine emits is byte-identical to
/// the 1-shard run: the full `RunStats`, the chrome-trace bytes, the
/// channel-series JSON and the latency/scoreboard exports. Routing is
/// rebuilt per run so stateful estimators start fresh each time.
fn check_shard_counts_match(
    name: &str,
    spec: &dfly_netsim::NetworkSpec,
    make_routing: &dyn Fn() -> Box<dyn dfly_netsim::RoutingAlgorithm + Send + Sync>,
    pattern: &dyn dfly_traffic::TrafficPattern,
    base: &SimConfig,
) {
    let run = |shards: usize| {
        let routing = make_routing();
        let mut cfg = base.clone();
        cfg.shards = shards;
        let sim = Simulation::new(spec, routing.as_ref(), pattern, cfg).unwrap();
        let planned = sim.shard_count();
        (planned, sim.finish())
    };
    let (_, one) = run(1);
    assert!(one.drained, "{name}: 1-shard run did not drain");
    assert!(
        !one.trace.as_ref().unwrap().events.is_empty(),
        "{name}: tracer sampled no packets"
    );
    assert!(
        !one.series.as_ref().unwrap().ticks.is_empty(),
        "{name}: sampler recorded no ticks"
    );
    for shards in [2, 4] {
        let (planned, stats) = run(shards);
        assert_eq!(planned, shards, "{name}: planner fell back at {shards}");
        assert_eq!(stats, one, "{name}: {shards}-shard run diverged");
        assert_eq!(
            stats.trace.as_ref().unwrap().to_chrome_json(),
            one.trace.as_ref().unwrap().to_chrome_json(),
            "{name}: trace bytes diverged at {shards} shards"
        );
        assert_eq!(
            stats.series.as_ref().unwrap().to_json(),
            one.series.as_ref().unwrap().to_json(),
            "{name}: series bytes diverged at {shards} shards"
        );
        assert_eq!(stats.latency_log.to_json(), one.latency_log.to_json());
        assert_eq!(stats.scoreboard.to_json(), one.scoreboard.to_json());
    }
}

/// The sharded cycle engine must be bit-identical at 1, 2 and 4 shards
/// on all four topologies, with telemetry (series + trace) enabled.
/// The dragonfly leg runs UGAL with the EWMA estimator — the one
/// congestion estimator that keeps its own state — to pin its shard
/// independence too.
#[test]
fn sharded_engine_bit_identical_on_every_topology() {
    let df = dragonfly::Dragonfly::new(dragonfly::DragonflyParams::new(2, 4, 2).unwrap());
    let df_spec = df.build_spec();
    let df_arc = Arc::new(df);
    let df_pattern = UniformRandom::new(df_spec.num_terminals());
    check_shard_counts_match(
        "dragonfly/ugal-ewma",
        &df_spec,
        &|| RoutingChoice::UgalLEwma.build(Arc::clone(&df_arc)),
        &df_pattern,
        &fast_cfg(31),
    );

    let fb = Arc::new(ButterflyNetwork::new(FlattenedButterfly::new(2, 4, 2)));
    let fb_spec = fb.build_spec();
    let fb_pattern = UniformRandom::new(fb_spec.num_terminals());
    check_shard_counts_match(
        "butterfly/ugal-l",
        &fb_spec,
        &|| Box::new(ButterflyRouting::ugal_local(Arc::clone(&fb))),
        &fb_pattern,
        &fast_cfg(32),
    );

    let clos = Arc::new(ClosNetwork::new(FoldedClos::new(3, 8)));
    let clos_spec = clos.build_spec();
    let clos_pattern = UniformRandom::new(clos_spec.num_terminals());
    check_shard_counts_match(
        "clos/adaptive",
        &clos_spec,
        &|| Box::new(ClosRouting::adaptive(Arc::clone(&clos), UgalVariant::Local)),
        &clos_pattern,
        &fast_cfg(33),
    );

    let torus = Arc::new(TorusNetwork::new(Torus::new(2, 4, 1)));
    let torus_spec = torus.build_spec();
    let torus_pattern = UniformRandom::new(torus_spec.num_terminals());
    check_shard_counts_match(
        "torus/adaptive",
        &torus_spec,
        &|| {
            Box::new(TorusRouting::adaptive(
                Arc::clone(&torus),
                UgalVariant::Local,
            ))
        },
        &torus_pattern,
        &fast_cfg(34),
    );
}

/// Sharding composes with link faults: a dragonfly with an eighth of
/// its global cables failed must still be bit-identical across shard
/// counts (fault-table views are read-only during a run).
#[test]
fn sharded_engine_bit_identical_with_faults() {
    let params = dragonfly::DragonflyParams::new(2, 4, 2).unwrap();
    let plan = dfly_netsim::FaultPlan::random_global(1.0 / 8.0, 17);
    let run = |shards: usize| {
        let sim = dragonfly::DragonflySim::with_faults(params, &plan).unwrap();
        let mut cfg = fast_cfg(35);
        cfg.shards = shards;
        let (stats, perf) =
            sim.run_instrumented(RoutingChoice::UgalLVcH, TrafficChoice::Uniform, cfg);
        (perf.shards, stats)
    };
    let (_, one) = run(1);
    assert!(one.drained, "faulted 1-shard run did not drain");
    assert!(
        one.routing.fault_avoided_decisions > 0,
        "faults never steered a decision"
    );
    for shards in [2, 4] {
        let (planned, stats) = run(shards);
        assert_eq!(planned, shards, "faulted planner fell back at {shards}");
        assert_eq!(stats, one, "faulted {shards}-shard run diverged");
    }
}

/// The grid-level registry merge on top of sharded runs: the merged
/// metrics registry must export byte-identical JSON whatever the shard
/// count of the individual runs.
#[test]
fn sharded_runs_keep_registry_json_identical() {
    let sim = dragonfly::DragonflySim::new(dragonfly::DragonflyParams::new(2, 4, 2).unwrap());
    let reg_json = |shards: usize| {
        let mut base = fast_cfg(36);
        base.shards = shards;
        let grid = RunGrid::cross(
            &[RoutingChoice::UgalL],
            &[TrafficChoice::Uniform],
            &[0.1, 0.2],
            &base,
        );
        let (stats, registry) = grid.execute_with_metrics_on(&sim, 2);
        (stats, registry.to_json())
    };
    let (stats1, json1) = reg_json(1);
    for shards in [2, 4] {
        let (stats, json) = reg_json(shards);
        assert_eq!(stats, stats1, "grid stats diverged at {shards} shards");
        assert_eq!(json, json1, "registry JSON diverged at {shards} shards");
    }
}

/// Runs one closed-loop workload to completion at 1, 2 and 4 shards
/// and asserts the full `RunStats` — including the completion cycle —
/// is bit-identical. The factory hands every shard a fresh workload
/// instance; the instances coordinate only through simulated delivery
/// notes, so the shard count must not be observable in the results.
fn check_workload_shard_counts(
    name: &str,
    factory: &(dyn Fn(std::ops::Range<usize>) -> Box<dyn Workload + Send> + Sync),
) {
    let sim = dragonfly::DragonflySim::new(dragonfly::DragonflyParams::new(2, 4, 2).unwrap());
    let run = |shards: usize| {
        let mut cfg = SimConfig::paper_default(0.0);
        cfg.warmup = 0;
        cfg.measure = 30_000;
        cfg.drain_cap = 30_000;
        cfg.seed = 41;
        cfg.termination = Termination::WorkComplete;
        cfg.shards = shards;
        sim.run_workload(RoutingChoice::Min, cfg, factory)
    };
    let one = run(1);
    assert!(one.drained, "{name}: 1-shard run did not drain");
    assert!(one.completion.is_some(), "{name}: workload never completed");
    for shards in [2, 4] {
        assert_eq!(run(shards), one, "{name}: {shards}-shard run diverged");
    }
}

/// Closed-loop collectives through the sharded engine: a barrier, a
/// ring all-reduce and a recursive-doubling all-reduce — each spanning
/// members in every group — must complete bit-identically at 1, 2 and
/// 4 shards.
#[test]
fn closed_loop_collectives_bit_identical_across_shard_counts() {
    // 24 members spread over all 9 groups of the 72-terminal network,
    // so every collective crosses shard boundaries at 2 and 4 shards.
    let spread: Vec<usize> = (0..72).step_by(3).collect();
    check_workload_shard_counts("barrier", &|_range| {
        Box::new(Barrier::new(spread.clone(), 3))
    });
    check_workload_shard_counts("all-reduce/ring", &|_range| {
        Box::new(AllReduce::ring(spread.clone()))
    });
    let pow2: Vec<usize> = (0..64).step_by(4).collect();
    check_workload_shard_counts("all-reduce/recursive-doubling", &|_range| {
        Box::new(AllReduce::recursive_doubling(pow2.clone()))
    });
}

/// The multi-tenant workload sweep must produce bit-identical results
/// — `RunStats` and the per-job ledger books alike — whatever the
/// sweep-level thread count and whatever the engine-level shard count
/// of the individual runs.
#[test]
fn workload_sweep_books_identical_across_threads_and_shards() {
    let params = dragonfly::DragonflyParams::new(2, 4, 2).unwrap();
    let jobs = vec![
        dragonfly::JobSpec::all_to_all("alpha", 8),
        dragonfly::JobSpec::all_to_all("beta", 8),
    ];
    let run = |shards: usize, threads: usize| {
        let mut cfg = SimConfig::paper_default(0.0);
        cfg.warmup = 0;
        cfg.measure = 30_000;
        cfg.drain_cap = 30_000;
        cfg.seed = 13;
        cfg.shards = shards;
        let sweep = dragonfly::WorkloadSweep::new(
            params,
            RoutingChoice::Min,
            jobs.clone(),
            &cfg,
            &[0.0, 0.3],
        );
        sweep.execute_on(threads).expect("sweep must run")
    };
    let baseline = run(1, 1);
    for point in &baseline {
        assert!(
            point.stats.completion.is_some(),
            "{:?} @ bg {} never completed",
            point.placement,
            point.background_load
        );
        for book in &point.books {
            assert_eq!(book.delivered, 56, "all-to-all of 8 sends 56 packets");
        }
    }
    for (shards, threads) in [(1, 4), (2, 1), (2, 4), (4, 2)] {
        let other = run(shards, threads);
        assert_eq!(
            baseline.len(),
            other.len(),
            "point count changed at {shards} shards / {threads} threads"
        );
        for (b, o) in baseline.iter().zip(&other) {
            assert_eq!(
                b.stats, o.stats,
                "sweep stats diverged at {shards} shards / {threads} threads"
            );
            assert_eq!(
                b.books, o.books,
                "job books diverged at {shards} shards / {threads} threads"
            );
        }
    }
}
