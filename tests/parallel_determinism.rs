//! Regression test: fanning a run grid across a thread pool must
//! produce bit-identical statistics to executing it serially, in the
//! same order. This pins the determinism contract of the parallel
//! harness on the paper's 1K-node network.

use dragonfly::{RoutingChoice, RunGrid, RunPlan, TrafficChoice};

#[test]
fn run_grid_parallel_matches_serial_on_paper_network() {
    let sim = dfly_bench::paper_network();
    let mut base = sim.config(0.1);
    base.warmup = 100;
    base.measure = 300;
    base.drain_cap = 4_000;
    base.seed = 7;

    let grid = RunGrid::cross(
        &[
            RoutingChoice::Min,
            RoutingChoice::Valiant,
            RoutingChoice::UgalLVcH,
        ],
        &[TrafficChoice::Uniform, TrafficChoice::WorstCase],
        &[0.05, 0.15],
        &base,
    );

    let serial = grid.execute_serial(&sim);
    for threads in [2, 4, 8] {
        let parallel = grid.execute_on(&sim, threads);
        assert_eq!(
            serial, parallel,
            "parallel ({threads} threads) diverged from serial"
        );
    }
}

#[test]
fn run_grid_deterministic_with_round_trip_credits() {
    // UGAL-L_CR flips on the credit round-trip machinery, exercising
    // the calendar-queue credit path under parallel fan-out.
    let sim = dfly_bench::paper_network();
    let mut base = sim.config(0.1);
    base.warmup = 100;
    base.measure = 200;
    base.drain_cap = 3_000;
    base.seed = 3;

    let mut grid = RunGrid::new();
    for &load in &[0.05, 0.1] {
        grid.push(RunPlan::at_load(
            RoutingChoice::UgalLCr,
            TrafficChoice::WorstCase,
            &base,
            load,
        ));
    }
    assert_eq!(grid.execute_serial(&sim), grid.execute_on(&sim, 4));
}

#[test]
fn repeated_parallel_executions_are_stable() {
    // Two parallel executions of the same grid (different scheduling)
    // must also agree with each other.
    let sim = dfly_bench::paper_network();
    let mut base = sim.config(0.2);
    base.warmup = 100;
    base.measure = 200;
    base.drain_cap = 3_000;
    base.seed = 11;

    let grid = RunGrid::load_sweep(
        RoutingChoice::UgalG,
        TrafficChoice::Uniform,
        &[0.1, 0.2, 0.3],
        &base,
    );
    assert_eq!(grid.execute_on(&sim, 3), grid.execute_on(&sim, 3));
}
