//! End-to-end integration: the full public API — parameters, topology,
//! simulation harness, every routing choice, every traffic pattern —
//! exercised together the way a downstream user would.

use dragonfly::{DragonflyParams, DragonflySim, RoutingChoice, TrafficChoice};

fn small_sim() -> DragonflySim {
    // 72-node dragonfly: fast enough to sweep everything.
    DragonflySim::new(DragonflyParams::new(2, 4, 2).unwrap())
}

fn fast_cfg(sim: &DragonflySim, load: f64) -> dfly_netsim::SimConfig {
    let mut cfg = sim.config(load);
    cfg.warmup = 400;
    cfg.measure = 1_200;
    cfg.drain_cap = 20_000;
    cfg
}

#[test]
fn every_routing_choice_delivers_benign_traffic() {
    let sim = small_sim();
    for choice in RoutingChoice::ALL {
        let stats = sim.run(choice, TrafficChoice::Uniform, fast_cfg(&sim, 0.15));
        assert!(stats.drained, "{} did not drain", choice.label());
        assert!(
            (stats.accepted_rate - 0.15).abs() < 0.03,
            "{}: accepted {}",
            choice.label(),
            stats.accepted_rate
        );
        let avg = stats.avg_latency().expect("latency recorded");
        assert!(avg < 20.0, "{}: latency {avg}", choice.label());
    }
}

#[test]
fn every_traffic_pattern_runs_under_adaptive_routing() {
    let sim = small_sim();
    for traffic in [
        TrafficChoice::Uniform,
        TrafficChoice::WorstCase,
        TrafficChoice::GroupTornado,
        TrafficChoice::RandomPermutation { seed: 5 },
    ] {
        let stats = sim.run(RoutingChoice::UgalLVcH, traffic, fast_cfg(&sim, 0.1));
        assert!(stats.drained, "{} did not drain", traffic.label());
        assert!(stats.latency.count > 0, "{}: no packets", traffic.label());
    }
}

#[test]
fn harness_is_deterministic() {
    let sim = small_sim();
    let a = sim.run(
        RoutingChoice::UgalL,
        TrafficChoice::WorstCase,
        fast_cfg(&sim, 0.2),
    );
    let b = sim.run(
        RoutingChoice::UgalL,
        TrafficChoice::WorstCase,
        fast_cfg(&sim, 0.2),
    );
    assert_eq!(a, b);
}

#[test]
fn sweep_api_produces_ascending_latency() {
    let sim = small_sim();
    let base = fast_cfg(&sim, 0.0);
    let points = sim.sweep(
        RoutingChoice::UgalG,
        TrafficChoice::Uniform,
        &[0.1, 0.4, 0.7],
        &base,
    );
    assert_eq!(points.len(), 3);
    let lats: Vec<f64> = points.iter().map(|p| p.latency().unwrap()).collect();
    assert!(
        lats[0] <= lats[1] + 0.5 && lats[1] <= lats[2] + 0.5,
        "{lats:?}"
    );
}

#[test]
fn multi_flit_packets_work_on_the_dragonfly() {
    let sim = small_sim();
    let mut cfg = fast_cfg(&sim, 0.04);
    cfg.packet_len = 4;
    let stats = sim.run(RoutingChoice::UgalLVcH, TrafficChoice::Uniform, cfg);
    assert!(stats.drained);
    // 4-flit packets serialise over the injection channel.
    assert!(stats.latency.min >= 5, "min {}", stats.latency.min);
}

#[test]
fn bursty_injection_is_supported() {
    let sim = small_sim();
    let mut cfg = fast_cfg(&sim, 0.0);
    cfg.injection = dfly_netsim::InjectionKind::OnOff {
        rate: 0.1,
        burst_len: 16.0,
    };
    let stats = sim.run(RoutingChoice::UgalLVcH, TrafficChoice::Uniform, cfg);
    assert!(stats.drained);
    assert!(
        (stats.injected_rate - 0.1).abs() < 0.03,
        "{}",
        stats.injected_rate
    );
}

#[test]
fn larger_network_with_custom_latencies() {
    use dragonfly::{ChannelLatencies, Dragonfly};
    // Global channels 5 cycles (long optics), locals 2: zero-load
    // latency grows accordingly but everything still works.
    let params = DragonflyParams::new(2, 4, 2).unwrap();
    let df = Dragonfly::with_latencies(
        params,
        ChannelLatencies {
            terminal: 1,
            local: 2,
            global: 5,
        },
    );
    let sim = DragonflySim::with_dragonfly(df);
    let stats = sim.run(
        RoutingChoice::Min,
        TrafficChoice::Uniform,
        fast_cfg(&sim, 0.1),
    );
    assert!(stats.drained);
    // Worst minimal path: 1 + 2 + 5 + 2 + 1 = 11 cycles zero-load.
    assert!(stats.latency.max >= 11);
    let avg = stats.avg_latency().unwrap();
    assert!(avg > 6.0, "avg {avg} should reflect longer channels");
}

#[test]
fn non_maximal_group_count_simulates() {
    let sim = DragonflySim::new(DragonflyParams::with_groups(2, 4, 2, 5).unwrap());
    let stats = sim.run(
        RoutingChoice::UgalLVcH,
        TrafficChoice::WorstCase,
        fast_cfg(&sim, 0.15),
    );
    assert!(stats.drained);
}

#[test]
fn multidimensional_group_simulates_deadlock_free() {
    use dragonfly::{ChannelLatencies, Dragonfly, GroupTopology};
    // Figure 6(b)-style cube groups: 8 routers as 2x2x2, p = h = 2.
    let params = DragonflyParams::new(2, 8, 2).unwrap();
    let df = Dragonfly::with_group_topology(
        params,
        GroupTopology::FlattenedButterfly(vec![2, 2, 2]),
        ChannelLatencies::default(),
    )
    .unwrap();
    assert_eq!(df.router_radix(), 7); // the Figure-5 router, reused
    let sim = DragonflySim::with_dragonfly(df);
    for choice in [
        RoutingChoice::Min,
        RoutingChoice::Valiant,
        RoutingChoice::UgalLVcH,
        RoutingChoice::UgalLCr,
    ] {
        let stats = sim.run(choice, TrafficChoice::Uniform, fast_cfg(&sim, 0.1));
        assert!(stats.drained, "{} on cube groups", choice.label());
    }
    // Adversarial traffic too (multi-hop local segments stress VCs).
    let stats = sim.run(
        RoutingChoice::UgalG,
        TrafficChoice::WorstCase,
        fast_cfg(&sim, 0.1),
    );
    assert!(stats.drained);
}

#[test]
fn tapered_dragonfly_trades_capacity_for_cables() {
    use dragonfly::Dragonfly;
    // 5 groups, a*h = 8 ports: full wiring gives 2 channels per pair,
    // a 0.5 taper gives 1.
    let params = DragonflyParams::with_groups(2, 4, 2, 5).unwrap();
    let full = DragonflySim::new(params);
    let tapered = DragonflySim::with_dragonfly(Dragonfly::with_taper(params, 0.5).unwrap());
    let cap = |sim: &DragonflySim| {
        let mut cfg = sim.config(1.0);
        cfg.warmup = 600;
        cfg.measure = 1_200;
        cfg.drain_cap = 0;
        sim.run(RoutingChoice::Min, TrafficChoice::Uniform, cfg)
            .accepted_rate
    };
    let (full_cap, tapered_cap) = (cap(&full), cap(&tapered));
    assert!(
        tapered_cap < full_cap * 0.75,
        "taper should cut global capacity: {full_cap} -> {tapered_cap}"
    );
    assert!(tapered_cap > full_cap * 0.3, "but not collapse it");
}
