//! The paper's headline quantitative claims, asserted as tests on the
//! paper's own 1K-node evaluation network (p = h = 4, a = 8). These are
//! the same measurements the figure harness prints, with tolerances
//! wide enough for the shortened test windows.

use dragonfly::{DragonflyParams, DragonflySim, RoutingChoice, TrafficChoice};

fn paper_sim() -> DragonflySim {
    DragonflySim::new(DragonflyParams::new(4, 8, 4).unwrap())
}

fn capacity(sim: &DragonflySim, choice: RoutingChoice, traffic: TrafficChoice) -> f64 {
    let mut cfg = sim.config(1.0);
    cfg.warmup = 1_200;
    cfg.measure = 1_200;
    cfg.drain_cap = 0;
    sim.run(choice, traffic, cfg).accepted_rate
}

fn latency_at(
    sim: &DragonflySim,
    choice: RoutingChoice,
    traffic: TrafficChoice,
    load: f64,
    buffers: usize,
) -> Option<(f64, f64)> {
    let mut cfg = sim.config(load).with_buffer_depth(buffers);
    cfg.warmup = 1_200;
    cfg.measure = 1_500;
    cfg.drain_cap = 25_000;
    let stats = sim.run(choice, traffic, cfg);
    if !stats.drained {
        return None;
    }
    Some((
        stats.avg_latency().unwrap(),
        stats.minimal_latency.mean().unwrap_or(0.0),
    ))
}

/// §4.2 / Figure 8(b): MIN's worst-case throughput is 1/(a·h).
#[test]
fn min_worst_case_capacity_is_one_over_ah() {
    let sim = paper_sim();
    let cap = capacity(&sim, RoutingChoice::Min, TrafficChoice::WorstCase);
    let ideal = 1.0 / 32.0;
    assert!(
        (cap - ideal).abs() < 0.01,
        "MIN WC capacity {cap} vs ideal {ideal}"
    );
}

/// §4.2 / Figure 8(a): VAL halves uniform-random capacity; MIN and
/// UGAL-G approach full capacity.
#[test]
fn valiant_halves_uniform_capacity() {
    let sim = paper_sim();
    let val = capacity(&sim, RoutingChoice::Valiant, TrafficChoice::Uniform);
    let min = capacity(&sim, RoutingChoice::Min, TrafficChoice::Uniform);
    assert!((0.40..0.55).contains(&val), "VAL UR capacity {val}");
    assert!(min > 0.85, "MIN UR capacity {min}");
    let ugal_g = capacity(&sim, RoutingChoice::UgalG, TrafficChoice::Uniform);
    assert!(
        ugal_g > min - 0.05,
        "UGAL-G UR capacity {ugal_g} vs MIN {min}"
    );
}

/// Figure 8(b): VAL and UGAL-G handle the worst case at ~50%; UGAL-L
/// falls short.
#[test]
fn adaptive_routing_recovers_worst_case_throughput() {
    let sim = paper_sim();
    let val = capacity(&sim, RoutingChoice::Valiant, TrafficChoice::WorstCase);
    let ugal_g = capacity(&sim, RoutingChoice::UgalG, TrafficChoice::WorstCase);
    let ugal_l = capacity(&sim, RoutingChoice::UgalL, TrafficChoice::WorstCase);
    assert!((0.35..0.55).contains(&val), "VAL WC {val}");
    assert!(ugal_g >= val - 0.02, "UGAL-G {ugal_g} vs VAL {val}");
    assert!(
        ugal_l < ugal_g,
        "UGAL-L {ugal_l} should trail UGAL-G {ugal_g}"
    );
    assert!(ugal_l > 0.3, "UGAL-L still delivers substantial throughput");
}

/// §4.3.2 / Figure 11: under UGAL-L, minimally routed packets suffer
/// latency far above non-minimal ones, and the penalty grows with
/// buffer depth.
#[test]
fn ugal_l_minimal_packets_pay_buffer_proportional_latency() {
    let sim = paper_sim();
    let (_, min16) = latency_at(
        &sim,
        RoutingChoice::UgalL,
        TrafficChoice::WorstCase,
        0.2,
        16,
    )
    .expect("0.2 is below UGAL-L saturation");
    let (_, min64) = latency_at(
        &sim,
        RoutingChoice::UgalL,
        TrafficChoice::WorstCase,
        0.2,
        64,
    )
    .expect("0.2 is below UGAL-L saturation");
    assert!(min16 > 50.0, "16-buffer minimal latency {min16}");
    assert!(
        min64 > 2.0 * min16,
        "minimal latency should grow with buffers: {min16} -> {min64}"
    );
}

/// §4.3.2 / Figure 16: the credit round-trip variant removes most of
/// the intermediate-load latency penalty and is nearly buffer-size
/// independent.
#[test]
fn credit_round_trip_fixes_intermediate_latency() {
    let sim = paper_sim();
    let (vch, _) = latency_at(
        &sim,
        RoutingChoice::UgalLVcH,
        TrafficChoice::WorstCase,
        0.2,
        16,
    )
    .expect("below saturation");
    let (cr16, _) = latency_at(
        &sim,
        RoutingChoice::UgalLCr,
        TrafficChoice::WorstCase,
        0.2,
        16,
    )
    .expect("below saturation");
    let (g, _) = latency_at(
        &sim,
        RoutingChoice::UgalG,
        TrafficChoice::WorstCase,
        0.2,
        16,
    )
    .expect("below saturation");
    // Paper: >= 35% reduction vs the conventional variants at 16
    // buffers, approaching UGAL-G.
    assert!(
        cr16 < 0.65 * vch,
        "CR latency {cr16} vs VCH {vch} (needs >=35% cut)"
    );
    assert!(cr16 < 2.5 * g, "CR {cr16} should approach UGAL-G {g}");

    // Buffer-size independence (paper: 20x reduction at 256 buffers,
    // where the conventional variant's latency scales with depth).
    let (cr256, _) = latency_at(
        &sim,
        RoutingChoice::UgalLCr,
        TrafficChoice::WorstCase,
        0.2,
        256,
    )
    .expect("below saturation");
    assert!(
        cr256 < 2.0 * cr16,
        "CR should be ~buffer independent: {cr16} vs {cr256}"
    );
}

/// Figure 9: UGAL-L starves the non-minimal global channels that share
/// the minimal channel's router; UGAL-G balances them.
#[test]
fn ugal_l_starves_same_router_channels() {
    let sim = paper_sim();
    let df = sim.dragonfly();
    let params = *df.params();
    let (g, h) = (params.num_groups(), params.global_ports_per_router());
    let util = |choice: RoutingChoice| {
        let mut cfg = sim.config(0.2);
        cfg.warmup = 1_200;
        cfg.measure = 1_500;
        cfg.drain_cap = 0;
        let stats = sim.run(choice, TrafficChoice::WorstCase, cfg);
        let by_port: std::collections::HashMap<(usize, usize), f64> = stats
            .channel_loads
            .iter()
            .map(|c| ((c.router, c.port), c.utilization))
            .collect();
        // Mean utilisation of (same-router non-minimal) and (rest).
        let (mut same, mut rest, mut nsame, mut nrest) = (0.0, 0.0, 0, 0);
        for group in 0..g {
            let qmin = df.global_slot_at(group, (group + 1) % g, 0);
            let base = (qmin / h) * h;
            for q in 0..params.global_ports_per_group() {
                if q == qmin {
                    continue;
                }
                let u = by_port[&(df.slot_router(group, q), df.slot_port(q))];
                if (base..base + h).contains(&q) {
                    same += u;
                    nsame += 1;
                } else {
                    rest += u;
                    nrest += 1;
                }
            }
        }
        (same / nsame as f64, rest / nrest as f64)
    };
    let (same_l, rest_l) = util(RoutingChoice::UgalL);
    let (same_g, rest_g) = util(RoutingChoice::UgalG);
    // UGAL-L: the channels sharing the minimal router are under-used.
    assert!(
        same_l < 0.75 * rest_l,
        "UGAL-L same-router {same_l:.3} vs rest {rest_l:.3}"
    );
    // UGAL-G: balanced.
    assert!(
        same_g > 0.85 * rest_g,
        "UGAL-G same-router {same_g:.3} vs rest {rest_g:.3}"
    );
}

/// §5 / Figure 19: cost ordering and headline savings.
#[test]
fn cost_claims_hold() {
    let cfg = dfly_cost::CostConfig::default();
    let n = 16 * 1024;
    let df = cfg.dragonfly(n).per_node();
    let fb = cfg.flattened_butterfly(n).per_node();
    let clos = cfg.folded_clos(n).per_node();
    let torus = cfg.torus_3d(n).per_node();
    assert!(df < fb && fb < clos, "ordering df {df} fb {fb} clos {clos}");
    assert!(torus > 2.0 * df, "torus {torus} vs df {df}");
    // Paper: >50% vs folded Clos at >=16K.
    assert!(1.0 - df / clos > 0.5, "clos saving {}", 1.0 - df / clos);
}

/// §3.1 / Figure 4: radix-64 dragonflies pass 256K nodes.
#[test]
fn scaling_claims_hold() {
    assert!(dfly_cost::max_dragonfly_terminals(64).unwrap() > 256 * 1024);
    assert_eq!(dfly_cost::radix_for_single_global_hop(1056), 64); // 32*33 = 1056 exactly
}

/// §4.1: minimal routes cross at most 3 network channels
/// (local-global-local) and Valiant routes at most 5 — verified from the
/// measured hop statistics.
#[test]
fn hop_counts_match_route_structure() {
    let sim = paper_sim();
    let mut cfg = sim.config(0.1);
    cfg.warmup = 400;
    cfg.measure = 800;
    let min = sim.run(RoutingChoice::Min, TrafficChoice::Uniform, cfg.clone());
    assert!(min.drained);
    assert!(min.hops.max <= 3, "minimal max hops {}", min.hops.max);
    let avg = min.hops.mean().unwrap();
    assert!((2.0..3.0).contains(&avg), "minimal avg hops {avg}");

    let val = sim.run(RoutingChoice::Valiant, TrafficChoice::Uniform, cfg);
    assert!(val.drained);
    assert!(val.hops.max <= 5, "valiant max hops {}", val.hops.max);
    assert!(val.hops.mean().unwrap() > avg, "valiant paths are longer");
}

/// The analytical bounds module predicts the measured saturation
/// throughputs: MIN's worst case exactly, VAL's within the buffering
/// slack the paper's footnote 7 describes.
#[test]
fn analytical_bounds_match_measurement() {
    use dragonfly::analysis::{group_offset_bounds, uniform_bounds};
    let sim = paper_sim();
    let df = sim.dragonfly();

    let wc = group_offset_bounds(df, 1);
    let min_cap = capacity(&sim, RoutingChoice::Min, TrafficChoice::WorstCase);
    assert!(
        (min_cap - wc.minimal).abs() < 0.005,
        "MIN WC: bound {} vs measured {min_cap}",
        wc.minimal
    );
    let val_cap = capacity(&sim, RoutingChoice::Valiant, TrafficChoice::WorstCase);
    assert!(val_cap <= wc.valiant + 0.01, "VAL above bound");
    assert!(
        val_cap > 0.75 * wc.valiant,
        "VAL far below bound: {val_cap}"
    );

    let ur = uniform_bounds(df);
    let min_ur = capacity(&sim, RoutingChoice::Min, TrafficChoice::Uniform);
    assert!(min_ur <= ur.minimal + 0.01);
    assert!(
        min_ur > 0.85 * ur.minimal,
        "MIN UR {min_ur} vs bound {}",
        ur.minimal
    );
}

/// Footnote 6: "larger packets with sufficient buffering to provide
/// virtual cut-through do not change the result trends". Four-flit
/// packets with 64-flit buffers preserve the WC ordering
/// UGAL-G < UGAL-L_CR << UGAL-L_VCH in latency.
#[test]
fn multi_flit_packets_preserve_trends() {
    let sim = paper_sim();
    let mut latencies = Vec::new();
    for choice in [
        RoutingChoice::UgalG,
        RoutingChoice::UgalLCr,
        RoutingChoice::UgalLVcH,
    ] {
        let mut cfg = sim.config(0.05); // 0.2 in flits
        cfg.packet_len = 4;
        cfg.buffer_depth = 64;
        cfg.warmup = 1_000;
        cfg.measure = 1_200;
        cfg.drain_cap = 25_000;
        let stats = sim.run(choice, TrafficChoice::WorstCase, cfg);
        assert!(stats.drained, "{} at 0.2 flit-load", choice.label());
        latencies.push(stats.avg_latency().unwrap());
    }
    let (g, cr, vch) = (latencies[0], latencies[1], latencies[2]);
    assert!(
        cr < vch,
        "CR {cr} should beat VCH {vch} with 4-flit packets"
    );
    assert!(cr < 2.5 * g, "CR {cr} should stay near UGAL-G {g}");
}
