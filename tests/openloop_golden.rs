//! Golden-baseline guard for the open-loop adapter path.
//!
//! The workload refactor rewired packet generation from
//! `InjectionProcess` oracles to `Workload::offer`, with the legacy
//! Bernoulli / Markov on/off processes wrapped as open-loop adapters.
//! These fingerprints were captured from the engine *before* that
//! refactor; the adapter path must keep every one of them bit-identical
//! so all historical BENCH numbers remain comparable.

use dfly_netsim::{InjectionKind, TelemetryConfig};
use dragonfly::{DragonflyParams, DragonflySim, RoutingChoice, TrafficChoice};

/// FNV-1a over the full debug rendering plus the exported JSON bytes —
/// any change to RunStats content, ordering or formatting shifts it.
/// Fields added after the capture are normalised out: `completion` while
/// unset (always `None` on fixed-window runs, so it still trips if a
/// closed-loop value ever leaks into an open-loop run) and the trailing
/// warmup-convergence diagnostics (`converged` and the drift pair),
/// which are derived from warmup-only counters and cannot alter the
/// simulated traffic. The hash keeps covering exactly what the
/// pre-refactor engine emitted.
fn fingerprint(stats: &dfly_netsim::RunStats) -> u64 {
    let debug = format!("{stats:?}").replace(", completion: None", "");
    // The convergence diagnostics are the last fields of RunStats, so
    // truncating at the first of them and re-closing the struct leaves
    // the pre-capture rendering intact.
    let debug = match debug.find(", converged: ") {
        Some(at) => format!("{} }}", &debug[..at]),
        None => debug,
    };
    let mut bytes = debug.into_bytes();
    bytes.extend_from_slice(stats.latency_log.to_json().as_bytes());
    if let Some(trace) = &stats.trace {
        bytes.extend_from_slice(trace.to_chrome_json().as_bytes());
    }
    if let Some(series) = &stats.series {
        bytes.extend_from_slice(series.to_json().as_bytes());
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn golden_run(choice: RoutingChoice, injection: InjectionKind, seed: u64) -> u64 {
    let sim = DragonflySim::new(DragonflyParams::new(2, 4, 2).unwrap());
    let mut cfg = sim.config(injection.rate());
    cfg.injection = injection;
    cfg.warmup = 150;
    cfg.measure = 300;
    cfg.drain_cap = 5_000;
    cfg.seed = seed;
    cfg.telemetry = TelemetryConfig {
        sample_every: 16,
        trace_rate: 0.25,
        trace_seed: 9,
    };
    let stats = sim.run(choice, TrafficChoice::Uniform, cfg);
    assert!(stats.drained, "golden run did not drain");
    fingerprint(&stats)
}

#[test]
fn open_loop_adapter_matches_pre_refactor_baselines() {
    let cases: [(RoutingChoice, InjectionKind, u64, u64); 3] = [
        (
            RoutingChoice::Min,
            InjectionKind::Bernoulli { rate: 0.1 },
            42,
            0xe50a_a897_a165_f551,
        ),
        (
            RoutingChoice::UgalLVcH,
            InjectionKind::Bernoulli { rate: 0.2 },
            7,
            0x07d9_f0a8_b839_949b,
        ),
        (
            RoutingChoice::UgalL,
            InjectionKind::MarkovOnOff {
                rate: 0.15,
                burst_len: 8.0,
                duty: 0.5,
            },
            23,
            0x2a2c_ce80_e36d_5cd6,
        ),
    ];
    let mut drift = String::new();
    for (choice, injection, seed, want) in cases {
        let got = golden_run(choice, injection, seed);
        if got != want {
            drift.push_str(&format!(
                "open-loop fingerprint drifted: {choice:?} / {injection:?} / seed {seed} -> {got:#018x}\n"
            ));
        }
    }
    assert!(drift.is_empty(), "{drift}");
}
