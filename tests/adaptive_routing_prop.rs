//! Candidate-path properties of the unified adaptive-routing layer.
//!
//! Every topology now enumerates its UGAL candidates through the shared
//! [`dfly_netsim::CandidatePaths`] trait. These tests walk both
//! candidates of randomly sampled (source, destination) pairs on all
//! four topologies and assert the two deadlock-freedom witnesses:
//!
//! 1. the route ejects at the destination within the topology's
//!    diameter-derived hop bound (no routing loop), and
//! 2. the VC schedule along the path is non-decreasing in the
//!    topology's deadlock rank order (dragonfly `l0 < g0 < l1 < g1 <
//!    l2`; torus `(dimension, VC)` lexicographic; butterfly plain VC;
//!    Clos single-VC up/down),
//!
//! plus that the candidate's advertised first hop (port, VC) is exactly
//! the hop the route function takes — the queue an adaptive decision
//! inspects is the queue the packet uses.
//!
//! Cases are drawn from a seeded RNG (no external property-testing
//! dependency — the container builds offline), so every run exercises
//! the same deterministic case set.

use std::sync::Arc;

use dfly_netsim::{trace_path, CandidatePaths, ChannelClass, RouteInfo, TraceHop};
use dfly_topo::{FlattenedButterfly, FoldedClos, Torus};
use dfly_traffic::rng_for;
use rand::Rng;

use dragonfly::butterfly::{ButterflyNetwork, ButterflyRouting};
use dragonfly::clos_sim::{ClosNetwork, ClosRouting};
use dragonfly::torus_sim::{TorusNetwork, TorusRouting};
use dragonfly::{trace_route, Dragonfly, DragonflyParams, UgalVariant};

/// Asserts a rank sequence never decreases (the acyclic-resource
/// witness: a packet only ever moves to an equal- or higher-ranked VC).
fn assert_monotone(ranks: &[usize], ctx: &str) {
    for w in ranks.windows(2) {
        assert!(w[1] >= w[0], "{ctx}: VC rank regressed in {ranks:?}");
    }
}

/// Network-channel hops of a trace (the ejection hop carries no VC
/// constraint and is excluded from rank sequences).
fn network_hops(hops: &[TraceHop]) -> impl Iterator<Item = &TraceHop> {
    hops.iter().filter(|h| h.class != ChannelClass::Terminal)
}

#[test]
fn dragonfly_candidates_eject_and_rank_monotone() {
    for case in 0..10u64 {
        let mut rng = rng_for(0xADA0, case);
        let p = rng.gen_range(1usize..=3);
        let a = rng.gen_range(2usize..=5);
        let h = rng.gen_range(1usize..=3);
        let g = rng.gen_range(2usize..=a * h + 1);
        let params = DragonflyParams::with_groups(p, a, h, g).unwrap();
        let df = Dragonfly::new(params);
        let n = params.num_terminals();
        let bound = df.route_hop_bound();
        // Rank in the paper's deadlock order l0 < g0 < l1 < g1 < l2.
        let rank = |hop: &TraceHop| match hop.class {
            ChannelClass::Local => 2 * hop.vc,
            ChannelClass::Global => 2 * hop.vc + 1,
            ChannelClass::Terminal => unreachable!("filtered"),
        };
        for _ in 0..16 {
            let src = rng.gen_range(0..n);
            let dest = rng.gen_range(0..n);
            let salt: u32 = rng.gen();
            let rs = params.router_of_terminal(src);
            let m = df.minimal_candidate(rs, dest, salt);
            let hops = trace_route(&df, src, dest, RouteInfo::minimal().with_salt(salt))
                .expect("minimal candidate must eject");
            assert!(hops.len() <= bound, "minimal exceeded {bound} hops");
            assert_eq!(
                (hops[0].port, hops[0].vc),
                (m.port as usize, m.vc as usize),
                "minimal candidate first hop mismatch {src}->{dest}"
            );
            let ranks: Vec<usize> = network_hops(&hops).map(rank).collect();
            assert_monotone(&ranks, "dragonfly minimal");

            let (gs, gd) = (
                params.group_of_terminal(src),
                params.group_of_terminal(dest),
            );
            if g < 3 || gs == gd {
                continue;
            }
            let mut gi = rng.gen_range(0..g - 2);
            for skip in [gs.min(gd), gs.max(gd)] {
                if gi >= skip {
                    gi += 1;
                }
            }
            let nm = df.non_minimal_candidate(rs, dest, gi as u32, salt);
            let hops = trace_route(
                &df,
                src,
                dest,
                RouteInfo::non_minimal(gi as u32).with_salt(salt),
            )
            .expect("non-minimal candidate must eject");
            assert!(hops.len() <= bound, "non-minimal exceeded {bound} hops");
            assert_eq!(
                (hops[0].port, hops[0].vc),
                (nm.port as usize, nm.vc as usize),
                "non-minimal candidate first hop mismatch {src}->{dest} via {gi}"
            );
            let ranks: Vec<usize> = network_hops(&hops).map(rank).collect();
            assert_monotone(&ranks, "dragonfly non-minimal");
        }
    }
}

#[test]
fn butterfly_candidates_eject_and_vcs_monotone() {
    for case in 0..10u64 {
        let mut rng = rng_for(0xADA1, case);
        let d = rng.gen_range(1usize..=3);
        let dims: Vec<usize> = (0..d).map(|_| rng.gen_range(2usize..=4)).collect();
        let c = rng.gen_range(1usize..=2);
        let net = Arc::new(ButterflyNetwork::new(FlattenedButterfly::with_dims(
            &dims, c,
        )));
        let spec = net.build_spec();
        // The UGAL-L(CR) portability demonstration rides the same route
        // function, so walking it covers every mode's paths.
        let routing = ButterflyRouting::ugal_credit(net.clone());
        let n = spec.num_terminals();
        let nr = spec.num_routers();
        // Diameter: one hop per dimension, doubled through the Valiant
        // intermediate, plus ejection and margin.
        let bound = 2 * d + 2;
        for _ in 0..16 {
            let src = rng.gen_range(0..n);
            let dest = rng.gen_range(0..n);
            let salt: u32 = rng.gen();
            let (rs, rd) = (src / c, dest / c);
            let m = net.minimal_candidate(rs, dest, salt);
            let hops = trace_path(
                &spec,
                &routing,
                src,
                dest,
                RouteInfo::minimal().with_salt(salt),
                bound,
            )
            .expect("minimal candidate must eject");
            assert_eq!((hops[0].port, hops[0].vc), (m.port as usize, m.vc as usize));
            let ranks: Vec<usize> = network_hops(&hops).map(|h| h.vc).collect();
            assert_monotone(&ranks, "butterfly minimal");

            if nr < 3 || rs == rd {
                continue;
            }
            let mut ri = rng.gen_range(0..nr - 2);
            for skip in [rs.min(rd), rs.max(rd)] {
                if ri >= skip {
                    ri += 1;
                }
            }
            let nm = net.non_minimal_candidate(rs, dest, ri as u32, salt);
            let hops = trace_path(
                &spec,
                &routing,
                src,
                dest,
                RouteInfo::non_minimal(ri as u32).with_salt(salt),
                bound,
            )
            .expect("non-minimal candidate must eject");
            assert_eq!(
                (hops[0].port, hops[0].vc),
                (nm.port as usize, nm.vc as usize)
            );
            let ranks: Vec<usize> = network_hops(&hops).map(|h| h.vc).collect();
            assert_monotone(&ranks, "butterfly non-minimal");
        }
    }
}

#[test]
fn torus_candidates_eject_and_dim_vc_rank_monotone() {
    for case in 0..10u64 {
        let mut rng = rng_for(0xADA2, case);
        let d = rng.gen_range(1usize..=3);
        let k = rng.gen_range(3usize..=6);
        let c = rng.gen_range(1usize..=2);
        let net = Arc::new(TorusNetwork::new(Torus::new(d, k, c)));
        let spec = net.build_spec();
        let routing = TorusRouting::adaptive(net.clone(), UgalVariant::Local);
        let n = spec.num_terminals();
        // Worst path: the long way (k-1 hops) around the detour ring
        // plus the short way (k/2) in every other dimension, ejection
        // and margin.
        let bound = (k - 1) + (d - 1) * (k / 2) + 2;
        // Dimension-order rank: VCs may restart in each new ring, so
        // the deadlock rank is (dimension, VC) lexicographic.
        let rank = |hop: &TraceHop| {
            let dim = (hop.port - c) / 2; // k >= 3: a +/- port pair per dim
            dim * 2 + hop.vc
        };
        for _ in 0..16 {
            let src = rng.gen_range(0..n);
            let dest = rng.gen_range(0..n);
            let salt: u32 = rng.gen();
            let (rs, rd) = (src / c, dest / c);
            let m = net.minimal_candidate(rs, dest, salt);
            let hops = trace_path(
                &spec,
                &routing,
                src,
                dest,
                RouteInfo::minimal().with_salt(salt),
                bound,
            )
            .expect("minimal candidate must eject");
            assert_eq!((hops[0].port, hops[0].vc), (m.port as usize, m.vc as usize));
            let ranks: Vec<usize> = network_hops(&hops).map(rank).collect();
            assert_monotone(&ranks, "torus minimal");

            if rs == rd {
                continue;
            }
            // The detour tag the adaptive mode would pick: the long way
            // around the first differing dimension's ring.
            let ca = net.topology().coordinates(rs);
            let cb = net.topology().coordinates(rd);
            let dim = (0..d).find(|&i| ca[i] != cb[i]).unwrap();
            let forward = (cb[dim] + k - ca[dim]) % k;
            let plus_long = forward > k - forward;
            let tag = (dim * 2 + usize::from(plus_long)) as u32;
            let nm = net.non_minimal_candidate(rs, dest, tag, salt);
            assert!(nm.hops >= m.hops, "detour shorter than minimal");
            let hops = trace_path(
                &spec,
                &routing,
                src,
                dest,
                RouteInfo::non_minimal(tag).with_salt(salt),
                bound,
            )
            .expect("non-minimal candidate must eject");
            assert_eq!(
                (hops[0].port, hops[0].vc),
                (nm.port as usize, nm.vc as usize)
            );
            let ranks: Vec<usize> = network_hops(&hops).map(rank).collect();
            assert_monotone(&ranks, "torus non-minimal");
        }
    }
}

#[test]
fn clos_candidates_eject_with_equal_length_up_down_paths() {
    for case in 0..10u64 {
        let mut rng = rng_for(0xADA3, case);
        let levels = rng.gen_range(2usize..=3);
        // Radix divisible by 4: the folded construction pairs virtual
        // top switches, so k/2 must be even (enforced by ClosNetwork).
        let radix = 4 * rng.gen_range(1usize..=2);
        let half = radix / 2;
        let net = Arc::new(ClosNetwork::new(FoldedClos::new(levels, radix)));
        let spec = net.build_spec();
        let routing = ClosRouting::adaptive(net.clone(), UgalVariant::Local);
        let n = spec.num_terminals();
        let bound = 2 * (levels - 1) + 2;
        for _ in 0..16 {
            let src = rng.gen_range(0..n);
            let dest = rng.gen_range(0..n);
            let salt: u32 = rng.gen();
            let (rs, rd) = (src / half, dest / half);
            let m = net.minimal_candidate(rs, dest, salt);
            let hops = trace_path(
                &spec,
                &routing,
                src,
                dest,
                RouteInfo::minimal().with_salt(salt),
                bound,
            )
            .expect("minimal candidate must eject");
            assert_eq!((hops[0].port, hops[0].vc), (m.port as usize, m.vc as usize));
            // Single-VC up/down routing: the whole schedule is VC 0.
            assert!(network_hops(&hops).all(|h| h.vc == 0), "clos left VC 0");

            if rs == rd {
                continue;
            }
            // Every alternative uplink gives an equal-length path — the
            // property that makes the Clos "non-minimal" candidate safe.
            let u = rng.gen_range(0..half) as u32;
            let nm = net.non_minimal_candidate(rs, dest, u, salt);
            assert_eq!(nm.hops, m.hops, "clos alternative uplink not equal-length");
            let alt = trace_path(
                &spec,
                &routing,
                src,
                dest,
                RouteInfo::non_minimal(u).with_salt(salt),
                bound,
            )
            .expect("alternative uplink must eject");
            assert_eq!((alt[0].port, alt[0].vc), (nm.port as usize, nm.vc as usize));
            assert_eq!(alt.len(), hops.len(), "up/down path lengths diverged");
            assert!(network_hops(&alt).all(|h| h.vc == 0), "clos left VC 0");
        }
    }
}
