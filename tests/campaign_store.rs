//! Integration tests for the campaign result store: cached results
//! are byte-identical to fresh simulation at every shard count,
//! journal recovery survives torn tails, and a stale code revision or
//! a forged hash collision forces re-simulation — never a wrong hit.

use std::path::PathBuf;

use dfly_netsim::TelemetryConfig;
use dragonfly::{
    CampaignKey, CampaignStore, DragonflyParams, DragonflySim, FaultSweep, JobSpec, RoutingChoice,
    RunGrid, TrafficChoice, WorkloadSweep,
};

/// A fresh per-test store directory under the system temp dir.
fn temp_store_dir(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dfly-campaign-{}-{test}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn small_sim() -> DragonflySim {
    DragonflySim::new(DragonflyParams::new(2, 4, 2).expect("valid params"))
}

fn small_grid(sim: &DragonflySim, shards: usize) -> RunGrid {
    let mut cfg = sim.config(0.1);
    cfg.seed = 1;
    cfg.warmup = 100;
    cfg.measure = 400;
    cfg.drain_cap = 20_000;
    cfg.shards = shards;
    RunGrid::cross(
        &[RoutingChoice::Min, RoutingChoice::UgalLVcH],
        &[TrafficChoice::Uniform],
        &[0.1, 0.3],
        &cfg,
    )
}

#[test]
fn cached_matches_fresh_at_every_shard_count() {
    let dir = temp_store_dir("shards");
    let sim = small_sim();
    for shards in [1usize, 2, 4] {
        let grid = small_grid(&sim, shards);
        let fresh = grid.execute_serial(&sim);
        let store = CampaignStore::open(&dir).expect("store opens");

        let (missed, report) = grid.execute_cached(&sim, &store).expect("miss pass runs");
        assert_eq!(
            report.misses,
            grid.len(),
            "shards={shards}: first pass misses all"
        );
        assert_eq!(report.hits, 0);
        assert_eq!(missed, fresh, "shards={shards}: miss pass diverged");

        let (hit, report) = grid.execute_cached(&sim, &store).expect("hit pass runs");
        assert_eq!(
            report.hits,
            grid.len(),
            "shards={shards}: second pass hits all"
        );
        assert_eq!(report.misses, 0);
        assert_eq!(hit, fresh, "shards={shards}: hit pass diverged");
        // Struct equality implies it, but the exported debug form is
        // what downstream artifacts print — compare the bytes too.
        assert_eq!(format!("{hit:?}"), format!("{fresh:?}"));
    }
    // Different shard counts are different configs, hence distinct keys.
    let store = CampaignStore::open(&dir).expect("store reopens");
    assert_eq!(store.len(), 3 * small_grid(&sim, 1).len());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_journal_tail_recovers_and_refills() {
    let dir = temp_store_dir("torn");
    let sim = small_sim();
    let grid = small_grid(&sim, 1);
    let fresh = grid.execute_serial(&sim);
    let journal = dir.join("journal.jsonl");

    {
        let store = CampaignStore::open(&dir).expect("store opens");
        let (_, report) = grid.execute_cached(&sim, &store).expect("populate");
        assert_eq!(report.misses, grid.len());
    }

    // Crash shape 1: a partial line without its newline. Recovery must
    // truncate it and keep every complete entry.
    let mut bytes = std::fs::read(&journal).expect("journal exists");
    let complete_len = bytes.len();
    bytes.extend_from_slice(b"{\"kind\":\"run\",\"key\":\"00dead");
    std::fs::write(&journal, &bytes).expect("append torn tail");
    let store = CampaignStore::open(&dir).expect("store recovers");
    assert_eq!(store.len(), grid.len(), "torn tail lost complete entries");
    let (points, report) = grid.execute_cached(&sim, &store).expect("hit pass");
    assert_eq!(report.hits, grid.len());
    assert_eq!(points, fresh);
    assert_eq!(
        std::fs::read(&journal).expect("journal readable").len(),
        complete_len,
        "recovery did not truncate the torn tail"
    );
    drop(store);

    // Crash shape 2: the tail entry itself is cut mid-body. The cells
    // it held must re-simulate; everything else still hits.
    let bytes = std::fs::read(&journal).expect("journal exists");
    let cut = bytes.len() - 7;
    std::fs::write(&journal, &bytes[..cut]).expect("cut journal mid-entry");
    let store = CampaignStore::open(&dir).expect("store recovers");
    assert_eq!(store.len(), grid.len() - 1, "cut entry survived recovery");
    let (points, report) = grid.execute_cached(&sim, &store).expect("refill pass");
    assert_eq!(report.hits, grid.len() - 1);
    assert_eq!(report.misses, 1);
    assert_eq!(points, fresh, "refilled grid diverged from fresh");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stale_code_revision_forces_resimulation() {
    let dir = temp_store_dir("revision");
    let sim = small_sim();
    let grid = small_grid(&sim, 1);
    let fresh = grid.execute_serial(&sim);

    let store = CampaignStore::open_with_revision(&dir, "rev-a").expect("rev-a opens");
    let (_, report) = grid.execute_cached(&sim, &store).expect("populate rev-a");
    assert_eq!(report.misses, grid.len());
    drop(store);

    // A different revision must never serve rev-a's results.
    let store = CampaignStore::open_with_revision(&dir, "rev-b").expect("rev-b opens");
    let (points, report) = grid.execute_cached(&sim, &store).expect("rev-b pass");
    assert_eq!(report.hits, 0, "stale revision served cached results");
    assert_eq!(report.misses, grid.len());
    assert_eq!(points, fresh);
    drop(store);

    // Back on rev-a the original entries still hit, untouched by rev-b.
    let store = CampaignStore::open_with_revision(&dir, "rev-a").expect("rev-a reopens");
    assert_eq!(store.len(), 2 * grid.len());
    let (points, report) = grid.execute_cached(&sim, &store).expect("rev-a hit pass");
    assert_eq!(report.hits, grid.len());
    assert_eq!(points, fresh);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn forged_hash_collision_misses_instead_of_lying() {
    let dir = temp_store_dir("collision");
    let sim = small_sim();
    let grid = small_grid(&sim, 1);
    let store = CampaignStore::open(&dir).expect("store opens");
    let (_, report) = grid.execute_cached(&sim, &store).expect("populate");
    assert_eq!(report.misses, grid.len());

    let real = store.run_key(&sim, &grid.plans()[0]);
    assert!(store.lookup_run(&real).is_some(), "real key must hit");
    // Same 64-bit hash, different canonical string: a collision must
    // read as a miss (and re-simulate), never return the other result.
    let forged = CampaignKey {
        hash: real.hash,
        canon: format!("{} forged", real.canon),
    };
    assert!(
        store.lookup_run(&forged).is_none(),
        "hash collision served the wrong result"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fault_sweep_round_trips_through_the_store() {
    let dir = temp_store_dir("fault");
    let sim = small_sim();
    let mut cfg = sim.config(1.0);
    cfg.seed = 1;
    cfg.warmup = 100;
    cfg.measure = 400;
    // Channel sampling on: the cached point must round-trip the full
    // TimeSeries, not just the scalar summary.
    cfg.telemetry = TelemetryConfig {
        sample_every: 32,
        trace_rate: 0.0,
        trace_seed: 0,
    };
    let sweep = FaultSweep::new(
        DragonflyParams::new(2, 4, 2).expect("valid params"),
        RoutingChoice::UgalLVcH,
        TrafficChoice::Uniform,
        &cfg,
        &[0.0, 0.125],
        7,
    );
    let fresh = sweep.execute_serial().expect("fault plans apply");
    let store = CampaignStore::open(&dir).expect("store opens");

    let (missed, report) = sweep.execute_cached(&store).expect("miss pass");
    assert_eq!(report.misses, 2);
    assert_eq!(missed, fresh);
    let (hit, report) = sweep.execute_cached(&store).expect("hit pass");
    assert_eq!(report.hits, 2);
    assert_eq!(report.misses, 0);
    assert_eq!(hit, fresh);
    assert!(
        hit[0].stats.series.is_some(),
        "cached point dropped the sampled time series"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn workload_sweep_round_trips_through_the_store() {
    let dir = temp_store_dir("workload");
    let mut cfg = dfly_netsim::SimConfig::paper_default(0.0);
    cfg.warmup = 0;
    cfg.measure = 20_000;
    cfg.drain_cap = 20_000;
    let sweep = WorkloadSweep::new(
        DragonflyParams::new(2, 4, 2).expect("valid params"),
        RoutingChoice::Min,
        vec![JobSpec::all_to_all("alpha", 8)],
        &cfg,
        &[0.0],
    );
    let fresh = sweep.execute_serial().expect("workload places");
    let store = CampaignStore::open(&dir).expect("store opens");

    let (missed, report) = sweep.execute_cached(&store).expect("miss pass");
    assert_eq!(report.misses, fresh.len());
    assert_eq!(missed, fresh);
    let (hit, report) = sweep.execute_cached(&store).expect("hit pass");
    assert_eq!(report.hits, fresh.len());
    assert_eq!(report.misses, 0);
    assert_eq!(hit, fresh);
    // The per-job books (delivered counts, completion, latency
    // histograms) must survive the round trip bit for bit.
    for (h, f) in hit.iter().zip(&fresh) {
        assert_eq!(h.books, f.books);
    }
    let _ = std::fs::remove_dir_all(&dir);
}
