//! Cable technology and cost-versus-length models (§2 of the paper).

/// Characteristics of one interconnect cable technology (Table 1).
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CableTechnology {
    /// Marketing / reference name.
    pub name: &'static str,
    /// Maximum reach in metres.
    pub max_length_m: f64,
    /// Data rate in Gb/s (4x cable).
    pub data_rate_gbps: f64,
    /// Active power in watts.
    pub power_w: f64,
    /// Energy per bit in picojoules.
    pub energy_pj_per_bit: f64,
}

/// Table 1 of the paper: the three cable technologies compared.
pub const CABLE_TECHNOLOGIES: [CableTechnology; 3] = [
    CableTechnology {
        name: "Intel Connects Cable (optical)",
        max_length_m: 100.0,
        data_rate_gbps: 20.0,
        power_w: 1.2,
        energy_pj_per_bit: 60.0,
    },
    CableTechnology {
        name: "Luxtera Blazar (optical)",
        max_length_m: 300.0,
        data_rate_gbps: 42.0,
        power_w: 2.2,
        energy_pj_per_bit: 55.0,
    },
    CableTechnology {
        name: "conventional electrical",
        max_length_m: 10.0,
        data_rate_gbps: 10.0,
        power_w: 0.02,
        energy_pj_per_bit: 2.0,
    },
];

/// The cost-versus-length model of Figure 2, in dollars per Gb/s of
/// cable bandwidth.
///
/// Electrical cables are cheap but their cost grows quickly with length
/// (and they stop working past ~10 m); active optical cables carry a
/// high fixed cost (the E/O and O/E transceivers in the connectors) but
/// a small per-metre cost. Channels inside a cabinet run over circuit
/// boards and backplanes at a flat (low) cost.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CableCostModel {
    /// Flat $/Gb/s for intra-cabinet (board / backplane) channels.
    pub board: f64,
    /// Electrical cable fixed cost, $/Gb/s (Figure 2: 2.16).
    pub electrical_base: f64,
    /// Electrical cable cost slope, $/Gb/s/m (Figure 2: 1.40).
    pub electrical_per_m: f64,
    /// Longest usable electrical cable in metres (the paper uses 8 m as
    /// the technology switch point in its Figure 19 methodology).
    pub electrical_max_m: f64,
    /// Optical cable fixed cost, $/Gb/s (Figure 2: 9.7103).
    pub optical_base: f64,
    /// Optical cable cost slope, $/Gb/s/m (Figure 2: 0.364).
    pub optical_per_m: f64,
}

impl Default for CableCostModel {
    fn default() -> Self {
        CableCostModel {
            board: 0.40,
            electrical_base: 2.16,
            electrical_per_m: 1.40,
            electrical_max_m: 8.0,
            optical_base: 9.7103,
            optical_per_m: 0.364,
        }
    }
}

impl CableCostModel {
    /// Cost of an electrical cable of `length_m`, $/Gb/s.
    pub fn electrical(&self, length_m: f64) -> f64 {
        self.electrical_base + self.electrical_per_m * length_m
    }

    /// Cost of an active optical cable of `length_m`, $/Gb/s.
    pub fn optical(&self, length_m: f64) -> f64 {
        self.optical_base + self.optical_per_m * length_m
    }

    /// Cost of a cable of `length_m` using the cheaper viable
    /// technology: electrical up to `electrical_max_m`, optical beyond —
    /// the selection rule of the paper's Figure 19 (`length_m == 0`
    /// denotes an intra-cabinet board/backplane channel).
    pub fn cable(&self, length_m: f64) -> f64 {
        if length_m <= 0.0 {
            self.board
        } else if length_m <= self.electrical_max_m {
            self.electrical(length_m)
        } else {
            self.optical(length_m)
        }
    }

    /// The length at which optical becomes cheaper than electrical
    /// (about 10 m for the paper's constants).
    pub fn crossover_m(&self) -> f64 {
        (self.optical_base - self.electrical_base) / (self.electrical_per_m - self.optical_per_m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fit_lines() {
        let m = CableCostModel::default();
        assert!((m.electrical(10.0) - 16.16).abs() < 1e-9);
        assert!((m.optical(10.0) - 13.3503).abs() < 1e-9);
        assert!((m.optical(100.0) - 46.1103).abs() < 1e-9);
    }

    #[test]
    fn crossover_near_ten_metres() {
        let m = CableCostModel::default();
        let x = m.crossover_m();
        assert!((5.0..12.0).contains(&x), "crossover {x}");
        // At the crossover point the two models agree.
        assert!((m.electrical(x) - m.optical(x)).abs() < 1e-9);
    }

    #[test]
    fn cable_picks_technology_by_length() {
        let m = CableCostModel::default();
        assert_eq!(m.cable(0.0), m.board);
        assert_eq!(m.cable(5.0), m.electrical(5.0));
        assert_eq!(m.cable(8.0), m.electrical(8.0));
        assert_eq!(m.cable(8.1), m.optical(8.1));
        assert_eq!(m.cable(50.0), m.optical(50.0));
    }

    #[test]
    fn optical_monotone_and_cheaper_far_out() {
        let m = CableCostModel::default();
        assert!(m.optical(40.0) < m.electrical(40.0));
        assert!(m.optical(20.0) > m.optical(10.0));
    }

    #[test]
    fn table1_sanity() {
        assert_eq!(CABLE_TECHNOLOGIES.len(), 3);
        let electrical = &CABLE_TECHNOLOGIES[2];
        assert!(electrical.max_length_m < CABLE_TECHNOLOGIES[0].max_length_m);
        assert!(electrical.energy_pj_per_bit < CABLE_TECHNOLOGIES[0].energy_pj_per_bit);
    }
}
