//! Structural topology comparisons: Table 2 and the Figure 18 64K-node
//! case study.

use dfly_topo::{FlattenedButterfly, Topology};
use dragonfly::{Dragonfly, DragonflyParams};

use crate::packaging::Floorplan;

/// A hop-count expression `a·h_l + b·h_g` (local and global hops).
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HopExpr {
    /// Local-hop coefficient.
    pub local: u32,
    /// Global-hop coefficient.
    pub global: u32,
}

impl HopExpr {
    /// Evaluates with concrete per-hop latencies.
    pub fn eval(&self, h_local: f64, h_global: f64) -> f64 {
        self.local as f64 * h_local + self.global as f64 * h_global
    }
}

/// One row of Table 2.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Topology name.
    pub topology: &'static str,
    /// Diameter under minimal routing.
    pub minimal_diameter: HopExpr,
    /// Diameter under non-minimal (Valiant) routing.
    pub non_minimal_diameter: HopExpr,
    /// Average cable length as a fraction of the floor dimension `E`.
    pub avg_cable_length_e: f64,
    /// Maximum cable length as a multiple of `E`.
    pub max_cable_length_e: f64,
}

/// Table 2 of the paper: the flattened butterfly and the dragonfly.
///
/// The dragonfly trades *longer* global cables (average 2E/3 vs E/3, max
/// 2E vs E) for *half as many* of them, with nearly identical hop
/// counts — which is exactly the trade active optical cables reward.
pub fn table2() -> [Table2Row; 2] {
    [
        Table2Row {
            topology: "flattened butterfly",
            minimal_diameter: HopExpr {
                local: 1,
                global: 2,
            },
            non_minimal_diameter: HopExpr {
                local: 2,
                global: 4,
            },
            avg_cable_length_e: 1.0 / 3.0,
            max_cable_length_e: 1.0,
        },
        Table2Row {
            topology: "dragonfly",
            minimal_diameter: HopExpr {
                local: 2,
                global: 1,
            },
            non_minimal_diameter: HopExpr {
                local: 3,
                global: 2,
            },
            avg_cable_length_e: 2.0 / 3.0,
            max_cable_length_e: 2.0,
        },
    ]
}

/// The Figure 18 case study: a 64K-node flattened butterfly versus a
/// 64K-node dragonfly built from comparable router parts.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, PartialEq)]
pub struct CaseStudy64K {
    /// Terminals in each network.
    pub terminals: (usize, usize),
    /// Bidirectional global (inter-cabinet-group) cables: (FB, dragonfly).
    pub global_cables: (usize, usize),
    /// Fraction of router ports used for global channels.
    pub global_port_fraction: (f64, f64),
    /// Router radix used by each.
    pub radix: (usize, usize),
}

/// Builds the Figure 18 comparison: FB with three dimensions of 16 and
/// concentration 16; dragonfly with 16-router groups (256 terminals per
/// group) spanning one "dimension" of 256 groups.
pub fn case_study_64k() -> CaseStudy64K {
    let fb = FlattenedButterfly::new(3, 16, 16);
    // Dragonfly: p = 16, a = 16, h = 16 -> g = 257 max; 256 groups for 64K.
    let params = DragonflyParams::with_groups(16, 16, 16, 256).expect("valid 64K dragonfly");
    let df = Dragonfly::new(params);

    // FB: dimension 1 is intra-cabinet; dimensions 2 and 3 are global.
    // Links per dimension: s(s-1)/2 per dimension group.
    let s = fb.routers_per_dim();
    let groups_per_dim = fb.num_routers() / s;
    let fb_global = 2 * groups_per_dim * s * (s - 1) / 2;
    let fb_global_ports = 2 * (s - 1);

    // Dragonfly: all inter-group channels are global.
    let ah = params.global_ports_per_group();
    let df_global =
        params.num_groups() * ah / 2 - params.num_groups() * df.unused_global_ports_per_group() / 2;
    let df_global_ports = params.global_ports_per_router();

    CaseStudy64K {
        terminals: (fb.num_terminals(), params.num_terminals()),
        global_cables: (fb_global, df_global),
        global_port_fraction: (
            fb_global_ports as f64 / fb.radix() as f64,
            df_global_ports as f64 / params.router_radix() as f64,
        ),
        radix: (fb.radix(), params.router_radix()),
    }
}

/// Empirically measures average and maximum *global* cable length (as
/// fractions of the floor extent `E`) for a dragonfly on a square
/// floorplan — validating the Table 2 length model.
pub fn dragonfly_cable_lengths_in_e(
    params: DragonflyParams,
    nodes_per_cabinet: usize,
) -> (f64, f64) {
    let df = Dragonfly::new(params);
    let p = params.terminals_per_router();
    let floor = Floorplan::new(nodes_per_cabinet, params.num_terminals());
    let e = floor.extent_m();
    let mut total = 0.0;
    let mut max: f64 = 0.0;
    let mut count = 0usize;
    for group in 0..params.num_groups() {
        for q in 0..params.global_ports_per_group() {
            if let Some((pg, pq)) = df.global_slot_target(group, q) {
                if pg > group {
                    let len = floor.node_cable_length_m(
                        df.slot_router(group, q) * p,
                        df.slot_router(pg, pq) * p,
                    ) - floor.slack_m;
                    total += len;
                    max = max.max(len);
                    count += 1;
                }
            }
        }
    }
    (total / count as f64 / e, max / e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_paper() {
        let rows = table2();
        assert_eq!(
            rows[0].minimal_diameter,
            HopExpr {
                local: 1,
                global: 2
            }
        );
        assert_eq!(
            rows[1].minimal_diameter,
            HopExpr {
                local: 2,
                global: 1
            }
        );
        // With equal hop costs the diameters are nearly identical (3),
        // but the dragonfly pays fewer *global* hops.
        assert_eq!(rows[0].minimal_diameter.eval(1.0, 1.0), 3.0);
        assert_eq!(rows[1].minimal_diameter.eval(1.0, 1.0), 3.0);
        assert!(rows[1].minimal_diameter.global < rows[0].minimal_diameter.global);
        // Dragonfly cables are twice as long on average.
        assert!((rows[1].avg_cable_length_e / rows[0].avg_cable_length_e - 2.0).abs() < 1e-9);
    }

    #[test]
    fn case_study_matches_figure18() {
        let cs = case_study_64k();
        assert_eq!(cs.terminals.0, 65_536);
        assert_eq!(cs.terminals.1, 65_536);
        // "the dragonfly requires only half the number of global cables"
        let ratio = cs.global_cables.1 as f64 / cs.global_cables.0 as f64;
        assert!((ratio - 0.5).abs() < 0.05, "global cable ratio {ratio}");
        // FB spends ~half its ports on global channels, the dragonfly
        // far fewer.
        assert!(cs.global_port_fraction.0 > 0.45);
        assert!(cs.global_port_fraction.1 < cs.global_port_fraction.0 * 0.75);
    }

    #[test]
    fn hop_expr_weights_hops() {
        let e = HopExpr {
            local: 2,
            global: 1,
        };
        assert_eq!(e.eval(1.0, 1.0), 3.0);
        // With 10x slower global hops the dragonfly's advantage shows.
        let df = e.eval(1.0, 10.0);
        let fb = HopExpr {
            local: 1,
            global: 2,
        }
        .eval(1.0, 10.0);
        assert!(df < fb);
    }

    #[test]
    fn measured_global_lengths_track_table2() {
        // A 16K-node dragonfly on a square floor: global cables between
        // uniformly spread groups average ~2E/3 Manhattan and top out
        // near 2E.
        let params = DragonflyParams::with_groups(16, 32, 8, 32).unwrap();
        let (avg_e, max_e) = dragonfly_cable_lengths_in_e(params, 128);
        assert!((0.4..0.9).contains(&avg_e), "avg {avg_e}");
        assert!((1.2..=2.1).contains(&max_e), "max {max_e}");
    }
}
