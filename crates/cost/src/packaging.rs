//! The packaging / floorplan model that assigns cables their lengths.

/// A machine-room floorplan: nodes fill cabinets in index order and
/// cabinets stand on a near-square grid.
///
/// Cable length between two cabinets is the Manhattan distance between
/// their grid positions plus a fixed routing slack (up/down the racks
/// and through the cable tray); channels within one cabinet run over
/// boards and backplanes and are reported as length 0.
///
/// # Example
///
/// ```
/// use dfly_cost::Floorplan;
///
/// let floor = Floorplan::new(128, 4096);
/// assert_eq!(floor.num_cabinets(), 32);
/// assert_eq!(floor.cabinet_of_node(0), 0);
/// assert_eq!(floor.cabinet_of_node(4095), 31);
/// assert_eq!(floor.cable_length_m(3, 3), 0.0);
/// assert!(floor.cable_length_m(0, 31) > 5.0);
/// ```
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Floorplan {
    nodes_per_cabinet: usize,
    cabinets: usize,
    columns: usize,
    /// Cabinet pitch along an aisle, metres.
    pub pitch_x_m: f64,
    /// Aisle-to-aisle pitch, metres.
    pub pitch_y_m: f64,
    /// Fixed per-cable routing slack, metres.
    pub slack_m: f64,
}

impl Floorplan {
    /// Lays out `nodes` nodes in cabinets of `nodes_per_cabinet`, with
    /// default pitches (1.5 m along the aisle, 2.4 m between aisles) and
    /// 2 m of routing slack.
    ///
    /// # Panics
    ///
    /// Panics if `nodes_per_cabinet == 0` or `nodes == 0`.
    pub fn new(nodes_per_cabinet: usize, nodes: usize) -> Self {
        assert!(nodes_per_cabinet > 0, "cabinet must hold >= 1 node");
        assert!(nodes > 0, "need >= 1 node");
        let cabinets = nodes.div_ceil(nodes_per_cabinet);
        let columns = (cabinets as f64).sqrt().ceil() as usize;
        Floorplan {
            nodes_per_cabinet,
            cabinets,
            columns: columns.max(1),
            pitch_x_m: 1.5,
            pitch_y_m: 2.4,
            slack_m: 2.0,
        }
    }

    /// Number of cabinets on the floor.
    pub fn num_cabinets(&self) -> usize {
        self.cabinets
    }

    /// Nodes housed per cabinet.
    pub fn nodes_per_cabinet(&self) -> usize {
        self.nodes_per_cabinet
    }

    /// The cabinet housing `node`.
    pub fn cabinet_of_node(&self, node: usize) -> usize {
        node / self.nodes_per_cabinet
    }

    /// Grid position `(col, row)` of a cabinet.
    ///
    /// # Panics
    ///
    /// Panics if `cabinet` is out of range.
    pub fn position(&self, cabinet: usize) -> (usize, usize) {
        assert!(cabinet < self.cabinets, "cabinet {cabinet} out of range");
        (cabinet % self.columns, cabinet / self.columns)
    }

    /// Cable length in metres between two cabinets: 0 within a cabinet
    /// (board/backplane), otherwise Manhattan distance plus slack.
    pub fn cable_length_m(&self, cab_a: usize, cab_b: usize) -> f64 {
        if cab_a == cab_b {
            return 0.0;
        }
        let (xa, ya) = self.position(cab_a);
        let (xb, yb) = self.position(cab_b);
        let dx = xa.abs_diff(xb) as f64 * self.pitch_x_m;
        let dy = ya.abs_diff(yb) as f64 * self.pitch_y_m;
        dx + dy + self.slack_m
    }

    /// Length of a cable between the cabinets of two *nodes*.
    pub fn node_cable_length_m(&self, node_a: usize, node_b: usize) -> f64 {
        self.cable_length_m(self.cabinet_of_node(node_a), self.cabinet_of_node(node_b))
    }

    /// Grid shape `(columns, rows)` of the floor.
    pub fn grid(&self) -> (usize, usize) {
        (self.columns, self.cabinets.div_ceil(self.columns))
    }

    /// The side length `E` of the floor in metres (the longer dimension),
    /// used by the Table 2 length comparison.
    pub fn extent_m(&self) -> f64 {
        let rows = self.cabinets.div_ceil(self.columns);
        ((self.columns.saturating_sub(1)) as f64 * self.pitch_x_m)
            .max((rows.saturating_sub(1)) as f64 * self.pitch_y_m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_layout() {
        let f = Floorplan::new(64, 64 * 16);
        assert_eq!(f.num_cabinets(), 16);
        assert_eq!(f.position(0), (0, 0));
        assert_eq!(f.position(5), (1, 1));
        assert_eq!(f.position(15), (3, 3));
    }

    #[test]
    fn partial_last_cabinet_counts() {
        let f = Floorplan::new(100, 250);
        assert_eq!(f.num_cabinets(), 3);
    }

    #[test]
    fn intra_cabinet_is_board() {
        let f = Floorplan::new(128, 1024);
        assert_eq!(f.node_cable_length_m(0, 127), 0.0);
        assert!(f.node_cable_length_m(0, 128) > 0.0);
    }

    #[test]
    fn lengths_are_symmetric_and_triangleish() {
        let f = Floorplan::new(32, 32 * 25);
        for a in 0..25 {
            for b in 0..25 {
                assert_eq!(f.cable_length_m(a, b), f.cable_length_m(b, a));
            }
        }
        // Fully across the 5x5 floor: 4 * 1.5 + 4 * 2.4 + 2.
        let far = f.cable_length_m(0, 24);
        assert!((far - (6.0 + 9.6 + 2.0)).abs() < 1e-9, "far {far}");
    }

    #[test]
    fn extent_scales_with_floor() {
        let small = Floorplan::new(64, 64 * 4);
        let big = Floorplan::new(64, 64 * 100);
        assert!(big.extent_m() > small.extent_m());
    }
}
