//! Analytic scaling rules (Figures 1 and 4 of the paper).

use dragonfly::DragonflyParams;

/// The router radix needed to reach `n` terminals with every minimal
/// route crossing at most one global channel, using a *single router* as
/// the group — i.e. a fully connected network with an even split between
/// terminal and network ports (Figure 1).
///
/// With radix `k`: `k/2` terminals on each of `k/2 + 1` routers, so
/// `N = (k/2)(k/2 + 1)` and the required radix grows as `k ≈ 2√N`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn radix_for_single_global_hop(n: usize) -> usize {
    assert!(n > 0, "need >= 1 terminal");
    let mut k = 2usize;
    while (k / 2) * (k / 2 + 1) < n {
        k += 2;
    }
    k
}

/// The largest network a fully connected topology of radix-`k` routers
/// reaches with one global hop: `(k/2)(k/2 + 1)`.
pub fn max_terminals_single_global_hop(k: usize) -> usize {
    (k / 2) * (k / 2 + 1)
}

/// The largest balanced dragonfly (a = 2p = 2h) buildable from routers
/// of radix at most `k` (Figure 4). Returns `None` for radices too small
/// to form a dragonfly.
pub fn max_dragonfly_terminals(k: usize) -> Option<usize> {
    DragonflyParams::balanced_from_radix(k)
        .ok()
        .map(|p| p.num_terminals())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radix_tracks_two_sqrt_n() {
        for &n in &[100usize, 1_000, 10_000, 100_000, 1_000_000] {
            let k = radix_for_single_global_hop(n);
            let ideal = 2.0 * (n as f64).sqrt();
            assert!(
                (k as f64) >= ideal - 2.0 && (k as f64) <= ideal + 4.0,
                "n={n} k={k} ideal={ideal}"
            );
            // k is sufficient and k-2 is not.
            assert!(max_terminals_single_global_hop(k) >= n);
            assert!(max_terminals_single_global_hop(k - 2) < n);
        }
    }

    #[test]
    fn figure1_extremes() {
        // Reading Figure 1: ~1M nodes needs a radix around 2000.
        let k = radix_for_single_global_hop(1_000_000);
        assert!((1990..=2010).contains(&k), "k={k}");
        // And 10K nodes needs ~200.
        let k = radix_for_single_global_hop(10_000);
        assert!((195..=205).contains(&k), "k={k}");
    }

    #[test]
    fn dragonfly_scales_dramatically_better() {
        // Figure 4: radix 64 exceeds 256K nodes; radix ~32 exceeds 10K.
        assert!(max_dragonfly_terminals(64).unwrap() > 256 * 1024);
        assert!(max_dragonfly_terminals(32).unwrap() > 10_000);
        assert!(max_dragonfly_terminals(2).is_none());
        // Monotone in k.
        let mut prev = 0;
        for k in 3..100 {
            let n = max_dragonfly_terminals(k).unwrap();
            assert!(n >= prev, "k={k}");
            prev = n;
        }
    }
}
