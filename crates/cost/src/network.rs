//! Whole-network cost roll-ups for the Figure 19 comparison.
//!
//! Every topology is normalised to the same per-node injection
//! bandwidth: each ordinary channel carries `channel_gbps`, and the 3-D
//! torus — whose narrow links would otherwise give it far less capacity
//! — gets its links widened by the bisection factor `k/8` so that all
//! four networks deliver comparable uniform throughput. Router silicon
//! is priced per Gb/s of pin bandwidth, cables via the §2 cost-versus-
//! length models over the [`Floorplan`] geometry.

use dfly_topo::{FlattenedButterfly, FoldedClos, Topology, Torus};
use dragonfly::{Dragonfly, DragonflyParams};

use crate::cable::CableCostModel;
use crate::packaging::Floorplan;

/// A requested network size that no topology in the radix budget can
/// realise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SizingError {
    /// Requested terminal count.
    pub terminals: usize,
    /// Largest terminal count the sizing rule can reach.
    pub max_terminals: usize,
    /// Human description of the exhausted design rule.
    pub rule: &'static str,
}

impl std::fmt::Display for SizingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "network of {} terminals exceeds the {} (max {} terminals)",
            self.terminals, self.rule, self.max_terminals
        )
    }
}

impl std::error::Error for SizingError {}

/// Cost-model parameters shared by all topologies.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostConfig {
    /// Bandwidth of one ordinary channel (and per-node injection
    /// bandwidth), Gb/s.
    pub channel_gbps: f64,
    /// Router silicon + packaging cost per Gb/s of pin bandwidth.
    pub router_cost_per_gbps: f64,
    /// Nodes packaged per cabinet.
    pub nodes_per_cabinet: usize,
    /// Router radix budget for the high-radix topologies.
    pub router_radix: usize,
    /// Nodes per dragonfly group (the paper uses 512).
    pub dragonfly_group: usize,
    /// Cable cost-versus-length model.
    pub cables: CableCostModel,
}

impl Default for CostConfig {
    fn default() -> Self {
        CostConfig {
            channel_gbps: 5.0,
            router_cost_per_gbps: 0.10,
            nodes_per_cabinet: 512,
            router_radix: 64,
            dragonfly_group: 512,
            cables: CableCostModel::default(),
        }
    }
}

/// Aggregated cable statistics of one network.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CableStats {
    /// Intra-cabinet board/backplane channels.
    pub board: usize,
    /// Electrical cables (above 0 m, at most the electrical limit).
    pub electrical: usize,
    /// Active optical cables.
    pub optical: usize,
    /// Sum of cable lengths in metres (boards count 0).
    pub total_length_m: f64,
    /// Aggregate bandwidth over board channels, Gb/s.
    pub board_gbps: f64,
    /// Aggregate bandwidth over electrical cables, Gb/s.
    pub electrical_gbps: f64,
    /// Aggregate bandwidth over optical cables, Gb/s.
    pub optical_gbps: f64,
}

impl CableStats {
    /// Total channel count.
    pub fn count(&self) -> usize {
        self.board + self.electrical + self.optical
    }

    /// Mean cable length over *inter-cabinet* cables, metres.
    pub fn mean_cable_length_m(&self) -> f64 {
        let cables = self.electrical + self.optical;
        if cables == 0 {
            0.0
        } else {
            self.total_length_m / cables as f64
        }
    }
}

/// The priced bill of materials of one network.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkCost {
    /// Topology name.
    pub topology: String,
    /// Terminals actually provided (at least the requested size).
    pub terminals: usize,
    /// Router count.
    pub routers: usize,
    /// Router cost in dollars.
    pub router_cost: f64,
    /// Aggregate router pin bandwidth, Gb/s (for the power model).
    pub router_gbps: f64,
    /// Cable cost in dollars.
    pub cable_cost: f64,
    /// Cable statistics.
    pub cables: CableStats,
}

impl NetworkCost {
    /// Total network cost.
    pub fn total(&self) -> f64 {
        self.router_cost + self.cable_cost
    }

    /// Cost per terminal — the y-axis of Figure 19.
    pub fn per_node(&self) -> f64 {
        self.total() / self.terminals as f64
    }
}

/// Accumulates channels into costs and statistics.
struct Pricer<'a> {
    cfg: &'a CostConfig,
    floor: Floorplan,
    stats: CableStats,
    cable_cost: f64,
}

impl<'a> Pricer<'a> {
    fn new(cfg: &'a CostConfig, nodes: usize) -> Self {
        Pricer {
            cfg,
            floor: Floorplan::new(cfg.nodes_per_cabinet, nodes),
            stats: CableStats::default(),
            cable_cost: 0.0,
        }
    }

    /// Adds one bidirectional channel between the cabinets of `node_a`
    /// and `node_b` carrying `gbps`.
    fn add_between_nodes(&mut self, node_a: usize, node_b: usize, gbps: f64) {
        let len = self.floor.node_cable_length_m(node_a, node_b);
        self.add_length(len, gbps);
    }

    /// Adds one channel of an explicit length.
    fn add_length(&mut self, len_m: f64, gbps: f64) {
        if len_m <= 0.0 {
            self.stats.board += 1;
            self.stats.board_gbps += gbps;
        } else if len_m <= self.cfg.cables.electrical_max_m {
            self.stats.electrical += 1;
            self.stats.electrical_gbps += gbps;
            self.stats.total_length_m += len_m;
        } else {
            self.stats.optical += 1;
            self.stats.optical_gbps += gbps;
            self.stats.total_length_m += len_m;
        }
        self.cable_cost += self.cfg.cables.cable(len_m) * gbps;
    }
}

impl CostConfig {
    /// Prices a dragonfly of at least `n` terminals: radix-budget
    /// routers, `dragonfly_group` nodes per group, fully connected
    /// groups, offset-ring global channels (§5: "for the dragonfly
    /// network we use a group size of 512 nodes").
    ///
    /// # Panics
    ///
    /// Panics if `n` is smaller than two groups' worth of nodes or too
    /// large for the radix budget.
    pub fn dragonfly(&self, n: usize) -> NetworkCost {
        // Up to the reach of a single fully connected stage the dragonfly
        // *is* a 1-D flattened butterfly and the two cost the same (§5).
        let c1 = self.router_radix / 2;
        if n <= c1 * (self.router_radix - c1 + 1) {
            let mut cost = self.flattened_butterfly(n);
            cost.topology = "dragonfly".into();
            return cost;
        }
        // Split the radix budget as the paper does for its 512-node
        // groups with radix-64 parts: p = k/4, a = k/2 and the balanced
        // h = a/2, giving a*p nodes per group.
        let p = self.router_radix / 4;
        let a = self.dragonfly_group / p;
        let h = (self.router_radix - p - a + 1).min(a / 2).max(1);
        let g = n.div_ceil(a * p);
        let params =
            DragonflyParams::with_groups(p, a, h, g.max(2)).expect("dragonfly sizing out of range");
        let df = Dragonfly::new(params);
        let nodes = params.num_terminals();
        let mut pricer = Pricer::new(self, nodes);
        // Local channels: full connectivity within each group.
        for group in 0..params.num_groups() {
            for i in 0..a {
                for j in (i + 1)..a {
                    let ra = (group * a + i) * p;
                    let rb = (group * a + j) * p;
                    pricer.add_between_nodes(ra, rb, self.channel_gbps);
                }
            }
        }
        // Global channels: one per wired slot pair.
        for group in 0..params.num_groups() {
            for q in 0..params.global_ports_per_group() {
                if let Some((pg, pq)) = df.global_slot_target(group, q) {
                    if pg > group {
                        let ra = df.slot_router(group, q) * p;
                        let rb = df.slot_router(pg, pq) * p;
                        pricer.add_between_nodes(ra, rb, self.channel_gbps);
                    }
                }
            }
        }
        let router_bw = params.router_radix() as f64 * self.channel_gbps;
        NetworkCost {
            topology: "dragonfly".into(),
            terminals: nodes,
            routers: params.num_routers(),
            router_gbps: params.num_routers() as f64 * router_bw,
            router_cost: params.num_routers() as f64 * router_bw * self.router_cost_per_gbps,
            cable_cost: pricer.cable_cost,
            cables: pricer.stats,
        }
    }

    /// Sizes a flattened butterfly of at least `n` terminals within the
    /// radix budget, following the flattened-butterfly design rule: the
    /// fewest dimensions that fit with concentration `k/(d+1)` (the
    /// balanced split) and *full-radix* dimension sizes; the machine is
    /// scaled by populating the outermost dimension.
    ///
    /// # Errors
    ///
    /// Returns a [`SizingError`] when `n` exceeds what four dimensions
    /// (the rule's practical ceiling — beyond it the per-hop serialisa-
    /// tion latency erases the butterfly's advantage) can reach.
    pub fn flattened_butterfly_dims(&self, n: usize) -> Result<FlattenedButterfly, SizingError> {
        let mut max_terminals = 0;
        for d in 1..=4usize {
            let c = self.router_radix / (d + 1);
            let s_max = (self.router_radix - c) / d + 1;
            max_terminals = c * s_max.pow(d as u32);
            if max_terminals < n {
                continue;
            }
            let inner: usize = c * s_max.pow(d as u32 - 1);
            let last = n.div_ceil(inner).max(if d == 1 { 2 } else { 1 });
            let mut dims = vec![s_max; d - 1];
            dims.push(last);
            return Ok(FlattenedButterfly::with_dims(&dims, c));
        }
        Err(SizingError {
            terminals: n,
            max_terminals,
            rule: "4-dimension flattened-butterfly design rule",
        })
    }

    /// Prices a flattened butterfly of at least `n` terminals.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the four-dimension design-rule range; use
    /// [`CostConfig::flattened_butterfly_dims`] to handle that case
    /// gracefully.
    pub fn flattened_butterfly(&self, n: usize) -> NetworkCost {
        let fb = self
            .flattened_butterfly_dims(n)
            .expect("flattened butterfly sizing out of range");
        let c = fb.concentration();
        let nodes = fb.num_terminals();
        let mut pricer = Pricer::new(self, nodes);
        for r in 0..fb.num_routers() {
            let coords = fb.coordinates(r);
            for (dim, &s) in fb.dims().iter().enumerate() {
                for other in (coords[dim] + 1)..s {
                    let mut c2 = coords.clone();
                    c2[dim] = other;
                    let peer = fb.router_index(&c2);
                    pricer.add_between_nodes(r * c, peer * c, self.channel_gbps);
                }
            }
        }
        let router_bw = fb.radix() as f64 * self.channel_gbps;
        NetworkCost {
            topology: "flattened butterfly".into(),
            terminals: nodes,
            routers: fb.num_routers(),
            router_gbps: fb.num_routers() as f64 * router_bw,
            router_cost: fb.num_routers() as f64 * router_bw * self.router_cost_per_gbps,
            cable_cost: pricer.cable_cost,
            cables: pricer.stats,
        }
    }

    /// Prices a folded Clos (fat tree) of at least `n` terminals.
    ///
    /// Packaging model (Cray BlackWidow style): leaf switches live with
    /// their terminals; every higher rank lives in dedicated switch
    /// cabinets along one edge of the floor, so each leaf uplink is a
    /// real cable spanning from the leaf's cabinet to the switch row,
    /// and switch-rank-to-switch-rank cables are short jumpers within
    /// the switch row.
    pub fn folded_clos(&self, n: usize) -> NetworkCost {
        let clos = FoldedClos::for_terminals(n, self.router_radix);
        let nodes = clos.num_terminals();
        let half = self.router_radix / 2;
        let mut pricer = Pricer::new(self, nodes);
        let floor = Floorplan::new(self.nodes_per_cabinet, nodes);
        let (cols, rows) = floor.grid();
        // Distance from a leaf's cabinet to the switch row beyond the
        // last compute row, at mid-floor.
        let to_switch_row = |cabinet: usize| {
            let (x, y) = floor.position(cabinet);
            let dx = (x as f64 - cols as f64 / 2.0).abs() * floor.pitch_x_m;
            let dy = (rows - y) as f64 * floor.pitch_y_m;
            dx + dy + floor.slack_m
        };
        for level in 0..clos.levels() - 1 {
            for s in 0..clos.switches_at(level) {
                let len = if level == 0 {
                    // Leaf s serves terminals [s*half, (s+1)*half).
                    to_switch_row(floor.cabinet_of_node((s * half + half / 2).min(nodes - 1)))
                } else {
                    // Jumpers within the switch row.
                    3.0
                };
                for _uplink in 0..half {
                    pricer.add_length(len, self.channel_gbps);
                }
            }
        }
        let router_bw = self.router_radix as f64 * self.channel_gbps;
        NetworkCost {
            topology: "folded Clos".into(),
            terminals: nodes,
            routers: clos.num_routers(),
            router_gbps: clos.num_routers() as f64 * router_bw,
            router_cost: clos.num_routers() as f64 * router_bw * self.router_cost_per_gbps,
            cable_cost: pricer.cable_cost,
            cables: pricer.stats,
        }
    }

    /// Prices a 3-D torus of at least `n` terminals, one node per
    /// router.
    ///
    /// Links are widened by the bisection-derived factor `k/16` so the
    /// torus offers uniform throughput comparable to the other networks
    /// at the provisioning level tori are customarily built to, and a
    /// folded physical layout keeps every cable short (≤ ~2 m,
    /// electrical): the paper notes the torus avoids optics but pays in
    /// sheer cable bandwidth.
    pub fn torus_3d(&self, n: usize) -> NetworkCost {
        let torus = Torus::cubic_3d_for(n, 1);
        let k = torus.arity();
        let nodes = torus.num_terminals();
        let link_gbps = self.channel_gbps * (k as f64 / 16.0).max(1.0);
        let mut pricer = Pricer::new(self, nodes);
        // Folded-torus packaging: +x and +y neighbours share a board or
        // an adjacent cabinet (1 m), +z spans an aisle (2 m).
        let per_router_lengths = [1.0, 1.0, 2.0];
        for _r in 0..torus.num_routers() {
            for len in per_router_lengths {
                pricer.add_length(len, link_gbps);
            }
        }
        let router_bw = 6.0 * link_gbps + self.channel_gbps;
        NetworkCost {
            topology: "3-D torus".into(),
            terminals: nodes,
            routers: torus.num_routers(),
            router_gbps: torus.num_routers() as f64 * router_bw,
            router_cost: torus.num_routers() as f64 * router_bw * self.router_cost_per_gbps,
            cable_cost: pricer.cable_cost,
            cables: pricer.stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dragonfly_sizing_matches_paper_parts() {
        let cfg = CostConfig::default();
        let c = cfg.dragonfly(16 * 1024);
        assert!(c.terminals >= 16 * 1024);
        // 512-node groups of 32 radix-≤64 routers.
        assert_eq!(c.routers % 32, 0);
        assert!(c.per_node() > 0.0);
    }

    #[test]
    fn dragonfly_beats_flattened_butterfly_at_scale() {
        let cfg = CostConfig::default();
        for (n, min_saving) in [(16 * 1024, 0.05), (20 * 1024, 0.08), (64 * 1024, 0.20)] {
            let df = cfg.dragonfly(n);
            let fb = cfg.flattened_butterfly(n);
            let saving = 1.0 - df.per_node() / fb.per_node();
            assert!(
                saving >= min_saving,
                "n={n}: dragonfly {:.2} vs FB {:.2} (saving {saving:.2})",
                df.per_node(),
                fb.per_node()
            );
        }
    }

    #[test]
    fn dragonfly_equals_fb_when_fully_connected() {
        // §5: "for networks up to 1K nodes ... the cost of the two
        // networks are identical".
        let cfg = CostConfig::default();
        let df = cfg.dragonfly(1024);
        let fb = cfg.flattened_butterfly(1024);
        assert_eq!(df.per_node(), fb.per_node());
        assert_eq!(df.topology, "dragonfly");
    }

    #[test]
    fn dragonfly_saves_half_versus_clos() {
        let cfg = CostConfig::default();
        let n = 16 * 1024;
        let df = cfg.dragonfly(n);
        let clos = cfg.folded_clos(n);
        let saving = 1.0 - df.per_node() / clos.per_node();
        assert!((0.30..0.75).contains(&saving), "saving vs Clos {saving:.2}");
    }

    #[test]
    fn torus_and_clos_are_the_expensive_pair() {
        // Figure 19's top two curves: the torus and the folded Clos cost
        // roughly 2-3x the dragonfly, with the torus climbing as its
        // links widen with k.
        let cfg = CostConfig::default();
        let n = 16 * 1024;
        let torus = cfg.torus_3d(n);
        let df = cfg.dragonfly(n);
        let clos = cfg.folded_clos(n);
        assert!(torus.per_node() > clos.per_node() * 0.9, "torus vs clos");
        assert!(torus.per_node() > 1.8 * df.per_node(), "torus vs dragonfly");
        let saving = 1.0 - df.per_node() / torus.per_node();
        assert!(saving > 0.45, "dragonfly saves {saving:.2} vs torus");
        // And the torus uses no optics (the paper's §5 observation).
        assert_eq!(torus.cables.optical, 0);
        // Torus per-node cost grows with scale as links widen.
        assert!(cfg.torus_3d(20 * 1024).per_node() > cfg.torus_3d(4 * 1024).per_node());
    }

    #[test]
    fn fb_sizing_respects_radix() {
        let cfg = CostConfig::default();
        for n in [1_000usize, 5_000, 20_000, 64 * 1024] {
            let fb = cfg.flattened_butterfly_dims(n).unwrap();
            assert!(fb.num_terminals() >= n, "n={n}");
            assert!(fb.radix() <= cfg.router_radix, "n={n} radix {}", fb.radix());
        }
    }

    #[test]
    fn fb_sizing_reports_out_of_range_instead_of_panicking() {
        let cfg = CostConfig::default();
        let err = cfg.flattened_butterfly_dims(usize::MAX).unwrap_err();
        assert!(err.max_terminals > 0);
        assert_eq!(err.terminals, usize::MAX);
        assert!(err.to_string().contains("flattened-butterfly design rule"));
    }

    #[test]
    fn dragonfly_has_fewest_long_cables() {
        // At the 64K design point of Figure 18 the dragonfly needs about
        // half the inter-cabinet (global) cables of the FB and far fewer
        // than the Clos.
        let cfg = CostConfig::default();
        let n = 64 * 1024;
        let df = cfg.dragonfly(n);
        let fb = cfg.flattened_butterfly(n);
        let clos = cfg.folded_clos(n);
        let per_node =
            |c: &NetworkCost| (c.cables.electrical + c.cables.optical) as f64 / c.terminals as f64;
        assert!(
            per_node(&df) < 0.65 * per_node(&fb),
            "df {:.2} vs fb {:.2} long cables/node",
            per_node(&df),
            per_node(&fb)
        );
        assert!(per_node(&df) < per_node(&clos), "df vs clos long cables");
    }

    #[test]
    fn costs_scale_sublinearly_per_node() {
        // Per-node dragonfly cost should not explode with N (cables grow
        // longer but stay one global hop).
        let cfg = CostConfig::default();
        let small = cfg.dragonfly(2 * 1024).per_node();
        let large = cfg.dragonfly(20 * 1024).per_node();
        assert!(large < small * 2.0, "small {small:.2} large {large:.2}");
    }
}
