//! Network power estimation from the Table 1 energy-per-bit figures.
//!
//! The paper notes (§5) that the dragonfly's cost reduction "also
//! translates to reduction of power". This module makes that concrete:
//! every channel class gets an energy-per-bit from Table 1 (active
//! optical cables burn ~60 pJ/bit in their E/O–O/E transceivers,
//! electrical cables ~2 pJ/bit, boards less), routers a SerDes-dominated
//! figure per pin bandwidth, and a network's power is the roll-up over
//! its bill of materials.

use crate::network::NetworkCost;

/// Energy-per-bit assumptions, picojoules.
///
/// 1 pJ/bit at 1 Gb/s is 1 mW, so watts = pJ/bit × Gb/s / 1000.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// Board/backplane channels (short traces).
    pub board_pj_per_bit: f64,
    /// Electrical cables (Table 1: ~2 pJ/bit).
    pub electrical_pj_per_bit: f64,
    /// Active optical cables (Table 1: ~55–60 pJ/bit).
    pub optical_pj_per_bit: f64,
    /// Router SerDes + crossbar per pin bandwidth.
    pub router_pj_per_bit: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel {
            board_pj_per_bit: 1.0,
            electrical_pj_per_bit: 2.0,
            optical_pj_per_bit: 60.0,
            router_pj_per_bit: 10.0,
        }
    }
}

/// Power roll-up of one network.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkPower {
    /// Router power, watts.
    pub router_w: f64,
    /// Channel (board + cable) power, watts.
    pub channel_w: f64,
    /// Terminals the network serves.
    pub terminals: usize,
}

impl NetworkPower {
    /// Total power in watts.
    pub fn total_w(&self) -> f64 {
        self.router_w + self.channel_w
    }

    /// Power per terminal in watts.
    pub fn per_node_w(&self) -> f64 {
        self.total_w() / self.terminals as f64
    }
}

impl PowerModel {
    /// Estimates the power of a priced network.
    pub fn of(&self, cost: &NetworkCost) -> NetworkPower {
        let c = &cost.cables;
        let channel_w = (c.board_gbps * self.board_pj_per_bit
            + c.electrical_gbps * self.electrical_pj_per_bit
            + c.optical_gbps * self.optical_pj_per_bit)
            / 1000.0;
        NetworkPower {
            router_w: cost.router_gbps * self.router_pj_per_bit / 1000.0,
            channel_w,
            terminals: cost.terminals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::CostConfig;

    #[test]
    fn units_check_one_cable() {
        // A single 20 Gb/s optical cable at 60 pJ/bit burns 1.2 W —
        // exactly the Intel Connects figure of Table 1.
        let w: f64 = 20.0 * 60.0 / 1000.0;
        assert!((w - 1.2).abs() < 1e-12);
    }

    #[test]
    fn dragonfly_power_beats_clos_and_torus() {
        // The §5 remark "cost reduction translates to power reduction":
        // the dragonfly needs roughly half the Clos's power and far less
        // than the wide-linked torus; against the FB the gap opens at
        // the 64K design point where the FB needs twice the optical
        // cables (Figure 18).
        let cfg = CostConfig::default();
        let pm = PowerModel::default();
        let n = 16 * 1024;
        let df = pm.of(&cfg.dragonfly(n));
        let clos = pm.of(&cfg.folded_clos(n));
        let torus = pm.of(&cfg.torus_3d(n));
        assert!(
            df.per_node_w() < 0.6 * clos.per_node_w(),
            "df {:.3} W vs clos {:.3} W",
            df.per_node_w(),
            clos.per_node_w()
        );
        assert!(df.per_node_w() < 0.6 * torus.per_node_w());

        let n = 64 * 1024;
        let df = pm.of(&cfg.dragonfly(n));
        let fb = pm.of(&cfg.flattened_butterfly(n));
        assert!(
            df.per_node_w() < fb.per_node_w(),
            "df {:.3} W vs fb {:.3} W at 64K",
            df.per_node_w(),
            fb.per_node_w()
        );
    }

    #[test]
    fn optics_dominate_dragonfly_channel_power() {
        // The few long optical cables burn more than the many boards.
        let cfg = CostConfig::default();
        let cost = cfg.dragonfly(16 * 1024);
        let pm = PowerModel::default();
        let optical_w = cost.cables.optical_gbps * pm.optical_pj_per_bit / 1000.0;
        let power = pm.of(&cost);
        assert!(optical_w > 0.5 * power.channel_w);
    }

    #[test]
    fn torus_channels_are_cheap_but_routers_are_not() {
        // The all-electrical torus has low channel power; its wide
        // links make its routers the power sink.
        let cfg = CostConfig::default();
        let pm = PowerModel::default();
        let torus = pm.of(&cfg.torus_3d(16 * 1024));
        assert!(torus.router_w > torus.channel_w);
    }

    #[test]
    fn bandwidth_accounting_is_populated() {
        let cfg = CostConfig::default();
        let df = cfg.dragonfly(4 * 1024);
        assert!(df.cables.board_gbps > 0.0);
        assert!(df.cables.optical_gbps + df.cables.electrical_gbps > 0.0);
        assert!(df.router_gbps > 0.0);
        // gbps sums are consistent with counts x channel bandwidth.
        let per = cfg.channel_gbps;
        assert!((df.cables.board_gbps - df.cables.board as f64 * per).abs() < 1e-6);
    }
}
