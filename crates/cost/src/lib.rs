//! Cost and technology models for comparing interconnection-network
//! topologies — §2 and §5 of the dragonfly paper.
//!
//! The crate reproduces the paper's economic argument end to end:
//!
//! * [`CableCostModel`] — the Figure 2 cost-versus-length fits for
//!   electrical and active optical cables (crossover ≈ 10 m), plus the
//!   Table 1 technology data ([`CABLE_TECHNOLOGIES`]);
//! * [`Floorplan`] — a cabinet-grid packaging model that turns logical
//!   channels into cable lengths;
//! * [`CostConfig`] — whole-network bills of materials for the
//!   dragonfly, flattened butterfly, folded Clos and 3-D torus at equal
//!   per-node bandwidth (Figure 19);
//! * [`PowerModel`] — the Table 1 energy-per-bit figures rolled up into
//!   per-network power, making §5's "cost reduction translates to power
//!   reduction" remark concrete;
//! * [`table2`] / [`case_study_64k`] — the structural comparisons of
//!   Table 2 and Figure 18;
//! * [`radix_for_single_global_hop`] / [`max_dragonfly_terminals`] —
//!   the scaling rules behind Figures 1 and 4.
//!
//! # Example
//!
//! ```
//! use dfly_cost::CostConfig;
//!
//! let cfg = CostConfig::default();
//! let df = cfg.dragonfly(16 * 1024);
//! let fb = cfg.flattened_butterfly(16 * 1024);
//! assert!(df.per_node() < fb.per_node()); // the paper's headline claim
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cable;
mod compare;
mod network;
mod packaging;
mod power;
mod scaling;

pub use cable::{CableCostModel, CableTechnology, CABLE_TECHNOLOGIES};
pub use compare::{
    case_study_64k, dragonfly_cable_lengths_in_e, table2, CaseStudy64K, HopExpr, Table2Row,
};
pub use network::{CableStats, CostConfig, NetworkCost, SizingError};
pub use packaging::Floorplan;
pub use power::{NetworkPower, PowerModel};
pub use scaling::{
    max_dragonfly_terminals, max_terminals_single_global_hop, radix_for_single_global_hop,
};
