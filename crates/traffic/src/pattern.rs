//! Destination-selection patterns.

use rand::rngs::SmallRng;
use rand::Rng;

/// A synthetic traffic pattern: maps a source terminal to a destination
/// terminal, possibly randomly.
///
/// Implementations must return a destination in `0..num_terminals()`
/// different from `source` (self-traffic never enters the network and
/// would only distort offered-load accounting).
///
/// `Sync` is a supertrait: the sharded cycle engine shares one pattern
/// reference across its worker threads, each calling `destination`
/// with its own per-terminal RNG.
pub trait TrafficPattern: Sync {
    /// Short name used in reports, e.g. `"uniform random"`.
    fn name(&self) -> &'static str;

    /// Number of terminals the pattern is defined over.
    fn num_terminals(&self) -> usize;

    /// Picks the destination for a packet injected at `source`.
    ///
    /// # Panics
    ///
    /// Panics if `source >= self.num_terminals()`.
    fn destination(&self, source: usize, rng: &mut SmallRng) -> usize;
}

/// Benign traffic: every packet targets a terminal chosen uniformly at
/// random (excluding the source).
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniformRandom {
    terminals: usize,
}

impl UniformRandom {
    /// Creates the pattern over `terminals` terminals.
    ///
    /// # Panics
    ///
    /// Panics if `terminals < 2`.
    pub fn new(terminals: usize) -> Self {
        assert!(terminals >= 2, "uniform random needs >= 2 terminals");
        UniformRandom { terminals }
    }
}

impl TrafficPattern for UniformRandom {
    fn name(&self) -> &'static str {
        "uniform random"
    }

    fn num_terminals(&self) -> usize {
        self.terminals
    }

    fn destination(&self, source: usize, rng: &mut SmallRng) -> usize {
        assert!(source < self.terminals, "source {source} out of range");
        // Draw from 0..n-1 and skip over the source: uniform over the
        // other n-1 terminals without rejection sampling.
        let d = rng.gen_range(0..self.terminals - 1);
        if d >= source {
            d + 1
        } else {
            d
        }
    }
}

/// The paper's worst-case (WC) adversarial pattern: every terminal in
/// group `i` sends to a uniformly random terminal in group
/// `i + offset (mod g)`.
///
/// Under minimal routing all of a group's traffic then crowds onto the
/// few direct channels between the two groups (a single channel in a
/// maximum-size dragonfly), capping throughput at `1/(ah)`; non-minimal
/// routing is required to spread it.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupAdversarial {
    terminals: usize,
    group_size: usize,
    offset: usize,
}

impl GroupAdversarial {
    /// Creates the pattern for `terminals` terminals in consecutive groups
    /// of `group_size`, targeting the group `offset` ahead.
    ///
    /// # Panics
    ///
    /// Panics if `group_size` is zero or does not divide `terminals`, if
    /// there are fewer than two groups, or if `offset` is congruent to 0
    /// modulo the group count (self-group traffic would defeat the
    /// pattern's purpose).
    pub fn new(terminals: usize, group_size: usize, offset: usize) -> Self {
        assert!(group_size > 0, "group size must be positive");
        assert!(
            terminals.is_multiple_of(group_size),
            "group size {group_size} must divide terminal count {terminals}"
        );
        let groups = terminals / group_size;
        assert!(groups >= 2, "adversarial pattern needs >= 2 groups");
        assert!(
            !offset.is_multiple_of(groups),
            "offset {offset} maps groups onto themselves"
        );
        GroupAdversarial {
            terminals,
            group_size,
            offset,
        }
    }

    /// The paper's WC pattern: `offset = 1` (group `i` → group `i+1`).
    pub fn next_group(terminals: usize, group_size: usize) -> Self {
        GroupAdversarial::new(terminals, group_size, 1)
    }

    /// Group-level tornado: `offset = ⌈g/2⌉ - 1` maximises the distance
    /// travelled around the "ring" of groups.
    ///
    /// # Panics
    ///
    /// Panics if the resulting offset is zero (fewer than four groups).
    pub fn tornado(terminals: usize, group_size: usize) -> Self {
        let groups = terminals / group_size.max(1);
        GroupAdversarial::new(terminals, group_size, groups.div_ceil(2) - 1)
    }

    /// Number of groups.
    pub fn groups(&self) -> usize {
        self.terminals / self.group_size
    }

    /// Terminals per group.
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// Group offset applied to every packet.
    pub fn offset(&self) -> usize {
        self.offset
    }
}

impl TrafficPattern for GroupAdversarial {
    fn name(&self) -> &'static str {
        "group adversarial"
    }

    fn num_terminals(&self) -> usize {
        self.terminals
    }

    fn destination(&self, source: usize, rng: &mut SmallRng) -> usize {
        assert!(source < self.terminals, "source {source} out of range");
        let group = source / self.group_size;
        let target_group = (group + self.offset) % self.groups();
        target_group * self.group_size + rng.gen_range(0..self.group_size)
    }
}

/// Bit-complement permutation: destination is the bitwise complement of
/// the source index. Requires a power-of-two terminal count.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitComplement {
    terminals: usize,
}

impl BitComplement {
    /// Creates the pattern over `terminals` terminals.
    ///
    /// # Panics
    ///
    /// Panics unless `terminals` is a power of two and at least 2.
    pub fn new(terminals: usize) -> Self {
        assert!(
            terminals.is_power_of_two() && terminals >= 2,
            "bit complement needs a power-of-two terminal count"
        );
        BitComplement { terminals }
    }
}

impl TrafficPattern for BitComplement {
    fn name(&self) -> &'static str {
        "bit complement"
    }

    fn num_terminals(&self) -> usize {
        self.terminals
    }

    fn destination(&self, source: usize, _rng: &mut SmallRng) -> usize {
        assert!(source < self.terminals, "source {source} out of range");
        !source & (self.terminals - 1)
    }
}

/// Shift permutation: `dest = (source + delta) mod N`.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shift {
    terminals: usize,
    delta: usize,
}

impl Shift {
    /// Creates the pattern over `terminals` terminals with shift `delta`.
    ///
    /// # Panics
    ///
    /// Panics if `delta % terminals == 0` (identity permutation) or
    /// `terminals == 0`.
    pub fn new(terminals: usize, delta: usize) -> Self {
        assert!(terminals > 0, "need >= 1 terminal");
        assert!(
            !delta.is_multiple_of(terminals),
            "shift of 0 is the identity"
        );
        Shift { terminals, delta }
    }
}

impl TrafficPattern for Shift {
    fn name(&self) -> &'static str {
        "shift"
    }

    fn num_terminals(&self) -> usize {
        self.terminals
    }

    fn destination(&self, source: usize, _rng: &mut SmallRng) -> usize {
        assert!(source < self.terminals, "source {source} out of range");
        (source + self.delta) % self.terminals
    }
}

/// Terminal-level tornado: shift by `⌈N/2⌉ - 1`, the classic worst case
/// for rings and tori.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tornado {
    inner: Shift,
}

impl Tornado {
    /// Creates the pattern over `terminals` terminals.
    ///
    /// # Panics
    ///
    /// Panics if `terminals < 4` (the shift would be zero).
    pub fn new(terminals: usize) -> Self {
        assert!(terminals >= 4, "tornado needs >= 4 terminals");
        Tornado {
            inner: Shift::new(terminals, terminals.div_ceil(2) - 1),
        }
    }
}

impl TrafficPattern for Tornado {
    fn name(&self) -> &'static str {
        "tornado"
    }

    fn num_terminals(&self) -> usize {
        self.inner.num_terminals()
    }

    fn destination(&self, source: usize, rng: &mut SmallRng) -> usize {
        self.inner.destination(source, rng)
    }
}

/// Matrix-transpose permutation: with `N = 2^(2b)` terminals viewed as
/// a `2^b x 2^b` matrix, terminal `(i, j)` sends to `(j, i)` — a classic
/// stress for networks whose bisection lies between the index halves.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transpose {
    terminals: usize,
    half_bits: u32,
}

impl Transpose {
    /// Creates the pattern over `terminals` terminals.
    ///
    /// # Panics
    ///
    /// Panics unless `terminals` is 4 or more and an even power of two.
    pub fn new(terminals: usize) -> Self {
        assert!(
            terminals >= 4 && terminals.is_power_of_two(),
            "transpose needs a power-of-two terminal count >= 4"
        );
        let bits = terminals.trailing_zeros();
        assert!(
            bits.is_multiple_of(2),
            "transpose needs an even power of two"
        );
        Transpose {
            terminals,
            half_bits: bits / 2,
        }
    }
}

impl TrafficPattern for Transpose {
    fn name(&self) -> &'static str {
        "transpose"
    }

    fn num_terminals(&self) -> usize {
        self.terminals
    }

    fn destination(&self, source: usize, rng: &mut SmallRng) -> usize {
        assert!(source < self.terminals, "source {source} out of range");
        let mask = (1usize << self.half_bits) - 1;
        let (i, j) = (source >> self.half_bits, source & mask);
        let dest = (j << self.half_bits) | i;
        if dest == source {
            // Diagonal elements are fixed points; redirect them
            // uniformly so the pattern stays self-traffic-free.
            let ur = UniformRandom::new(self.terminals);
            ur.destination(source, rng)
        } else {
            dest
        }
    }
}

/// An arbitrary fixed permutation of the terminals.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    map: Vec<u32>,
}

impl Permutation {
    /// Creates the pattern from an explicit permutation vector.
    ///
    /// # Panics
    ///
    /// Panics if `map` is not a permutation of `0..map.len()` or if any
    /// element is a fixed point (`map[i] == i`).
    pub fn new(map: Vec<u32>) -> Self {
        let n = map.len();
        let mut seen = vec![false; n];
        for (i, &d) in map.iter().enumerate() {
            let d = d as usize;
            assert!(d < n, "destination {d} out of range");
            assert!(!seen[d], "destination {d} repeated: not a permutation");
            assert!(d != i, "terminal {i} maps to itself");
            seen[d] = true;
        }
        Permutation { map }
    }

    /// Creates a uniformly random fixed-point-free permutation
    /// (derangement) over `terminals` terminals, by rejection.
    ///
    /// # Panics
    ///
    /// Panics if `terminals < 2`.
    pub fn random(terminals: usize, rng: &mut SmallRng) -> Self {
        assert!(terminals >= 2, "permutation needs >= 2 terminals");
        'retry: loop {
            let mut map: Vec<u32> = (0..terminals as u32).collect();
            // Fisher-Yates shuffle.
            for i in (1..terminals).rev() {
                let j = rng.gen_range(0..=i);
                map.swap(i, j);
            }
            for (i, &d) in map.iter().enumerate() {
                if d as usize == i {
                    continue 'retry;
                }
            }
            return Permutation { map };
        }
    }
}

impl TrafficPattern for Permutation {
    fn name(&self) -> &'static str {
        "permutation"
    }

    fn num_terminals(&self) -> usize {
        self.map.len()
    }

    fn destination(&self, source: usize, _rng: &mut SmallRng) -> usize {
        self.map[source] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng_for;

    #[test]
    fn uniform_never_hits_source_and_covers_range() {
        let ur = UniformRandom::new(16);
        let mut rng = rng_for(3, 0);
        let mut hit = [false; 16];
        for _ in 0..2000 {
            let d = ur.destination(5, &mut rng);
            assert_ne!(d, 5);
            hit[d] = true;
        }
        let covered = hit.iter().filter(|&&h| h).count();
        assert_eq!(covered, 15, "all non-source terminals reachable");
    }

    #[test]
    fn uniform_is_roughly_uniform() {
        let n = 8;
        let ur = UniformRandom::new(n);
        let mut rng = rng_for(9, 0);
        let mut counts = vec![0usize; n];
        let trials = 70_000;
        for _ in 0..trials {
            counts[ur.destination(0, &mut rng)] += 1;
        }
        let expected = trials as f64 / (n - 1) as f64;
        for (d, &c) in counts.iter().enumerate().skip(1) {
            let err = (c as f64 - expected).abs() / expected;
            assert!(err < 0.05, "dest {d}: count {c} vs expected {expected}");
        }
    }

    #[test]
    fn adversarial_targets_next_group_only() {
        let wc = GroupAdversarial::next_group(72, 8);
        let mut rng = rng_for(1, 0);
        for src in 0..72 {
            for _ in 0..20 {
                let d = wc.destination(src, &mut rng);
                assert_eq!(d / 8, (src / 8 + 1) % 9, "src {src} dest {d}");
            }
        }
    }

    #[test]
    fn adversarial_wraps_last_group() {
        let wc = GroupAdversarial::next_group(24, 8);
        let mut rng = rng_for(2, 0);
        let d = wc.destination(23, &mut rng);
        assert!(d < 8, "last group wraps to group 0, got {d}");
    }

    #[test]
    fn group_tornado_offset() {
        let t = GroupAdversarial::tornado(90, 10); // 9 groups -> offset 4
        assert_eq!(t.offset(), 4);
    }

    #[test]
    #[should_panic(expected = "maps groups onto themselves")]
    fn adversarial_zero_offset_panics() {
        GroupAdversarial::new(72, 8, 9);
    }

    #[test]
    fn bit_complement_is_involution() {
        let bc = BitComplement::new(64);
        let mut rng = rng_for(0, 0);
        for s in 0..64 {
            let d = bc.destination(s, &mut rng);
            assert_eq!(bc.destination(d, &mut rng), s);
            assert_ne!(d, s);
        }
    }

    #[test]
    fn shift_and_tornado() {
        let mut rng = rng_for(0, 0);
        let sh = Shift::new(10, 3);
        assert_eq!(sh.destination(9, &mut rng), 2);
        let t = Tornado::new(10);
        assert_eq!(t.destination(0, &mut rng), 4);
    }

    #[test]
    fn random_permutation_is_derangement() {
        let mut rng = rng_for(5, 0);
        let p = Permutation::random(33, &mut rng);
        let mut seen = [false; 33];
        for s in 0..33 {
            let d = p.destination(s, &mut rng);
            assert_ne!(d, s);
            assert!(!seen[d]);
            seen[d] = true;
        }
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn bad_permutation_panics() {
        Permutation::new(vec![1, 0, 1, 2]);
    }
}

#[cfg(test)]
mod transpose_tests {
    use super::*;
    use crate::rng_for;

    #[test]
    fn transpose_is_involution_off_diagonal() {
        let t = Transpose::new(64); // 8x8
        let mut rng = rng_for(0, 0);
        for s in 0..64 {
            let d = t.destination(s, &mut rng);
            assert_ne!(d, s);
            let (i, j) = (s >> 3, s & 7);
            if i != j {
                assert_eq!(d, (j << 3) | i, "source {s}");
                assert_eq!(t.destination(d, &mut rng), s);
            }
        }
    }

    #[test]
    fn transpose_diagonal_redirects_in_range() {
        let t = Transpose::new(16); // 4x4, diagonal 0,5,10,15
        let mut rng = rng_for(1, 0);
        for s in [0usize, 5, 10, 15] {
            for _ in 0..20 {
                let d = t.destination(s, &mut rng);
                assert!(d < 16);
                assert_ne!(d, s);
            }
        }
    }

    #[test]
    #[should_panic(expected = "even power")]
    fn odd_power_rejected() {
        Transpose::new(32);
    }
}
