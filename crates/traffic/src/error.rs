//! Typed configuration errors for traffic processes and workloads.

use std::fmt;

/// A traffic-process parameterisation that cannot be realised.
///
/// Returned instead of silently adjusting parameters: the caller asked
/// for a specific stochastic process, and handing back a different one
/// (longer bursts, clamped probabilities) corrupts experiments without
/// any signal. Maps onto `SimError::InvalidConfig` at the simulator
/// boundary.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// Mean burst length below one cycle.
    BurstTooShort {
        /// The requested mean burst length in cycles.
        burst_len: f64,
    },
    /// Duty cycle outside `(0, 1]`.
    DutyOutOfRange {
        /// The requested stationary on-fraction.
        duty: f64,
    },
    /// Average rate above the duty cycle: the in-burst rate would have
    /// to exceed one packet/cycle.
    RateExceedsDuty {
        /// The requested average injection rate.
        rate: f64,
        /// The requested stationary on-fraction.
        duty: f64,
    },
    /// The duty cycle cannot be realised at this burst length: the
    /// on-transition probability would exceed 1. The shortest feasible
    /// mean burst is `duty / (1 - duty)` cycles.
    UnrealisableDuty {
        /// The requested mean burst length in cycles.
        burst_len: f64,
        /// The requested stationary on-fraction.
        duty: f64,
        /// The minimum mean burst length that realises `duty`.
        min_burst_len: f64,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::BurstTooShort { burst_len } => {
                write!(f, "mean burst length {burst_len} is below one cycle")
            }
            ConfigError::DutyOutOfRange { duty } => {
                write!(f, "duty cycle {duty} outside (0, 1]")
            }
            ConfigError::RateExceedsDuty { rate, duty } => {
                write!(
                    f,
                    "rate {rate} > duty {duty}: in-burst rate would exceed 1 packet/cycle"
                )
            }
            ConfigError::UnrealisableDuty {
                burst_len,
                duty,
                min_burst_len,
            } => {
                write!(
                    f,
                    "duty {duty} is unrealisable at mean burst length {burst_len}: \
                     the on-transition probability would exceed 1 \
                     (shortest feasible mean burst is {min_burst_len} cycles)"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}
