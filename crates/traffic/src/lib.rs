//! Synthetic traffic patterns and injection processes.
//!
//! The dragonfly paper evaluates routing with synthetic traffic: packets
//! are injected by a Bernoulli process and destinations are drawn from a
//! pattern — *uniform random* for benign load and a *group-adversarial*
//! pattern (every node in group `i` sends to a random node in group
//! `i + 1`) as the worst case for minimal routing. This crate implements
//! those two plus the standard permutation patterns used throughout the
//! interconnection-network literature, and the injection processes that
//! drive them.
//!
//! # Example
//!
//! ```
//! use dfly_traffic::{GroupAdversarial, TrafficPattern, rng_for};
//!
//! // 72-terminal dragonfly with 8 terminals per group: group i -> i+1.
//! let wc = GroupAdversarial::next_group(72, 8);
//! let mut rng = rng_for(42, 0);
//! let dest = wc.destination(0, &mut rng);
//! assert!((8..16).contains(&dest)); // source group 0 targets group 1
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod injection;
mod pattern;
mod workload;

pub use error::ConfigError;
pub use injection::{Bernoulli, InjectionProcess, OnOff};
pub use pattern::{
    BitComplement, GroupAdversarial, Permutation, Shift, Tornado, TrafficPattern, Transpose,
    UniformRandom,
};
pub use workload::{
    AllReduce, AllReduceAlgo, AllToAll, Barrier, Delivery, Idle, MessageIntent, OpenLoop,
    RequestReply, Workload,
};

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Builds a deterministic small-state RNG from an experiment seed and a
/// stream index (e.g. one stream per terminal), so that runs are exactly
/// reproducible and streams are decorrelated.
pub fn rng_for(seed: u64, stream: u64) -> SmallRng {
    // SplitMix64 over (seed, stream) to derive a well-mixed 64-bit state.
    let mut z = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    SmallRng::seed_from_u64(z)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn rng_streams_are_deterministic() {
        let mut a = rng_for(1, 7);
        let mut b = rng_for(1, 7);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn rng_streams_differ() {
        let mut a = rng_for(1, 0);
        let mut b = rng_for(1, 1);
        let same = (0..16).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }
}
