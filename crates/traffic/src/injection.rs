//! Packet injection processes.

use rand::rngs::SmallRng;
use rand::Rng;

use crate::error::ConfigError;

/// Decides, cycle by cycle, whether a terminal injects a packet.
///
/// One process instance is held per terminal so that stateful processes
/// (e.g. [`OnOff`]) evolve independently per source.
pub trait InjectionProcess {
    /// Short name used in reports, e.g. `"bernoulli"`.
    fn name(&self) -> &'static str;

    /// The long-run average injection rate in packets/cycle/terminal.
    fn rate(&self) -> f64;

    /// Returns `true` if a packet is injected this cycle.
    fn inject(&mut self, rng: &mut SmallRng) -> bool;
}

/// Memoryless injection: a packet is generated each cycle with fixed
/// probability `rate` — the process used throughout the paper's
/// evaluation.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bernoulli {
    rate: f64,
}

impl Bernoulli {
    /// Creates a Bernoulli process with the given injection `rate` in
    /// packets/cycle (equivalently, fraction of terminal bandwidth).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= rate <= 1.0`.
    pub fn new(rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "injection rate {rate} outside [0, 1]"
        );
        Bernoulli { rate }
    }
}

impl InjectionProcess for Bernoulli {
    fn name(&self) -> &'static str {
        "bernoulli"
    }

    fn rate(&self) -> f64 {
        self.rate
    }

    fn inject(&mut self, rng: &mut SmallRng) -> bool {
        rng.gen_bool(self.rate)
    }
}

/// A two-state Markov-modulated (on/off) process producing bursty
/// traffic with the same average rate as a Bernoulli process.
///
/// While *on*, the terminal injects with probability `burst_rate`; while
/// *off* it injects nothing. State flips with the given transition
/// probabilities, giving mean burst length `1/p_off` cycles.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnOff {
    burst_rate: f64,
    p_on: f64,
    p_off: f64,
    on: bool,
}

impl OnOff {
    /// Creates an on/off process.
    ///
    /// * `burst_rate` — injection probability while on.
    /// * `p_on` — per-cycle probability of switching off → on.
    /// * `p_off` — per-cycle probability of switching on → off.
    ///
    /// # Panics
    ///
    /// Panics unless all three probabilities are in `(0, 1]` for the
    /// transitions and `[0, 1]` for the burst rate.
    pub fn new(burst_rate: f64, p_on: f64, p_off: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&burst_rate),
            "burst rate {burst_rate} outside [0, 1]"
        );
        assert!((0.0..=1.0).contains(&p_on) && p_on > 0.0, "bad p_on {p_on}");
        assert!(
            (0.0..=1.0).contains(&p_off) && p_off > 0.0,
            "bad p_off {p_off}"
        );
        OnOff {
            burst_rate,
            p_on,
            p_off,
            on: false,
        }
    }

    /// Creates an on/off process with average rate `rate` and mean burst
    /// length `burst_len` cycles, spending half the time in each state.
    ///
    /// # Panics
    ///
    /// Panics if `rate > 0.5` (the on-state rate would exceed 1) or
    /// `burst_len < 1.0`.
    pub fn with_rate(rate: f64, burst_len: f64) -> Self {
        assert!(rate <= 0.5, "on/off rate {rate} > 0.5 is unrealisable");
        assert!(burst_len >= 1.0, "burst length {burst_len} < 1");
        let p = 1.0 / burst_len;
        OnOff::new(2.0 * rate, p, p)
    }

    /// Creates a Markov on/off process with average rate `rate`, mean
    /// burst length `burst_len` cycles, and an explicit `duty` cycle —
    /// the stationary fraction of time spent on. During a burst the
    /// terminal injects at `rate / duty`, so small duties concentrate
    /// the same offered load into sharper transients; `duty = 0.5`
    /// reproduces [`OnOff::with_rate`].
    ///
    /// # Errors
    ///
    /// Returns a typed [`ConfigError`] if `burst_len < 1.0`, `duty` is
    /// outside `(0, 1]`, `rate > duty` (the in-burst rate would exceed
    /// 1 packet/cycle), or the duty cannot be realised at this burst
    /// length (the on-transition probability would exceed 1; the
    /// shortest feasible mean burst is `duty / (1 - duty)` cycles).
    /// Earlier revisions silently lengthened the bursts in that last
    /// case, handing back a different process than the one requested.
    pub fn with_rate_and_duty(rate: f64, burst_len: f64, duty: f64) -> Result<Self, ConfigError> {
        if burst_len.is_nan() || burst_len < 1.0 {
            return Err(ConfigError::BurstTooShort { burst_len });
        }
        if !(duty > 0.0 && duty <= 1.0) {
            return Err(ConfigError::DutyOutOfRange { duty });
        }
        if rate.is_nan() || rate > duty {
            return Err(ConfigError::RateExceedsDuty { rate, duty });
        }
        if duty >= 1.0 {
            // Degenerate always-on case: never leave the on state.
            // A mean off-gap of zero cycles is not expressible with a
            // geometric transition, so model it as plain Bernoulli-like
            // behaviour with p_on = 1 and an unreachable p_off path.
            return Ok(OnOff {
                burst_rate: rate,
                p_on: 1.0,
                p_off: f64::MIN_POSITIVE,
                on: true,
            });
        }
        // Stationary duty = p_on / (p_on + p_off); solve for p_on. If
        // the requested burst length is too short to realise the duty
        // (p_on would exceed 1), reject: the only fix that keeps the
        // rate is lengthening the bursts, and that is the caller's
        // decision to make, not a silent substitution.
        let p_off = 1.0 / burst_len;
        let p_on = p_off * duty / (1.0 - duty);
        if p_on > 1.0 {
            return Err(ConfigError::UnrealisableDuty {
                burst_len,
                duty,
                min_burst_len: duty / (1.0 - duty),
            });
        }
        Ok(OnOff::new(rate / duty, p_on, p_off))
    }
}

impl InjectionProcess for OnOff {
    fn name(&self) -> &'static str {
        "on-off"
    }

    fn rate(&self) -> f64 {
        let duty = self.p_on / (self.p_on + self.p_off);
        self.burst_rate * duty
    }

    fn inject(&mut self, rng: &mut SmallRng) -> bool {
        let flip = rng.gen_bool(if self.on { self.p_off } else { self.p_on });
        if flip {
            self.on = !self.on;
        }
        self.on && rng.gen_bool(self.burst_rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng_for;

    #[test]
    fn bernoulli_long_run_rate() {
        let mut p = Bernoulli::new(0.3);
        let mut rng = rng_for(11, 0);
        let n = 200_000;
        let hits = (0..n).filter(|_| p.inject(&mut rng)).count();
        let measured = hits as f64 / n as f64;
        assert!((measured - 0.3).abs() < 0.01, "measured {measured}");
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = rng_for(0, 0);
        let mut zero = Bernoulli::new(0.0);
        let mut one = Bernoulli::new(1.0);
        for _ in 0..100 {
            assert!(!zero.inject(&mut rng));
            assert!(one.inject(&mut rng));
        }
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn bernoulli_rejects_bad_rate() {
        Bernoulli::new(1.5);
    }

    #[test]
    fn on_off_long_run_rate() {
        let mut p = OnOff::with_rate(0.25, 20.0);
        assert!((p.rate() - 0.25).abs() < 1e-12);
        let mut rng = rng_for(13, 0);
        let n = 400_000;
        let hits = (0..n).filter(|_| p.inject(&mut rng)).count();
        let measured = hits as f64 / n as f64;
        assert!((measured - 0.25).abs() < 0.01, "measured {measured}");
    }

    #[test]
    fn markov_on_off_duty_preserves_rate() {
        for duty in [0.125, 0.25, 0.5, 0.75] {
            let mut p = OnOff::with_rate_and_duty(0.1, 16.0, duty).unwrap();
            assert!(
                (p.rate() - 0.1).abs() < 1e-9,
                "duty {duty}: rate {}",
                p.rate()
            );
            let mut rng = rng_for(19, duty.to_bits());
            let n = 400_000;
            let hits = (0..n).filter(|_| p.inject(&mut rng)).count();
            let measured = hits as f64 / n as f64;
            assert!(
                (measured - 0.1).abs() < 0.01,
                "duty {duty}: measured {measured}"
            );
        }
    }

    #[test]
    fn markov_on_off_half_duty_matches_with_rate() {
        assert_eq!(
            OnOff::with_rate_and_duty(0.2, 16.0, 0.5).unwrap(),
            OnOff::with_rate(0.2, 16.0)
        );
    }

    #[test]
    fn markov_on_off_short_bursts_rejected_with_typed_error() {
        // duty 0.9 with burst length 2 is unrealisable (p_on would be
        // 4.5); earlier revisions silently lengthened the bursts, now
        // the constructor reports exactly what was infeasible and the
        // shortest burst that would work.
        let err = OnOff::with_rate_and_duty(0.45, 2.0, 0.9).unwrap_err();
        match err {
            ConfigError::UnrealisableDuty {
                burst_len,
                duty,
                min_burst_len,
            } => {
                assert_eq!(burst_len, 2.0);
                assert_eq!(duty, 0.9);
                assert!((min_burst_len - 9.0).abs() < 1e-9, "min {min_burst_len}");
            }
            other => panic!("wrong error variant: {other:?}"),
        }
        assert!(err.to_string().contains("unrealisable"), "{err}");
        // Just above the reported minimum the construction succeeds.
        let p = OnOff::with_rate_and_duty(0.45, 10.0, 0.9).unwrap();
        assert!((p.rate() - 0.45).abs() < 1e-9, "rate {}", p.rate());
    }

    #[test]
    fn markov_on_off_feasible_duty_accepted() {
        // Ok path for the former clamping branch: long enough bursts
        // realise the duty exactly, with the requested rate.
        let mut p = OnOff::with_rate_and_duty(0.45, 16.0, 0.9).unwrap();
        assert!((p.rate() - 0.45).abs() < 1e-9, "rate {}", p.rate());
        let mut rng = rng_for(23, 0);
        let n = 400_000;
        let hits = (0..n).filter(|_| p.inject(&mut rng)).count();
        let measured = hits as f64 / n as f64;
        assert!((measured - 0.45).abs() < 0.01, "measured {measured}");
    }

    #[test]
    fn markov_on_off_full_duty_is_steady() {
        let mut p = OnOff::with_rate_and_duty(0.3, 8.0, 1.0).unwrap();
        assert!((p.rate() - 0.3).abs() < 1e-9);
        let mut rng = rng_for(29, 0);
        let n = 200_000;
        let hits = (0..n).filter(|_| p.inject(&mut rng)).count();
        let measured = hits as f64 / n as f64;
        assert!((measured - 0.3).abs() < 0.01, "measured {measured}");
    }

    #[test]
    fn markov_on_off_rejects_rate_above_duty() {
        assert_eq!(
            OnOff::with_rate_and_duty(0.5, 8.0, 0.25).unwrap_err(),
            ConfigError::RateExceedsDuty {
                rate: 0.5,
                duty: 0.25
            }
        );
        assert_eq!(
            OnOff::with_rate_and_duty(0.2, 0.5, 0.5).unwrap_err(),
            ConfigError::BurstTooShort { burst_len: 0.5 }
        );
        assert_eq!(
            OnOff::with_rate_and_duty(0.2, 8.0, 1.5).unwrap_err(),
            ConfigError::DutyOutOfRange { duty: 1.5 }
        );
    }

    #[test]
    fn on_off_is_bursty() {
        // Consecutive-injection probability should exceed the Bernoulli
        // baseline at the same rate.
        let mut p = OnOff::with_rate(0.2, 50.0);
        let mut rng = rng_for(17, 0);
        let mut prev = false;
        let (mut pairs, mut after) = (0usize, 0usize);
        for _ in 0..400_000 {
            let now = p.inject(&mut rng);
            if prev {
                pairs += 1;
                if now {
                    after += 1;
                }
            }
            prev = now;
        }
        let cond = after as f64 / pairs as f64;
        assert!(cond > 0.3, "conditional rate {cond} not bursty");
    }
}
