//! Closed-loop workloads: traffic whose injection depends on deliveries.
//!
//! The injection processes in [`crate::injection`] are *open-loop*: a
//! terminal decides to inject from a coin flip, blind to what the
//! network delivers. Real applications are not — a rank cannot leave a
//! barrier before the release reaches it, an all-reduce step waits for
//! its partner's chunk, a client stalls on outstanding replies. The
//! [`Workload`] trait closes the loop: the simulator *offers* each
//! terminal the chance to inject every cycle and *notifies* workloads
//! of deliveries, so injection becomes a function of progress.
//!
//! # Contract
//!
//! The engine calls [`Workload::offer`] once per local terminal per
//! cycle, in ascending terminal order, and [`Workload::delivered`] for
//! each delivered packet — once at the destination terminal (the
//! message arrived) and once at the source terminal (the send
//! completed), in a canonical order (ascending packet id, then
//! terminal) regardless of how the simulation is sharded. One workload
//! instance exists *per engine shard*; instances coordinate only
//! through simulated messages, never shared state, which is what keeps
//! sharded runs bit-identical. All state must therefore be partitioned
//! by terminal: an instance may only consult state of terminals it has
//! been offered.
//!
//! Determinism: `offer` may draw from the per-terminal RNG it is
//! handed, but must not consult any other source of randomness or
//! global mutable state.

use std::collections::{BTreeMap, VecDeque};

use rand::rngs::SmallRng;

use crate::injection::InjectionProcess;
use crate::pattern::TrafficPattern;

/// A packet a workload wants injected at a terminal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MessageIntent {
    /// Destination terminal.
    pub dest: usize,
    /// Application tag, carried by the packet and handed back in the
    /// delivery notification. Meaning is private to the workload.
    pub tag: u32,
    /// Whether work-complete termination waits on this packet. Open
    /// background traffic sets `false` so it never blocks termination.
    pub tracked: bool,
}

/// A delivered packet, as reported to [`Workload::delivered`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// Source terminal.
    pub src: usize,
    /// Destination terminal.
    pub dest: usize,
    /// The tag from the originating [`MessageIntent`].
    pub tag: u32,
    /// Global packet id (identical at any shard count).
    pub packet: u64,
    /// Cycle the packet was generated.
    pub created: u64,
}

/// A closed-loop traffic source driven by the simulator.
///
/// See the module-level docs for the engine contract.
pub trait Workload {
    /// Short name used in reports, e.g. `"barrier"`.
    fn name(&self) -> &'static str;

    /// Asks `terminal` whether it injects a packet at `cycle`. Called
    /// once per local terminal per cycle, in ascending terminal order.
    /// `rng` is the terminal's private deterministic stream.
    fn offer(&mut self, terminal: usize, cycle: u64, rng: &mut SmallRng) -> Option<MessageIntent>;

    /// Reports a delivery. Called once with `terminal == msg.dest`
    /// (the message arrived there) and — if [`Self::wants_delivery`] —
    /// once with `terminal == msg.src` (that terminal's send
    /// completed). `cycle` is the arrival cycle.
    fn delivered(&mut self, terminal: usize, msg: &Delivery, cycle: u64);

    /// Whether the engine should route delivery notifications to this
    /// workload at all. Open-loop adapters return `false`, which makes
    /// the notification path free for every pre-existing sweep.
    fn wants_delivery(&self) -> bool {
        true
    }

    /// `true` once every terminal this instance has been offered is
    /// finished. Drives the engine's `Termination::WorkComplete` runs;
    /// open-ended
    /// workloads return `false` forever.
    fn all_done(&self) -> bool {
        false
    }
}

/// A workload that never injects and is immediately done. Useful as the
/// background of a partial placement.
#[derive(Debug, Clone, Copy, Default)]
pub struct Idle;

impl Workload for Idle {
    fn name(&self) -> &'static str {
        "idle"
    }

    fn offer(&mut self, _: usize, _: u64, _: &mut SmallRng) -> Option<MessageIntent> {
        None
    }

    fn delivered(&mut self, _: usize, _: &Delivery, _: u64) {}

    fn wants_delivery(&self) -> bool {
        false
    }

    fn all_done(&self) -> bool {
        true
    }
}

/// Open-loop adapter: wraps a classic [`InjectionProcess`] + traffic
/// pattern pair as a [`Workload`].
///
/// Reproduces the pre-workload engine draw order exactly — one
/// injection draw per terminal per cycle, then one destination draw if
/// it fired, both from the terminal's own RNG — so every historical
/// sweep stays bit-identical through this adapter.
pub struct OpenLoop<'a, P> {
    /// Per-terminal process states, indexed by `terminal - base`.
    procs: Vec<P>,
    /// First terminal this instance is responsible for.
    base: usize,
    pattern: &'a dyn TrafficPattern,
    tracked: bool,
}

impl<'a, P: InjectionProcess + Clone> OpenLoop<'a, P> {
    /// Builds an adapter for the terminals in `range`, each starting
    /// from a fresh clone of `proto` (matching the engine's historical
    /// one-process-per-terminal setup).
    pub fn new(proto: &P, range: std::ops::Range<usize>, pattern: &'a dyn TrafficPattern) -> Self {
        OpenLoop {
            procs: vec![proto.clone(); range.len()],
            base: range.start,
            pattern,
            tracked: true,
        }
    }

    /// Marks generated packets as untracked: under work-complete
    /// termination they never block the run from ending. Use for
    /// background load behind a finite foreground job.
    pub fn untracked(mut self) -> Self {
        self.tracked = false;
        self
    }
}

impl<P: InjectionProcess + Clone> Workload for OpenLoop<'_, P> {
    fn name(&self) -> &'static str {
        "open-loop"
    }

    fn offer(&mut self, terminal: usize, _cycle: u64, rng: &mut SmallRng) -> Option<MessageIntent> {
        if !self.procs[terminal - self.base].inject(rng) {
            return None;
        }
        Some(MessageIntent {
            dest: self.pattern.destination(terminal, rng),
            tag: 0,
            tracked: self.tracked,
        })
    }

    fn delivered(&mut self, _: usize, _: &Delivery, _: u64) {}

    fn wants_delivery(&self) -> bool {
        false
    }
}

/// Rank bookkeeping shared by the collective workloads: member list,
/// terminal → rank lookup, and which ranks are local to this instance.
#[derive(Debug, Clone)]
struct Membership {
    members: Vec<usize>,
    rank_of: BTreeMap<usize, usize>,
    /// Ranks this shard instance has been offered; only their
    /// done-ness counts towards [`Workload::all_done`].
    local: Vec<bool>,
}

impl Membership {
    fn new(members: Vec<usize>) -> Self {
        assert!(!members.is_empty(), "collective with no members");
        let rank_of: BTreeMap<usize, usize> =
            members.iter().enumerate().map(|(r, &t)| (t, r)).collect();
        assert_eq!(rank_of.len(), members.len(), "duplicate member terminal");
        let n = members.len();
        Membership {
            members,
            rank_of,
            local: vec![false; n],
        }
    }

    fn n(&self) -> usize {
        self.members.len()
    }

    /// Rank of `terminal`, marking it local when `touch` is set.
    fn rank(&mut self, terminal: usize, touch: bool) -> Option<usize> {
        let r = *self.rank_of.get(&terminal)?;
        if touch {
            self.local[r] = true;
        }
        Some(r)
    }

    fn all_local_done(&self, done: impl Fn(usize) -> bool) -> bool {
        self.local.iter().enumerate().all(|(r, &l)| !l || done(r))
    }
}

fn intent(dest: usize, tag: u32) -> MessageIntent {
    MessageIntent {
        dest,
        tag,
        tracked: true,
    }
}

/// Tag namespace helpers: high byte is the message kind, low 24 bits
/// the round / step / sequence number.
const KIND_SHIFT: u32 = 24;
const KIND_MASK: u32 = 0xff << KIND_SHIFT;

fn tag_of(kind: u32, seq: u32) -> u32 {
    debug_assert!(seq < (1 << KIND_SHIFT), "sequence {seq} overflows tag");
    (kind << KIND_SHIFT) | seq
}

fn tag_kind(tag: u32) -> u32 {
    (tag & KIND_MASK) >> KIND_SHIFT
}

fn tag_seq(tag: u32) -> u32 {
    tag & !KIND_MASK
}

const ARRIVE: u32 = 1;
const RELEASE: u32 = 2;
const REQUEST: u32 = 1;
const REPLY: u32 = 2;

#[derive(Debug, Clone, Default)]
struct BarrierMember {
    /// Current barrier iteration (0-based).
    round: u32,
    /// Non-root: sent this round's arrive message.
    sent_arrive: bool,
}

/// A centralised barrier, repeated `iterations` times.
///
/// Every non-root member sends an `ARRIVE` message to the root
/// (rank 0); once all have arrived the root fans out one `RELEASE` per
/// member per cycle. A member enters iteration `i + 1` only after its
/// iteration-`i` release is delivered — the textbook closed loop: the
/// barrier's exit time *is* the network's round-trip behaviour under
/// whatever else is loading it.
#[derive(Debug, Clone)]
pub struct Barrier {
    mem: Membership,
    iterations: u32,
    state: Vec<BarrierMember>,
    /// Root-side arrival counts, indexed by round.
    arrivals: Vec<u32>,
    /// Root-side pending release sends (dest terminal, tag).
    outbox: VecDeque<(usize, u32)>,
    /// Rounds the root has finished counting (releases queued).
    root_round: u32,
}

impl Barrier {
    /// A barrier over `members` (first member is the root), executed
    /// `iterations` times back to back.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty or contains duplicates, or if
    /// `iterations` is 0 or overflows the tag's 24-bit round space.
    pub fn new(members: Vec<usize>, iterations: u32) -> Self {
        assert!(iterations >= 1, "barrier with zero iterations");
        assert!(iterations < (1 << KIND_SHIFT), "too many iterations");
        let mem = Membership::new(members);
        let n = mem.n();
        Barrier {
            mem,
            iterations,
            state: vec![BarrierMember::default(); n],
            arrivals: vec![0; iterations as usize],
            outbox: VecDeque::new(),
            root_round: 0,
        }
    }

    /// Queues releases for every round whose arrivals are complete.
    fn root_advance(&mut self) {
        let n = self.mem.n() as u32;
        while self.root_round < self.iterations && self.arrivals[self.root_round as usize] == n - 1
        {
            for &t in &self.mem.members[1..] {
                self.outbox.push_back((t, tag_of(RELEASE, self.root_round)));
            }
            self.root_round += 1;
        }
    }

    fn member_done(&self, r: usize) -> bool {
        if r == 0 {
            self.root_round == self.iterations && self.outbox.is_empty()
        } else {
            self.state[r].round == self.iterations
        }
    }
}

impl Workload for Barrier {
    fn name(&self) -> &'static str {
        "barrier"
    }

    fn offer(
        &mut self,
        terminal: usize,
        _cycle: u64,
        _rng: &mut SmallRng,
    ) -> Option<MessageIntent> {
        let r = self.mem.rank(terminal, true)?;
        if r == 0 {
            // Root: a single-member barrier completes rounds with no
            // messages at all, so try advancing even before traffic.
            self.root_advance();
            let (dest, tag) = self.outbox.pop_front()?;
            return Some(intent(dest, tag));
        }
        let m = &mut self.state[r];
        if m.round < self.iterations && !m.sent_arrive {
            m.sent_arrive = true;
            return Some(intent(self.mem.members[0], tag_of(ARRIVE, m.round)));
        }
        None
    }

    fn delivered(&mut self, terminal: usize, msg: &Delivery, _cycle: u64) {
        if terminal != msg.dest {
            return; // send-completion echo: the barrier acts on receipt
        }
        let Some(r) = self.mem.rank(terminal, false) else {
            return;
        };
        let (kind, seq) = (tag_kind(msg.tag), tag_seq(msg.tag));
        if r == 0 {
            debug_assert_eq!(kind, ARRIVE);
            self.arrivals[seq as usize] += 1;
            self.root_advance();
        } else {
            debug_assert_eq!(kind, RELEASE);
            let m = &mut self.state[r];
            debug_assert_eq!(seq, m.round, "release for a round not waited on");
            m.round += 1;
            m.sent_arrive = false;
        }
    }

    fn all_done(&self) -> bool {
        self.mem.all_local_done(|r| self.member_done(r))
    }
}

/// Message schedule of an [`AllReduce`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllReduceAlgo {
    /// Ring reduce-scatter + all-gather: `2(N-1)` steps, each member
    /// sending one chunk to its successor per step. Bandwidth-optimal,
    /// latency grows linearly in `N`.
    Ring,
    /// Recursive doubling: `log2 N` steps, step `s` pairing rank `r`
    /// with `r XOR 2^s`. Requires a power-of-two member count.
    RecursiveDoubling,
}

#[derive(Debug, Clone)]
struct AllReduceMember {
    step: u32,
    sent: bool,
    /// Chunks received, indexed by step tag (out-of-order tolerant:
    /// adaptive routing reorders same-pair packets).
    recv: Vec<bool>,
}

/// An all-reduce collective over a set of terminals.
///
/// Each member advances through a fixed per-step message schedule and
/// may only leave step `s` after both sending its step-`s` chunk and
/// receiving the step-`s` chunk addressed to it. Completion time is
/// therefore the network's to deliver — under background interference
/// it stretches accordingly.
#[derive(Debug, Clone)]
pub struct AllReduce {
    mem: Membership,
    algo: AllReduceAlgo,
    steps: u32,
    state: Vec<AllReduceMember>,
}

impl AllReduce {
    /// Ring all-reduce over `members`: `2(N - 1)` steps.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty or contains duplicates.
    pub fn ring(members: Vec<usize>) -> Self {
        Self::with_algo(members, AllReduceAlgo::Ring)
    }

    /// Recursive-doubling all-reduce over `members`: `log2 N` steps.
    ///
    /// # Panics
    ///
    /// Panics if the member count is not a power of two, or on
    /// empty/duplicate members.
    pub fn recursive_doubling(members: Vec<usize>) -> Self {
        assert!(
            members.len().is_power_of_two(),
            "recursive doubling needs a power-of-two member count, got {}",
            members.len()
        );
        Self::with_algo(members, AllReduceAlgo::RecursiveDoubling)
    }

    fn with_algo(members: Vec<usize>, algo: AllReduceAlgo) -> Self {
        let mem = Membership::new(members);
        let n = mem.n();
        let steps = match algo {
            AllReduceAlgo::Ring => 2 * (n as u32 - 1),
            AllReduceAlgo::RecursiveDoubling => n.trailing_zeros(),
        };
        AllReduce {
            mem,
            algo,
            steps,
            state: vec![
                AllReduceMember {
                    step: 0,
                    sent: false,
                    recv: vec![false; steps as usize],
                };
                n
            ],
        }
    }

    fn peer(&self, rank: usize, step: u32) -> usize {
        let n = self.mem.n();
        match self.algo {
            AllReduceAlgo::Ring => self.mem.members[(rank + 1) % n],
            AllReduceAlgo::RecursiveDoubling => self.mem.members[rank ^ (1usize << step)],
        }
    }
}

impl Workload for AllReduce {
    fn name(&self) -> &'static str {
        match self.algo {
            AllReduceAlgo::Ring => "all-reduce/ring",
            AllReduceAlgo::RecursiveDoubling => "all-reduce/rd",
        }
    }

    fn offer(
        &mut self,
        terminal: usize,
        _cycle: u64,
        _rng: &mut SmallRng,
    ) -> Option<MessageIntent> {
        let r = self.mem.rank(terminal, true)?;
        loop {
            let m = &mut self.state[r];
            if m.step == self.steps {
                return None;
            }
            if !m.sent {
                m.sent = true;
                let step = m.step;
                return Some(intent(self.peer(r, step), step));
            }
            if m.recv[m.step as usize] {
                m.step += 1;
                m.sent = false;
                continue;
            }
            return None;
        }
    }

    fn delivered(&mut self, terminal: usize, msg: &Delivery, _cycle: u64) {
        if terminal != msg.dest {
            return;
        }
        let Some(r) = self.mem.rank(terminal, false) else {
            return;
        };
        self.state[r].recv[msg.tag as usize] = true;
    }

    fn all_done(&self) -> bool {
        // A member that has everything it needs still advances only on
        // its next offer; done-ness lags by at most one cycle, which is
        // deterministic and therefore harmless.
        self.mem
            .all_local_done(|r| self.state[r].step == self.steps)
    }
}

#[derive(Debug, Clone, Default)]
struct AllToAllMember {
    sent: u32,
    recv: u32,
}

/// A personalised all-to-all: every member sends one packet to each of
/// the other `N - 1` members, staggered one destination per cycle with
/// the classic `(rank + 1 + k) mod N` rotation so no destination is hit
/// by everyone at once.
#[derive(Debug, Clone)]
pub struct AllToAll {
    mem: Membership,
    state: Vec<AllToAllMember>,
}

impl AllToAll {
    /// An all-to-all exchange over `members`.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty or contains duplicates.
    pub fn new(members: Vec<usize>) -> Self {
        let mem = Membership::new(members);
        let n = mem.n();
        AllToAll {
            mem,
            state: vec![AllToAllMember::default(); n],
        }
    }
}

impl Workload for AllToAll {
    fn name(&self) -> &'static str {
        "all-to-all"
    }

    fn offer(
        &mut self,
        terminal: usize,
        _cycle: u64,
        _rng: &mut SmallRng,
    ) -> Option<MessageIntent> {
        let r = self.mem.rank(terminal, true)?;
        let n = self.mem.n();
        let m = &mut self.state[r];
        if (m.sent as usize) < n - 1 {
            let k = m.sent;
            m.sent += 1;
            return Some(intent(self.mem.members[(r + 1 + k as usize) % n], k));
        }
        None
    }

    fn delivered(&mut self, terminal: usize, msg: &Delivery, _cycle: u64) {
        if terminal != msg.dest {
            return;
        }
        if let Some(r) = self.mem.rank(terminal, false) {
            self.state[r].recv += 1;
        }
    }

    fn all_done(&self) -> bool {
        let need = self.mem.n() as u32 - 1;
        self.mem
            .all_local_done(|r| self.state[r].sent == need && self.state[r].recv == need)
    }
}

#[derive(Debug, Clone, Default)]
struct ClientState {
    issued: u32,
    completed: u32,
}

#[derive(Debug, Clone, Default)]
struct ServerState {
    /// Requests in service: (reply-ready cycle, client terminal, seq).
    queue: VecDeque<(u64, usize, u32)>,
}

/// A credit-gated request/reply service.
///
/// Each client issues `requests` requests against the server pool,
/// never holding more than `window` outstanding (the credit gate —
/// a client in the waiting state injects nothing until a reply lands).
/// Servers hold each request for `service_delay` cycles, then answer
/// one reply per cycle. Requests from client rank `c` round-robin over
/// servers starting at `c mod num_servers`.
#[derive(Debug, Clone)]
pub struct RequestReply {
    clients: Membership,
    servers: Membership,
    requests: u32,
    window: u32,
    service_delay: u64,
    cstate: Vec<ClientState>,
    sstate: Vec<ServerState>,
}

impl RequestReply {
    /// A service with the given client and server terminals.
    ///
    /// # Panics
    ///
    /// Panics on empty/duplicate member sets, a zero `window`, zero
    /// `requests`, a sequence space overflow, or a terminal that is
    /// both client and server.
    pub fn new(
        clients: Vec<usize>,
        servers: Vec<usize>,
        requests: u32,
        window: u32,
        service_delay: u64,
    ) -> Self {
        assert!(window >= 1, "zero-window client can never issue");
        assert!(requests >= 1, "zero-request service is vacuous");
        assert!(requests < (1 << KIND_SHIFT), "too many requests per client");
        let clients = Membership::new(clients);
        let servers = Membership::new(servers);
        for t in servers.rank_of.keys() {
            assert!(
                !clients.rank_of.contains_key(t),
                "terminal {t} is both client and server"
            );
        }
        let (nc, ns) = (clients.n(), servers.n());
        RequestReply {
            clients,
            servers,
            requests,
            window,
            service_delay,
            cstate: vec![ClientState::default(); nc],
            sstate: vec![ServerState::default(); ns],
        }
    }
}

impl Workload for RequestReply {
    fn name(&self) -> &'static str {
        "request-reply"
    }

    fn offer(&mut self, terminal: usize, cycle: u64, _rng: &mut SmallRng) -> Option<MessageIntent> {
        if let Some(r) = self.clients.rank(terminal, true) {
            let c = &mut self.cstate[r];
            if c.issued < self.requests && c.issued - c.completed < self.window {
                let seq = c.issued;
                c.issued += 1;
                let server = self.servers.members[(r + seq as usize) % self.servers.n()];
                return Some(intent(server, tag_of(REQUEST, seq)));
            }
            return None;
        }
        let r = self.servers.rank(terminal, true)?;
        let s = &mut self.sstate[r];
        match s.queue.front() {
            Some(&(ready, dest, seq)) if ready <= cycle => {
                s.queue.pop_front();
                Some(intent(dest, tag_of(REPLY, seq)))
            }
            _ => None,
        }
    }

    fn delivered(&mut self, terminal: usize, msg: &Delivery, cycle: u64) {
        if terminal != msg.dest {
            return;
        }
        let (kind, seq) = (tag_kind(msg.tag), tag_seq(msg.tag));
        if kind == REQUEST {
            if let Some(r) = self.servers.rank(terminal, false) {
                self.sstate[r]
                    .queue
                    .push_back((cycle + self.service_delay, msg.src, seq));
            }
        } else if let Some(r) = self.clients.rank(terminal, false) {
            debug_assert_eq!(kind, REPLY);
            self.cstate[r].completed += 1;
        }
    }

    fn all_done(&self) -> bool {
        self.clients
            .all_local_done(|r| self.cstate[r].completed == self.requests)
            && self
                .servers
                .all_local_done(|r| self.sstate[r].queue.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::injection::Bernoulli;
    use crate::pattern::UniformRandom;
    use crate::rng_for;

    /// A tiny in-test "network": every intent is delivered `latency`
    /// cycles later, notifying both endpoints, mirroring the engine's
    /// canonical ordering (packet id = issue order).
    fn drive(w: &mut dyn Workload, terminals: usize, latency: u64, max_cycles: u64) -> u64 {
        let mut rngs: Vec<SmallRng> = (0..terminals).map(|t| rng_for(1, t as u64)).collect();
        let mut in_flight: Vec<(u64, Delivery)> = Vec::new();
        let mut packet = 0u64;
        for cycle in 0..max_cycles {
            let due: Vec<Delivery> = {
                let (ready, rest): (Vec<_>, Vec<_>) =
                    in_flight.drain(..).partition(|(at, _)| *at <= cycle);
                in_flight = rest;
                let mut due: Vec<Delivery> = ready.into_iter().map(|(_, d)| d).collect();
                due.sort_by_key(|d| d.packet);
                due
            };
            for d in &due {
                w.delivered(d.dest, d, cycle);
                w.delivered(d.src, d, cycle);
            }
            for (t, rng) in rngs.iter_mut().enumerate() {
                if let Some(i) = w.offer(t, cycle, rng) {
                    let d = Delivery {
                        src: t,
                        dest: i.dest,
                        tag: i.tag,
                        packet,
                        created: cycle,
                    };
                    packet += 1;
                    in_flight.push((cycle + latency, d));
                }
            }
            if w.all_done() && in_flight.is_empty() {
                return cycle;
            }
        }
        panic!("workload did not complete in {max_cycles} cycles");
    }

    #[test]
    fn barrier_completes_and_scales_with_latency() {
        let fast = drive(&mut Barrier::new((0..8).collect(), 3), 8, 2, 10_000);
        let slow = drive(&mut Barrier::new((0..8).collect(), 3), 8, 20, 10_000);
        assert!(slow > fast, "barrier ignored network latency");
        // 3 iterations, each at least one arrive + release round trip.
        assert!(slow >= 3 * 2 * 20, "slow barrier finished too fast: {slow}");
    }

    #[test]
    fn single_member_barrier_is_immediate() {
        assert_eq!(drive(&mut Barrier::new(vec![5], 4), 8, 5, 100), 0);
    }

    #[test]
    fn all_reduce_ring_completes_in_step_order() {
        let n = 6;
        let done = drive(&mut AllReduce::ring((0..n).collect()), n, 3, 10_000);
        // 2(N-1) serialised steps, each at least one message latency.
        assert!(
            done as usize >= 2 * (n - 1) * 3,
            "finished too fast: {done}"
        );
    }

    #[test]
    fn all_reduce_recursive_doubling_is_logarithmic() {
        let ring = drive(&mut AllReduce::ring((0..16).collect()), 16, 4, 20_000);
        let rd = drive(
            &mut AllReduce::recursive_doubling((0..16).collect()),
            16,
            4,
            20_000,
        );
        assert!(
            rd < ring,
            "recursive doubling ({rd}) not faster than ring ({ring})"
        );
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn recursive_doubling_rejects_non_power_of_two() {
        AllReduce::recursive_doubling((0..6).collect());
    }

    #[test]
    fn all_to_all_sends_and_receives_everything() {
        let n = 5;
        let mut w = AllToAll::new((0..n).collect());
        drive(&mut w, n, 2, 10_000);
        for r in 0..n {
            assert_eq!(w.state[r].sent, n as u32 - 1);
            assert_eq!(w.state[r].recv, n as u32 - 1);
        }
    }

    #[test]
    fn request_reply_respects_window() {
        // One client, window 2: issue cycles must show at most two
        // outstanding at any time.
        let mut w = RequestReply::new(vec![0], vec![1], 10, 2, 0);
        let mut rng = rng_for(3, 0);
        let mut outstanding = 0u32;
        let mut max_seen = 0u32;
        let mut in_flight: Vec<(u64, Delivery)> = Vec::new();
        let mut packet = 0u64;
        for cycle in 0..2_000 {
            let (ready, rest): (Vec<_>, Vec<_>) =
                in_flight.drain(..).partition(|(at, _)| *at <= cycle);
            in_flight = rest;
            for (_, d) in ready {
                w.delivered(d.dest, &d, cycle);
                w.delivered(d.src, &d, cycle);
                if tag_kind(d.tag) == REPLY {
                    outstanding -= 1;
                }
            }
            for t in 0..2 {
                if let Some(i) = w.offer(t, cycle, &mut rng) {
                    if tag_kind(i.tag) == REQUEST {
                        outstanding += 1;
                        max_seen = max_seen.max(outstanding);
                    }
                    let d = Delivery {
                        src: t,
                        dest: i.dest,
                        tag: i.tag,
                        packet,
                        created: cycle,
                    };
                    packet += 1;
                    in_flight.push((cycle + 4, d));
                }
            }
            if w.all_done() && in_flight.is_empty() {
                assert_eq!(max_seen, 2, "window never reached");
                assert_eq!(w.cstate[0].completed, 10);
                return;
            }
        }
        panic!("request/reply never completed");
    }

    #[test]
    fn request_reply_service_delay_stretches_completion() {
        let fast = drive(
            &mut RequestReply::new(vec![0, 1], vec![2], 4, 1, 0),
            3,
            2,
            10_000,
        );
        let slow = drive(
            &mut RequestReply::new(vec![0, 1], vec![2], 4, 1, 25),
            3,
            2,
            10_000,
        );
        assert!(
            slow > fast + 50,
            "service delay had no effect: {fast} vs {slow}"
        );
    }

    #[test]
    fn open_loop_adapter_reproduces_process_draw_order() {
        let n = 8;
        let pattern = UniformRandom::new(n);
        let proto = Bernoulli::new(0.3);
        let mut w = OpenLoop::new(&proto, 0..n, &pattern);
        assert!(!w.wants_delivery());
        // Reference: the exact pre-workload engine sequence.
        for t in 0..n {
            let mut rng_a = rng_for(7, t as u64);
            let mut rng_b = rng_for(7, t as u64);
            let mut proc_t = proto;
            for cycle in 0..64 {
                let expect = if proc_t.inject(&mut rng_a) {
                    Some(pattern.destination(t, &mut rng_a))
                } else {
                    None
                };
                let got = w.offer(t, cycle, &mut rng_b).map(|i| i.dest);
                assert_eq!(got, expect, "terminal {t} cycle {cycle}");
            }
        }
    }

    #[test]
    fn workload_state_is_terminal_partitioned() {
        // Two instances over disjoint halves behave like one whole:
        // done-ness only consults offered terminals.
        let mut left = Barrier::new((0..4).collect(), 1);
        let mut right = Barrier::new((0..4).collect(), 1);
        let mut rng = rng_for(1, 0);
        for t in 0..2 {
            left.offer(t, 0, &mut rng);
        }
        for t in 2..4 {
            right.offer(t, 0, &mut rng);
        }
        assert!(!left.all_done(), "root still waiting on arrivals");
        assert!(!right.all_done(), "members still waiting on release");
    }
}
