//! Content-addressed campaign store: cached, resumable, streaming
//! sweeps.
//!
//! A *campaign* is a grid of independent simulation runs — the load ×
//! routing × traffic sweeps behind every figure, plus fault and
//! workload sweeps. Each cell is keyed by a [`CampaignKey`]: an FNV-1a
//! hash over a canonical description of **everything** the result
//! depends on (topology parameters, channel latencies, failed links,
//! routing choice, traffic choice, the full `SimConfig` including seed
//! and windows, the fault plan, and the code revision). Because every
//! run of the engine is a pure function of that description, a key that
//! matches means the stored result is bit-identical to what a fresh
//! simulation would produce.
//!
//! Results persist in an append-only JSON-lines journal
//! (`journal.jsonl`) plus a small `index.json` sidecar, both inside the
//! store directory. Completed cells stream to the journal the moment
//! they finish — a campaign killed mid-grid keeps everything it
//! already computed. Crash safety:
//!
//! * the journal is append-only and each entry is one line; a torn
//!   tail line (the process died mid-`write`) is detected on open and
//!   truncated away, sacrificing at most the one in-flight result;
//! * the sidecar is rewritten through [`atomic_write`] (temp file +
//!   `rename`), so readers never observe a half-written index;
//! * the journal is authoritative — `index.json` is advisory and
//!   rebuilt from a full journal scan on every open.
//!
//! Collision safety does not rest on the 64-bit hash alone: the full
//! canonical string is stored with every entry and compared on lookup,
//! so two configurations that collide in the hash can never satisfy
//! each other's lookups.
//!
//! Results are encoded with a hand-rolled, dependency-free token codec
//! ([`RunStats`] and friends have no serde here); `f64` fields are
//! stored as the 16-hex-digit image of [`f64::to_bits`], so decoded
//! results are bit-identical to the originals — which the determinism
//! tests assert at every shard count.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use dfly_netsim::{
    ChannelClass, ChannelLoad, ChannelSeries, EstimatorScoreboard, FaultPlan, FlitTrace, Histogram,
    InjectionKind, LatencySummary, LogHistogram, RouteTelemetry, RunStats, SimError, Termination,
    TimeSeries, TraceEvent, TraceEventKind,
};

use crate::experiment::DragonflySim;
use crate::jobs::{JobBook, JobError, Placement};
use crate::parallel::{FaultPoint, FaultSweep, RunPlan, WorkloadPoint, WorkloadSweep};

/// Version tag prefixed to every canonical key string and recorded in
/// the index. Bump it whenever the canonical encoding or the result
/// codec changes shape: old journal entries then simply never match.
const FORMAT_VERSION: &str = "dfly-campaign-v2";

/// Journal file name inside the store directory.
const JOURNAL_FILE: &str = "journal.jsonl";

/// Advisory index file name inside the store directory.
const INDEX_FILE: &str = "index.json";

/// Advisory per-cell timing sidecar inside the store directory. Wall
/// clock is non-deterministic, so timings never enter the journal:
/// they only seed progress ETAs and the doctor's overhead view.
const TIMINGS_FILE: &str = "timings.jsonl";

/// 64-bit FNV-1a over `bytes` — small, dependency-free, and stable
/// across platforms and releases.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Content-address of one campaign cell: the FNV-1a hash of its
/// canonical description plus the description itself. Lookups match on
/// **both**, so a hash collision between different configurations can
/// never produce a wrong cache hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignKey {
    /// FNV-1a hash of `canon` — the journal's index key.
    pub hash: u64,
    /// The full canonical description the hash was computed from.
    pub canon: String,
}

impl CampaignKey {
    /// Keys the given canonical description.
    pub fn from_canon(canon: String) -> Self {
        CampaignKey {
            hash: fnv1a(canon.as_bytes()),
            canon,
        }
    }
}

/// Why a campaign operation failed.
#[derive(Debug)]
pub enum CampaignError {
    /// The store directory or journal could not be read or written.
    Io(io::Error),
    /// The journal held an entry that parsed as JSON but not as a
    /// result payload.
    Corrupt(String),
    /// A cache miss re-simulated and the simulation rejected its
    /// configuration.
    Sim(SimError),
    /// A cache miss re-ran a workload point and the job mix could not
    /// be validated or placed.
    Job(JobError),
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::Io(e) => write!(f, "campaign store I/O error: {e}"),
            CampaignError::Corrupt(msg) => write!(f, "campaign journal corrupt: {msg}"),
            CampaignError::Sim(e) => write!(f, "campaign simulation error: {e}"),
            CampaignError::Job(e) => write!(f, "campaign workload error: {e}"),
        }
    }
}

impl std::error::Error for CampaignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CampaignError::Io(e) => Some(e),
            CampaignError::Sim(e) => Some(e),
            CampaignError::Job(e) => Some(e),
            CampaignError::Corrupt(_) => None,
        }
    }
}

impl From<io::Error> for CampaignError {
    fn from(e: io::Error) -> Self {
        CampaignError::Io(e)
    }
}

impl From<SimError> for CampaignError {
    fn from(e: SimError) -> Self {
        CampaignError::Sim(e)
    }
}

impl From<JobError> for CampaignError {
    fn from(e: JobError) -> Self {
        CampaignError::Job(e)
    }
}

/// Hit/miss tally of one cached sweep execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CampaignReport {
    /// Cells answered from the store without simulating.
    pub hits: usize,
    /// Cells simulated (and streamed to the journal).
    pub misses: usize,
}

impl CampaignReport {
    /// Total cells the sweep covered.
    pub fn total(&self) -> usize {
        self.hits + self.misses
    }
}

/// Writes `contents` to `path` atomically: the bytes land in a sibling
/// temp file first and replace `path` with a single `rename`, so a
/// crash mid-write can never leave a torn file under the final name.
pub fn atomic_write(path: impl AsRef<Path>, contents: &[u8]) -> io::Result<()> {
    let path = path.as_ref();
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp{}", std::process::id()));
    let tmp = PathBuf::from(tmp);
    let mut file = File::create(&tmp)?;
    file.write_all(contents)?;
    file.sync_all()?;
    drop(file);
    match fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// One decoded journal entry: a result of some `kind` under its full
/// canonical key.
struct JournalEntry {
    kind: String,
    canon: String,
    payload: String,
}

struct StoreInner {
    /// Hash → entries (usually one; more only under a hash collision).
    map: HashMap<u64, Vec<JournalEntry>>,
    /// Append handle on the journal.
    journal: File,
    /// Total entries held (across all hashes).
    entries: usize,
}

/// The on-disk campaign store: an append-only journal of completed
/// results plus an in-memory index keyed by [`CampaignKey`].
///
/// One store serves a whole process: lookups and inserts are
/// internally locked, so sweep workers on any number of threads can
/// stream results concurrently. Two *processes* should not append to
/// the same journal at once; the intended topology is one store
/// directory per campaign host (the default `target/campaign`).
pub struct CampaignStore {
    dir: PathBuf,
    revision: String,
    inner: Mutex<StoreInner>,
}

impl CampaignStore {
    /// Opens (creating if absent) the store in `dir`, recovering the
    /// journal: a torn tail line — from a crash mid-append — is
    /// truncated away, and undecodable interior lines are skipped.
    ///
    /// The code revision folded into every key is `DFLY_CODE_REV` when
    /// set, else this crate's version — so rebuilding after a version
    /// bump re-simulates instead of serving stale results.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, CampaignError> {
        let revision = std::env::var("DFLY_CODE_REV")
            .ok()
            .filter(|v| !v.is_empty())
            .unwrap_or_else(|| format!("v{}", env!("CARGO_PKG_VERSION")));
        Self::open_with_revision(dir, &revision)
    }

    /// [`CampaignStore::open`] with an explicit code revision.
    pub fn open_with_revision(
        dir: impl AsRef<Path>,
        revision: &str,
    ) -> Result<Self, CampaignError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let path = dir.join(JOURNAL_FILE);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e.into()),
        };
        // A crash mid-append leaves a line without its trailing
        // newline: cut the journal back to the last complete line.
        let mut valid_len = bytes.len();
        if valid_len > 0 && bytes[valid_len - 1] != b'\n' {
            valid_len = bytes[..valid_len]
                .iter()
                .rposition(|&b| b == b'\n')
                .map(|p| p + 1)
                .unwrap_or(0);
        }
        let text = String::from_utf8_lossy(&bytes[..valid_len]);
        let mut map: HashMap<u64, Vec<JournalEntry>> = HashMap::new();
        let mut entries = 0usize;
        let mut offset = 0usize;
        let mut keep_len = valid_len;
        for line in text.split_inclusive('\n') {
            match parse_journal_line(line.trim_end_matches('\n')) {
                Some(entry) => {
                    let hash = fnv1a(entry.canon.as_bytes());
                    map.entry(hash).or_default().push(entry);
                    entries += 1;
                }
                None => {
                    // A complete but undecodable *tail* line is the
                    // other torn-write shape (the newline made it, the
                    // body did not): truncate it away. Bad interior
                    // lines are skipped but preserved on disk.
                    if offset + line.len() == valid_len {
                        keep_len = offset;
                    }
                }
            }
            offset += line.len();
        }
        if keep_len < bytes.len() {
            let f = OpenOptions::new().write(true).open(&path)?;
            f.set_len(keep_len as u64)?;
            f.sync_all()?;
        }
        let journal = OpenOptions::new().create(true).append(true).open(&path)?;
        let store = CampaignStore {
            dir,
            revision: revision.to_string(),
            inner: Mutex::new(StoreInner {
                map,
                journal,
                entries,
            }),
        };
        store.write_index(entries)?;
        Ok(store)
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The code revision folded into every key.
    pub fn revision(&self) -> &str {
        &self.revision
    }

    /// Number of stored results.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("campaign store poisoned").entries
    }

    /// Whether the store holds no results.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn write_index(&self, entries: usize) -> Result<(), CampaignError> {
        let body = format!(
            "{{\"format\": \"{}\", \"revision\": \"{}\", \"entries\": {}}}\n",
            dfly_netsim::telemetry::json_escape(FORMAT_VERSION),
            dfly_netsim::telemetry::json_escape(&self.revision),
            entries
        );
        atomic_write(self.dir.join(INDEX_FILE), body.as_bytes())?;
        Ok(())
    }

    /// The stored payload for `key` under `kind`, if any. Matches on
    /// the full canonical string, not just the hash.
    fn lookup_payload(&self, kind: &str, key: &CampaignKey) -> Option<String> {
        let inner = self.inner.lock().expect("campaign store poisoned");
        inner.map.get(&key.hash).and_then(|entries| {
            entries
                .iter()
                .find(|e| e.kind == kind && e.canon == key.canon)
                .map(|e| e.payload.clone())
        })
    }

    /// Appends one result to the journal (idempotent: re-inserting an
    /// already-stored key is a no-op) and refreshes the index sidecar.
    fn insert_payload(
        &self,
        kind: &str,
        key: &CampaignKey,
        payload: String,
    ) -> Result<(), CampaignError> {
        let mut inner = self.inner.lock().expect("campaign store poisoned");
        if let Some(entries) = inner.map.get(&key.hash) {
            if entries
                .iter()
                .any(|e| e.kind == kind && e.canon == key.canon)
            {
                return Ok(());
            }
        }
        let line = format!(
            "{{\"kind\":\"{}\",\"key\":\"{:016x}\",\"canon\":\"{}\",\"payload\":\"{}\"}}\n",
            dfly_netsim::telemetry::json_escape(kind),
            key.hash,
            dfly_netsim::telemetry::json_escape(&key.canon),
            dfly_netsim::telemetry::json_escape(&payload)
        );
        inner.journal.write_all(line.as_bytes())?;
        inner.journal.flush()?;
        inner.map.entry(key.hash).or_default().push(JournalEntry {
            kind: kind.to_string(),
            canon: key.canon.clone(),
            payload,
        });
        inner.entries += 1;
        let entries = inner.entries;
        drop(inner);
        self.write_index(entries)
    }

    /// The stored [`RunStats`] for `key`, if present and decodable.
    pub fn lookup_run(&self, key: &CampaignKey) -> Option<RunStats> {
        self.lookup_payload("run", key)
            .and_then(|p| decode_with(&p, decode_run_stats))
    }

    /// Stores one run result under `key`.
    pub fn insert_run(&self, key: &CampaignKey, stats: &RunStats) -> Result<(), CampaignError> {
        let mut enc = Enc::new();
        encode_run_stats(&mut enc, stats);
        self.insert_payload("run", key, enc.finish())
    }

    /// The stored [`FaultPoint`] for `key`, if present and decodable.
    pub fn lookup_fault(&self, key: &CampaignKey) -> Option<FaultPoint> {
        self.lookup_payload("fault", key)
            .and_then(|p| decode_with(&p, decode_fault_point))
    }

    /// Stores one fault-sweep point under `key`.
    pub fn insert_fault(&self, key: &CampaignKey, point: &FaultPoint) -> Result<(), CampaignError> {
        let mut enc = Enc::new();
        encode_fault_point(&mut enc, point);
        self.insert_payload("fault", key, enc.finish())
    }

    /// The stored [`WorkloadPoint`] for `key`, if present and decodable.
    pub fn lookup_workload(&self, key: &CampaignKey) -> Option<WorkloadPoint> {
        self.lookup_payload("workload", key)
            .and_then(|p| decode_with(&p, decode_workload_point))
    }

    /// Stores one workload-sweep point under `key`.
    pub fn insert_workload(
        &self,
        key: &CampaignKey,
        point: &WorkloadPoint,
    ) -> Result<(), CampaignError> {
        let mut enc = Enc::new();
        encode_workload_point(&mut enc, point);
        self.insert_payload("workload", key, enc.finish())
    }

    /// Appends one cell's wall time to the advisory timing sidecar
    /// (`timings.jsonl`). Best-effort: timing loss never fails a sweep,
    /// so write errors are swallowed.
    pub fn record_timing(&self, kind: &str, secs: f64) {
        let line = format!(
            "{{\"kind\":\"{}\",\"secs\":{:.6}}}\n",
            dfly_netsim::telemetry::json_escape(kind),
            secs
        );
        if let Ok(mut f) = OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.dir.join(TIMINGS_FILE))
        {
            let _ = f.write_all(line.as_bytes());
        }
    }

    /// All journaled cell timings for `kind`, in append order. Missing
    /// or unparsable sidecar lines simply contribute nothing.
    pub fn timings(&self, kind: &str) -> Vec<f64> {
        let Ok(text) = fs::read_to_string(self.dir.join(TIMINGS_FILE)) else {
            return Vec::new();
        };
        let prefix = format!(
            "{{\"kind\":\"{}\",\"secs\":",
            dfly_netsim::telemetry::json_escape(kind)
        );
        text.lines()
            .filter_map(|line| {
                line.strip_prefix(prefix.as_str())?
                    .strip_suffix('}')?
                    .parse::<f64>()
                    .ok()
            })
            .collect()
    }

    /// Median journaled cell time for `kind`, if any — the prior that
    /// seeds a resumed sweep's ETA.
    pub fn median_timing(&self, kind: &str) -> Option<f64> {
        let mut secs = self.timings(kind);
        if secs.is_empty() {
            return None;
        }
        secs.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        Some(secs[secs.len() / 2])
    }

    /// The key of one [`RunPlan`] against `sim`'s exact network —
    /// topology parameters, channel latencies and failed links included,
    /// so a faulted network never shares keys with a healthy one.
    pub fn run_key(&self, sim: &DragonflySim, plan: &RunPlan) -> CampaignKey {
        let df = sim.dragonfly();
        CampaignKey::from_canon(format!(
            "{FORMAT_VERSION} kind=run rev={} params={:?} latencies={:?} failed={:?} \
             routing={:?} traffic={:?} cfg={:?}",
            self.revision,
            df.params(),
            df.latencies(),
            df.failed_links(),
            plan.routing,
            plan.traffic,
            plan.cfg
        ))
    }

    /// The key of one [`FaultSweep`] fraction. Mirrors the sweep's own
    /// per-point setup (offered load forced to 1.0, no drain) so the
    /// key covers exactly the configuration that runs.
    pub fn fault_key(&self, sweep: &FaultSweep, fraction: f64) -> CampaignKey {
        let mut cfg = sweep.cfg.clone();
        cfg.injection = InjectionKind::Bernoulli { rate: 1.0 };
        cfg.drain_cap = 0;
        let plan = FaultPlan::Random {
            fraction,
            seed: sweep.seed,
            class: sweep.class,
        };
        CampaignKey::from_canon(format!(
            "{FORMAT_VERSION} kind=fault rev={} params={:?} routing={:?} traffic={:?} \
             cfg={:?} plan={:?}",
            self.revision, sweep.params, sweep.routing, sweep.traffic, cfg, plan
        ))
    }

    /// The key of one [`WorkloadSweep`] point. Mirrors the sweep's own
    /// per-point setup (work-complete termination) and covers the full
    /// job mix, placement and background load.
    pub fn workload_key(
        &self,
        sweep: &WorkloadSweep,
        placement: Placement,
        load: f64,
    ) -> CampaignKey {
        let mut cfg = sweep.cfg.clone();
        cfg.termination = Termination::WorkComplete;
        CampaignKey::from_canon(format!(
            "{FORMAT_VERSION} kind=workload rev={} params={:?} routing={:?} jobs={:?} \
             cfg={:?} placement={:?} background={:?}",
            self.revision, sweep.params, sweep.routing, sweep.jobs, cfg, placement, load
        ))
    }

    /// Journal entries written by a superseded codec generation: their
    /// canon embeds the format version that produced them, so they can
    /// never match a current-format key and are permanent cache misses.
    /// The doctor subtracts them before judging decode coverage — an
    /// upgraded journal is healthy, a torn current-format payload is
    /// not.
    pub fn stale_len(&self) -> usize {
        let inner = self.inner.lock().expect("campaign store poisoned");
        inner
            .map
            .values()
            .flatten()
            .filter(|e| !e.canon.starts_with(FORMAT_VERSION))
            .count()
    }

    /// Decodes every journaled result for health inspection (see the
    /// `doctor` binary in the bench crate), in no particular order.
    /// Undecodable payloads are skipped, exactly as the lookup path
    /// treats them; entries from superseded codec generations (see
    /// [`CampaignStore::stale_len`]) are among the skipped.
    pub fn records(&self) -> Vec<JournalRecord> {
        let inner = self.inner.lock().expect("campaign store poisoned");
        let mut out = Vec::with_capacity(inner.entries);
        for entries in inner.map.values() {
            for e in entries {
                let stats = match e.kind.as_str() {
                    "run" => decode_with(&e.payload, decode_run_stats),
                    "fault" => decode_with(&e.payload, decode_fault_point).map(|p| p.stats),
                    "workload" => decode_with(&e.payload, decode_workload_point).map(|p| p.stats),
                    _ => None,
                };
                if let Some(stats) = stats {
                    out.push(JournalRecord {
                        kind: e.kind.clone(),
                        canon: e.canon.clone(),
                        stats,
                    });
                }
            }
        }
        out
    }
}

/// One journaled result decoded for health inspection: the entry kind,
/// the canonical key it is stored under (which embeds the full
/// `SimConfig` debug form), and the embedded run statistics.
#[derive(Debug, Clone)]
pub struct JournalRecord {
    /// Entry kind: `"run"`, `"fault"` or `"workload"`.
    pub kind: String,
    /// Canonical key string the result is stored under.
    pub canon: String,
    /// The run statistics inside the entry.
    pub stats: RunStats,
}

impl JournalRecord {
    /// Whether the cell was configured to drain at all: saturation
    /// probes run with `drain_cap: 0` and are exempt from drain
    /// verdicts.
    pub fn drain_expected(&self) -> bool {
        !self.canon.contains("drain_cap: 0")
    }
}

/// Parses one journal line of the exact shape
/// `{"kind":"…","key":"…","canon":"…","payload":"…"}`.
fn parse_journal_line(line: &str) -> Option<JournalEntry> {
    let rest = line.strip_prefix("{\"kind\":\"")?;
    let (kind, rest) = scan_json_string(rest)?;
    let rest = rest.strip_prefix(",\"key\":\"")?;
    let (key_hex, rest) = scan_json_string(rest)?;
    u64::from_str_radix(&key_hex, 16).ok()?;
    let rest = rest.strip_prefix(",\"canon\":\"")?;
    let (canon, rest) = scan_json_string(rest)?;
    let rest = rest.strip_prefix(",\"payload\":\"")?;
    let (payload, rest) = scan_json_string(rest)?;
    if rest != "}" {
        return None;
    }
    Some(JournalEntry {
        kind,
        canon,
        payload,
    })
}

/// Unescapes a JSON string starting right after its opening quote;
/// returns the content and the remainder after the closing quote.
fn scan_json_string(s: &str) -> Option<(String, &str)> {
    let mut out = String::new();
    let mut chars = s.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Some((out, &s[i + 1..])),
            '\\' => match chars.next()?.1 {
                '\\' => out.push('\\'),
                '"' => out.push('"'),
                'n' => out.push('\n'),
                'u' => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        code = code * 16 + chars.next()?.1.to_digit(16)?;
                    }
                    out.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
    None
}

// ---------------------------------------------------------------------
// Result codec: space-separated tokens, `f64` as the hex image of its
// bits. Encoding and decoding are exact inverses, so a journal round
// trip is bit-identical.
// ---------------------------------------------------------------------

/// Token encoder.
struct Enc {
    out: String,
}

impl Enc {
    fn new() -> Self {
        Enc { out: String::new() }
    }

    fn u64(&mut self, v: u64) {
        if !self.out.is_empty() {
            self.out.push(' ');
        }
        let _ = write!(self.out, "{v}");
    }

    fn u128(&mut self, v: u128) {
        if !self.out.is_empty() {
            self.out.push(' ');
        }
        let _ = write!(self.out, "{v}");
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn f64(&mut self, v: f64) {
        if !self.out.is_empty() {
            self.out.push(' ');
        }
        let _ = write!(self.out, "{:016x}", v.to_bits());
    }

    fn bool(&mut self, v: bool) {
        self.u64(u64::from(v));
    }

    fn finish(self) -> String {
        self.out
    }
}

/// Token decoder over a payload string.
struct Dec<'a> {
    toks: std::str::SplitAsciiWhitespace<'a>,
}

impl<'a> Dec<'a> {
    fn new(payload: &'a str) -> Self {
        Dec {
            toks: payload.split_ascii_whitespace(),
        }
    }

    fn u64(&mut self) -> Option<u64> {
        self.toks.next()?.parse().ok()
    }

    fn u128(&mut self) -> Option<u128> {
        self.toks.next()?.parse().ok()
    }

    fn usize(&mut self) -> Option<usize> {
        self.u64()?.try_into().ok()
    }

    fn u32(&mut self) -> Option<u32> {
        self.u64()?.try_into().ok()
    }

    fn u16(&mut self) -> Option<u16> {
        self.u64()?.try_into().ok()
    }

    fn u8(&mut self) -> Option<u8> {
        self.u64()?.try_into().ok()
    }

    fn f64(&mut self) -> Option<f64> {
        let tok = self.toks.next()?;
        if tok.len() != 16 {
            return None;
        }
        Some(f64::from_bits(u64::from_str_radix(tok, 16).ok()?))
    }

    fn bool(&mut self) -> Option<bool> {
        match self.u64()? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }

    /// Whether every token was consumed — a decode is valid only if it
    /// used the payload exactly.
    fn end(mut self) -> bool {
        self.toks.next().is_none()
    }
}

/// Runs `f` over a fresh decoder and demands exact consumption.
fn decode_with<T>(payload: &str, f: impl Fn(&mut Dec<'_>) -> Option<T>) -> Option<T> {
    let mut dec = Dec::new(payload);
    let value = f(&mut dec)?;
    dec.end().then_some(value)
}

fn encode_vec_u64(enc: &mut Enc, v: &[u64]) {
    enc.usize(v.len());
    for &x in v {
        enc.u64(x);
    }
}

fn decode_vec_u64(dec: &mut Dec<'_>) -> Option<Vec<u64>> {
    let len = dec.usize()?;
    let mut out = Vec::with_capacity(len.min(1 << 20));
    for _ in 0..len {
        out.push(dec.u64()?);
    }
    Some(out)
}

fn encode_class(enc: &mut Enc, class: ChannelClass) {
    enc.u64(match class {
        ChannelClass::Terminal => 0,
        ChannelClass::Local => 1,
        ChannelClass::Global => 2,
    });
}

fn decode_class(dec: &mut Dec<'_>) -> Option<ChannelClass> {
    match dec.u64()? {
        0 => Some(ChannelClass::Terminal),
        1 => Some(ChannelClass::Local),
        2 => Some(ChannelClass::Global),
        _ => None,
    }
}

fn encode_summary(enc: &mut Enc, s: &LatencySummary) {
    enc.u64(s.count);
    enc.u64(s.sum);
    enc.u128(s.sum_sq);
    enc.u64(s.max);
    enc.u64(s.min);
}

fn decode_summary(dec: &mut Dec<'_>) -> Option<LatencySummary> {
    Some(LatencySummary {
        count: dec.u64()?,
        sum: dec.u64()?,
        sum_sq: dec.u128()?,
        max: dec.u64()?,
        min: dec.u64()?,
    })
}

fn encode_histogram(enc: &mut Enc, h: &Histogram) {
    enc.u64(h.bucket_width());
    enc.u64(h.overflow());
    encode_vec_u64(enc, h.buckets());
}

fn decode_histogram(dec: &mut Dec<'_>) -> Option<Histogram> {
    let width = dec.u64()?;
    let overflow = dec.u64()?;
    let buckets = decode_vec_u64(dec)?;
    if width == 0 || buckets.is_empty() {
        return None;
    }
    Some(Histogram::from_parts(buckets, width, overflow))
}

fn encode_log_histogram(enc: &mut Enc, h: &LogHistogram) {
    enc.u64(h.count);
    enc.u64(h.sum);
    enc.u64(h.min);
    enc.u64(h.max);
    encode_vec_u64(enc, &h.buckets);
}

fn decode_log_histogram(dec: &mut Dec<'_>) -> Option<LogHistogram> {
    Some(LogHistogram {
        count: dec.u64()?,
        sum: dec.u64()?,
        min: dec.u64()?,
        max: dec.u64()?,
        buckets: decode_vec_u64(dec)?,
    })
}

fn encode_telemetry(enc: &mut Enc, t: &RouteTelemetry) {
    enc.u64(t.minimal_takes);
    enc.u64(t.non_minimal_takes);
    enc.u64(t.adaptive_decisions);
    enc.u64(t.estimator_disagreements);
    enc.u64(t.fault_avoided_decisions);
    enc.u64(t.dropped_candidates);
    enc.u64(t.oracle_probe_fallbacks);
}

fn decode_telemetry(dec: &mut Dec<'_>) -> Option<RouteTelemetry> {
    Some(RouteTelemetry {
        minimal_takes: dec.u64()?,
        non_minimal_takes: dec.u64()?,
        adaptive_decisions: dec.u64()?,
        estimator_disagreements: dec.u64()?,
        fault_avoided_decisions: dec.u64()?,
        dropped_candidates: dec.u64()?,
        oracle_probe_fallbacks: dec.u64()?,
    })
}

fn encode_scoreboard(enc: &mut Enc, s: &EstimatorScoreboard) {
    enc.u64(s.decisions);
    enc.u64(s.scored);
    enc.u64(s.oracle_disagreements);
    enc.u64(s.sum_estimate);
    enc.u64(s.sum_oracle);
    encode_log_histogram(enc, &s.abs_error);
}

fn decode_scoreboard(dec: &mut Dec<'_>) -> Option<EstimatorScoreboard> {
    Some(EstimatorScoreboard {
        decisions: dec.u64()?,
        scored: dec.u64()?,
        oracle_disagreements: dec.u64()?,
        sum_estimate: dec.u64()?,
        sum_oracle: dec.u64()?,
        abs_error: decode_log_histogram(dec)?,
    })
}

fn encode_channel_load(enc: &mut Enc, c: &ChannelLoad) {
    enc.usize(c.router);
    enc.usize(c.port);
    encode_class(enc, c.class);
    enc.u64(c.flits);
    enc.f64(c.utilization);
}

fn decode_channel_load(dec: &mut Dec<'_>) -> Option<ChannelLoad> {
    Some(ChannelLoad {
        router: dec.usize()?,
        port: dec.usize()?,
        class: decode_class(dec)?,
        flits: dec.u64()?,
        utilization: dec.f64()?,
    })
}

fn encode_series(enc: &mut Enc, s: &TimeSeries) {
    enc.u64(s.every);
    enc.u64(u64::from(s.vcs));
    encode_vec_u64(enc, &s.ticks);
    enc.usize(s.channels.len());
    for ch in &s.channels {
        enc.u64(u64::from(ch.router));
        enc.u64(u64::from(ch.port));
        encode_class(enc, ch.class);
        for col in [&ch.occupancy, &ch.vc_occupancy, &ch.credits] {
            enc.usize(col.len());
            for &v in col.iter() {
                enc.u64(u64::from(v));
            }
        }
        enc.usize(ch.sent.len());
        for &v in &ch.sent {
            enc.u64(u64::from(v));
        }
    }
}

fn decode_series(dec: &mut Dec<'_>) -> Option<TimeSeries> {
    let every = dec.u64()?;
    let vcs = dec.u8()?;
    let ticks = decode_vec_u64(dec)?;
    let nch = dec.usize()?;
    let mut channels = Vec::with_capacity(nch.min(1 << 20));
    for _ in 0..nch {
        let router = dec.u32()?;
        let port = dec.u16()?;
        let class = decode_class(dec)?;
        let mut cols: [Vec<u16>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for col in cols.iter_mut() {
            let len = dec.usize()?;
            col.reserve(len.min(1 << 20));
            for _ in 0..len {
                col.push(dec.u16()?);
            }
        }
        let [occupancy, vc_occupancy, credits] = cols;
        let len = dec.usize()?;
        let mut sent = Vec::with_capacity(len.min(1 << 20));
        for _ in 0..len {
            sent.push(dec.u32()?);
        }
        channels.push(ChannelSeries {
            router,
            port,
            class,
            occupancy,
            vc_occupancy,
            credits,
            sent,
        });
    }
    Some(TimeSeries {
        every,
        vcs,
        ticks,
        channels,
    })
}

fn encode_trace(enc: &mut Enc, t: &FlitTrace) {
    enc.f64(t.rate);
    enc.u64(t.seed);
    enc.usize(t.events.len());
    for ev in &t.events {
        enc.u64(ev.cycle);
        enc.u64(ev.packet);
        match &ev.kind {
            TraceEventKind::Inject {
                src,
                dest,
                minimal,
                q_chosen,
                oracle,
            } => {
                enc.u64(0);
                enc.u64(u64::from(*src));
                enc.u64(u64::from(*dest));
                enc.bool(*minimal);
                enc.u64(*q_chosen);
                enc.u64(*oracle);
            }
            TraceEventKind::Hop { router, port, vc } => {
                enc.u64(1);
                enc.u64(u64::from(*router));
                enc.u64(u64::from(*port));
                enc.u64(u64::from(*vc));
            }
            TraceEventKind::Eject { latency } => {
                enc.u64(2);
                enc.u64(*latency);
            }
        }
    }
}

fn decode_trace(dec: &mut Dec<'_>) -> Option<FlitTrace> {
    let rate = dec.f64()?;
    let seed = dec.u64()?;
    let n = dec.usize()?;
    let mut events = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let cycle = dec.u64()?;
        let packet = dec.u64()?;
        let kind = match dec.u64()? {
            0 => TraceEventKind::Inject {
                src: dec.u32()?,
                dest: dec.u32()?,
                minimal: dec.bool()?,
                q_chosen: dec.u64()?,
                oracle: dec.u64()?,
            },
            1 => TraceEventKind::Hop {
                router: dec.u32()?,
                port: dec.u16()?,
                vc: dec.u8()?,
            },
            2 => TraceEventKind::Eject {
                latency: dec.u64()?,
            },
            _ => return None,
        };
        events.push(TraceEvent {
            cycle,
            packet,
            kind,
        });
    }
    Some(FlitTrace { rate, seed, events })
}

fn encode_run_stats(enc: &mut Enc, s: &RunStats) {
    enc.u64(s.cycles);
    enc.f64(s.offered_load);
    enc.f64(s.injected_rate);
    enc.f64(s.accepted_rate);
    enc.bool(s.drained);
    encode_summary(enc, &s.latency);
    encode_summary(enc, &s.minimal_latency);
    encode_summary(enc, &s.non_minimal_latency);
    encode_summary(enc, &s.hops);
    encode_histogram(enc, &s.histogram);
    encode_histogram(enc, &s.minimal_histogram);
    enc.usize(s.channel_loads.len());
    for c in &s.channel_loads {
        encode_channel_load(enc, c);
    }
    encode_telemetry(enc, &s.routing);
    encode_log_histogram(enc, &s.latency_log);
    encode_scoreboard(enc, &s.scoreboard);
    match &s.series {
        None => enc.u64(0),
        Some(series) => {
            enc.u64(1);
            encode_series(enc, series);
        }
    }
    match &s.trace {
        None => enc.u64(0),
        Some(trace) => {
            enc.u64(1);
            encode_trace(enc, trace);
        }
    }
    match s.completion {
        None => enc.u64(0),
        Some(cycle) => {
            enc.u64(1);
            enc.u64(cycle);
        }
    }
    enc.bool(s.converged);
    for drift in [s.warmup_throughput_drift, s.warmup_latency_drift] {
        match drift {
            None => enc.u64(0),
            Some(v) => {
                enc.u64(1);
                enc.f64(v);
            }
        }
    }
}

fn decode_opt_f64(dec: &mut Dec<'_>) -> Option<Option<f64>> {
    match dec.u64()? {
        0 => Some(None),
        1 => Some(Some(dec.f64()?)),
        _ => None,
    }
}

fn decode_run_stats(dec: &mut Dec<'_>) -> Option<RunStats> {
    let cycles = dec.u64()?;
    let offered_load = dec.f64()?;
    let injected_rate = dec.f64()?;
    let accepted_rate = dec.f64()?;
    let drained = dec.bool()?;
    let latency = decode_summary(dec)?;
    let minimal_latency = decode_summary(dec)?;
    let non_minimal_latency = decode_summary(dec)?;
    let hops = decode_summary(dec)?;
    let histogram = decode_histogram(dec)?;
    let minimal_histogram = decode_histogram(dec)?;
    let n = dec.usize()?;
    let mut channel_loads = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        channel_loads.push(decode_channel_load(dec)?);
    }
    let routing = decode_telemetry(dec)?;
    let latency_log = decode_log_histogram(dec)?;
    let scoreboard = decode_scoreboard(dec)?;
    let series = match dec.u64()? {
        0 => None,
        1 => Some(decode_series(dec)?),
        _ => return None,
    };
    let trace = match dec.u64()? {
        0 => None,
        1 => Some(decode_trace(dec)?),
        _ => return None,
    };
    let completion = match dec.u64()? {
        0 => None,
        1 => Some(dec.u64()?),
        _ => return None,
    };
    let converged = dec.bool()?;
    let warmup_throughput_drift = decode_opt_f64(dec)?;
    let warmup_latency_drift = decode_opt_f64(dec)?;
    Some(RunStats {
        cycles,
        offered_load,
        injected_rate,
        accepted_rate,
        drained,
        latency,
        minimal_latency,
        non_minimal_latency,
        hops,
        histogram,
        minimal_histogram,
        channel_loads,
        routing,
        latency_log,
        scoreboard,
        series,
        trace,
        completion,
        converged,
        warmup_throughput_drift,
        warmup_latency_drift,
    })
}

fn encode_fault_point(enc: &mut Enc, p: &FaultPoint) {
    enc.f64(p.fraction);
    enc.usize(p.failed_links);
    encode_run_stats(enc, &p.stats);
}

fn decode_fault_point(dec: &mut Dec<'_>) -> Option<FaultPoint> {
    Some(FaultPoint {
        fraction: dec.f64()?,
        failed_links: dec.usize()?,
        stats: decode_run_stats(dec)?,
    })
}

fn encode_workload_point(enc: &mut Enc, p: &WorkloadPoint) {
    enc.u64(match p.placement {
        Placement::GroupDisjoint => 0,
        Placement::Interfering => 1,
    });
    enc.f64(p.background_load);
    encode_run_stats(enc, &p.stats);
    enc.usize(p.books.len());
    for book in &p.books {
        enc.u64(book.delivered);
        encode_log_histogram(enc, &book.latency);
        enc.u64(book.completion);
    }
}

fn decode_workload_point(dec: &mut Dec<'_>) -> Option<WorkloadPoint> {
    let placement = match dec.u64()? {
        0 => Placement::GroupDisjoint,
        1 => Placement::Interfering,
        _ => return None,
    };
    let background_load = dec.f64()?;
    let stats = decode_run_stats(dec)?;
    let n = dec.usize()?;
    let mut books = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        books.push(JobBook {
            delivered: dec.u64()?,
            latency: decode_log_histogram(dec)?,
            completion: dec.u64()?,
        });
    }
    Some(WorkloadPoint {
        placement,
        background_load,
        stats,
        books,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "dfly-campaign-unit-{}-{}",
            std::process::id(),
            name
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_stats() -> RunStats {
        let mut histogram = Histogram::new(4, 8);
        histogram.record(3);
        histogram.record(100);
        let mut latency_log = LogHistogram::new();
        latency_log.record(17);
        let mut latency = LatencySummary::default();
        latency.record(17);
        RunStats {
            cycles: 1234,
            offered_load: 0.35,
            injected_rate: 0.349,
            accepted_rate: 0.348,
            drained: true,
            latency,
            minimal_latency: latency,
            non_minimal_latency: LatencySummary::default(),
            hops: latency,
            histogram: histogram.clone(),
            minimal_histogram: histogram,
            channel_loads: vec![ChannelLoad {
                router: 3,
                port: 1,
                class: ChannelClass::Global,
                flits: 99,
                utilization: 0.123456789,
            }],
            routing: RouteTelemetry {
                minimal_takes: 10,
                non_minimal_takes: 2,
                ..RouteTelemetry::default()
            },
            latency_log,
            scoreboard: EstimatorScoreboard::default(),
            series: Some(TimeSeries {
                every: 64,
                vcs: 2,
                ticks: vec![64, 128],
                channels: vec![ChannelSeries {
                    router: 1,
                    port: 2,
                    class: ChannelClass::Local,
                    occupancy: vec![0, 3],
                    vc_occupancy: vec![0, 0, 1, 2],
                    credits: vec![16, 13],
                    sent: vec![5, 9],
                }],
            }),
            trace: Some(FlitTrace {
                rate: 0.25,
                seed: 7,
                events: vec![
                    TraceEvent {
                        cycle: 5,
                        packet: 42,
                        kind: TraceEventKind::Inject {
                            src: 1,
                            dest: 2,
                            minimal: true,
                            q_chosen: 3,
                            oracle: 4,
                        },
                    },
                    TraceEvent {
                        cycle: 6,
                        packet: 42,
                        kind: TraceEventKind::Hop {
                            router: 9,
                            port: 3,
                            vc: 1,
                        },
                    },
                    TraceEvent {
                        cycle: 12,
                        packet: 42,
                        kind: TraceEventKind::Eject { latency: 7 },
                    },
                ],
            }),
            completion: Some(999),
            converged: true,
            warmup_throughput_drift: Some(0.01),
            warmup_latency_drift: None,
        }
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn run_stats_round_trip_is_bit_identical() {
        let stats = sample_stats();
        let mut enc = Enc::new();
        encode_run_stats(&mut enc, &stats);
        let payload = enc.finish();
        let back = decode_with(&payload, decode_run_stats).expect("round trip");
        assert_eq!(back, stats);
        assert_eq!(format!("{back:?}"), format!("{stats:?}"));
        // A truncated payload must fail to decode, not mis-decode.
        let cut = &payload[..payload.len() / 2];
        assert!(decode_with(cut, decode_run_stats).is_none());
        // Trailing garbage must also fail (exact-consumption rule).
        let extended = format!("{payload} 7");
        assert!(decode_with(&extended, decode_run_stats).is_none());
    }

    #[test]
    fn store_round_trips_and_recovers_torn_tail() {
        let dir = temp_dir("torn");
        let key = CampaignKey::from_canon("unit test canon".to_string());
        let stats = sample_stats();
        {
            let store = CampaignStore::open_with_revision(&dir, "r1").unwrap();
            assert!(store.is_empty());
            assert!(store.lookup_run(&key).is_none());
            store.insert_run(&key, &stats).unwrap();
            assert_eq!(store.len(), 1);
            assert_eq!(store.lookup_run(&key).unwrap(), stats);
            // Idempotent re-insert.
            store.insert_run(&key, &stats).unwrap();
            assert_eq!(store.len(), 1);
        }
        // Simulate a crash mid-append: torn, newline-less tail bytes.
        let journal = dir.join(JOURNAL_FILE);
        let mut f = OpenOptions::new().append(true).open(&journal).unwrap();
        f.write_all(b"{\"kind\":\"run\",\"key\":\"dead").unwrap();
        drop(f);
        let store = CampaignStore::open_with_revision(&dir, "r1").unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(store.lookup_run(&key).unwrap(), stats);
        // The torn bytes are gone from disk.
        let bytes = fs::read(&journal).unwrap();
        assert_eq!(bytes.last(), Some(&b'\n'));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn forged_hash_collision_misses() {
        let dir = temp_dir("collision");
        let store = CampaignStore::open_with_revision(&dir, "r1").unwrap();
        let key = CampaignKey::from_canon("the real configuration".to_string());
        store.insert_run(&key, &sample_stats()).unwrap();
        // Same hash, different canon: must miss, never wrongly hit.
        let forged = CampaignKey {
            hash: key.hash,
            canon: "a different configuration".to_string(),
        };
        assert!(store.lookup_run(&forged).is_none());
        assert!(store.lookup_run(&key).is_some());
        // Same canon under another kind also misses.
        assert!(store.lookup_fault(&key).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn records_expose_every_kind_for_the_doctor() {
        let dir = temp_dir("records");
        let store = CampaignStore::open_with_revision(&dir, "r1").unwrap();
        let mut stats = sample_stats();
        store
            .insert_run(
                &CampaignKey::from_canon("kind=run cfg={drain_cap: 15000}".into()),
                &stats,
            )
            .unwrap();
        stats.drained = false;
        store
            .insert_fault(
                &CampaignKey::from_canon("kind=fault cfg={drain_cap: 0, shards: 1}".into()),
                &FaultPoint {
                    fraction: 0.125,
                    failed_links: 4,
                    stats: stats.clone(),
                },
            )
            .unwrap();
        store
            .insert_workload(
                &CampaignKey::from_canon("kind=workload cfg={drain_cap: 30000}".into()),
                &WorkloadPoint {
                    placement: Placement::GroupDisjoint,
                    background_load: 0.3,
                    stats,
                    books: Vec::new(),
                },
            )
            .unwrap();
        let mut records = store.records();
        records.sort_by(|a, b| a.kind.cmp(&b.kind));
        assert_eq!(
            records.iter().map(|r| r.kind.as_str()).collect::<Vec<_>>(),
            ["fault", "run", "workload"]
        );
        // The saturation probe (drain_cap: 0) is exempt from drain
        // verdicts; the others are not.
        assert!(!records[0].drain_expected());
        assert!(!records[0].stats.drained);
        assert!(records[1].drain_expected());
        assert!(records[2].drain_expected());
        assert_eq!(records[1].stats, sample_stats());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn superseded_format_entries_are_stale_not_corrupt() {
        let dir = temp_dir("stale-format");
        fs::create_dir_all(&dir).unwrap();
        // A well-formed journal line from an earlier codec generation:
        // the envelope parses, but the canon pins the old format so the
        // payload is never decoded and the entry can never hit.
        fs::write(
            dir.join(JOURNAL_FILE),
            b"{\"kind\":\"run\",\"key\":\"00000000deadbeef\",\
              \"canon\":\"dfly-campaign-v1 kind=run rev=r1 cfg=old\",\
              \"payload\":\"\"}\n",
        )
        .unwrap();
        let store = CampaignStore::open_with_revision(&dir, "r1").unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(store.stale_len(), 1);
        assert!(store.records().is_empty());
        // Fresh current-format inserts coexist with the relic.
        store
            .insert_run(
                &CampaignKey::from_canon(format!("{FORMAT_VERSION} kind=run cfg=new")),
                &sample_stats(),
            )
            .unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.stale_len(), 1);
        assert_eq!(store.records().len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn timing_sidecar_is_advisory_and_keyed_by_kind() {
        let dir = temp_dir("timings");
        let store = CampaignStore::open_with_revision(&dir, "r1").unwrap();
        assert_eq!(store.median_timing("run"), None);
        store.record_timing("run", 2.0);
        store.record_timing("run", 0.5);
        store.record_timing("run", 1.0);
        store.record_timing("fault", 9.0);
        assert_eq!(store.timings("run"), vec![2.0, 0.5, 1.0]);
        assert_eq!(store.median_timing("run"), Some(1.0));
        assert_eq!(store.median_timing("fault"), Some(9.0));
        assert_eq!(store.median_timing("workload"), None);
        // The sidecar never contaminates the journal.
        assert!(store.is_empty());
        // Corrupt sidecar lines contribute nothing and never fail.
        fs::write(
            dir.join(TIMINGS_FILE),
            b"not json\n{\"kind\":\"run\",\"secs\":oops}\n",
        )
        .unwrap();
        assert_eq!(store.median_timing("run"), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_write_replaces_whole_files() {
        let dir = temp_dir("atomic");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("artifact.json");
        atomic_write(&path, b"{\"v\": 1}").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"{\"v\": 1}");
        atomic_write(&path, b"{\"v\": 2}").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"{\"v\": 2}");
        // No temp droppings left behind.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp"))
            .collect();
        assert!(leftovers.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_line_parser_round_trips_escapes() {
        let entry = parse_journal_line(
            "{\"kind\":\"run\",\"key\":\"00000000deadbeef\",\
             \"canon\":\"a\\\"b\\\\c\\nd\\u0001\",\"payload\":\"1 2 3\"}",
        )
        .expect("line must parse");
        assert_eq!(entry.kind, "run");
        assert_eq!(entry.canon, "a\"b\\c\nd\u{1}");
        assert_eq!(entry.payload, "1 2 3");
        assert!(parse_journal_line("{\"kind\":\"run\"").is_none());
        assert!(parse_journal_line("").is_none());
    }
}
