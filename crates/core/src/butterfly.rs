//! Simulating the flattened butterfly on the same engine.
//!
//! The flattened butterfly (Kim, Dally & Abts, ISCA 2007) is the
//! dragonfly's closest competitor and the baseline of the paper's §5
//! comparison. This module wires a [`dfly_topo::FlattenedButterfly`]
//! into a [`dfly_netsim::NetworkSpec`] and provides its routing family:
//! dimension-order minimal routing, Valiant through a random
//! intermediate router, and a UGAL-L adaptive choice between them —
//! so the two topologies can be compared *behaviourally*, not just on
//! cost.
//!
//! # VC assignment
//!
//! Dimension-order routing visits dimensions in ascending order, so its
//! channel dependencies are acyclic and one VC suffices; the Valiant
//! path is two dimension-order phases, the first on VC0 and the second
//! on VC1.
//!
//! # Example
//!
//! ```
//! use dragonfly::butterfly::{ButterflyNetwork, ButterflyRouting};
//! use dfly_topo::FlattenedButterfly;
//! use dfly_netsim::{SimConfig, Simulation};
//! use dfly_traffic::UniformRandom;
//!
//! let net = ButterflyNetwork::new(FlattenedButterfly::new(2, 4, 2));
//! let spec = net.build_spec();
//! let routing = ButterflyRouting::minimal(net.into());
//! let traffic = UniformRandom::new(spec.num_terminals());
//! let mut cfg = SimConfig::paper_default(0.1);
//! cfg.warmup = 200;
//! cfg.measure = 500;
//! let stats = Simulation::new(&spec, &routing, &traffic, cfg).unwrap().run();
//! assert!(stats.drained);
//! ```

use std::sync::Arc;

use dfly_netsim::{
    CandidatePath, CandidatePaths, ChannelClass, Connection, DecisionRecord, FaultPlan, FaultTable,
    Flit, NetView, NetworkSpec, PortSpec, PortVc, RouteAlgebra, RouteClass, RouteInfo, RouterSpec,
    RoutingAlgorithm, SimError, UgalChooser,
};
use dfly_topo::{FlattenedButterfly, Topology};
use rand::rngs::SmallRng;
use rand::Rng;

use crate::routing::UgalVariant;

/// A flattened butterfly wired for cycle-accurate simulation.
#[derive(Debug, Clone)]
pub struct ButterflyNetwork {
    fb: FlattenedButterfly,
    /// First port offset of each dimension's channels (after the
    /// concentration ports).
    dim_base: Vec<usize>,
    /// Channel latency for every network channel.
    latency: u32,
    /// Link-failure state, present after
    /// [`ButterflyNetwork::with_fault_plan`]: the canonical failed
    /// cables plus BFS next-hop tables over the surviving links. Under
    /// faults every phase of a route follows the table toward its phase
    /// target (strictly decreasing alive distance, so no loops); the
    /// two-phase VC split still separates the Valiant legs, but detours
    /// within a phase share that phase's VC, so deadlock freedom is
    /// best-effort rather than proven.
    faults: Option<Box<ButterflyFaults>>,
}

#[derive(Debug, Clone)]
struct ButterflyFaults {
    failed_links: Vec<(usize, usize)>,
    table: FaultTable,
}

impl ButterflyNetwork {
    /// Wires `fb` with unit channel latency.
    pub fn new(fb: FlattenedButterfly) -> Self {
        Self::with_latency(fb, 1)
    }

    /// Wires `fb` with the given network-channel latency.
    ///
    /// # Panics
    ///
    /// Panics if `latency == 0`.
    pub fn with_latency(fb: FlattenedButterfly, latency: u32) -> Self {
        assert!(latency > 0, "latency must be >= 1");
        let mut dim_base = Vec::with_capacity(fb.dimensions());
        let mut offset = fb.concentration();
        for &s in fb.dims() {
            dim_base.push(offset);
            offset += s - 1;
        }
        ButterflyNetwork {
            fb,
            dim_base,
            latency,
            faults: None,
        }
    }

    /// The underlying structural topology.
    pub fn topology(&self) -> &FlattenedButterfly {
        &self.fb
    }

    /// Applies a [`FaultPlan`] (composing with any faults already
    /// present): routes detour around the dead links along BFS next-hop
    /// tables over the survivors.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidFaultPlan`] for malformed plans and
    /// [`SimError::Unreachable`] when the plan disconnects the network.
    pub fn with_fault_plan(mut self, plan: &FaultPlan) -> Result<Self, SimError> {
        let spec = self.build_spec().with_faults(plan)?;
        if spec.failed_links().is_empty() {
            self.faults = None;
            return Ok(self);
        }
        self.faults = Some(Box::new(ButterflyFaults {
            failed_links: spec.failed_links().to_vec(),
            table: FaultTable::new(&spec),
        }));
        Ok(self)
    }

    /// Whether a fault plan has been applied.
    pub fn has_faults(&self) -> bool {
        self.faults.is_some()
    }

    /// The canonical failed cables, empty for a fault-free network.
    pub fn failed_links(&self) -> &[(usize, usize)] {
        self.faults.as_ref().map_or(&[], |f| &f.failed_links)
    }

    /// The output port one (fault-aware) shortest hop from `router`
    /// toward `target`: dimension-ordered on a fault-free network, BFS
    /// over the surviving links under a fault plan.
    fn next_toward(&self, router: usize, target: usize) -> usize {
        match &self.faults {
            Some(f) => f
                .table
                .next_port(router, target)
                .expect("validated fault plan keeps the network connected"),
            None => self.port_to(router, self.dor_next(router, target)),
        }
    }

    /// Router-to-router hops from `a` to `b`, over the surviving links
    /// under a fault plan.
    fn hops_between(&self, a: usize, b: usize) -> u32 {
        match &self.faults {
            Some(f) => f
                .table
                .distance(a, b)
                .expect("validated fault plan keeps the network connected"),
            None => self.fb.min_hops(a, b) as u32,
        }
    }

    /// Upper bound on the hops of any valid route: two phases, each at
    /// most the (fault-aware) router-graph diameter, plus the ejection
    /// hop.
    pub fn route_hop_bound(&self) -> usize {
        let diameter = match &self.faults {
            Some(f) => f.table.diameter() as usize,
            None => self.fb.dimensions(),
        };
        2 * diameter + 1
    }

    /// The port of `router` leading directly to `peer`, which must
    /// differ from `router` in exactly one dimension.
    fn port_to(&self, router: usize, peer: usize) -> usize {
        let ca = self.fb.coordinates(router);
        let cb = self.fb.coordinates(peer);
        let dim = (0..ca.len())
            .find(|&d| ca[d] != cb[d])
            .expect("distinct routers");
        debug_assert_eq!(self.fb.min_hops(router, peer), 1, "peer not adjacent");
        let them = cb[dim];
        let me = ca[dim];
        self.dim_base[dim] + if them < me { them } else { them - 1 }
    }

    /// The router reached through network port `port` of `router` (the
    /// inverse of [`ButterflyNetwork::port_to`]).
    fn peer_of(&self, router: usize, port: usize) -> usize {
        let coords = self.fb.coordinates(router);
        let dim = (0..self.fb.dimensions())
            .rfind(|&d| self.dim_base[d] <= port)
            .expect("port within network range");
        let within = port - self.dim_base[dim];
        let me = coords[dim];
        let them = if within < me { within } else { within + 1 };
        let mut c2 = coords.clone();
        c2[dim] = them;
        self.fb.router_index(&c2)
    }

    /// The next router on the dimension-order path from `router` toward
    /// `target` (fix the lowest differing dimension first).
    fn dor_next(&self, router: usize, target: usize) -> usize {
        let ca = self.fb.coordinates(router);
        let cb = self.fb.coordinates(target);
        let dim = (0..ca.len())
            .find(|&d| ca[d] != cb[d])
            .expect("router != target");
        let mut c2 = ca.clone();
        c2[dim] = cb[dim];
        self.fb.router_index(&c2)
    }

    /// Builds the simulator wiring: concentration ports first, then one
    /// fully connected port group per dimension. Dimension 0 channels
    /// are classed local (intra-cabinet), higher dimensions global. Any
    /// applied fault plan is re-applied, so the spec's failure marks
    /// always match the routing tables.
    pub fn build_spec(&self) -> NetworkSpec {
        let spec = self.build_spec_clean();
        match &self.faults {
            None => spec,
            Some(f) => spec
                .with_faults(&FaultPlan::Explicit(f.failed_links.clone()))
                .expect("stored fault list was validated when the plan was applied"),
        }
    }

    /// The fault-free wiring.
    fn build_spec_clean(&self) -> NetworkSpec {
        let c = self.fb.concentration();
        let mut routers = Vec::with_capacity(self.fb.num_routers());
        for r in 0..self.fb.num_routers() {
            let coords = self.fb.coordinates(r);
            let mut ports = Vec::new();
            for t in 0..c {
                ports.push(PortSpec {
                    conn: Connection::Terminal {
                        terminal: (r * c + t) as u32,
                    },
                    latency: 1,
                    class: ChannelClass::Terminal,
                });
            }
            for (dim, &s) in self.fb.dims().iter().enumerate() {
                for other in 0..s {
                    if other == coords[dim] {
                        continue;
                    }
                    let mut c2 = coords.clone();
                    c2[dim] = other;
                    let peer = self.fb.router_index(&c2);
                    ports.push(PortSpec {
                        conn: Connection::Router {
                            router: peer as u32,
                            port: self.port_to(peer, r) as u32,
                        },
                        latency: self.latency,
                        class: if dim == 0 {
                            ChannelClass::Local
                        } else {
                            ChannelClass::Global
                        },
                    });
                }
            }
            routers.push(RouterSpec { ports });
        }
        NetworkSpec::validated(routers, 2).expect("butterfly wiring must validate")
    }

    /// Load sweep under `routing` and `pattern`: one independent run
    /// per load, fanned out across the worker pool (results in load
    /// order, bit-identical to a serial sweep).
    ///
    /// # Errors
    ///
    /// The first configuration rejection, if `base` is invalid.
    pub fn sweep(
        &self,
        routing: &ButterflyRouting,
        pattern: &(dyn dfly_traffic::TrafficPattern + Sync),
        loads: &[f64],
        base: &dfly_netsim::SimConfig,
    ) -> Result<Vec<crate::LoadPoint>, dfly_netsim::SimError> {
        crate::parallel::sweep_network(&self.build_spec(), routing, pattern, loads, base)
    }
}

/// Closed-form routing algebra for the flattened butterfly: pure
/// coordinate arithmetic fault-free (dimension-order next hop, digit
/// distance), the lazily-built BFS detour columns under a fault plan.
/// The salt is unused — there is exactly one channel per
/// (router, dimension, digit). The Valiant set is every third router.
impl RouteAlgebra for ButterflyNetwork {
    fn terminal_router(&self, terminal: usize) -> usize {
        terminal / self.fb.concentration()
    }

    fn ejection_port(&self, terminal: usize) -> usize {
        terminal % self.fb.concentration()
    }

    fn minimal_port(&self, router: usize, dest: usize, _salt: u32) -> PortVc {
        let rd = dest / self.fb.concentration();
        if router == rd {
            return PortVc::new(dest % self.fb.concentration(), 0);
        }
        PortVc::new(self.next_toward(router, rd), 0)
    }

    fn minimal_hops(&self, router: usize, dest: usize, _salt: u32) -> u32 {
        let rd = dest / self.fb.concentration();
        if router == rd {
            return 0;
        }
        self.hops_between(router, rd)
    }

    fn valiant_degree(&self, router: usize, dest: usize) -> usize {
        let rd = dest / self.fb.concentration();
        if router == rd {
            return 0;
        }
        self.fb.num_routers() - 2
    }

    fn valiant_tag(&self, router: usize, dest: usize, i: usize) -> u32 {
        let rd = dest / self.fb.concentration();
        debug_assert_ne!(router, rd, "no detour within a router");
        let (lo, hi) = (router.min(rd), router.max(rd));
        let mut ri = i;
        if ri >= lo {
            ri += 1;
        }
        if ri >= hi {
            ri += 1;
        }
        ri as u32
    }

    fn vc_count(&self) -> usize {
        2
    }
}

/// The flattened butterfly's UGAL candidates: the dimension-order
/// minimal path and the two-phase Valiant path through intermediate
/// router `intermediate`. The salt is unused — the butterfly has exactly
/// one channel per (router, dimension, digit), so there is nothing to
/// pre-select. Under a fault plan both first hops and hop counts follow
/// the BFS detour tables.
///
/// As the oracle (UGAL-G) probe point each candidate reports its
/// bottleneck channel: for the minimal path the channel *after* the
/// first hop (where dimension-order traffic converges; the first-hop
/// channel itself for single-hop paths), for the Valiant path the
/// channel leaving the intermediate router toward the destination.
impl CandidatePaths for ButterflyNetwork {
    fn minimal_candidate(&self, router: usize, dest: usize, salt: u32) -> CandidatePath {
        let rd = dest / self.fb.concentration();
        if router == rd {
            return CandidatePath::new(dest % self.fb.concentration(), 0, 0);
        }
        let first = self.minimal_port(router, dest, salt);
        let port = first.port as usize;
        let path = CandidatePath::new(
            port,
            first.vc as usize,
            self.minimal_hops(router, dest, salt),
        );
        let mid = self.peer_of(router, port);
        if mid == rd {
            path.with_probe(router, port)
        } else {
            path.with_probe(mid, self.next_toward(mid, rd))
        }
    }

    fn non_minimal_candidate(
        &self,
        router: usize,
        dest: usize,
        intermediate: u32,
        _salt: u32,
    ) -> CandidatePath {
        let ri = intermediate as usize;
        let rd = dest / self.fb.concentration();
        debug_assert!(
            ri != router && ri != rd,
            "intermediate must be a third router"
        );
        let port = self.next_toward(router, ri);
        let hops = self.hops_between(router, ri) + self.hops_between(ri, rd);
        CandidatePath::new(port, 0, hops).with_probe(ri, self.next_toward(ri, rd))
    }
}

/// Which decision rule drives the butterfly. The adaptive mode carries
/// its [`UgalChooser`] so every estimator of the shared framework is
/// available — including the credit-round-trip estimator that used to
/// be dragonfly-only.
#[derive(Debug)]
enum Mode {
    Minimal,
    Valiant,
    Ugal(UgalVariant, UgalChooser),
}

/// Routing for the flattened butterfly: dimension-order minimal,
/// Valiant, or a UGAL adaptive choice between them driven by any
/// [`dfly_netsim::CongestionEstimator`].
#[derive(Debug)]
pub struct ButterflyRouting {
    net: Arc<ButterflyNetwork>,
    mode: Mode,
}

impl ButterflyRouting {
    /// Dimension-order minimal routing.
    pub fn minimal(net: Arc<ButterflyNetwork>) -> Self {
        ButterflyRouting {
            net,
            mode: Mode::Minimal,
        }
    }

    /// Valiant routing through a uniformly random intermediate router.
    pub fn valiant(net: Arc<ButterflyNetwork>) -> Self {
        ButterflyRouting {
            net,
            mode: Mode::Valiant,
        }
    }

    /// UGAL over the given congestion estimator variant.
    pub fn ugal(net: Arc<ButterflyNetwork>, variant: UgalVariant) -> Self {
        ButterflyRouting {
            net,
            mode: Mode::Ugal(variant, UgalChooser::new(variant.estimator())),
        }
    }

    /// UGAL with local output-queue information, choosing per packet
    /// between the minimal and a random Valiant path.
    pub fn ugal_local(net: Arc<ButterflyNetwork>) -> Self {
        Self::ugal(net, UgalVariant::Local)
    }

    /// UGAL-L(CR) on the butterfly: credit-inclusive queue estimates,
    /// to be paired with [`dfly_netsim::CreditMode::RoundTrip`] — the
    /// estimator the paper develops for the dragonfly, available here
    /// through the shared adaptive-routing layer.
    pub fn ugal_credit(net: Arc<ButterflyNetwork>) -> Self {
        Self::ugal(net, UgalVariant::CreditRoundTrip)
    }
}

impl Clone for ButterflyRouting {
    fn clone(&self) -> Self {
        match &self.mode {
            Mode::Minimal => Self::minimal(self.net.clone()),
            Mode::Valiant => Self::valiant(self.net.clone()),
            Mode::Ugal(variant, _) => Self::ugal(self.net.clone(), *variant),
        }
    }
}

impl ButterflyRouting {
    /// Draws an intermediate router distinct from `rs` and `rd`.
    fn random_intermediate(&self, rs: usize, rd: usize, rng: &mut SmallRng) -> Option<usize> {
        let n = self.net.fb.num_routers();
        if n < 3 {
            return None;
        }
        for _ in 0..8 {
            let ri = rng.gen_range(0..n);
            if ri != rs && ri != rd {
                return Some(ri);
            }
        }
        None
    }
}

impl RoutingAlgorithm for ButterflyRouting {
    fn name(&self) -> String {
        match &self.mode {
            Mode::Minimal => "FB-MIN".into(),
            Mode::Valiant => "FB-VAL".into(),
            Mode::Ugal(variant, _) => match variant {
                UgalVariant::Local => "FB-UGAL-L".into(),
                UgalVariant::LocalVc => "FB-UGAL-L_VC".into(),
                UgalVariant::LocalVcHybrid => "FB-UGAL-L_VCH".into(),
                UgalVariant::Global => "FB-UGAL-G".into(),
                UgalVariant::CreditRoundTrip => "FB-UGAL-L_CR".into(),
                UgalVariant::LocalEwma => "FB-UGAL-L_EWMA".into(),
            },
        }
    }

    fn inject(&self, view: &NetView<'_>, src: usize, dest: usize, rng: &mut SmallRng) -> RouteInfo {
        self.inject_traced(view, src, dest, rng).0
    }

    fn inject_traced(
        &self,
        view: &NetView<'_>,
        src: usize,
        dest: usize,
        rng: &mut SmallRng,
    ) -> (RouteInfo, DecisionRecord) {
        let c = self.net.fb.concentration();
        let rs = src / c;
        let rd = dest / c;
        let minimal = RouteInfo::minimal().with_salt(rng.gen());
        if rs == rd {
            return (minimal, DecisionRecord::default());
        }
        match &self.mode {
            Mode::Minimal => (minimal, DecisionRecord::default()),
            Mode::Valiant => match self.random_intermediate(rs, rd, rng) {
                Some(ri) => (
                    RouteInfo::non_minimal(ri as u32).with_salt(rng.gen()),
                    DecisionRecord::default(),
                ),
                None => (minimal, DecisionRecord::default()),
            },
            Mode::Ugal(_, chooser) => {
                let Some(ri) = self.random_intermediate(rs, rd, rng) else {
                    return (minimal, DecisionRecord::default());
                };
                let net = &self.net;
                let m = net.minimal_candidate(rs, dest, minimal.salt);
                let nm = net.non_minimal_candidate(rs, dest, ri as u32, minimal.salt);
                let decision = chooser.choose(view, rs, &m, &nm);
                let record = DecisionRecord {
                    adaptive: !decision.fault_avoided,
                    estimator_disagreed: decision.estimator_disagreed,
                    fault_avoided: decision.fault_avoided,
                    dropped_candidates: decision.dropped_candidates,
                    probe_fallbacks: decision.probe_fallbacks,
                    q_chosen: decision.q_chosen(),
                    oracle_chosen: decision.oracle_chosen(),
                    oracle_disagreed: decision.oracle_disagreed,
                    oracle_scored: decision.oracle_scored,
                };
                if decision.minimal {
                    (minimal, record)
                } else {
                    (
                        RouteInfo::non_minimal(ri as u32).with_salt(rng.gen()),
                        record,
                    )
                }
            }
        }
    }

    fn route(&self, view: &NetView<'_>, router: usize, flit: &Flit) -> PortVc {
        let net = &self.net;
        let c = net.fb.concentration();
        let dest = flit.dest as usize;
        let rd = dest / c;
        // Phase: VC1 (or arrival at the intermediate) means head for the
        // destination; otherwise head for the intermediate.
        let (target, vc) = match flit.route.class {
            RouteClass::Minimal => (rd, 0),
            RouteClass::NonMinimal => {
                let ri = flit.route.intermediate().expect("intermediate set") as usize;
                if flit.vc == 1 || router == ri || ri == rd {
                    (rd, 1)
                } else {
                    (ri, 0)
                }
            }
        };
        if router == rd && target == rd {
            return PortVc::new(dest % c, 0);
        }
        let _ = view;
        PortVc::new(net.next_toward(router, target), vc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfly_netsim::{SimConfig, Simulation};
    use dfly_traffic::{rng_for, BitComplement, UniformRandom};

    fn net_2x4() -> Arc<ButterflyNetwork> {
        Arc::new(ButterflyNetwork::new(FlattenedButterfly::new(2, 4, 2)))
    }

    fn fast_cfg(load: f64) -> SimConfig {
        let mut cfg = SimConfig::paper_default(load);
        cfg.warmup = 300;
        cfg.measure = 1_000;
        cfg.drain_cap = 20_000;
        cfg
    }

    #[test]
    fn spec_wires_and_validates() {
        let net = net_2x4();
        let spec = net.build_spec();
        assert_eq!(spec.num_terminals(), 32);
        assert_eq!(spec.num_routers(), 16);
        // Radix: 2 terminals + 2 dims * 3 peers.
        assert_eq!(spec.routers[0].ports.len(), 8);
    }

    #[test]
    fn dor_walk_fixes_dimensions_in_order() {
        let net = net_2x4();
        // Router 0 (0,0) to router 15 (3,3): first hop fixes dim 0.
        let next = net.dor_next(0, 15);
        assert_eq!(net.fb.coordinates(next), vec![3, 0]);
        assert_eq!(net.dor_next(next, 15), 15);
    }

    #[test]
    fn minimal_delivers_uniform() {
        let net = net_2x4();
        let spec = net.build_spec();
        let routing = ButterflyRouting::minimal(net);
        let pattern = UniformRandom::new(32);
        let stats = Simulation::new(&spec, &routing, &pattern, fast_cfg(0.3))
            .unwrap()
            .run();
        assert!(stats.drained);
        assert!((stats.accepted_rate - 0.3).abs() < 0.04);
        // Max minimal path: inject + 2 hops + eject.
        assert!(stats.latency.min >= 2);
    }

    #[test]
    fn valiant_and_ugal_deliver_adversarial() {
        // Bit complement concentrates load; all three algorithms must
        // still deliver at moderate load, with UGAL at least as good as
        // MIN in saturation throughput.
        let net = net_2x4();
        let spec = net.build_spec();
        let pattern = BitComplement::new(32);
        for routing in [
            ButterflyRouting::minimal(net.clone()),
            ButterflyRouting::valiant(net.clone()),
            ButterflyRouting::ugal_local(net.clone()),
        ] {
            let stats = Simulation::new(&spec, &routing, &pattern, fast_cfg(0.1))
                .unwrap()
                .run();
            assert!(stats.drained, "{} lost packets", routing.name());
        }
    }

    #[test]
    fn ugal_tracks_min_on_uniform() {
        let net = net_2x4();
        let spec = net.build_spec();
        let pattern = UniformRandom::new(32);
        let min = ButterflyRouting::minimal(net.clone());
        let ugal = ButterflyRouting::ugal_local(net.clone());
        let s_min = Simulation::new(&spec, &min, &pattern, fast_cfg(0.3))
            .unwrap()
            .run();
        let s_ugal = Simulation::new(&spec, &ugal, &pattern, fast_cfg(0.3))
            .unwrap()
            .run();
        assert!(s_min.drained && s_ugal.drained);
        let (a, b) = (s_min.avg_latency().unwrap(), s_ugal.avg_latency().unwrap());
        assert!((a - b).abs() < 3.0, "MIN {a} vs UGAL {b}");
    }

    #[test]
    fn intermediate_avoids_endpoints() {
        let net = net_2x4();
        let routing = ButterflyRouting::valiant(net);
        let mut rng = rng_for(3, 0);
        for _ in 0..100 {
            if let Some(ri) = routing.random_intermediate(0, 5, &mut rng) {
                assert_ne!(ri, 0);
                assert_ne!(ri, 5);
            }
        }
    }

    #[test]
    fn candidates_carry_probe_points() {
        let net = net_2x4();
        // Router 0 -> router 15 (terminal 30): the minimal path's
        // second hop leaves the mid router; the probe names it.
        let m = net.minimal_candidate(0, 30, 0);
        let mid = net.peer_of(0, m.port as usize);
        assert_eq!(m.probe_router as usize, mid);
        assert_eq!(
            m.probe_port as usize,
            net.next_toward(mid, 15),
            "probe must sit on the mid router's onward channel"
        );
        // Single-hop minimal: the probe is the first channel itself.
        let direct = net.minimal_candidate(0, 2, 0);
        assert_eq!(direct.probe_router, 0);
        assert_eq!(direct.probe_port, direct.port);
        // Non-minimal via router 5: probed at the intermediate.
        let nm = net.non_minimal_candidate(0, 30, 5, 0);
        assert_eq!(nm.probe_router, 5);
        assert_eq!(nm.probe_port as usize, net.next_toward(5, 15));
    }

    #[test]
    fn ugal_g_on_butterfly_has_no_probe_fallbacks() {
        let net = net_2x4();
        let spec = net.build_spec();
        let routing = ButterflyRouting::ugal(net, UgalVariant::Global);
        let pattern = BitComplement::new(32);
        let stats = Simulation::new(&spec, &routing, &pattern, fast_cfg(0.2))
            .unwrap()
            .run();
        assert!(stats.drained);
        assert!(stats.routing.adaptive_decisions > 0);
        assert_eq!(
            stats.routing.oracle_probe_fallbacks, 0,
            "every butterfly candidate must carry a probe point"
        );
    }

    #[test]
    fn faulty_butterfly_delivers_uniform() {
        let net = ButterflyNetwork::new(FlattenedButterfly::new(2, 4, 2))
            .with_fault_plan(&FaultPlan::random_any(0.1, 5))
            .unwrap();
        assert!(net.has_faults());
        assert!(!net.failed_links().is_empty());
        let spec = net.build_spec();
        assert!(spec.has_faults());
        let routing = ButterflyRouting::minimal(Arc::new(net));
        let pattern = UniformRandom::new(32);
        let stats = Simulation::new(&spec, &routing, &pattern, fast_cfg(0.1))
            .unwrap()
            .run();
        assert!(stats.drained, "faulty butterfly starved");
    }

    #[test]
    fn ugal_butterfly_under_faults_delivers() {
        let net = ButterflyNetwork::new(FlattenedButterfly::new(2, 4, 2))
            .with_fault_plan(&FaultPlan::random_any(0.1, 7))
            .unwrap();
        let spec = net.build_spec();
        let routing = ButterflyRouting::ugal_local(Arc::new(net));
        let pattern = UniformRandom::new(32);
        let stats = Simulation::new(&spec, &routing, &pattern, fast_cfg(0.15))
            .unwrap()
            .run();
        assert!(stats.drained, "faulty adaptive butterfly starved");
        assert_eq!(
            stats.routing.minimal_takes + stats.routing.non_minimal_takes,
            stats.latency.count
        );
    }
}
