//! The dragonfly topology and its indirect global adaptive routing —
//! a from-scratch reproduction of Kim, Dally, Scott & Abts,
//! *"Technology-Driven, Highly-Scalable Dragonfly Topology"* (ISCA 2008).
//!
//! A dragonfly groups `a` high-radix routers into a *virtual router* of
//! effective radix `a(p + h)`, so that every minimal route crosses at
//! most **one** expensive global (optical) channel. This crate provides:
//!
//! * [`DragonflyParams`] / [`Dragonfly`] — configuration, wiring
//!   (fully-connected groups, offset-ring inter-group channels), and a
//!   [`dfly_netsim::NetworkSpec`] builder for cycle-accurate simulation;
//! * the routing family of the paper — [`MinimalRouting`] (MIN),
//!   [`ValiantRouting`] (VAL) and [`UgalRouting`] with its
//!   [`UgalVariant`]s (UGAL-L, UGAL-L_VC, UGAL-L_VCH, UGAL-G), plus
//!   UGAL-L_CR via the simulator's credit round-trip mode;
//! * [`DragonflySim`] — a harness that wires the network once and sweeps
//!   routing choices, traffic patterns and loads the way the paper's
//!   figures do;
//! * [`analysis`] — closed-form saturation-throughput bounds (the
//!   paper's `1/(a·h)` and 50% limits, generalised);
//! * [`butterfly`] / [`clos_sim`] / [`torus_sim`] — the flattened
//!   butterfly, folded Clos and k-ary n-cube torus (the paper's §5
//!   baselines) wired for the same simulator, each with its own
//!   deadlock-free routing;
//! * link-failure injection — apply a [`FaultPlan`] with
//!   [`Dragonfly::with_fault_plan`] / [`DragonflySim::with_faults`] and
//!   every routing algorithm steers around the dead links; [`FaultSweep`]
//!   measures throughput degradation over failed-link fractions;
//! * [`campaign`] — a content-addressed on-disk result store: sweeps
//!   executed through [`CampaignStore`] serve previously-completed
//!   cells bit-identically from a crash-safe journal and simulate only
//!   what is missing.
//!
//! # Quickstart
//!
//! ```
//! use dragonfly::{DragonflyParams, DragonflySim, RoutingChoice, TrafficChoice};
//!
//! // A 72-terminal dragonfly (p = h = 2, a = 4), as in the paper's Fig 5.
//! let sim = DragonflySim::new(DragonflyParams::new(2, 4, 2).unwrap());
//! let mut cfg = sim.config(0.2);
//! cfg.warmup = 200;
//! cfg.measure = 500;
//! let stats = sim.run(RoutingChoice::UgalLVcH, TrafficChoice::Uniform, cfg);
//! assert!(stats.drained);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod butterfly;
pub mod campaign;
pub mod clos_sim;
mod experiment;
pub mod jobs;
pub mod parallel;
mod params;
pub mod progress;
mod routing;
mod topology;
pub mod torus_sim;

pub use campaign::{
    atomic_write, CampaignError, CampaignKey, CampaignReport, CampaignStore, JournalRecord,
};
pub use dfly_netsim::{FaultClass, FaultPlan, SimError};
pub use experiment::{DragonflySim, LoadPoint, RoutingChoice, TrafficChoice};
pub use jobs::{
    JobAssignment, JobBook, JobError, JobKind, JobLedger, JobMix, JobSpec, MixWorkload, Placement,
};
pub use parallel::{
    FaultPoint, FaultSweep, RunGrid, RunPlan, SlowdownPoint, WorkloadPoint, WorkloadSweep,
};
pub use params::DragonflyParams;
pub use progress::{ProgressSink, SweepProgress};
pub use routing::{
    trace_route, MinimalRouting, TraceHop, UgalRouting, UgalVariant, ValiantRouting,
};
pub use topology::{ChannelLatencies, Dragonfly, GroupTopology};
