//! Dragonfly configuration parameters and scaling rules.

/// The defining parameters of a dragonfly network (§3.1 of the paper).
///
/// * `p` — terminals per router,
/// * `a` — routers per group,
/// * `h` — global channels per router,
/// * `g` — number of groups (defaults to the maximum `a·h + 1`).
///
/// Each router then has radix `k = p + (a-1) + h`, a group acts as a
/// virtual router of effective radix `k' = a(p + h)`, and the network
/// connects `N = a·p·g` terminals.
///
/// # Example
///
/// ```
/// use dragonfly::DragonflyParams;
///
/// // The paper's 1K-node evaluation network.
/// let params = DragonflyParams::new(4, 8, 4).unwrap();
/// assert_eq!(params.num_terminals(), 1056);
/// assert_eq!(params.router_radix(), 15);
/// assert_eq!(params.effective_radix(), 64);
/// assert!(params.is_balanced());
/// ```
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DragonflyParams {
    p: usize,
    a: usize,
    h: usize,
    g: usize,
}

impl DragonflyParams {
    /// Creates a maximum-size dragonfly: `g = a·h + 1` groups.
    ///
    /// # Errors
    ///
    /// Returns an error if any parameter is zero or the configuration is
    /// degenerate (see [`DragonflyParams::with_groups`]).
    pub fn new(p: usize, a: usize, h: usize) -> Result<Self, String> {
        if a == 0 || h == 0 {
            return Err("a and h must be >= 1".into());
        }
        Self::with_groups(p, a, h, a * h + 1)
    }

    /// Creates a dragonfly with an explicit group count `g <= a·h + 1`.
    ///
    /// With fewer groups than the maximum, the excess global channels are
    /// spread so that every pair of groups is connected by at least
    /// `⌊a·h / (g-1)⌋` channels.
    ///
    /// # Errors
    ///
    /// Returns an error if any parameter is zero, `g < 2`, or
    /// `g > a·h + 1` (not enough global ports to reach every group).
    pub fn with_groups(p: usize, a: usize, h: usize, g: usize) -> Result<Self, String> {
        if p == 0 || a == 0 || h == 0 {
            return Err("p, a and h must all be >= 1".into());
        }
        if g < 2 {
            return Err(format!("need at least 2 groups, got {g}"));
        }
        if g > a * h + 1 {
            return Err(format!(
                "{g} groups need more than the a*h = {} global ports per group",
                a * h
            ));
        }
        Ok(DragonflyParams { p, a, h, g })
    }

    /// The largest *balanced* dragonfly (`a = 2p = 2h`) buildable from
    /// routers of radix at most `k` — the sizing rule of Figure 4.
    ///
    /// # Errors
    ///
    /// Returns an error if `k < 3` (no balanced dragonfly exists).
    pub fn balanced_from_radix(k: usize) -> Result<Self, String> {
        // k = p + a + h - 1 = 4h - 1 for a balanced network, so take
        // h = floor((k+1)/4) and give any leftover ports to p and a,
        // keeping a >= 2h and p >= h (over-provisioning local/terminal
        // bandwidth is allowed; under-provisioning is not).
        let h = (k + 1) / 4;
        if h == 0 {
            return Err(format!("radix {k} too small for a balanced dragonfly"));
        }
        let p = h;
        let a = k + 1 - p - h;
        debug_assert!(a >= 2 * h);
        Self::new(p, a, h)
    }

    /// Terminals per router (`p`).
    pub fn terminals_per_router(&self) -> usize {
        self.p
    }

    /// Routers per group (`a`).
    pub fn routers_per_group(&self) -> usize {
        self.a
    }

    /// Global channels per router (`h`).
    pub fn global_ports_per_router(&self) -> usize {
        self.h
    }

    /// Number of groups (`g`).
    pub fn num_groups(&self) -> usize {
        self.g
    }

    /// Maximum group count `a·h + 1` for these router parameters.
    pub fn max_groups(&self) -> usize {
        self.a * self.h + 1
    }

    /// Total routers `a·g`.
    pub fn num_routers(&self) -> usize {
        self.a * self.g
    }

    /// Total terminals `N = a·p·g`.
    pub fn num_terminals(&self) -> usize {
        self.a * self.p * self.g
    }

    /// Router radix `k = p + (a-1) + h`.
    pub fn router_radix(&self) -> usize {
        self.p + self.a - 1 + self.h
    }

    /// Effective radix of the group as a virtual router,
    /// `k' = a(p + h)`.
    pub fn effective_radix(&self) -> usize {
        self.a * (self.p + self.h)
    }

    /// Global channels leaving each group (`a·h`).
    pub fn global_ports_per_group(&self) -> usize {
        self.a * self.h
    }

    /// Whether the network satisfies the paper's load-balance rule
    /// `a = 2p = 2h`.
    pub fn is_balanced(&self) -> bool {
        self.a == 2 * self.p && self.a == 2 * self.h
    }

    /// Whether the network at least over-provisions local and terminal
    /// bandwidth relative to global bandwidth (`a >= 2h` and `p >= h`),
    /// the weaker condition the paper recommends so that the expensive
    /// global channels stay fully utilisable.
    pub fn is_over_provisioned(&self) -> bool {
        self.a >= 2 * self.h && self.p >= self.h
    }

    /// Group index of a terminal.
    ///
    /// # Panics
    ///
    /// Panics if `terminal` is out of range.
    pub fn group_of_terminal(&self, terminal: usize) -> usize {
        assert!(terminal < self.num_terminals(), "terminal out of range");
        terminal / (self.a * self.p)
    }

    /// Router (global index) of a terminal.
    ///
    /// # Panics
    ///
    /// Panics if `terminal` is out of range.
    pub fn router_of_terminal(&self, terminal: usize) -> usize {
        assert!(terminal < self.num_terminals(), "terminal out of range");
        terminal / self.p
    }

    /// Group index of a router.
    ///
    /// # Panics
    ///
    /// Panics if `router` is out of range.
    pub fn group_of_router(&self, router: usize) -> usize {
        assert!(router < self.num_routers(), "router out of range");
        router / self.a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_n72() {
        // Figure 5: p = h = 2, a = 4 scales to N = 72 with k = 7.
        let d = DragonflyParams::new(2, 4, 2).unwrap();
        assert_eq!(d.num_terminals(), 72);
        assert_eq!(d.router_radix(), 7);
        assert_eq!(d.effective_radix(), 16);
        assert_eq!(d.num_groups(), 9);
        assert!(d.is_balanced());
    }

    #[test]
    fn paper_evaluation_network() {
        let d = DragonflyParams::new(4, 8, 4).unwrap();
        assert_eq!(d.num_groups(), 33);
        assert_eq!(d.num_routers(), 264);
        assert_eq!(d.num_terminals(), 1056);
    }

    #[test]
    fn radix64_scales_past_256k() {
        // §3.1: "with radix-64 routers, the topology scales to over 256K
        // nodes".
        let d = DragonflyParams::balanced_from_radix(64).unwrap();
        assert_eq!(d.router_radix(), 64);
        assert!(d.num_terminals() > 256 * 1024, "N = {}", d.num_terminals());
        assert!(d.is_over_provisioned());
    }

    #[test]
    fn balanced_from_radix_respects_radix() {
        for k in 3..=128 {
            let d = DragonflyParams::balanced_from_radix(k).unwrap();
            assert!(d.router_radix() <= k, "k={k} used {}", d.router_radix());
            assert!(d.is_over_provisioned(), "k={k}");
        }
    }

    #[test]
    fn small_group_count() {
        let d = DragonflyParams::with_groups(2, 4, 2, 5).unwrap();
        assert_eq!(d.num_terminals(), 40);
        assert_eq!(d.max_groups(), 9);
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(DragonflyParams::new(0, 4, 2).is_err());
        assert!(DragonflyParams::with_groups(2, 4, 2, 1).is_err());
        assert!(DragonflyParams::with_groups(2, 4, 2, 10).is_err());
        assert!(DragonflyParams::balanced_from_radix(2).is_err());
    }

    #[test]
    fn index_maps() {
        let d = DragonflyParams::new(2, 4, 2).unwrap();
        // Terminal 17: group 2 (8 per group), router 8.
        assert_eq!(d.group_of_terminal(17), 2);
        assert_eq!(d.router_of_terminal(17), 8);
        assert_eq!(d.group_of_router(8), 2);
    }
}
