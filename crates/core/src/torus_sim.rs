//! Simulating the k-ary n-cube torus on the same engine.
//!
//! The 3-D torus is the low-radix baseline of the paper's §5 cost study
//! (the Cray T3E generation the dragonfly displaced). This module wires
//! a [`dfly_topo::Torus`] into a [`dfly_netsim::NetworkSpec`] and
//! provides deterministic shortest-way dimension-order routing with the
//! classic *dateline* virtual-channel scheme, so the torus can be
//! compared behaviourally against the dragonfly.
//!
//! # Dateline VC assignment
//!
//! Each unidirectional ring breaks its channel-dependency cycle at a
//! dateline next to node 0: packets that still have to wrap around the
//! ring travel on VC0 and switch to VC1 after crossing; packets that
//! never wrap use VC1 outright. Within a ring the (channel, VC) order is
//! then acyclic, and dimension-order traversal makes it acyclic across
//! dimensions, so two VCs suffice for deadlock freedom.
//!
//! # Example
//!
//! ```
//! use dragonfly::torus_sim::{TorusNetwork, TorusRouting};
//! use dfly_topo::Torus;
//! use dfly_netsim::{SimConfig, Simulation};
//! use dfly_traffic::UniformRandom;
//!
//! let net = TorusNetwork::new(Torus::new(2, 4, 1));
//! let spec = net.build_spec();
//! let routing = TorusRouting::new(net.into());
//! let traffic = UniformRandom::new(spec.num_terminals());
//! let mut cfg = SimConfig::paper_default(0.1);
//! cfg.warmup = 200;
//! cfg.measure = 500;
//! let stats = Simulation::new(&spec, &routing, &traffic, cfg).unwrap().run();
//! assert!(stats.drained);
//! ```

use std::sync::Arc;

use dfly_netsim::{
    CandidatePath, CandidatePaths, ChannelClass, Connection, DecisionRecord, FaultPlan, FaultTable,
    Flit, NetView, NetworkSpec, PortSpec, PortVc, RouteAlgebra, RouteClass, RouteInfo, RouterSpec,
    RoutingAlgorithm, SimError, UgalChooser,
};
use dfly_topo::{Topology, Torus};
use rand::rngs::SmallRng;
use rand::Rng;

use crate::routing::UgalVariant;

/// A torus wired for cycle-accurate simulation.
#[derive(Debug, Clone)]
pub struct TorusNetwork {
    torus: Torus,
    latency: u32,
    /// Link-failure state, present after
    /// [`TorusNetwork::with_fault_plan`]. Under faults every flit
    /// follows the BFS next-hop tables over the surviving links
    /// (strictly decreasing alive distance, so no loops); adaptive
    /// long-way detours are disabled, because riding a fixed ring
    /// direction around dead links could ping-pong against the BFS
    /// fallback. The dateline rule still assigns the VC per hop, but
    /// detours may cross datelines off the dimension-order schedule, so
    /// deadlock freedom is best-effort rather than proven.
    faults: Option<Box<TorusFaults>>,
}

#[derive(Debug, Clone)]
struct TorusFaults {
    failed_links: Vec<(usize, usize)>,
    table: FaultTable,
}

impl TorusNetwork {
    /// Wires `torus` with unit channel latency.
    pub fn new(torus: Torus) -> Self {
        Self::with_latency(torus, 1)
    }

    /// Wires `torus` with the given network-channel latency.
    ///
    /// # Panics
    ///
    /// Panics if `latency == 0`.
    pub fn with_latency(torus: Torus, latency: u32) -> Self {
        assert!(latency > 0, "latency must be >= 1");
        TorusNetwork {
            torus,
            latency,
            faults: None,
        }
    }

    /// Applies a link-failure plan, composing with any faults already
    /// present. Routing then follows BFS shortest paths over the
    /// surviving links. Rejects plans that disconnect any router pair.
    pub fn with_fault_plan(mut self, plan: &FaultPlan) -> Result<Self, SimError> {
        let spec = self.build_spec().with_faults(plan)?;
        let failed = spec.failed_links().to_vec();
        if failed.is_empty() {
            self.faults = None;
        } else {
            let table = FaultTable::new(&spec);
            self.faults = Some(Box::new(TorusFaults {
                failed_links: failed,
                table,
            }));
        }
        Ok(self)
    }

    /// Whether a fault plan with at least one failed link is applied.
    pub fn has_faults(&self) -> bool {
        self.faults.is_some()
    }

    /// The failed `(router, port)` link ends, both directions listed.
    pub fn failed_links(&self) -> &[(usize, usize)] {
        self.faults.as_ref().map_or(&[], |f| &f.failed_links)
    }

    /// The congestion-probe point for a ring traversal: the router
    /// midway along `travel` hops in `dim`/`plus` from `coords`, and
    /// its onward same-direction port.
    fn ring_midpoint(
        &self,
        coords: &[usize],
        dim: usize,
        plus: bool,
        travel: usize,
    ) -> (usize, usize) {
        let k = self.torus.arity();
        let steps = travel / 2;
        let mut mid = coords.to_vec();
        mid[dim] = if plus {
            (coords[dim] + steps) % k
        } else {
            (coords[dim] + k - steps % k) % k
        };
        (self.torus.router_index(&mid), self.dir_port(dim, plus))
    }

    /// Inverse of [`dir_port`](Self::dir_port): the (dimension,
    /// direction) a network port travels in.
    fn port_dir(&self, port: usize) -> (usize, bool) {
        let off = port - self.torus.concentration();
        let ppd = self.ports_per_dim();
        (
            off / ppd,
            self.torus.arity() == 2 || off.is_multiple_of(ppd),
        )
    }

    /// Upper bound on network hops any routed packet takes, plus the
    /// ejection hop. Fault-free the worst case is one long-way ring
    /// (`k - 1` hops) plus minimal travel in every other dimension;
    /// under faults it is the BFS diameter of the surviving network.
    pub fn route_hop_bound(&self) -> usize {
        let k = self.torus.arity();
        let dims = self.torus.dimensions();
        let diameter = match &self.faults {
            Some(f) => f.table.diameter() as usize,
            None => (k - 1) + dims.saturating_sub(1) * (k / 2),
        };
        diameter + 1
    }

    /// The underlying structural topology.
    pub fn topology(&self) -> &Torus {
        &self.torus
    }

    /// Network ports per dimension: a +/− pair, or one shared port for
    /// arity 2 where the two directions coincide.
    fn ports_per_dim(&self) -> usize {
        if self.torus.arity() == 2 {
            1
        } else {
            2
        }
    }

    /// The port index for travelling in `dim`, direction `plus`.
    fn dir_port(&self, dim: usize, plus: bool) -> usize {
        let base = self.torus.concentration() + dim * self.ports_per_dim();
        if self.torus.arity() == 2 || plus {
            base
        } else {
            base + 1
        }
    }

    /// Builds the simulator wiring: concentration ports, then per
    /// dimension the +direction port and (for arity > 2) the −direction
    /// port. All network channels are classed local — torus cables are
    /// short by construction. Any applied fault plan is re-marked on
    /// the returned spec.
    pub fn build_spec(&self) -> NetworkSpec {
        let spec = self.build_spec_clean();
        match &self.faults {
            None => spec,
            Some(f) => spec
                .with_faults(&FaultPlan::Explicit(f.failed_links.clone()))
                .expect("stored fault list was validated when the plan was applied"),
        }
    }

    fn build_spec_clean(&self) -> NetworkSpec {
        let c = self.torus.concentration();
        let k = self.torus.arity();
        let mut routers = Vec::with_capacity(self.torus.num_routers());
        for r in 0..self.torus.num_routers() {
            let coords = self.torus.coordinates(r);
            let mut ports = Vec::new();
            for t in 0..c {
                ports.push(PortSpec {
                    conn: Connection::Terminal {
                        terminal: (r * c + t) as u32,
                    },
                    latency: 1,
                    class: ChannelClass::Terminal,
                });
            }
            for dim in 0..self.torus.dimensions() {
                let wire = |delta_plus: bool| {
                    let mut c2 = coords.clone();
                    c2[dim] = if delta_plus {
                        (coords[dim] + 1) % k
                    } else {
                        (coords[dim] + k - 1) % k
                    };
                    let peer = self.torus.router_index(&c2);
                    // The peer reaches us by travelling the opposite way.
                    PortSpec {
                        conn: Connection::Router {
                            router: peer as u32,
                            port: self.dir_port(dim, !delta_plus) as u32,
                        },
                        latency: self.latency,
                        class: ChannelClass::Local,
                    }
                };
                ports.push(wire(true));
                if k > 2 {
                    ports.push(wire(false));
                }
            }
            routers.push(RouterSpec { ports });
        }
        NetworkSpec::validated(routers, 2).expect("torus wiring must validate")
    }

    /// Load sweep under `routing` and `pattern`: one independent run
    /// per load, fanned out across the worker pool (results in load
    /// order, bit-identical to a serial sweep).
    ///
    /// # Errors
    ///
    /// The first configuration rejection, if `base` is invalid.
    pub fn sweep(
        &self,
        routing: &TorusRouting,
        pattern: &(dyn dfly_traffic::TrafficPattern + Sync),
        loads: &[f64],
        base: &dfly_netsim::SimConfig,
    ) -> Result<Vec<crate::LoadPoint>, dfly_netsim::SimError> {
        crate::parallel::sweep_network(&self.build_spec(), routing, pattern, loads, base)
    }
}

/// Closed-form routing algebra for the torus: coordinate arithmetic
/// fault-free (shortest-way dimension order with dateline VCs), the
/// lazily-built BFS columns under a fault plan. The salt is unused —
/// there is exactly one channel per (router, dimension, direction).
/// The single Valiant tag names the long way around the first
/// differing dimension's ring.
impl RouteAlgebra for TorusNetwork {
    fn terminal_router(&self, terminal: usize) -> usize {
        terminal / self.torus.concentration()
    }

    fn ejection_port(&self, terminal: usize) -> usize {
        terminal % self.torus.concentration()
    }

    fn minimal_port(&self, router: usize, dest: usize, _salt: u32) -> PortVc {
        let torus = &self.torus;
        let c = torus.concentration();
        let rd = dest / c;
        if router == rd {
            return PortVc::new(dest % c, 0);
        }
        let ca = torus.coordinates(router);
        let cb = torus.coordinates(rd);
        if let Some(f) = &self.faults {
            let port = f
                .table
                .next_port(router, rd)
                .expect("validated fault plan keeps the network connected");
            let (dim, plus) = self.port_dir(port);
            let (x, y) = (ca[dim], cb[dim]);
            let will_wrap = x == y || if plus { x > y } else { x < y };
            return PortVc::new(port, usize::from(!will_wrap));
        }
        let k = torus.arity();
        let dim = (0..ca.len())
            .find(|&d| ca[d] != cb[d])
            .expect("router != rd");
        let (x, y) = (ca[dim], cb[dim]);
        let forward = (y + k - x) % k;
        let plus = forward <= k - forward;
        let will_wrap = if plus { x > y } else { x < y };
        PortVc::new(self.dir_port(dim, plus), usize::from(!will_wrap))
    }

    fn minimal_hops(&self, router: usize, dest: usize, _salt: u32) -> u32 {
        let rd = dest / self.torus.concentration();
        if router == rd {
            return 0;
        }
        if let Some(f) = &self.faults {
            return f
                .table
                .distance(router, rd)
                .expect("validated fault plan keeps the network connected");
        }
        let k = self.torus.arity();
        let ca = self.torus.coordinates(router);
        let cb = self.torus.coordinates(rd);
        (0..ca.len())
            .map(|d| {
                let f = (cb[d] + k - ca[d]) % k;
                f.min(k - f) as u32
            })
            .sum()
    }

    fn valiant_degree(&self, router: usize, dest: usize) -> usize {
        let rd = dest / self.torus.concentration();
        // Arity ≤ 2 folds both directions onto one shared channel, and
        // faulted networks ride the BFS columns — nothing to tag.
        if router == rd || self.torus.arity() <= 2 || self.faults.is_some() {
            0
        } else {
            1
        }
    }

    fn valiant_tag(&self, router: usize, dest: usize, i: usize) -> u32 {
        debug_assert_eq!(i, 0, "the torus has a single detour tag");
        let k = self.torus.arity();
        let ca = self.torus.coordinates(router);
        let cb = self.torus.coordinates(dest / self.torus.concentration());
        let dim = (0..ca.len())
            .find(|&d| ca[d] != cb[d])
            .expect("router != rd");
        let forward = (cb[dim] + k - ca[dim]) % k;
        let plus_long = forward > k - forward;
        (dim * 2 + usize::from(plus_long)) as u32
    }

    fn vc_count(&self) -> usize {
        2
    }
}

impl CandidatePaths for TorusNetwork {
    /// Minimal candidate: the short way around the first differing
    /// dimension's ring, on its dateline VC; `hops` is the full
    /// Manhattan distance. The salt is unused — a torus has exactly one
    /// channel per (router, dimension, direction). The UGAL-G probe
    /// point is the same-direction channel at the router midway along
    /// the ring traversal — the bottleneck a ring path contends at.
    fn minimal_candidate(&self, router: usize, dest: usize, salt: u32) -> CandidatePath {
        let c = self.torus.concentration();
        let rd = dest / c;
        if router == rd {
            return CandidatePath::new(dest % c, 0, 0);
        }
        let first = self.minimal_port(router, dest, salt);
        let hops = RouteAlgebra::minimal_hops(self, router, dest, salt);
        let k = self.torus.arity();
        let ca = self.torus.coordinates(router);
        let cb = self.torus.coordinates(rd);
        let dim = (0..ca.len())
            .find(|&d| ca[d] != cb[d])
            .expect("router != rd");
        let forward = (cb[dim] + k - ca[dim]) % k;
        let plus = forward <= k - forward;
        let travel = forward.min(k - forward);
        let (mid, mid_port) = self.ring_midpoint(&ca, dim, plus, travel);
        CandidatePath::new(first.port as usize, first.vc as usize, hops).with_probe(mid, mid_port)
    }

    /// Non-minimal candidate: the long way around one ring.
    /// `intermediate` is the tag stored in the route —
    /// `dim * 2 + (direction is +)` — naming the detour dimension and
    /// travel direction; the remaining dimensions stay minimal.
    fn non_minimal_candidate(
        &self,
        router: usize,
        dest: usize,
        intermediate: u32,
        _salt: u32,
    ) -> CandidatePath {
        let c = self.torus.concentration();
        let rd = dest / c;
        let k = self.torus.arity();
        let ca = self.torus.coordinates(router);
        let cb = self.torus.coordinates(rd);
        let dim = intermediate as usize / 2;
        let plus = intermediate % 2 == 1;
        debug_assert_ne!(ca[dim], cb[dim], "detour dimension already resolved");
        let (x, y) = (ca[dim], cb[dim]);
        let will_wrap = if plus { x > y } else { x < y };
        let hops: u32 = (0..ca.len())
            .map(|d| {
                let f = (cb[d] + k - ca[d]) % k;
                if d == dim {
                    // Distance travelling the tagged direction, which may
                    // be (and for a true detour is) the long way around.
                    (if plus { f } else { k - f }) as u32
                } else {
                    f.min(k - f) as u32
                }
            })
            .sum();
        let forward = (y + k - x) % k;
        let travel = if plus { forward } else { k - forward };
        let (mid, mid_port) = self.ring_midpoint(&ca, dim, plus, travel);
        CandidatePath::new(self.dir_port(dim, plus), usize::from(!will_wrap), hops)
            .with_probe(mid, mid_port)
    }
}

/// Which decision rule drives [`TorusRouting`].
#[derive(Debug)]
enum TorusMode {
    /// Oblivious shortest-way dimension-order routing (the baseline).
    Dor,
    /// Per-packet UGAL choice between the short and the long way around
    /// the first differing dimension's ring, via the shared chooser.
    Adaptive(UgalVariant, UgalChooser),
}

/// Dimension-order routing with dateline VCs: deterministic shortest-way
/// by default, or per-packet adaptive between the short and the long way
/// around a ring (see [`TorusRouting::adaptive`]).
#[derive(Debug)]
pub struct TorusRouting {
    net: Arc<TorusNetwork>,
    mode: TorusMode,
}

impl Clone for TorusRouting {
    fn clone(&self) -> Self {
        match &self.mode {
            TorusMode::Dor => TorusRouting::new(self.net.clone()),
            TorusMode::Adaptive(variant, _) => TorusRouting::adaptive(self.net.clone(), *variant),
        }
    }
}

impl TorusRouting {
    /// Creates the oblivious shortest-way routing over `net`.
    pub fn new(net: Arc<TorusNetwork>) -> Self {
        TorusRouting {
            net,
            mode: TorusMode::Dor,
        }
    }

    /// Creates adaptive ring routing over `net`: each packet compares
    /// the short way against the long way around the first differing
    /// dimension's ring with the UGAL rule under `variant`'s congestion
    /// estimator. Both directions use the dateline VC scheme, so the
    /// detour stays deadlock-free. On an arity-2 torus (one shared
    /// channel per dimension) no distinct long way exists and the
    /// routing degenerates to shortest-way.
    pub fn adaptive(net: Arc<TorusNetwork>, variant: UgalVariant) -> Self {
        TorusRouting {
            net,
            mode: TorusMode::Adaptive(variant, UgalChooser::new(variant.estimator())),
        }
    }
}

impl RoutingAlgorithm for TorusRouting {
    fn name(&self) -> String {
        match &self.mode {
            TorusMode::Dor => "torus-DOR".into(),
            TorusMode::Adaptive(variant, _) => match variant {
                UgalVariant::Local => "torus-UGAL-L".into(),
                UgalVariant::LocalVc => "torus-UGAL-L_VC".into(),
                UgalVariant::LocalVcHybrid => "torus-UGAL-L_VCH".into(),
                UgalVariant::Global => "torus-UGAL-G".into(),
                UgalVariant::CreditRoundTrip => "torus-UGAL-L_CR".into(),
                UgalVariant::LocalEwma => "torus-UGAL-L_EWMA".into(),
            },
        }
    }

    fn inject(&self, view: &NetView<'_>, src: usize, dest: usize, rng: &mut SmallRng) -> RouteInfo {
        self.inject_traced(view, src, dest, rng).0
    }

    fn inject_traced(
        &self,
        view: &NetView<'_>,
        src: usize,
        dest: usize,
        rng: &mut SmallRng,
    ) -> (RouteInfo, DecisionRecord) {
        // Injection uses VC0; the first network hop re-derives its VC.
        let minimal = RouteInfo::minimal().with_salt(rng.gen());
        let TorusMode::Adaptive(_, chooser) = &self.mode else {
            return (minimal, DecisionRecord::default());
        };
        let torus = &self.net.torus;
        let c = torus.concentration();
        let (rs, rd) = (src / c, dest / c);
        let k = torus.arity();
        // Arity 2 folds both directions onto one shared channel: there is
        // no distinct long way to weigh against. Under faults every flit
        // follows the BFS tables (see `route`), so a long-way tag would
        // only be ignored — stay minimal and let the tables steer.
        if rs == rd || k <= 2 || self.net.has_faults() {
            return (minimal, DecisionRecord::default());
        }
        let ca = torus.coordinates(rs);
        let cb = torus.coordinates(rd);
        let dim = (0..ca.len()).find(|&d| ca[d] != cb[d]).expect("rs != rd");
        let (x, y) = (ca[dim], cb[dim]);
        let forward = (y + k - x) % k;
        // The detour direction is the opposite of the short way (ties
        // travel +, so the detour then travels −).
        let plus_long = forward > k - forward;
        let tag = (dim * 2 + usize::from(plus_long)) as u32;
        let m = self.net.minimal_candidate(rs, dest, minimal.salt);
        let nm = self.net.non_minimal_candidate(rs, dest, tag, minimal.salt);
        let decision = chooser.choose(view, rs, &m, &nm);
        let record = DecisionRecord {
            adaptive: true,
            estimator_disagreed: decision.estimator_disagreed,
            fault_avoided: decision.fault_avoided,
            dropped_candidates: decision.dropped_candidates,
            probe_fallbacks: decision.probe_fallbacks,
            q_chosen: decision.q_chosen(),
            oracle_chosen: decision.oracle_chosen(),
            oracle_disagreed: decision.oracle_disagreed,
            oracle_scored: decision.oracle_scored,
        };
        if decision.minimal {
            (minimal, record)
        } else {
            (RouteInfo::non_minimal(tag).with_salt(minimal.salt), record)
        }
    }

    fn route(&self, _view: &NetView<'_>, router: usize, flit: &Flit) -> PortVc {
        let torus = &self.net.torus;
        let c = torus.concentration();
        let dest = flit.dest as usize;
        let rd = dest / c;
        if router == rd {
            return PortVc::new(dest % c, 0);
        }
        if let Some(f) = &self.net.faults {
            // Fault branch: follow the BFS next hop over surviving
            // links (alive distance strictly decreases, so the walk
            // terminates). The dateline rule still picks the VC from
            // the hop's ring direction; a detour hop in an already
            // resolved dimension conservatively stays on VC0.
            let port = f
                .table
                .next_port(router, rd)
                .expect("validated fault plan keeps the network connected");
            let (dim, plus) = self.net.port_dir(port);
            let ca = torus.coordinates(router);
            let cb = torus.coordinates(rd);
            let (x, y) = (ca[dim], cb[dim]);
            let will_wrap = x == y || if plus { x > y } else { x < y };
            return PortVc::new(port, usize::from(!will_wrap));
        }
        let k = torus.arity();
        let ca = torus.coordinates(router);
        let cb = torus.coordinates(rd);
        let dim = (0..ca.len())
            .find(|&d| ca[d] != cb[d])
            .expect("router != rd");
        let (x, y) = (ca[dim], cb[dim]);
        // A non-minimal route rides its tagged direction until the detour
        // dimension resolves; everything else travels the short way
        // (ties travel +).
        let plus = match (flit.route.class, flit.route.intermediate()) {
            (RouteClass::NonMinimal, Some(tag)) if tag as usize / 2 == dim => tag % 2 == 1,
            _ => {
                let forward = (y + k - x) % k;
                forward <= k - forward
            }
        };
        // Dateline rule: while the remaining travel must wrap past the
        // dateline (next to node 0), stay on VC0; afterwards (or if no
        // wrap is needed) use VC1. The rule is direction-generic, so the
        // long way around keeps its ring deadlock-free too.
        let will_wrap = if plus { x > y } else { x < y };
        let vc = if will_wrap { 0 } else { 1 };
        PortVc::new(self.net.dir_port(dim, plus), vc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfly_netsim::{SimConfig, Simulation};
    use dfly_traffic::{Tornado, UniformRandom};

    fn fast_cfg(load: f64) -> SimConfig {
        let mut cfg = SimConfig::paper_default(load);
        cfg.warmup = 300;
        cfg.measure = 1_000;
        cfg.drain_cap = 30_000;
        cfg
    }

    #[test]
    fn spec_wires_and_validates() {
        for (dims, k, c) in [(1usize, 5usize, 2usize), (2, 4, 1), (3, 3, 2), (2, 2, 1)] {
            let net = TorusNetwork::new(Torus::new(dims, k, c));
            let spec = net.build_spec();
            assert_eq!(spec.num_routers(), k.pow(dims as u32), "k={k} dims={dims}");
            assert_eq!(
                spec.num_terminals(),
                c * k.pow(dims as u32),
                "k={k} dims={dims}"
            );
        }
    }

    #[test]
    fn uniform_traffic_delivers() {
        let net = Arc::new(TorusNetwork::new(Torus::new(2, 4, 1)));
        let spec = net.build_spec();
        let routing = TorusRouting::new(net);
        let pattern = UniformRandom::new(16);
        let stats = Simulation::new(&spec, &routing, &pattern, fast_cfg(0.2))
            .unwrap()
            .run();
        assert!(stats.drained);
        assert!((stats.accepted_rate - 0.2).abs() < 0.04);
    }

    #[test]
    fn ring_under_heavy_wraparound_load_does_not_deadlock() {
        // Tornado traffic on a ring maximises wraparound pressure: every
        // packet travels k/2-1 hops the same way. Without datelines this
        // load classically deadlocks; with them the run must drain.
        let net = Arc::new(TorusNetwork::new(Torus::new(1, 8, 1)));
        let spec = net.build_spec();
        let routing = TorusRouting::new(net);
        let pattern = Tornado::new(8);
        let mut cfg = fast_cfg(0.6);
        cfg.drain_cap = 60_000;
        let stats = Simulation::new(&spec, &routing, &pattern, cfg)
            .unwrap()
            .run();
        assert!(stats.drained, "ring deadlocked or starved");
        assert!(stats.latency.count > 0);
    }

    #[test]
    fn latency_matches_manhattan_distance_at_zero_load() {
        let net = Arc::new(TorusNetwork::new(Torus::new(3, 4, 1)));
        let spec = net.build_spec();
        let routing = TorusRouting::new(net);
        let pattern = UniformRandom::new(64);
        let stats = Simulation::new(&spec, &routing, &pattern, fast_cfg(0.01))
            .unwrap()
            .run();
        assert!(stats.drained);
        // Max path: 3 dims * floor(4/2) hops + inject + eject = 8.
        assert!(stats.latency.max <= 10, "max {}", stats.latency.max);
        assert!(stats.latency.min >= 3);
    }

    #[test]
    fn ring_tornado_capacity_is_one_third() {
        // Tornado on an 8-ring: every packet rides 3 hops in the +
        // direction, so each + channel carries 3 nodes' traffic:
        // capacity = 1/3 of injection bandwidth.
        let net = Arc::new(TorusNetwork::new(Torus::new(1, 8, 1)));
        let spec = net.build_spec();
        let routing = TorusRouting::new(net);
        let pattern = Tornado::new(8);
        let mut cfg = fast_cfg(1.0);
        cfg.warmup = 1_000;
        cfg.measure = 2_000;
        cfg.drain_cap = 0;
        let stats = Simulation::new(&spec, &routing, &pattern, cfg)
            .unwrap()
            .run();
        // Ideal is 1/3; ring arbitration (the parking-lot effect) costs
        // some of it in practice.
        assert!(
            (0.26..0.36).contains(&stats.accepted_rate),
            "tornado capacity {}",
            stats.accepted_rate
        );
    }

    #[test]
    fn arity_two_torus_works() {
        let net = Arc::new(TorusNetwork::new(Torus::new(3, 2, 1)));
        let spec = net.build_spec();
        let routing = TorusRouting::new(net);
        let pattern = UniformRandom::new(8);
        let stats = Simulation::new(&spec, &routing, &pattern, fast_cfg(0.15))
            .unwrap()
            .run();
        assert!(stats.drained);
    }

    #[test]
    fn dateline_rule_is_monotone() {
        // A packet's VC never goes from 1 back to 0 within a dimension:
        // walk routes hop by hop and check.
        let net = Arc::new(TorusNetwork::new(Torus::new(1, 9, 1)));
        let spec = net.build_spec();
        let routing = TorusRouting::new(net.clone());
        for src in 0..9usize {
            for dest in 0..9usize {
                if src == dest {
                    continue;
                }
                let mut flit = dfly_netsim::Flit {
                    packet: 0,
                    src: src as u32,
                    dest: dest as u32,
                    route: RouteInfo::minimal(),
                    created: 0,
                    injected: 0,
                    hops: 0,
                    vc: 0,
                    is_head: true,
                    is_tail: true,
                    labeled: false,
                    tag: 0,
                };
                let mut at = src;
                let mut prev_vc = 0u8;
                let mut started = false;
                for _ in 0..9 {
                    let pv = routing_route_for_test(&routing, at, &flit);
                    match spec.routers[at].ports[pv.port as usize].conn {
                        Connection::Terminal { terminal } => {
                            assert_eq!(terminal as usize, dest);
                            break;
                        }
                        Connection::Router { router, .. } => {
                            if started {
                                assert!(pv.vc >= prev_vc, "{src}->{dest}: VC regressed at {at}");
                            }
                            started = true;
                            prev_vc = pv.vc;
                            flit.vc = pv.vc;
                            flit.hops += 1;
                            at = router as usize;
                        }
                    }
                }
                assert_eq!(at, dest, "{src}->{dest} did not arrive");
            }
        }
    }

    #[test]
    fn candidate_hops_count_short_and_long_way() {
        let net = TorusNetwork::new(Torus::new(1, 8, 1));
        // 0 -> 3: short way is +3 hops, long way is -5.
        let m = net.minimal_candidate(0, 3, 0);
        assert_eq!(m.hops, 3);
        assert_eq!(m.vc, 1, "no wrap ahead of +travel from 0 to 3");
        let nm = net.non_minimal_candidate(0, 3, 0, 0); // dim 0, - direction
        assert_eq!(nm.hops, 5);
        assert_eq!(nm.vc, 0, "the long way - from 0 wraps the dateline");
        assert_ne!(m.port, nm.port);
    }

    #[test]
    fn adaptive_takes_long_way_under_tornado_and_drains() {
        // Tornado at 0.4 exceeds the ring's 1/3 minimal capacity; UGAL
        // must spill onto the long way to keep up, and the run telemetry
        // must witness those decisions.
        let net = Arc::new(TorusNetwork::new(Torus::new(1, 8, 1)));
        let spec = net.build_spec();
        let routing = TorusRouting::adaptive(net, UgalVariant::Local);
        let pattern = Tornado::new(8);
        let mut cfg = fast_cfg(0.4);
        cfg.drain_cap = 60_000;
        let stats = Simulation::new(&spec, &routing, &pattern, cfg)
            .unwrap()
            .run();
        assert!(stats.drained, "adaptive ring starved under tornado");
        assert!(stats.routing.adaptive_decisions > 0);
        assert!(
            stats.routing.non_minimal_takes > 0,
            "UGAL never took the long way"
        );
        assert_eq!(
            stats.routing.minimal_takes + stats.routing.non_minimal_takes,
            stats.latency.count
        );
    }

    #[test]
    fn adaptive_stays_minimal_on_benign_traffic() {
        let net = Arc::new(TorusNetwork::new(Torus::new(2, 4, 1)));
        let spec = net.build_spec();
        let routing = TorusRouting::adaptive(net, UgalVariant::Local);
        let pattern = UniformRandom::new(16);
        let stats = Simulation::new(&spec, &routing, &pattern, fast_cfg(0.05))
            .unwrap()
            .run();
        assert!(stats.drained);
        let rate = stats.routing.minimal_take_rate().unwrap();
        assert!(rate > 0.9, "minimal take rate {rate} at near-zero load");
    }

    #[test]
    fn ring_probes_sit_midway_along_the_traversal() {
        let net = TorusNetwork::new(Torus::new(1, 8, 1));
        // 0 -> 3 short way: 3 hops +, midpoint one step in at router 1.
        let m = net.minimal_candidate(0, 3, 0);
        assert_eq!(m.probe_router, 1);
        assert_eq!(m.probe_port as usize, net.dir_port(0, true));
        // Long way: 5 hops −, midpoint two steps back at router 6.
        let nm = net.non_minimal_candidate(0, 3, 0, 0);
        assert_eq!(nm.probe_router, 6);
        assert_eq!(nm.probe_port as usize, net.dir_port(0, false));
    }

    #[test]
    fn ugal_g_on_torus_has_no_probe_fallbacks() {
        let net = Arc::new(TorusNetwork::new(Torus::new(1, 8, 1)));
        let spec = net.build_spec();
        let routing = TorusRouting::adaptive(net, UgalVariant::Global);
        let pattern = Tornado::new(8);
        let mut cfg = fast_cfg(0.3);
        cfg.drain_cap = 60_000;
        let stats = Simulation::new(&spec, &routing, &pattern, cfg)
            .unwrap()
            .run();
        assert!(stats.drained);
        assert!(stats.routing.adaptive_decisions > 0);
        assert_eq!(
            stats.routing.oracle_probe_fallbacks, 0,
            "every ring candidate must carry a probe point"
        );
    }

    #[test]
    fn faulty_torus_delivers_uniform() {
        // Kill the (0,0) -> (1,0) +x cable: c = 1, so dir_port(0,+) = 1.
        let net = TorusNetwork::new(Torus::new(2, 4, 1))
            .with_fault_plan(&FaultPlan::Explicit(vec![(0, 1)]))
            .unwrap();
        assert!(net.has_faults());
        assert_eq!(net.failed_links().len(), 1);
        let spec = net.build_spec();
        assert!(spec.has_faults());
        let routing = TorusRouting::new(Arc::new(net));
        let pattern = UniformRandom::new(16);
        let stats = Simulation::new(&spec, &routing, &pattern, fast_cfg(0.1))
            .unwrap()
            .run();
        assert!(stats.drained, "faulty torus starved");
    }

    #[test]
    fn adaptive_torus_under_faults_stays_minimal_and_drains() {
        let net = TorusNetwork::new(Torus::new(1, 8, 1))
            .with_fault_plan(&FaultPlan::random_any(0.1, 3))
            .unwrap();
        assert!(net.has_faults());
        let spec = net.build_spec();
        let routing = TorusRouting::adaptive(Arc::new(net), UgalVariant::Local);
        let pattern = UniformRandom::new(8);
        let stats = Simulation::new(&spec, &routing, &pattern, fast_cfg(0.15))
            .unwrap()
            .run();
        assert!(stats.drained);
        // Under faults every flit rides the BFS tables: no long-way tags.
        assert_eq!(stats.routing.non_minimal_takes, 0);
        assert_eq!(stats.routing.adaptive_decisions, 0);
    }

    /// Calls the routing rule without a live simulation view (the torus
    /// rule is purely structural).
    fn routing_route_for_test(routing: &TorusRouting, router: usize, flit: &Flit) -> PortVc {
        let torus = &routing.net.torus;
        let c = torus.concentration();
        let dest = flit.dest as usize;
        let rd = dest / c;
        if router == rd {
            return PortVc::new(dest % c, 0);
        }
        let k = torus.arity();
        let ca = torus.coordinates(router);
        let cb = torus.coordinates(rd);
        let dim = (0..ca.len()).find(|&d| ca[d] != cb[d]).unwrap();
        let (x, y) = (ca[dim], cb[dim]);
        let forward = (y + k - x) % k;
        let plus = forward <= k - forward;
        let will_wrap = if plus { x > y } else { x < y };
        PortVc::new(routing.net.dir_port(dim, plus), usize::from(!will_wrap))
    }
}
