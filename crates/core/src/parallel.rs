//! Parallel experiment fan-out: plan a grid of independent simulation
//! runs and execute them across a bounded thread pool.
//!
//! Every run of the engine is self-contained — it builds its own
//! routing tables, traffic pattern and per-terminal RNG streams from
//! `SimConfig::seed` — so runs at different `(routing, traffic, load)`
//! points share nothing mutable and can execute in any order on any
//! thread. [`RunGrid::execute`] exploits that: results are **bit
//! identical** to [`RunGrid::execute_serial`] and come back in plan
//! order, regardless of the thread count or scheduling.
//!
//! The pool is bounded by the `DFLY_THREADS` environment variable when
//! set (a positive integer), falling back to the machine's available
//! parallelism. `DFLY_THREADS=1` forces serial execution.
//!
//! `DFLY_THREADS` is shared with the cycle engine's router sharding
//! (`SimConfig::shards == 0` resolves against the same variable): a
//! sweep of serial runs fans the whole budget out here, while a sweep
//! of sharded runs divides it — [`RunGrid::execute`] shrinks its pool
//! by each run's shard demand (see [`configured_threads_for`]) so the
//! two levels of parallelism compose without oversubscribing the
//! machine.

use dfly_netsim::{
    FaultClass, FaultPlan, InjectionKind, MetricsRegistry, NetworkSpec, RoutingAlgorithm, RunStats,
    SimConfig, SimError, Simulation, Termination,
};
use dfly_traffic::TrafficPattern;
use rayon::prelude::*;

use crate::campaign::{CampaignError, CampaignReport, CampaignStore};
use crate::experiment::{DragonflySim, LoadPoint, RoutingChoice, TrafficChoice};
use crate::jobs::{JobBook, JobError, JobMix, JobSpec, Placement};
use crate::progress::{ProgressSink, SweepProgress};
use crate::DragonflyParams;

/// Thread budget for parallel execution: `DFLY_THREADS` when set to a
/// positive integer, otherwise the machine's available parallelism.
pub fn configured_threads() -> usize {
    std::env::var("DFLY_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Maps `f` over `items` on a pool of [`configured_threads`] workers
/// (capped at the item count), preserving input order. With one thread
/// or one item this degenerates to a plain serial map.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_on(items, configured_threads(), f)
}

/// The sweep-level thread budget left after each run claims
/// `shards_per_run` worker threads for the cycle engine:
/// `configured_threads() / shards_per_run`, at least 1. A
/// `shards_per_run` of 0 (auto) assumes the engine grabs the whole
/// budget, so grids of auto-sharded runs execute one run at a time.
pub fn configured_threads_for(shards_per_run: usize) -> usize {
    let budget = configured_threads();
    if shards_per_run == 0 {
        return 1;
    }
    (budget / shards_per_run).max(1)
}

/// [`parallel_map`] with an explicit thread bound.
pub fn parallel_map_on<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.min(items.len()).max(1);
    if threads == 1 {
        return items.iter().map(f).collect();
    }
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("thread pool construction cannot fail");
    pool.install(|| items.par_iter().map(&f).collect())
}

/// Sweeps a generic network over `loads`, one independent run per load,
/// fanned out across the worker pool. Results come back in load order
/// and match a serial sweep bit for bit.
///
/// # Errors
///
/// The first configuration rejection, if `base` (or the spec it runs
/// against) is invalid at any load.
pub fn sweep_network(
    spec: &NetworkSpec,
    routing: &(dyn RoutingAlgorithm + Sync),
    pattern: &(dyn TrafficPattern + Sync),
    loads: &[f64],
    base: &SimConfig,
) -> Result<Vec<LoadPoint>, SimError> {
    let stats = parallel_map(loads, |&load| {
        let mut cfg = base.clone();
        cfg.injection = InjectionKind::Bernoulli { rate: load };
        Ok(Simulation::new(spec, routing, pattern, cfg)?.finish())
    })
    .into_iter()
    .collect::<Result<Vec<_>, SimError>>()?;
    Ok(loads
        .iter()
        .zip(stats)
        .map(|(&load, stats)| LoadPoint { load, stats })
        .collect())
}

/// One planned simulation run: a routing choice, a traffic pattern and
/// a full configuration (load, windows, seed, credit mode).
#[derive(Debug, Clone)]
pub struct RunPlan {
    /// Routing algorithm for this run.
    pub routing: RoutingChoice,
    /// Traffic pattern for this run.
    pub traffic: TrafficChoice,
    /// Complete run configuration.
    pub cfg: SimConfig,
}

impl RunPlan {
    /// A plan running `routing` under `traffic` with `cfg` as-is.
    pub fn new(routing: RoutingChoice, traffic: TrafficChoice, cfg: SimConfig) -> Self {
        RunPlan {
            routing,
            traffic,
            cfg,
        }
    }

    /// A plan at a specific offered load, overriding `base`'s injection
    /// rate (Bernoulli injection, as in the paper's sweeps).
    pub fn at_load(
        routing: RoutingChoice,
        traffic: TrafficChoice,
        base: &SimConfig,
        load: f64,
    ) -> Self {
        let mut cfg = base.clone();
        cfg.injection = InjectionKind::Bernoulli { rate: load };
        RunPlan::new(routing, traffic, cfg)
    }

    /// The plan's injection rate (packets/terminal/cycle).
    pub fn load(&self) -> f64 {
        self.cfg.injection.rate()
    }
}

/// An ordered collection of independent [`RunPlan`]s — typically the
/// cross product of routing choices, traffic patterns and offered loads
/// behind one figure — executable serially or across a thread pool with
/// identical results.
#[derive(Debug, Clone, Default)]
pub struct RunGrid {
    plans: Vec<RunPlan>,
}

impl RunGrid {
    /// An empty grid.
    pub fn new() -> Self {
        RunGrid::default()
    }

    /// Appends one plan.
    pub fn push(&mut self, plan: RunPlan) -> &mut Self {
        self.plans.push(plan);
        self
    }

    /// A load sweep for one `(routing, traffic)` pair: one plan per
    /// entry of `loads`, in order.
    pub fn load_sweep(
        routing: RoutingChoice,
        traffic: TrafficChoice,
        loads: &[f64],
        base: &SimConfig,
    ) -> Self {
        let plans = loads
            .iter()
            .map(|&load| RunPlan::at_load(routing, traffic, base, load))
            .collect();
        RunGrid { plans }
    }

    /// The full cross product `routings × traffics × loads`, ordered
    /// with loads innermost (matching nested serial loops).
    pub fn cross(
        routings: &[RoutingChoice],
        traffics: &[TrafficChoice],
        loads: &[f64],
        base: &SimConfig,
    ) -> Self {
        let mut grid = RunGrid::new();
        for &routing in routings {
            for &traffic in traffics {
                for &load in loads {
                    grid.push(RunPlan::at_load(routing, traffic, base, load));
                }
            }
        }
        grid
    }

    /// The planned runs, in execution (= result) order.
    pub fn plans(&self) -> &[RunPlan] {
        &self.plans
    }

    /// Number of planned runs.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// Whether the grid holds no plans.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// The largest engine-level shard count any plan asks for (`0`
    /// — auto — dominates everything else; `1` if the grid is empty).
    pub fn shard_demand(&self) -> usize {
        let mut demand = 1;
        for plan in &self.plans {
            if plan.cfg.shards == 0 {
                return 0;
            }
            demand = demand.max(plan.cfg.shards);
        }
        demand
    }

    /// Executes every plan against `sim` across the configured thread
    /// pool (see [`configured_threads`]), leaving room for each run's
    /// own router shards (see [`configured_threads_for`]); results are
    /// in plan order and bit-identical to [`RunGrid::execute_serial`].
    pub fn execute(&self, sim: &DragonflySim) -> Vec<RunStats> {
        self.execute_on(sim, configured_threads_for(self.shard_demand()))
    }

    /// [`RunGrid::execute`] with an explicit thread bound.
    pub fn execute_on(&self, sim: &DragonflySim, threads: usize) -> Vec<RunStats> {
        parallel_map_on(&self.plans, threads, |plan| {
            sim.run(plan.routing, plan.traffic, plan.cfg.clone())
        })
    }

    /// Executes every plan on the calling thread, in order.
    pub fn execute_serial(&self, sim: &DragonflySim) -> Vec<RunStats> {
        self.execute_on(sim, 1)
    }

    /// [`RunGrid::execute`] through a [`CampaignStore`]: plans whose
    /// key is already stored return the persisted result without
    /// simulating; misses simulate and stream to the journal the
    /// moment they complete. Results are in plan order and
    /// bit-identical to an uncached [`RunGrid::execute`] — on hits
    /// because the store round trip is exact, on misses trivially.
    ///
    /// # Errors
    ///
    /// The first journal write failure, if any.
    pub fn execute_cached(
        &self,
        sim: &DragonflySim,
        store: &CampaignStore,
    ) -> Result<(Vec<RunStats>, CampaignReport), CampaignError> {
        self.execute_cached_streaming_on(
            sim,
            store,
            configured_threads_for(self.shard_demand()),
            &|_, _, _| {},
        )
    }

    /// [`RunGrid::execute_cached`] with a streaming callback: every
    /// completed cell is reported as `(plan index, stats, was_hit)` the
    /// moment it resolves, in completion (not plan) order. The callback
    /// runs on worker threads and must be `Sync`.
    pub fn execute_cached_streaming(
        &self,
        sim: &DragonflySim,
        store: &CampaignStore,
        on_result: &(dyn Fn(usize, &RunStats, bool) + Sync),
    ) -> Result<(Vec<RunStats>, CampaignReport), CampaignError> {
        self.execute_cached_streaming_on(
            sim,
            store,
            configured_threads_for(self.shard_demand()),
            on_result,
        )
    }

    /// [`RunGrid::execute_cached_streaming`] with an explicit thread
    /// bound (`1` makes the callback order deterministic: plan order).
    pub fn execute_cached_streaming_on(
        &self,
        sim: &DragonflySim,
        store: &CampaignStore,
        threads: usize,
        on_result: &(dyn Fn(usize, &RunStats, bool) + Sync),
    ) -> Result<(Vec<RunStats>, CampaignReport), CampaignError> {
        let indexed: Vec<(usize, &RunPlan)> = self.plans.iter().enumerate().collect();
        let sink = ProgressSink::from_env();
        let progress =
            SweepProgress::begin(&sink, "grid", self.plans.len(), store.median_timing("run"));
        let results = parallel_map_on(
            &indexed,
            threads,
            |&(i, plan)| -> Result<(RunStats, bool), CampaignError> {
                let key = store.run_key(sim, plan);
                if let Some(stats) = store.lookup_run(&key) {
                    on_result(i, &stats, true);
                    progress.cell(i, true, 0.0);
                    return Ok((stats, true));
                }
                let clock = std::time::Instant::now();
                let stats = sim.run(plan.routing, plan.traffic, plan.cfg.clone());
                let secs = clock.elapsed().as_secs_f64();
                store.insert_run(&key, &stats)?;
                store.record_timing("run", secs);
                on_result(i, &stats, false);
                progress.cell(i, false, secs);
                Ok((stats, false))
            },
        );
        let mut all = Vec::with_capacity(results.len());
        let mut report = CampaignReport::default();
        for result in results {
            let (stats, hit) = result?;
            if hit {
                report.hits += 1;
            } else {
                report.misses += 1;
            }
            all.push(stats);
        }
        progress.finish();
        Ok((all, report))
    }

    /// Like [`RunGrid::execute`], but additionally builds a merged
    /// [`MetricsRegistry`] over the whole grid: each worker absorbs its
    /// own runs into a private registry and the per-worker registries
    /// are folded in plan order, so the merged registry (and its JSON)
    /// is bit-identical to a serial execution's.
    pub fn execute_with_metrics(&self, sim: &DragonflySim) -> (Vec<RunStats>, MetricsRegistry) {
        self.execute_with_metrics_on(sim, configured_threads_for(self.shard_demand()))
    }

    /// [`RunGrid::execute_with_metrics`] with an explicit thread bound.
    pub fn execute_with_metrics_on(
        &self,
        sim: &DragonflySim,
        threads: usize,
    ) -> (Vec<RunStats>, MetricsRegistry) {
        let per_run = parallel_map_on(&self.plans, threads, |plan| {
            let stats = sim.run(plan.routing, plan.traffic, plan.cfg.clone());
            let mut registry = MetricsRegistry::new();
            absorb_run(&mut registry, plan, &stats);
            (stats, registry)
        });
        let mut all = Vec::with_capacity(per_run.len());
        let mut merged = MetricsRegistry::new();
        for (stats, registry) in per_run {
            merged.merge(&registry);
            all.push(stats);
        }
        (all, merged)
    }
}

/// Folds one run's statistics into a registry under the standard
/// counter/histogram names (`runs`, `drained_runs`, `labeled_packets`,
/// the routing-decision counters, and the `packet_latency` /
/// `scoreboard_abs_error` histograms).
fn absorb_run(registry: &mut MetricsRegistry, plan: &RunPlan, stats: &RunStats) {
    registry.inc("runs", 1);
    registry.inc("drained_runs", u64::from(stats.drained));
    registry.inc("labeled_packets", stats.latency.count);
    registry.inc("cycles", stats.cycles);
    registry.inc("minimal_takes", stats.routing.minimal_takes);
    registry.inc("non_minimal_takes", stats.routing.non_minimal_takes);
    registry.inc("adaptive_decisions", stats.routing.adaptive_decisions);
    registry.inc(
        "estimator_disagreements",
        stats.routing.estimator_disagreements,
    );
    registry.inc(
        "fault_avoided_decisions",
        stats.routing.fault_avoided_decisions,
    );
    registry.inc("dropped_candidates", stats.routing.dropped_candidates);
    registry.inc(
        "oracle_probe_fallbacks",
        stats.routing.oracle_probe_fallbacks,
    );
    registry.inc("scoreboard_decisions", stats.scoreboard.decisions);
    registry.inc(
        "scoreboard_oracle_disagreements",
        stats.scoreboard.oracle_disagreements,
    );
    registry
        .histogram_mut("packet_latency")
        .merge(&stats.latency_log);
    registry
        .histogram_mut("scoreboard_abs_error")
        .merge(&stats.scoreboard.abs_error);
    // Per-routing-choice latency breakdown, keyed by the plan's label.
    registry
        .histogram_mut(&format!("latency/{}", plan.routing.label()))
        .merge(&stats.latency_log);
}

/// One point of a fault-degradation curve: the network with a seeded
/// random `fraction` of its links failed, driven at an offered load of
/// 1.0 so [`RunStats::accepted_rate`] reads the saturation throughput.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPoint {
    /// Failed-link fraction the point was run at.
    pub fraction: f64,
    /// Number of cables the plan actually failed (both directions each).
    pub failed_links: usize,
    /// Full statistics of the saturation run.
    pub stats: RunStats,
}

impl FaultPoint {
    /// Saturation throughput at this fault level (accepted
    /// packets/terminal/cycle at an offered load of 1.0).
    pub fn throughput(&self) -> f64 {
        self.stats.accepted_rate
    }
}

/// A throughput-vs-failed-link-fraction sweep: one saturation run per
/// fraction, each on its own dragonfly built with a seeded random fault
/// plan.
///
/// The per-fraction fault sets are *nested* (see
/// [`FaultPlan::Random`]): with one seed, every cable failed at
/// fraction `f1 < f2` is also failed at `f2`, so the measured curve
/// degrades monotonically instead of comparing unrelated fault draws.
/// Points are independent runs and fan out across the worker pool;
/// [`FaultSweep::execute`] is bit-identical to
/// [`FaultSweep::execute_serial`].
///
/// # Example
///
/// ```no_run
/// use dragonfly::{DragonflyParams, FaultSweep, RoutingChoice, TrafficChoice};
/// use dfly_netsim::SimConfig;
///
/// let sweep = FaultSweep::new(
///     DragonflyParams::new(2, 4, 2).unwrap(),
///     RoutingChoice::UgalLVcH,
///     TrafficChoice::Uniform,
///     &SimConfig::paper_default(1.0),
///     &[0.0, 1.0 / 16.0, 1.0 / 8.0],
///     7,
/// );
/// let points = sweep.execute().unwrap();
/// assert_eq!(points.len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct FaultSweep {
    /// Dragonfly configuration each point rebuilds.
    pub params: DragonflyParams,
    /// Routing algorithm under test.
    pub routing: RoutingChoice,
    /// Traffic pattern under test.
    pub traffic: TrafficChoice,
    /// Base configuration; each point forces an offered load of 1.0 and
    /// skips the (futile) drain, as
    /// [`DragonflySim::saturation_throughput`] does.
    pub cfg: SimConfig,
    /// Failed-link fractions, one run per entry.
    pub fractions: Vec<f64>,
    /// Seed of the nested random draws.
    pub seed: u64,
    /// Channel class the draws select from.
    pub class: FaultClass,
}

impl FaultSweep {
    /// A sweep failing global channels (the paper's expensive optical
    /// cables — the interesting failure mode) at each of `fractions`.
    pub fn new(
        params: DragonflyParams,
        routing: RoutingChoice,
        traffic: TrafficChoice,
        base: &SimConfig,
        fractions: &[f64],
        seed: u64,
    ) -> Self {
        FaultSweep {
            params,
            routing,
            traffic,
            cfg: base.clone(),
            fractions: fractions.to_vec(),
            seed,
            class: FaultClass::Global,
        }
    }

    /// The same sweep drawing from a different channel class.
    pub fn with_class(mut self, class: FaultClass) -> Self {
        self.class = class;
        self
    }

    fn run_point(&self, fraction: f64) -> Result<FaultPoint, SimError> {
        let plan = FaultPlan::Random {
            fraction,
            seed: self.seed,
            class: self.class,
        };
        let sim = DragonflySim::with_faults(self.params, &plan)?;
        let mut cfg = self.cfg.clone();
        cfg.injection = InjectionKind::Bernoulli { rate: 1.0 };
        cfg.drain_cap = 0;
        let stats = sim.run(self.routing, self.traffic, cfg);
        Ok(FaultPoint {
            fraction,
            failed_links: sim.dragonfly().failed_links().len(),
            stats,
        })
    }

    /// Runs every fraction across the configured thread pool (see
    /// [`configured_threads`]); results are in fraction order and
    /// bit-identical to [`FaultSweep::execute_serial`].
    ///
    /// # Errors
    ///
    /// The first fault-plan rejection, if any fraction disconnects the
    /// network or the plan is malformed.
    pub fn execute(&self) -> Result<Vec<FaultPoint>, SimError> {
        self.execute_on(configured_threads())
    }

    /// [`FaultSweep::execute`] with an explicit thread bound.
    pub fn execute_on(&self, threads: usize) -> Result<Vec<FaultPoint>, SimError> {
        parallel_map_on(&self.fractions, threads, |&fraction| {
            self.run_point(fraction)
        })
        .into_iter()
        .collect()
    }

    /// Runs every fraction on the calling thread, in order.
    pub fn execute_serial(&self) -> Result<Vec<FaultPoint>, SimError> {
        self.execute_on(1)
    }

    /// [`FaultSweep::execute`] through a [`CampaignStore`]: fractions
    /// already stored are answered from the journal, misses simulate
    /// and stream to it. Bit-identical to the uncached execute.
    ///
    /// # Errors
    ///
    /// The first fault-plan rejection or journal write failure.
    pub fn execute_cached(
        &self,
        store: &CampaignStore,
    ) -> Result<(Vec<FaultPoint>, CampaignReport), CampaignError> {
        let indexed: Vec<(usize, f64)> = self.fractions.iter().copied().enumerate().collect();
        let sink = ProgressSink::from_env();
        let progress = SweepProgress::begin(
            &sink,
            "fault",
            self.fractions.len(),
            store.median_timing("fault"),
        );
        let results = parallel_map_on(
            &indexed,
            configured_threads(),
            |&(i, fraction)| -> Result<(FaultPoint, bool), CampaignError> {
                let key = store.fault_key(self, fraction);
                if let Some(point) = store.lookup_fault(&key) {
                    progress.cell(i, true, 0.0);
                    return Ok((point, true));
                }
                let clock = std::time::Instant::now();
                let point = self.run_point(fraction)?;
                let secs = clock.elapsed().as_secs_f64();
                store.insert_fault(&key, &point)?;
                store.record_timing("fault", secs);
                progress.cell(i, false, secs);
                Ok((point, false))
            },
        );
        let mut all = Vec::with_capacity(results.len());
        let mut report = CampaignReport::default();
        for result in results {
            let (point, hit) = result?;
            if hit {
                report.hits += 1;
            } else {
                report.misses += 1;
            }
            all.push(point);
        }
        progress.finish();
        Ok((all, report))
    }
}

/// One point of a [`WorkloadSweep`]: a job mix run to completion under
/// one `(placement, background load)` pair.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadPoint {
    /// Placement policy of this run.
    pub placement: Placement,
    /// Untracked background load offered by non-job terminals.
    pub background_load: f64,
    /// Full engine statistics ([`RunStats::completion`] is the cycle
    /// the whole mix finished, `None` if it hit the cycle cap).
    pub stats: RunStats,
    /// Per-job accounting, in job order.
    pub books: Vec<JobBook>,
}

impl WorkloadPoint {
    /// Completion cycle of job `job` (its last delivery).
    pub fn job_completion(&self, job: usize) -> u64 {
        self.books[job].completion
    }
}

/// Interference measurement for one job at one background load: its
/// completion time under group-disjoint vs interfering placement.
#[derive(Debug, Clone, PartialEq)]
pub struct SlowdownPoint {
    /// Job name from the mix's [`JobSpec`].
    pub job: String,
    /// Background load both runs shared.
    pub background_load: f64,
    /// Completion cycle under [`Placement::GroupDisjoint`].
    pub disjoint: u64,
    /// Completion cycle under [`Placement::Interfering`].
    pub interfering: u64,
}

impl SlowdownPoint {
    /// `interfering / disjoint` completion-time ratio; > 1 means
    /// co-location slowed the job down.
    pub fn ratio(&self) -> f64 {
        if self.disjoint == 0 {
            return f64::NAN;
        }
        self.interfering as f64 / self.disjoint as f64
    }
}

/// A closed-loop workload sweep: a fixed job mix run to completion at
/// every `(placement, background load)` point, measuring per-job
/// completion time and the interference slowdown of co-location.
///
/// Every point is an independent work-complete run (the engine stops
/// when all tracked job packets are delivered, see
/// [`Termination::WorkComplete`]); points fan out across the worker
/// pool and [`WorkloadSweep::execute`] is bit-identical to
/// [`WorkloadSweep::execute_serial`]. The per-job books are built from
/// commutative updates only, so they are also identical at any engine
/// shard count.
///
/// # Example
///
/// ```no_run
/// use dragonfly::{DragonflyParams, JobSpec, RoutingChoice, WorkloadSweep};
/// use dfly_netsim::SimConfig;
///
/// let sweep = WorkloadSweep::new(
///     DragonflyParams::new(2, 4, 2).unwrap(),
///     RoutingChoice::UgalLVcH,
///     vec![JobSpec::barrier("alpha", 8, 4), JobSpec::all_to_all("beta", 8)],
///     &SimConfig::paper_default(0.0),
///     &[0.0, 0.2],
/// );
/// let points = sweep.execute().unwrap();
/// for s in sweep.slowdowns(&points) {
///     println!("{} @ {}: x{:.2}", s.job, s.background_load, s.ratio());
/// }
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadSweep {
    /// Dragonfly configuration each point rebuilds.
    pub params: DragonflyParams,
    /// Routing algorithm under test.
    pub routing: RoutingChoice,
    /// The tenant jobs every point places and runs.
    pub jobs: Vec<JobSpec>,
    /// Base configuration. Each point forces
    /// [`Termination::WorkComplete`]; `warmup + measure + drain_cap`
    /// remains the hard cycle cap, so it must be generous enough for
    /// the jobs to finish.
    pub cfg: SimConfig,
    /// Background loads, one pair of runs (disjoint + interfering) per
    /// entry.
    pub background_loads: Vec<f64>,
    /// Placement policies to compare (both, by default).
    pub placements: Vec<Placement>,
}

impl WorkloadSweep {
    /// A sweep comparing group-disjoint against interfering placement
    /// of `jobs` at each of `background_loads`.
    pub fn new(
        params: DragonflyParams,
        routing: RoutingChoice,
        jobs: Vec<JobSpec>,
        base: &SimConfig,
        background_loads: &[f64],
    ) -> Self {
        WorkloadSweep {
            params,
            routing,
            jobs,
            cfg: base.clone(),
            background_loads: background_loads.to_vec(),
            placements: vec![Placement::GroupDisjoint, Placement::Interfering],
        }
    }

    fn run_point(&self, placement: Placement, load: f64) -> Result<WorkloadPoint, JobError> {
        let sim = DragonflySim::new(self.params);
        let mix = JobMix::new(self.jobs.clone(), placement).with_background(load);
        let assignment = mix.assign(&self.params)?;
        let ledger = mix.ledger();
        let mut cfg = self.cfg.clone();
        cfg.termination = Termination::WorkComplete;
        let stats = sim.run_workload(self.routing, cfg, &|range| {
            Box::new(mix.workload(&assignment, range, &ledger))
        });
        Ok(WorkloadPoint {
            placement,
            background_load: load,
            stats,
            books: ledger.snapshot(),
        })
    }

    /// The planned `(placement, background load)` points, loads
    /// innermost — the order results come back in.
    pub fn points(&self) -> Vec<(Placement, f64)> {
        let mut pts = Vec::with_capacity(self.placements.len() * self.background_loads.len());
        for &p in &self.placements {
            for &l in &self.background_loads {
                pts.push((p, l));
            }
        }
        pts
    }

    /// Runs every point across the configured thread pool, leaving room
    /// for each run's engine shards (see [`configured_threads_for`]).
    /// Results are in [`WorkloadSweep::points`] order and bit-identical
    /// to [`WorkloadSweep::execute_serial`].
    ///
    /// # Errors
    ///
    /// The first invalid job spec or failed placement, if any.
    pub fn execute(&self) -> Result<Vec<WorkloadPoint>, JobError> {
        self.execute_on(configured_threads_for(self.cfg.shards))
    }

    /// [`WorkloadSweep::execute`] with an explicit thread bound.
    pub fn execute_on(&self, threads: usize) -> Result<Vec<WorkloadPoint>, JobError> {
        parallel_map_on(&self.points(), threads, |&(placement, load)| {
            self.run_point(placement, load)
        })
        .into_iter()
        .collect()
    }

    /// Runs every point on the calling thread, in order.
    pub fn execute_serial(&self) -> Result<Vec<WorkloadPoint>, JobError> {
        self.execute_on(1)
    }

    /// [`WorkloadSweep::execute`] through a [`CampaignStore`]: points
    /// already stored are answered from the journal, misses run to
    /// completion and stream to it. Bit-identical to the uncached
    /// execute, per-job books included.
    ///
    /// # Errors
    ///
    /// The first invalid job spec, failed placement, or journal write
    /// failure.
    pub fn execute_cached(
        &self,
        store: &CampaignStore,
    ) -> Result<(Vec<WorkloadPoint>, CampaignReport), CampaignError> {
        let threads = configured_threads_for(self.cfg.shards);
        let points = self.points();
        let indexed: Vec<(usize, (Placement, f64))> = points.into_iter().enumerate().collect();
        let sink = ProgressSink::from_env();
        let progress = SweepProgress::begin(
            &sink,
            "workload",
            indexed.len(),
            store.median_timing("workload"),
        );
        let results = parallel_map_on(
            &indexed,
            threads,
            |&(i, (placement, load))| -> Result<(WorkloadPoint, bool), CampaignError> {
                let key = store.workload_key(self, placement, load);
                if let Some(point) = store.lookup_workload(&key) {
                    progress.cell(i, true, 0.0);
                    return Ok((point, true));
                }
                let clock = std::time::Instant::now();
                let point = self.run_point(placement, load)?;
                let secs = clock.elapsed().as_secs_f64();
                store.insert_workload(&key, &point)?;
                store.record_timing("workload", secs);
                progress.cell(i, false, secs);
                Ok((point, false))
            },
        );
        let mut all = Vec::with_capacity(results.len());
        let mut report = CampaignReport::default();
        for result in results {
            let (point, hit) = result?;
            if hit {
                report.hits += 1;
            } else {
                report.misses += 1;
            }
            all.push(point);
        }
        progress.finish();
        Ok((all, report))
    }

    /// Like [`WorkloadSweep::execute`], but also folds every point into
    /// a [`MetricsRegistry`] under per-job scopes:
    /// `jobs/{name}/{placement}/delivered`,
    /// `jobs/{name}/{placement}/completion_cycles` and the
    /// `jobs/{name}/{placement}/latency` histogram, plus the sweep-wide
    /// `workload_runs` / `workload_completed_runs` counters. Absorption
    /// happens in point order, so the registry (and its JSON) is
    /// bit-identical across thread counts.
    pub fn execute_with_metrics(&self) -> Result<(Vec<WorkloadPoint>, MetricsRegistry), JobError> {
        let points = self.execute()?;
        let mut registry = MetricsRegistry::new();
        for point in &points {
            self.absorb_point(&mut registry, point);
        }
        Ok((points, registry))
    }

    fn absorb_point(&self, registry: &mut MetricsRegistry, point: &WorkloadPoint) {
        registry.inc("workload_runs", 1);
        registry.inc(
            "workload_completed_runs",
            u64::from(point.stats.completion.is_some()),
        );
        for (spec, book) in self.jobs.iter().zip(&point.books) {
            let scope = format!("jobs/{}/{}", spec.name, point.placement.label());
            registry.inc(&format!("{scope}/delivered"), book.delivered);
            registry.inc(&format!("{scope}/completion_cycles"), book.completion);
            registry
                .histogram_mut(&format!("{scope}/latency"))
                .merge(&book.latency);
        }
    }

    /// Pairs each job's completion time under the two placements at
    /// matching background loads, jobs innermost. Points missing either
    /// placement are skipped.
    pub fn slowdowns(&self, points: &[WorkloadPoint]) -> Vec<SlowdownPoint> {
        let find = |placement: Placement, load: f64| {
            points
                .iter()
                .find(|p| p.placement == placement && p.background_load == load)
        };
        let mut out = Vec::new();
        for &load in &self.background_loads {
            let (Some(dis), Some(int)) = (
                find(Placement::GroupDisjoint, load),
                find(Placement::Interfering, load),
            ) else {
                continue;
            };
            for (j, spec) in self.jobs.iter().enumerate() {
                out.push(SlowdownPoint {
                    job: spec.name.clone(),
                    background_load: load,
                    disjoint: dis.job_completion(j),
                    interfering: int.job_completion(j),
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DragonflyParams;

    fn tiny() -> DragonflySim {
        DragonflySim::new(DragonflyParams::new(2, 4, 2).unwrap())
    }

    fn fast_cfg(sim: &DragonflySim, load: f64) -> SimConfig {
        let mut cfg = sim.config(load);
        cfg.warmup = 200;
        cfg.measure = 600;
        cfg.drain_cap = 20_000;
        cfg
    }

    #[test]
    fn shard_demand_tracks_plan_configs() {
        let sim = tiny();
        let base = fast_cfg(&sim, 0.0);
        let grid = RunGrid::cross(
            &[RoutingChoice::Min],
            &[TrafficChoice::Uniform],
            &[0.1, 0.2],
            &base,
        );
        assert_eq!(grid.shard_demand(), 1);
        let mut sharded = base.clone();
        sharded.shards = 4;
        let grid = RunGrid::cross(
            &[RoutingChoice::Min],
            &[TrafficChoice::Uniform],
            &[0.1],
            &sharded,
        );
        assert_eq!(grid.shard_demand(), 4);
        let mut auto = base;
        auto.shards = 0;
        let grid = RunGrid::cross(
            &[RoutingChoice::Min],
            &[TrafficChoice::Uniform],
            &[0.1],
            &auto,
        );
        assert_eq!(grid.shard_demand(), 0);
        assert_eq!(configured_threads_for(0), 1);
        assert!(configured_threads_for(usize::MAX) >= 1);
    }

    #[test]
    fn cross_orders_loads_innermost() {
        let sim = tiny();
        let base = fast_cfg(&sim, 0.0);
        let grid = RunGrid::cross(
            &[RoutingChoice::Min, RoutingChoice::Valiant],
            &[TrafficChoice::Uniform],
            &[0.1, 0.2],
            &base,
        );
        assert_eq!(grid.len(), 4);
        let summary: Vec<(RoutingChoice, f64)> =
            grid.plans().iter().map(|p| (p.routing, p.load())).collect();
        assert_eq!(
            summary,
            vec![
                (RoutingChoice::Min, 0.1),
                (RoutingChoice::Min, 0.2),
                (RoutingChoice::Valiant, 0.1),
                (RoutingChoice::Valiant, 0.2),
            ]
        );
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let sim = tiny();
        let base = fast_cfg(&sim, 0.0);
        let grid = RunGrid::cross(
            &[RoutingChoice::Min, RoutingChoice::UgalLVcH],
            &[TrafficChoice::Uniform, TrafficChoice::WorstCase],
            &[0.1, 0.3],
            &base,
        );
        let serial = grid.execute_serial(&sim);
        let parallel = grid.execute_on(&sim, 4);
        assert_eq!(serial.len(), grid.len());
        assert_eq!(serial, parallel);
    }

    #[test]
    fn merged_metrics_match_serial_byte_for_byte() {
        let sim = tiny();
        let base = fast_cfg(&sim, 0.0);
        let grid = RunGrid::cross(
            &[RoutingChoice::Min, RoutingChoice::UgalL],
            &[TrafficChoice::Uniform],
            &[0.1, 0.2],
            &base,
        );
        let (serial_stats, serial_reg) = grid.execute_with_metrics_on(&sim, 1);
        let (par_stats, par_reg) = grid.execute_with_metrics_on(&sim, 4);
        assert_eq!(serial_stats, par_stats);
        assert_eq!(serial_reg, par_reg);
        assert_eq!(serial_reg.to_json(), par_reg.to_json());
        assert_eq!(serial_reg.counters["runs"], 4);
        assert_eq!(
            serial_reg.histograms["packet_latency"].count,
            serial_stats.iter().map(|s| s.latency.count).sum::<u64>()
        );
        // UGAL-L runs contribute scoreboard decisions; MIN runs none.
        assert!(serial_reg.counters["scoreboard_decisions"] > 0);
        assert!(serial_reg.histograms.contains_key("latency/UGAL-L"));
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..37).collect();
        let doubled = parallel_map_on(&items, 4, |&x| x * 2);
        assert_eq!(doubled, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
        // Degenerate cases: empty input and single thread.
        assert!(parallel_map_on(&[] as &[u64], 4, |&x| x).is_empty());
        assert_eq!(parallel_map_on(&items, 1, |&x| x + 1)[36], 37);
    }

    #[test]
    fn sweep_network_matches_dragonfly_sweep() {
        let sim = tiny();
        let base = fast_cfg(&sim, 0.0);
        let loads = [0.1, 0.25];
        let by_grid = sim.sweep(RoutingChoice::Min, TrafficChoice::Uniform, &loads, &base);
        let algo_df = std::sync::Arc::new(crate::topology::Dragonfly::new(
            DragonflyParams::new(2, 4, 2).unwrap(),
        ));
        let routing = crate::routing::MinimalRouting::new(algo_df);
        let pattern = dfly_traffic::UniformRandom::new(sim.spec().num_terminals());
        let generic = sweep_network(sim.spec(), &routing, &pattern, &loads, &base)
            .expect("valid sweep configuration");
        assert_eq!(by_grid.len(), generic.len());
        for (a, b) in by_grid.iter().zip(&generic) {
            assert_eq!(a.load, b.load);
            assert_eq!(a.stats, b.stats);
        }
    }

    #[test]
    fn sweep_network_surfaces_invalid_configs() {
        let sim = tiny();
        let mut base = fast_cfg(&sim, 0.0);
        base.measure = 0; // rejected by SimConfig::validate
        let algo_df = std::sync::Arc::new(crate::topology::Dragonfly::new(
            DragonflyParams::new(2, 4, 2).unwrap(),
        ));
        let routing = crate::routing::MinimalRouting::new(algo_df);
        let pattern = dfly_traffic::UniformRandom::new(sim.spec().num_terminals());
        let result = sweep_network(sim.spec(), &routing, &pattern, &[0.1], &base);
        assert!(matches!(result, Err(SimError::InvalidConfig(_))));
    }

    #[test]
    fn fault_sweep_is_deterministic_across_thread_counts() {
        let mut cfg = SimConfig::paper_default(1.0);
        cfg.warmup = 100;
        cfg.measure = 300;
        let sweep = FaultSweep::new(
            DragonflyParams::new(2, 4, 2).unwrap(),
            RoutingChoice::UgalLVcH,
            TrafficChoice::Uniform,
            &cfg,
            &[0.0, 0.125],
            3,
        );
        let parallel = sweep.execute().unwrap();
        let serial = sweep.execute_serial().unwrap();
        assert_eq!(parallel, serial);
        assert_eq!(parallel.len(), 2);
        assert_eq!(parallel[0].failed_links, 0);
        // 36 global cables at 1/8: round(4.5) cables die.
        assert_eq!(parallel[1].failed_links, 5);
        assert!(parallel[0].throughput() > 0.0);
        assert!(parallel[1].throughput() > 0.0);
    }

    fn tiny_workload_sweep(loads: &[f64]) -> WorkloadSweep {
        let mut cfg = SimConfig::paper_default(0.0);
        cfg.warmup = 0;
        cfg.measure = 30_000;
        cfg.drain_cap = 30_000;
        WorkloadSweep::new(
            DragonflyParams::new(2, 4, 2).unwrap(),
            RoutingChoice::Min,
            vec![
                JobSpec::all_to_all("alpha", 8),
                JobSpec::all_to_all("beta", 8),
            ],
            &cfg,
            loads,
        )
    }

    #[test]
    fn workload_sweep_is_deterministic_across_thread_counts() {
        let sweep = tiny_workload_sweep(&[0.0, 0.1]);
        let serial = sweep.execute_serial().unwrap();
        let parallel = sweep.execute_on(4).unwrap();
        assert_eq!(serial, parallel);
        assert_eq!(serial.len(), 4);
        for point in &serial {
            assert!(point.stats.drained, "{:?} did not drain", point.placement);
            assert!(point.stats.completion.is_some());
            for book in &point.books {
                // All-to-all over 8 members: 8*7 packets each.
                assert_eq!(book.delivered, 56);
                assert!(book.completion > 0);
                assert_eq!(book.latency.count, 56);
            }
        }
    }

    #[test]
    fn interfering_placement_slows_jobs_measurably() {
        let sweep = tiny_workload_sweep(&[0.3]);
        let points = sweep.execute().unwrap();
        let slowdowns = sweep.slowdowns(&points);
        assert_eq!(slowdowns.len(), 2);
        for s in &slowdowns {
            assert!(s.disjoint > 0 && s.interfering > 0);
            assert!(
                s.ratio() > 1.0,
                "job {} should finish later when interfering: disjoint {} vs interfering {}",
                s.job,
                s.disjoint,
                s.interfering
            );
        }
        // And the measurement is reproducible bit for bit.
        let again = sweep.execute().unwrap();
        assert_eq!(points, again);
    }

    #[test]
    fn workload_metrics_use_per_job_scopes() {
        let sweep = tiny_workload_sweep(&[0.0]);
        let (points, registry) = sweep.execute_with_metrics().unwrap();
        assert_eq!(registry.counters["workload_runs"], points.len() as u64);
        assert_eq!(
            registry.counters["workload_completed_runs"],
            points.len() as u64
        );
        for job in ["alpha", "beta"] {
            for placement in ["disjoint", "interfering"] {
                let scope = format!("jobs/{job}/{placement}");
                assert_eq!(registry.counters[&format!("{scope}/delivered")], 56);
                assert!(registry.counters[&format!("{scope}/completion_cycles")] > 0);
                assert_eq!(registry.histograms[&format!("{scope}/latency")].count, 56);
            }
        }
    }

    #[test]
    fn workload_sweep_surfaces_placement_errors() {
        let mut sweep = tiny_workload_sweep(&[0.0]);
        sweep.jobs = vec![JobSpec::barrier("huge", 80, 1)];
        assert!(sweep.execute().is_err());
    }

    #[test]
    fn fault_sweep_surfaces_plan_errors() {
        let cfg = SimConfig::paper_default(1.0);
        let sweep = FaultSweep::new(
            DragonflyParams::new(2, 4, 2).unwrap(),
            RoutingChoice::Min,
            TrafficChoice::Uniform,
            &cfg,
            &[2.0],
            1,
        );
        assert!(matches!(
            sweep.execute(),
            Err(SimError::InvalidFaultPlan(_))
        ));
    }
}
