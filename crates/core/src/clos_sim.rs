//! Simulating the folded Clos (fat tree) on the same engine.
//!
//! The folded Clos is the incumbent the paper's cost study displaces
//! (the Cray BlackWidow network is the cited instance). This module
//! wires a [`dfly_topo::FoldedClos`] into a
//! [`dfly_netsim::NetworkSpec`] and provides the classic fat-tree
//! routing: a randomly chosen ascent to the lowest common ancestor rank
//! ("random up"), then a fully determined descent. Up/down routing is
//! deadlock-free with a single VC — every path uses all of its up
//! channels before any down channel, and both phases are rank-ordered.
//!
//! # Example
//!
//! ```
//! use dragonfly::clos_sim::{ClosNetwork, ClosRouting};
//! use dfly_topo::FoldedClos;
//! use dfly_netsim::{SimConfig, Simulation};
//! use dfly_traffic::UniformRandom;
//!
//! let net = ClosNetwork::new(FoldedClos::new(2, 8));
//! let spec = net.build_spec();
//! let routing = ClosRouting::new(net.into());
//! let traffic = UniformRandom::new(spec.num_terminals());
//! let mut cfg = SimConfig::paper_default(0.1);
//! cfg.warmup = 200;
//! cfg.measure = 500;
//! let stats = Simulation::new(&spec, &routing, &traffic, cfg).unwrap().run();
//! assert!(stats.drained);
//! ```

use std::sync::Arc;

use dfly_netsim::{
    CandidatePath, CandidatePaths, ChannelClass, Connection, DecisionRecord, FaultPlan, FaultTable,
    Flit, NetView, NetworkSpec, PortSpec, PortVc, RouteAlgebra, RouteClass, RouteInfo, RouterSpec,
    RoutingAlgorithm, SimError, UgalChooser,
};
use dfly_topo::{FoldedClos, Topology};
use rand::rngs::SmallRng;
use rand::Rng;

use crate::routing::UgalVariant;

/// A folded Clos wired for cycle-accurate simulation.
///
/// Switches below the top rank are indexed by `levels - 1` digits in
/// base `k/2`; uplink `u` at rank `l` leads to the rank-`l+1` switch
/// with digit `l` replaced by `u`. The top rank is halved, each real
/// switch absorbing two virtual ones (differing in digit 0), with all
/// `k` ports pointing down. When `k/2` is odd (e.g. radix 6) the
/// virtual count is odd too, and the last real top switch absorbs a
/// single virtual, using only its parity-0 half of the down ports.
#[derive(Debug, Clone)]
pub struct ClosNetwork {
    clos: FoldedClos,
    /// First global router index of each rank.
    rank_base: Vec<usize>,
    latency: u32,
    /// Link-failure state, present after
    /// [`ClosNetwork::with_fault_plan`]. Under faults every flit
    /// follows the BFS next-hop tables over the surviving links
    /// (strictly decreasing alive distance, so no loops), instead of
    /// the structured random-up/deterministic-down walk — detours may
    /// mix up and down hops, so single-VC deadlock freedom becomes
    /// best-effort rather than proven.
    faults: Option<Box<ClosFaults>>,
}

#[derive(Debug, Clone)]
struct ClosFaults {
    failed_links: Vec<(usize, usize)>,
    table: FaultTable,
}

impl ClosNetwork {
    /// Wires `clos` with unit channel latency.
    ///
    /// # Panics
    ///
    /// Panics if `clos` has fewer than 2 levels (a single switch has no
    /// network to simulate).
    pub fn new(clos: FoldedClos) -> Self {
        Self::with_latency(clos, 1)
    }

    /// Wires `clos` with the given network-channel latency. Any even
    /// radix works: when `k/2` is odd the last top switch absorbs a
    /// single virtual switch and exposes only `k/2` down ports.
    ///
    /// # Panics
    ///
    /// Panics if `clos.levels() < 2` or `latency == 0`.
    pub fn with_latency(clos: FoldedClos, latency: u32) -> Self {
        assert!(clos.levels() >= 2, "need >= 2 ranks to have a network");
        assert!(latency > 0, "latency must be >= 1");
        let mut rank_base = Vec::with_capacity(clos.levels());
        let mut base = 0;
        for l in 0..clos.levels() {
            rank_base.push(base);
            base += clos.switches_at(l);
        }
        ClosNetwork {
            clos,
            rank_base,
            latency,
            faults: None,
        }
    }

    /// Applies a link-failure plan, composing with any faults already
    /// present. Routing then follows BFS shortest paths over the
    /// surviving links. Rejects plans that disconnect any switch pair.
    pub fn with_fault_plan(mut self, plan: &FaultPlan) -> Result<Self, SimError> {
        let spec = self.build_spec().with_faults(plan)?;
        let failed = spec.failed_links().to_vec();
        if failed.is_empty() {
            self.faults = None;
        } else {
            let table = FaultTable::new(&spec);
            self.faults = Some(Box::new(ClosFaults {
                failed_links: failed,
                table,
            }));
        }
        Ok(self)
    }

    /// Whether a fault plan with at least one failed link is applied.
    pub fn has_faults(&self) -> bool {
        self.faults.is_some()
    }

    /// The failed `(router, port)` link ends, both directions listed.
    pub fn failed_links(&self) -> &[(usize, usize)] {
        self.faults.as_ref().map_or(&[], |f| &f.failed_links)
    }

    /// Number of virtual top switches (the switch count of every rank
    /// below the top).
    fn virtual_tops(&self) -> usize {
        self.clos.switches_at(0)
    }

    /// Upper bound on network hops any routed packet takes, plus the
    /// ejection hop.
    pub fn route_hop_bound(&self) -> usize {
        let diameter = match &self.faults {
            Some(f) => f.table.diameter() as usize,
            None => 2 * (self.clos.levels() - 1),
        };
        diameter + 1
    }

    /// The underlying structural topology.
    pub fn topology(&self) -> &FoldedClos {
        &self.clos
    }

    /// Half the switch radix: terminals per leaf, up/down port split.
    fn half(&self) -> usize {
        self.clos.switch_radix() / 2
    }

    /// `(rank, index-within-rank)` of a global router id.
    fn rank_of(&self, router: usize) -> (usize, usize) {
        let rank = self
            .rank_base
            .iter()
            .rposition(|&b| b <= router)
            .expect("router in range");
        (rank, router - self.rank_base[rank])
    }

    /// Digit `d` (base `k/2`) of a below-top switch index.
    fn digit(&self, s: usize, d: usize) -> usize {
        (s / self.half().pow(d as u32)) % self.half()
    }

    /// `s` with digit `d` replaced by `val`.
    fn with_digit(&self, s: usize, d: usize, val: usize) -> usize {
        let place = self.half().pow(d as u32);
        s - self.digit(s, d) * place + val * place
    }

    /// Whether switch `s` (below top, at `rank`) sits above the leaf
    /// `leaf`'s descent path: they agree on all digits at positions
    /// `>= rank`.
    fn above(&self, s: usize, rank: usize, leaf: usize) -> bool {
        (rank..self.clos.levels() - 1).all(|d| self.digit(s, d) == self.digit(leaf, d))
    }

    /// Builds the simulator wiring.
    ///
    /// Leaves: ports `[0, k/2)` terminals, `[k/2, k)` up. Interior
    /// ranks: `[0, k/2)` down, `[k/2, k)` up. Top rank: all `k` ports
    /// down — `[0, k/2)` for its even virtual, `[k/2, k)` for its odd
    /// one (the last top switch has only the parity-0 block when the
    /// virtual count is odd). Leaf uplinks are classed local
    /// (intra-pod), higher ranks global. Any applied fault plan is
    /// re-marked on the returned spec.
    pub fn build_spec(&self) -> NetworkSpec {
        let spec = self.build_spec_clean();
        match &self.faults {
            None => spec,
            Some(f) => spec
                .with_faults(&FaultPlan::Explicit(f.failed_links.clone()))
                .expect("stored fault list was validated when the plan was applied"),
        }
    }

    fn build_spec_clean(&self) -> NetworkSpec {
        let half = self.half();
        let levels = self.clos.levels();
        let mut routers: Vec<RouterSpec> = Vec::with_capacity(self.clos.num_routers());
        // Pre-create empty specs, then fill by wiring each uplink pair.
        // Every rank uses all k ports (leaves: k/2 terminals + k/2 up;
        // interior: k/2 down + k/2 up; top: k down — except an odd-half
        // tail top switch, which only has its parity-0 k/2 block).
        // Placeholders are overwritten below; any survivor fails
        // validation.
        for l in 0..levels {
            for s in 0..self.clos.switches_at(l) {
                let np = if l + 1 == levels && 2 * s + 1 >= self.virtual_tops() {
                    half
                } else {
                    self.clos.switch_radix()
                };
                routers.push(RouterSpec {
                    ports: vec![
                        PortSpec {
                            conn: Connection::Terminal { terminal: 0 },
                            latency: 1,
                            class: ChannelClass::Terminal,
                        };
                        np
                    ],
                });
            }
        }
        // Terminals on the leaves.
        for (leaf, router) in routers
            .iter_mut()
            .enumerate()
            .take(self.clos.switches_at(0))
        {
            for t in 0..half {
                router.ports[t] = PortSpec {
                    conn: Connection::Terminal {
                        terminal: (leaf * half + t) as u32,
                    },
                    latency: 1,
                    class: ChannelClass::Terminal,
                };
            }
        }
        // Uplinks rank by rank.
        for l in 0..levels - 1 {
            let top = l + 2 == levels;
            let class = if l == 0 {
                ChannelClass::Local
            } else {
                ChannelClass::Global
            };
            for s in 0..self.clos.switches_at(l) {
                let me = self.rank_base[l] + s;
                for u in 0..half {
                    let my_port = half + u;
                    let v = self.with_digit(s, l, u);
                    let (peer, peer_port) = if top {
                        // Real top switch v/2; its down port block for
                        // virtual parity v%2, slot = digit l of s.
                        (
                            self.rank_base[l + 1] + v / 2,
                            (v % 2) * half + self.digit(s, l),
                        )
                    } else {
                        (self.rank_base[l + 1] + v, self.digit(s, l))
                    };
                    routers[me].ports[my_port] = PortSpec {
                        conn: Connection::Router {
                            router: peer as u32,
                            port: peer_port as u32,
                        },
                        latency: self.latency,
                        class,
                    };
                    routers[peer].ports[peer_port] = PortSpec {
                        conn: Connection::Router {
                            router: me as u32,
                            port: my_port as u32,
                        },
                        latency: self.latency,
                        class,
                    };
                }
            }
        }
        NetworkSpec::validated(routers, 1).expect("folded Clos wiring must validate")
    }

    /// Load sweep under `routing` and `pattern`: one independent run
    /// per load, fanned out across the worker pool (results in load
    /// order, bit-identical to a serial sweep).
    ///
    /// # Errors
    ///
    /// The first configuration rejection, if `base` is invalid.
    pub fn sweep(
        &self,
        routing: &ClosRouting,
        pattern: &(dyn dfly_traffic::TrafficPattern + Sync),
        loads: &[f64],
        base: &dfly_netsim::SimConfig,
    ) -> Result<Vec<crate::LoadPoint>, dfly_netsim::SimError> {
        crate::parallel::sweep_network(&self.build_spec(), routing, pattern, loads, base)
    }
}

/// The folded Clos's UGAL candidates. Every uplink at a leaf starts an
/// equal-length up/down path, so the two candidates differ only in
/// which leaf uplink they commit to: the "minimal" candidate takes the
/// salt-hashed uplink the oblivious random-up rule would take, the
/// "non-minimal" one takes the alternative uplink `intermediate` — an
/// adaptive spread over the full bisection driven by whichever
/// congestion estimator the chooser carries.
/// Closed-form routing algebra for the folded Clos: digit arithmetic
/// fault-free (ascend on the salt-hashed uplink until above the
/// destination leaf, then descend by digits), the lazily-built BFS
/// columns under a fault plan. The Valiant tags enumerate the leaf
/// uplinks — the Clos has no longer-than-minimal detours, only an
/// adaptive spread over equal-length up/down paths.
impl RouteAlgebra for ClosNetwork {
    fn terminal_router(&self, terminal: usize) -> usize {
        terminal / self.half()
    }

    fn ejection_port(&self, terminal: usize) -> usize {
        terminal % self.half()
    }

    fn minimal_port(&self, router: usize, dest: usize, salt: u32) -> PortVc {
        let half = self.half();
        let leaf = dest / half;
        if let Some(f) = &self.faults {
            if router == leaf {
                return PortVc::new(dest % half, 0);
            }
            let port = f
                .table
                .next_port(router, leaf)
                .expect("validated fault plan keeps the network connected");
            return PortVc::new(port, 0);
        }
        let (rank, s) = self.rank_of(router);
        let levels = self.clos.levels();
        if rank + 1 == levels {
            let parity = if 2 * s + 1 < self.virtual_tops() {
                self.pick_parity(salt)
            } else {
                0
            };
            return PortVc::new(parity * half + self.digit(leaf, levels - 2), 0);
        }
        if rank == 0 && s == leaf {
            return PortVc::new(dest % half, 0);
        }
        if rank > 0 && self.above(s, rank, leaf) {
            return PortVc::new(self.digit(leaf, rank - 1), 0);
        }
        PortVc::new(half + self.pick_up(salt, rank), 0)
    }

    fn minimal_hops(&self, router: usize, dest: usize, _salt: u32) -> u32 {
        let half = self.half();
        let leaf = dest / half;
        if router == leaf {
            return 0;
        }
        if let Some(f) = &self.faults {
            return f
                .table
                .distance(router, leaf)
                .expect("validated fault plan keeps the network connected");
        }
        let (rank, s) = self.rank_of(router);
        let levels = self.clos.levels();
        if rank + 1 == levels {
            return (levels - 1) as u32;
        }
        if rank > 0 && self.above(s, rank, leaf) {
            return rank as u32;
        }
        // Ascend to the lowest rank whose preserved digits sit above the
        // destination leaf, then descend all the way back down.
        for height in (rank + 1)..levels {
            if (height..levels - 1).all(|d| self.digit(s, d) == self.digit(leaf, d)) {
                return (2 * height - rank) as u32;
            }
        }
        (2 * (levels - 1) - rank) as u32
    }

    fn valiant_degree(&self, router: usize, dest: usize) -> usize {
        let leaf = dest / self.half();
        // Tags are ignored under faults (routing rides the BFS columns).
        if router == leaf || self.faults.is_some() {
            return 0;
        }
        self.half()
    }

    fn valiant_tag(&self, _router: usize, _dest: usize, i: usize) -> u32 {
        i as u32
    }

    fn vc_count(&self) -> usize {
        1
    }
}

impl CandidatePaths for ClosNetwork {
    fn minimal_candidate(&self, router: usize, dest: usize, salt: u32) -> CandidatePath {
        let half = self.half();
        let leaf = dest / half;
        debug_assert_eq!(self.rank_of(router).0, 0, "decisions happen at leaves");
        if router == leaf {
            return CandidatePath::new(dest % half, 0, 0);
        }
        let first = self.minimal_port(router, dest, salt);
        CandidatePath::new(
            first.port as usize,
            first.vc as usize,
            RouteAlgebra::minimal_hops(self, router, dest, salt),
        )
    }

    fn non_minimal_candidate(
        &self,
        router: usize,
        dest: usize,
        intermediate: u32,
        _salt: u32,
    ) -> CandidatePath {
        let half = self.half();
        let leaf = dest / half;
        debug_assert_eq!(self.rank_of(router).0, 0, "decisions happen at leaves");
        debug_assert_ne!(router, leaf, "no alternative path within a leaf");
        CandidatePath::new(
            half + intermediate as usize,
            0,
            self.min_hops_from_leaf(router, leaf),
        )
    }
}

/// Which decision rule drives the Clos.
#[derive(Debug)]
enum ClosMode {
    /// Oblivious random-up: the uplink at every rank is salt-hashed.
    RandomUp,
    /// Adaptive up: the leaf uplink is chosen per packet between the
    /// salt-hashed one and a random alternative by congestion estimate.
    Adaptive(UgalVariant, UgalChooser),
}

/// Fat-tree routing: random-up / deterministic-down, optionally with an
/// adaptive leaf-uplink choice through the shared UGAL layer.
#[derive(Debug)]
pub struct ClosRouting {
    net: Arc<ClosNetwork>,
    mode: ClosMode,
}

impl ClosRouting {
    /// Creates the oblivious random-up routing over `net`.
    pub fn new(net: Arc<ClosNetwork>) -> Self {
        ClosRouting {
            net,
            mode: ClosMode::RandomUp,
        }
    }

    /// Creates adaptive-up routing: the leaf uplink is picked per packet
    /// by the given congestion estimator variant (the descent stays
    /// deterministic, so deadlock freedom is untouched).
    pub fn adaptive(net: Arc<ClosNetwork>, variant: UgalVariant) -> Self {
        ClosRouting {
            net,
            mode: ClosMode::Adaptive(variant, UgalChooser::new(variant.estimator())),
        }
    }
}

impl Clone for ClosRouting {
    fn clone(&self) -> Self {
        match &self.mode {
            ClosMode::RandomUp => Self::new(self.net.clone()),
            ClosMode::Adaptive(variant, _) => Self::adaptive(self.net.clone(), *variant),
        }
    }
}

impl RoutingAlgorithm for ClosRouting {
    fn name(&self) -> String {
        match &self.mode {
            ClosMode::RandomUp => "clos-updown".into(),
            ClosMode::Adaptive(..) => "clos-adaptive".into(),
        }
    }

    fn inject(&self, view: &NetView<'_>, src: usize, dest: usize, rng: &mut SmallRng) -> RouteInfo {
        self.inject_traced(view, src, dest, rng).0
    }

    fn inject_traced(
        &self,
        view: &NetView<'_>,
        src: usize,
        dest: usize,
        rng: &mut SmallRng,
    ) -> (RouteInfo, DecisionRecord) {
        let salt: u32 = rng.gen();
        let ClosMode::Adaptive(_, chooser) = &self.mode else {
            return (
                RouteInfo::minimal().with_salt(salt),
                DecisionRecord::default(),
            );
        };
        let net = &self.net;
        let half = net.half();
        let rs = src / half;
        let rd = dest / half;
        // Under faults every flit follows the BFS tables (see `route`),
        // so the uplink choice would only be ignored — stay minimal.
        if rs == rd || half < 2 || net.has_faults() {
            return (
                RouteInfo::minimal().with_salt(salt),
                DecisionRecord::default(),
            );
        }
        // Alternative uplink: uniform over the ones the hash did not pick.
        let u_m = net.pick_up(salt, 0);
        let mut u_alt = rng.gen_range(0..half - 1);
        if u_alt >= u_m {
            u_alt += 1;
        }
        let m = net.minimal_candidate(rs, dest, salt);
        let nm = net.non_minimal_candidate(rs, dest, u_alt as u32, salt);
        let decision = chooser.choose(view, rs, &m, &nm);
        let record = DecisionRecord {
            adaptive: true,
            estimator_disagreed: decision.estimator_disagreed,
            fault_avoided: decision.fault_avoided,
            dropped_candidates: decision.dropped_candidates,
            probe_fallbacks: decision.probe_fallbacks,
            q_chosen: decision.q_chosen(),
            oracle_chosen: decision.oracle_chosen(),
            oracle_disagreed: decision.oracle_disagreed,
            oracle_scored: decision.oracle_scored,
        };
        if decision.minimal {
            (RouteInfo::minimal().with_salt(salt), record)
        } else {
            (RouteInfo::non_minimal(u_alt as u32).with_salt(salt), record)
        }
    }

    fn route(&self, _view: &NetView<'_>, router: usize, flit: &Flit) -> PortVc {
        let net = &self.net;
        let half = net.half();
        let dest = flit.dest as usize;
        let leaf = dest / half;
        if let Some(f) = &net.faults {
            // Fault branch: follow the BFS next hop over surviving
            // links toward the destination leaf (alive distance
            // strictly decreases, so the walk terminates).
            if router == leaf {
                return PortVc::new(dest % half, 0);
            }
            let port = f
                .table
                .next_port(router, leaf)
                .expect("validated fault plan keeps the network connected");
            return PortVc::new(port, 0);
        }
        let (rank, s) = net.rank_of(router);
        let levels = net.clos.levels();
        if rank + 1 == levels {
            // Top: descend toward the virtual that exists on this
            // switch; both virtuals work (their differing digit is
            // rewritten on the way down), pick by salt for balance. An
            // odd-half tail switch only hosts its parity-0 virtual.
            let parity = if 2 * s + 1 < net.virtual_tops() {
                net.pick_parity(flit.route.salt)
            } else {
                0
            };
            return PortVc::new(parity * half + net.digit(leaf, levels - 2), 0);
        }
        if rank == 0 && s == leaf {
            return PortVc::new(dest % half, 0);
        }
        if rank > 0 && net.above(s, rank, leaf) {
            // Descend: set digit rank-1 to the destination's.
            return PortVc::new(net.digit(leaf, rank - 1), 0);
        }
        // Ascend. At the leaf, an adaptive packet committed to its
        // alternative uplink (carried in `intermediate`); everywhere
        // else the uplink is salt-chosen (random-up).
        let u = match (rank, flit.route.class) {
            (0, RouteClass::NonMinimal) => {
                flit.route.intermediate().expect("adaptive uplink set") as usize
            }
            _ => net.pick_up(flit.route.salt, rank),
        };
        PortVc::new(half + u, 0)
    }
}

impl ClosNetwork {
    /// Salt-derived uplink choice at `rank` (stable per packet).
    fn pick_up(&self, salt: u32, rank: usize) -> usize {
        let mut z = (salt as u64) ^ ((rank as u64) << 40) ^ 0xD1B5_4A32_D192_ED03;
        z = (z ^ (z >> 33)).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        z ^= z >> 33;
        (z as usize) % self.half()
    }

    /// Salt-derived virtual parity at the top rank.
    fn pick_parity(&self, salt: u32) -> usize {
        (salt as usize >> 7) & 1
    }

    /// Router-to-router hops of the up/down path from leaf `leaf` to
    /// leaf `dest_leaf`: twice the ascent height, which depends only on
    /// the highest differing index digit (every uplink choice yields the
    /// same length).
    fn min_hops_from_leaf(&self, leaf: usize, dest_leaf: usize) -> u32 {
        let levels = self.clos.levels();
        for height in 1..levels {
            if (height..levels - 1).all(|d| self.digit(leaf, d) == self.digit(dest_leaf, d)) {
                return 2 * height as u32;
            }
        }
        2 * (levels - 1) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfly_netsim::{SimConfig, Simulation};
    use dfly_traffic::{Permutation, UniformRandom};

    fn fast_cfg(load: f64) -> SimConfig {
        let mut cfg = SimConfig::paper_default(load);
        cfg.warmup = 300;
        cfg.measure = 1_000;
        cfg.drain_cap = 30_000;
        cfg
    }

    #[test]
    fn specs_wire_for_two_and_three_levels() {
        for levels in [2usize, 3] {
            let net = ClosNetwork::new(FoldedClos::new(levels, 8));
            let spec = net.build_spec();
            assert_eq!(
                spec.num_terminals(),
                net.topology().num_terminals(),
                "levels={levels}"
            );
        }
    }

    #[test]
    fn rank_of_inverts_the_rank_layout() {
        let net = ClosNetwork::new(FoldedClos::new(3, 8));
        // Ranks: 16 leaves, 16 mid, 8 top.
        assert_eq!(net.rank_of(0), (0, 0));
        assert_eq!(net.rank_of(15), (0, 15));
        assert_eq!(net.rank_of(16), (1, 0));
        assert_eq!(net.rank_of(31), (1, 15));
        assert_eq!(net.rank_of(32), (2, 0));
        assert_eq!(net.rank_of(39), (2, 7));
    }

    #[test]
    fn smallest_radix_clos_works() {
        let net = Arc::new(ClosNetwork::new(FoldedClos::new(2, 4)));
        let spec = net.build_spec();
        assert_eq!(spec.num_terminals(), 4);
        let routing = ClosRouting::new(net);
        let pattern = UniformRandom::new(4);
        let stats = Simulation::new(&spec, &routing, &pattern, fast_cfg(0.2))
            .unwrap()
            .run();
        assert!(stats.drained);
    }

    #[test]
    fn uniform_traffic_delivers() {
        let net = Arc::new(ClosNetwork::new(FoldedClos::new(3, 8)));
        let spec = net.build_spec();
        let routing = ClosRouting::new(net);
        let pattern = UniformRandom::new(spec.num_terminals());
        let stats = Simulation::new(&spec, &routing, &pattern, fast_cfg(0.2))
            .unwrap()
            .run();
        assert!(stats.drained);
        assert!((stats.accepted_rate - 0.2).abs() < 0.04);
    }

    #[test]
    fn zero_load_latency_is_up_and_down() {
        let net = Arc::new(ClosNetwork::new(FoldedClos::new(3, 8)));
        let spec = net.build_spec();
        let routing = ClosRouting::new(net);
        let pattern = UniformRandom::new(spec.num_terminals());
        let stats = Simulation::new(&spec, &routing, &pattern, fast_cfg(0.01))
            .unwrap()
            .run();
        assert!(stats.drained);
        // Worst: up 2 + down 2 + inject + eject = 6; best same-leaf = 2.
        assert!(stats.latency.max <= 8, "max {}", stats.latency.max);
        assert!(stats.latency.min >= 2);
    }

    #[test]
    fn full_bisection_handles_permutations_at_high_load() {
        // The defining fat-tree property: any permutation at high load
        // drains (random-up spreads it over the full bisection).
        let net = Arc::new(ClosNetwork::new(FoldedClos::new(2, 8)));
        let spec = net.build_spec();
        let routing = ClosRouting::new(net);
        let mut rng = dfly_traffic::rng_for(11, 0);
        let pattern = Permutation::random(spec.num_terminals(), &mut rng);
        let stats = Simulation::new(&spec, &routing, &pattern, fast_cfg(0.6))
            .unwrap()
            .run();
        assert!(
            stats.drained,
            "fat tree should sustain 0.6 on a permutation"
        );
    }

    #[test]
    fn adaptive_up_delivers_and_reports_decisions() {
        let net = Arc::new(ClosNetwork::new(FoldedClos::new(3, 8)));
        let spec = net.build_spec();
        let routing = ClosRouting::adaptive(net, crate::UgalVariant::Local);
        assert_eq!(routing.name(), "clos-adaptive");
        let pattern = UniformRandom::new(spec.num_terminals());
        let stats = Simulation::new(&spec, &routing, &pattern, fast_cfg(0.3))
            .unwrap()
            .run();
        assert!(stats.drained);
        assert!((stats.accepted_rate - 0.3).abs() < 0.04);
        // Cross-leaf packets all ran the adaptive uplink comparison.
        assert!(stats.routing.adaptive_decisions > 0);
        assert_eq!(
            stats.routing.minimal_takes + stats.routing.non_minimal_takes,
            stats.latency.count
        );
    }

    #[test]
    fn min_hops_from_leaf_matches_observed_latency_bounds() {
        let net = ClosNetwork::new(FoldedClos::new(3, 8));
        // Same mid-rank pod (digit 1 equal): up 1, down 1.
        assert_eq!(net.min_hops_from_leaf(0, 1), 2);
        // Different pods: up 2 to the top, down 2.
        assert_eq!(net.min_hops_from_leaf(0, 15), 4);
        let two = ClosNetwork::new(FoldedClos::new(2, 8));
        assert_eq!(two.min_hops_from_leaf(0, 3), 2);
    }

    #[test]
    fn same_leaf_traffic_never_leaves_the_leaf() {
        let net = Arc::new(ClosNetwork::new(FoldedClos::new(2, 8)));
        let spec = net.build_spec();
        let routing = ClosRouting::new(net);
        // Terminals 0..4 live on leaf 0; shift within the leaf.
        #[derive(Debug)]
        struct IntraLeaf;
        impl dfly_traffic::TrafficPattern for IntraLeaf {
            fn name(&self) -> &'static str {
                "intra-leaf"
            }
            fn num_terminals(&self) -> usize {
                16
            }
            fn destination(&self, source: usize, _rng: &mut SmallRng) -> usize {
                (source / 4) * 4 + (source + 1) % 4
            }
        }
        let stats = Simulation::new(&spec, &routing, &IntraLeaf, fast_cfg(0.5))
            .unwrap()
            .run();
        assert!(stats.drained);
        // No network channel carries anything: all traffic ejects at the
        // ingress leaf.
        for load in &stats.channel_loads {
            assert_eq!(load.flits, 0, "channel {:?} carried traffic", load);
        }
        assert_eq!(stats.latency.min, 2);
    }

    #[test]
    fn odd_half_radix_six_wires_and_delivers() {
        // radix 6 → odd k/2: the last top switch absorbs a single
        // virtual and exposes only 3 down ports.
        let net = Arc::new(ClosNetwork::new(FoldedClos::new(2, 6)));
        let spec = net.build_spec();
        assert_eq!(spec.num_terminals(), 9);
        assert_eq!(spec.num_routers(), 5);
        assert_eq!(spec.routers[3].ports.len(), 6);
        assert_eq!(spec.routers[4].ports.len(), 3);
        let routing = ClosRouting::new(net);
        let pattern = UniformRandom::new(9);
        let stats = Simulation::new(&spec, &routing, &pattern, fast_cfg(0.02))
            .unwrap()
            .run();
        assert!(stats.drained);
        // Up 1, down 1, plus inject and eject, with near-zero queueing.
        assert!(stats.latency.max <= 6, "max {}", stats.latency.max);
    }

    #[test]
    fn odd_half_three_levels_deliver() {
        let net = Arc::new(ClosNetwork::new(FoldedClos::new(3, 6)));
        let spec = net.build_spec();
        assert_eq!(spec.num_terminals(), 27);
        let routing = ClosRouting::new(net);
        let pattern = UniformRandom::new(27);
        let stats = Simulation::new(&spec, &routing, &pattern, fast_cfg(0.15))
            .unwrap()
            .run();
        assert!(stats.drained);
    }

    #[test]
    fn faulty_clos_delivers_uniform() {
        let net = ClosNetwork::new(FoldedClos::new(3, 8))
            .with_fault_plan(&FaultPlan::random_any(0.05, 9))
            .unwrap();
        assert!(net.has_faults());
        assert!(!net.failed_links().is_empty());
        let spec = net.build_spec();
        assert!(spec.has_faults());
        let routing = ClosRouting::new(Arc::new(net));
        let pattern = UniformRandom::new(spec.num_terminals());
        let stats = Simulation::new(&spec, &routing, &pattern, fast_cfg(0.1))
            .unwrap()
            .run();
        assert!(stats.drained, "faulty Clos starved");
    }

    #[test]
    fn adaptive_clos_under_faults_stays_minimal_and_drains() {
        let net = ClosNetwork::new(FoldedClos::new(2, 8))
            .with_fault_plan(&FaultPlan::random_any(0.05, 4))
            .unwrap();
        let spec = net.build_spec();
        let routing = ClosRouting::adaptive(Arc::new(net), crate::UgalVariant::Local);
        let pattern = UniformRandom::new(spec.num_terminals());
        let stats = Simulation::new(&spec, &routing, &pattern, fast_cfg(0.1))
            .unwrap()
            .run();
        assert!(stats.drained);
        // Under faults every flit rides the BFS tables: no uplink tags.
        assert_eq!(stats.routing.non_minimal_takes, 0);
        assert_eq!(stats.routing.adaptive_decisions, 0);
    }
}
