//! The dragonfly topology: wiring, port maps and route primitives.

use std::collections::VecDeque;

use dfly_netsim::{
    ChannelClass, Connection, FaultPlan, NetworkSpec, PortSpec, RouterSpec, SimError,
};
use dfly_topo::{Graph, Topology};

use crate::params::DragonflyParams;

/// Channel latencies per packaging class, in cycles.
///
/// The paper's routing study uses unit latencies (its latency plots are
/// in hop-count-scale cycles); the fields exist so that experiments can
/// model long optical global channels explicitly.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelLatencies {
    /// Terminal (injection/ejection) channel latency.
    pub terminal: u32,
    /// Intra-group (local, electrical) channel latency.
    pub local: u32,
    /// Inter-group (global, optical) channel latency.
    pub global: u32,
}

impl Default for ChannelLatencies {
    fn default() -> Self {
        ChannelLatencies {
            terminal: 1,
            local: 1,
            global: 1,
        }
    }
}

/// How the `a` routers of a group are connected (§3.2, Figure 6).
///
/// The paper's default is a fully connected group — equivalently a 1-D
/// flattened butterfly. Higher-dimensional intra-group flattened
/// butterflies spend fewer local ports per router (raising the radix
/// available for terminals and global channels, and exploiting
/// packaging locality) at the price of extra local hops.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GroupTopology {
    /// Every pair of routers in the group directly connected.
    Complete,
    /// Routers at the points of an n-D grid, fully connected within
    /// each dimension; the dimension sizes must multiply to `a`.
    FlattenedButterfly(Vec<usize>),
}

/// A fully wired dragonfly network.
///
/// Groups are internally a flattened butterfly — fully connected (1-D)
/// by default, the organisation the paper evaluates — and the
/// inter-group channels are laid out in *offset rings*: for each offset
/// `d`, one channel joins every pair of groups `(i, i+d)`. In a
/// maximum-size dragonfly (`g = a·h + 1`) this places exactly one
/// channel between every pair of groups; smaller networks repeat rings,
/// giving every pair at least `⌊a·h/(g-1)⌋` channels as the paper
/// requires.
///
/// Within a group, global slot `q ∈ [0, a·h)` lives on router `q / h`,
/// global port `q mod h`.
///
/// # Example
///
/// ```
/// use dragonfly::{Dragonfly, DragonflyParams};
/// use dfly_topo::Topology;
///
/// let df = Dragonfly::new(DragonflyParams::new(2, 4, 2).unwrap());
/// assert_eq!(df.num_terminals(), 72);
/// assert_eq!(df.diameter(), Some(3)); // local - global - local
/// ```
#[derive(Debug, Clone)]
pub struct Dragonfly {
    params: DragonflyParams,
    latencies: ChannelLatencies,
    /// Intra-group dimension sizes (product = `a`); `[a]` for a
    /// complete group.
    dims: Vec<usize>,
    /// First local-port offset of each dimension (within the local port
    /// range).
    dim_base: Vec<usize>,
    /// Local ports per router: `Σ (dims[d] - 1)`.
    local_ports: usize,
    /// The offset rings the construction placed, in placement order
    /// (bases ascending). Every group's slot layout is identical — each
    /// ring advances every group's next free slot by exactly its cost —
    /// so the whole `(group, slot) → (peer_group, peer_slot)` wiring is
    /// arithmetic over this O(a·h)-entry schedule instead of the former
    /// O(g²) slot tables.
    rings: Vec<Ring>,
    /// Ring positions (indices into `rings`) by offset `d`; an offset
    /// appears more than once when the port budget repeats rings.
    rings_by_d: Vec<Vec<u16>>,
    /// Global slots per group left unused (by the ring construction or
    /// bandwidth tapering).
    unused_slots_per_group: usize,
    /// Link-failure state, present after [`Dragonfly::with_fault_plan`].
    faults: Option<Box<DragonflyFaults>>,
}

/// One placed offset ring of the global-channel construction: every
/// group spends `cost` consecutive slots starting at `base` on channels
/// to its partner(s) at ring offset `d`.
#[derive(Debug, Clone, Copy)]
struct Ring {
    /// Ring offset, in `1..=g/2`.
    d: u16,
    /// First slot index of this ring in every group's slot numbering.
    base: u16,
    /// Slots per group: 1 for the self-paired middle ring (`2d = g`),
    /// otherwise 2 (one toward `+d`, one toward `-d`).
    cost: u8,
}

/// Derived fault state: which channels survive and how to route around
/// the dead ones while keeping the paper's VC schedule intact. Local
/// detours stay inside their group (each group must remain internally
/// connected) and global detours stay within the Valiant shape (at most
/// one intermediate group), so every route still ascends
/// `l0 < g0 < l1 < g1 < l2` and deadlock freedom is preserved.
#[derive(Debug, Clone)]
struct DragonflyFaults {
    /// Canonical failed cables, as `(router, port)` spec endpoints.
    failed_links: Vec<(usize, usize)>,
    /// [`Dragonfly::links`] filtered to surviving slots:
    /// `alive[src_group * g + dst_group]`.
    alive_links: Vec<Vec<u16>>,
    /// Valiant intermediates still usable for each ordered group pair:
    /// `viable[gs * g + gd]` = groups `gi` with alive `gs→gi` *and*
    /// `gi→gd` channels.
    viable_inter: Vec<Vec<u32>>,
    /// BFS next-hop local port over alive intra-group links:
    /// `next[router * a + target_group_index]`; `u16::MAX` on the
    /// diagonal.
    local_next: Vec<u16>,
    /// BFS intra-group hop distance, same indexing.
    local_dist: Vec<u16>,
    /// Longest surviving intra-group shortest path (≥ the fault-free
    /// group diameter), for the route hop bound.
    max_local_dist: usize,
}

impl Dragonfly {
    /// Builds the dragonfly for `params` with fully connected groups and
    /// unit channel latencies.
    pub fn new(params: DragonflyParams) -> Self {
        Self::with_latencies(params, ChannelLatencies::default())
    }

    /// Builds the dragonfly with explicit channel latencies.
    pub fn with_latencies(params: DragonflyParams, latencies: ChannelLatencies) -> Self {
        Self::with_group_topology(params, GroupTopology::Complete, latencies)
            .expect("complete group is always valid")
    }

    /// Builds a dragonfly with an explicit intra-group organisation
    /// (§3.2, Figure 6).
    ///
    /// # Errors
    ///
    /// Returns an error if a flattened-butterfly group's dimension sizes
    /// do not multiply to `a`, contain a dimension smaller than 2, or
    /// are empty.
    pub fn with_group_topology(
        params: DragonflyParams,
        group: GroupTopology,
        latencies: ChannelLatencies,
    ) -> Result<Self, String> {
        let a = params.routers_per_group();
        let dims = match group {
            GroupTopology::Complete => vec![a],
            GroupTopology::FlattenedButterfly(dims) => {
                if dims.is_empty() {
                    return Err("group needs at least one dimension".into());
                }
                if dims.iter().any(|&s| s < 2) {
                    return Err("every group dimension needs >= 2 routers".into());
                }
                if dims.iter().product::<usize>() != a {
                    return Err(format!(
                        "group dimensions {dims:?} do not multiply to a = {a}"
                    ));
                }
                dims
            }
        };
        Ok(Self::build(params, dims, latencies, 1.0))
    }

    /// Builds a dragonfly with tapered global bandwidth (§3.2): only
    /// `taper` of each group's `a·h` global ports are wired, uniformly
    /// over the offset rings, reducing inter-group cost when full
    /// global bandwidth is not needed. Groups are fully connected and
    /// channel latencies are the defaults.
    ///
    /// # Errors
    ///
    /// Returns an error if `taper` is outside `(0, 1]` or leaves some
    /// pair of groups unconnected.
    pub fn with_taper(params: DragonflyParams, taper: f64) -> Result<Self, String> {
        if !(taper > 0.0 && taper <= 1.0) {
            return Err(format!("taper {taper} outside (0, 1]"));
        }
        let df = Self::build(
            params,
            vec![params.routers_per_group()],
            ChannelLatencies::default(),
            taper,
        );
        let g = params.num_groups();
        for i in 0..g {
            for j in 0..g {
                if i != j && df.global_slot_count(i, j) == 0 {
                    return Err(format!(
                        "taper {taper} leaves groups {i} and {j} unconnected"
                    ));
                }
            }
        }
        Ok(df)
    }

    fn build(
        params: DragonflyParams,
        dims: Vec<usize>,
        latencies: ChannelLatencies,
        taper: f64,
    ) -> Self {
        let g = params.num_groups();
        let ah = params.global_ports_per_group();

        // Ring construction: repeatedly sweep offsets d = 1 .. g/2,
        // adding one full ring of channels per offset while every group
        // still has ports for it (2 per ring, or 1 for the self-paired
        // ring d = g/2 when g is even). Tapering shrinks the budget.
        //
        // Only the *schedule* of placed rings is recorded: a ring
        // advances every group's next free slot by exactly its cost, so
        // all groups share one slot layout and every `(group, slot)`
        // endpoint is recomputable from `(d, base, cost)` — see
        // [`Dragonfly::slot_in_ring`] / [`Dragonfly::global_slot_target`].
        let mut budget = ((ah as f64) * taper).round() as usize;
        let unused = ah - budget;
        let half = g / 2;
        let mut rings = Vec::new();
        let mut rings_by_d = vec![Vec::new(); half + 1];
        let mut base = 0usize;
        'outer: loop {
            let mut placed = false;
            // `d` is the ring distance, not just an index into
            // `rings_by_d` — the enumerate form clippy suggests obscures
            // the cost arithmetic below.
            #[allow(clippy::needless_range_loop)]
            for d in 1..=half {
                let cost = if 2 * d == g { 1 } else { 2 };
                if budget < cost {
                    continue;
                }
                budget -= cost;
                placed = true;
                rings_by_d[d].push(rings.len() as u16);
                rings.push(Ring {
                    d: d as u16,
                    base: base as u16,
                    cost: cost as u8,
                });
                base += cost;
                if budget == 0 {
                    break 'outer;
                }
            }
            if !placed {
                // One port per group left but every remaining ring costs
                // two: the leftover ports stay unconnected.
                break;
            }
        }

        let mut dim_base = Vec::with_capacity(dims.len());
        let mut local_ports = 0;
        for &s in &dims {
            dim_base.push(local_ports);
            local_ports += s - 1;
        }

        Dragonfly {
            params,
            latencies,
            dims,
            dim_base,
            local_ports,
            rings,
            rings_by_d,
            unused_slots_per_group: unused + budget,
            faults: None,
        }
    }

    /// Builds the dragonfly for `params` with the given link failures
    /// applied (see [`Dragonfly::with_fault_plan`]).
    ///
    /// # Errors
    ///
    /// Everything [`Dragonfly::with_fault_plan`] rejects.
    pub fn with_faults(params: DragonflyParams, plan: &FaultPlan) -> Result<Self, SimError> {
        Self::new(params).with_fault_plan(plan)
    }

    /// Applies a [`FaultPlan`] on top of this dragonfly (composing with
    /// any faults already present), rebuilding the routing tables to
    /// steer around the dead links: global channel picks draw from the
    /// surviving parallel slots, local hops follow per-group BFS
    /// next-hop tables, and Valiant intermediates are restricted to
    /// groups with both legs alive.
    ///
    /// # Errors
    ///
    /// - [`SimError::InvalidFaultPlan`] for malformed plans (see
    ///   [`FaultPlan::resolve`]) and for plans whose local failures
    ///   disconnect a group internally — fault-aware routing keeps the
    ///   paper's VC schedule by detouring locals *within* their group.
    /// - [`SimError::Unreachable`] when some group pair retains neither
    ///   a direct alive channel nor any viable intermediate group, so
    ///   traffic between those groups cannot be delivered.
    pub fn with_fault_plan(mut self, plan: &FaultPlan) -> Result<Self, SimError> {
        // `build_spec` re-applies any existing faults, so the new plan
        // composes; `with_faults` also re-checks global connectivity.
        let spec = self.build_spec().with_faults(plan)?;
        if spec.failed_links().is_empty() {
            self.faults = None;
            return Ok(self);
        }
        self.faults = Some(Box::new(self.compute_faults(&spec)?));
        Ok(self)
    }

    /// Derives the fault-routing tables from a spec with failures marked.
    fn compute_faults(&self, spec: &NetworkSpec) -> Result<DragonflyFaults, SimError> {
        let g = self.params.num_groups();
        let a = self.params.routers_per_group();
        let p = self.params.terminals_per_router();

        let mut alive_links = vec![Vec::new(); g * g];
        for i in 0..g {
            for j in 0..g {
                if i == j {
                    continue;
                }
                alive_links[i * g + j] = (0..self.clean_slot_count(i, j))
                    .map(|k| self.clean_slot_at(i, j, k))
                    .filter(|&q| !spec.is_failed(self.slot_router(i, q), self.slot_port(q)))
                    .map(|q| q as u16)
                    .collect();
            }
        }

        let mut viable_inter = vec![Vec::new(); g * g];
        for gs in 0..g {
            for gd in 0..g {
                if gs == gd {
                    continue;
                }
                viable_inter[gs * g + gd] = (0..g)
                    .filter(|&gi| {
                        gi != gs
                            && gi != gd
                            && !alive_links[gs * g + gi].is_empty()
                            && !alive_links[gi * g + gd].is_empty()
                    })
                    .map(|gi| gi as u32)
                    .collect();
            }
        }

        // Per-group BFS from every target over the surviving local
        // links: `local_next[v*a + t]` is v's port one shortest alive
        // hop toward group member t.
        let n = self.params.num_routers();
        let mut local_next = vec![u16::MAX; n * a];
        let mut local_dist = vec![u16::MAX; n * a];
        let mut max_local_dist = 0usize;
        let mut queue = VecDeque::new();
        for grp in 0..g {
            let base = grp * a;
            for t_idx in 0..a {
                local_dist[(base + t_idx) * a + t_idx] = 0;
                queue.clear();
                queue.push_back(base + t_idx);
                while let Some(u) = queue.pop_front() {
                    let du = local_dist[u * a + t_idx];
                    for lp in p..p + self.local_ports {
                        if spec.is_failed(u, lp) {
                            continue;
                        }
                        let Connection::Router { router, port } = spec.routers[u].ports[lp].conn
                        else {
                            continue;
                        };
                        let (v, vp) = (router as usize, port as usize);
                        if local_dist[v * a + t_idx] != u16::MAX {
                            continue;
                        }
                        local_dist[v * a + t_idx] = du + 1;
                        local_next[v * a + t_idx] = vp as u16;
                        max_local_dist = max_local_dist.max(du as usize + 1);
                        queue.push_back(v);
                    }
                }
                for idx in 0..a {
                    if local_dist[(base + idx) * a + t_idx] == u16::MAX {
                        return Err(SimError::InvalidFaultPlan(format!(
                            "local faults disconnect group {grp}: router {} cannot reach \
                             router {} inside the group (local detours never leave a group, \
                             preserving the VC schedule)",
                            base + idx,
                            base + t_idx
                        )));
                    }
                }
            }
        }

        // Every group pair must keep a direct channel or one viable
        // Valiant intermediate; otherwise the dragonfly route shapes
        // cannot deliver and the plan is rejected up front (typed error,
        // never a routing hang).
        let tpg = a * p;
        for gs in 0..g {
            for gd in 0..g {
                if gs != gd
                    && alive_links[gs * g + gd].is_empty()
                    && viable_inter[gs * g + gd].is_empty()
                {
                    return Err(SimError::Unreachable {
                        src: gs * tpg,
                        dest: gd * tpg,
                    });
                }
            }
        }

        Ok(DragonflyFaults {
            failed_links: spec.failed_links().to_vec(),
            alive_links,
            viable_inter,
            local_next,
            local_dist,
            max_local_dist,
        })
    }

    /// Whether a fault plan has been applied.
    pub fn has_faults(&self) -> bool {
        self.faults.is_some()
    }

    /// The canonical failed cables, empty for a fault-free network.
    pub fn failed_links(&self) -> &[(usize, usize)] {
        self.faults.as_ref().map_or(&[], |f| &f.failed_links)
    }

    /// The Valiant intermediate groups still viable between `gs` and
    /// `gd` (both legs alive), or `None` on a fault-free network where
    /// every third group is viable.
    pub fn viable_intermediates(&self, gs: usize, gd: usize) -> Option<&[u32]> {
        let g = self.params.num_groups();
        assert!(gs < g && gd < g, "group out of range");
        self.faults
            .as_ref()
            .map(|f| f.viable_inter[gs * g + gd].as_slice())
    }

    /// How many parallel `gs → gd` global channels a fault plan removed
    /// (0 on a fault-free network).
    pub(crate) fn dead_global_slots(&self, gs: usize, gd: usize) -> u32 {
        let g = self.params.num_groups();
        match &self.faults {
            Some(f) => (self.clean_slot_count(gs, gd) - f.alive_links[gs * g + gd].len()) as u32,
            None => 0,
        }
    }

    /// The configuration parameters.
    pub fn params(&self) -> &DragonflyParams {
        &self.params
    }

    /// The configured channel latencies.
    pub fn latencies(&self) -> ChannelLatencies {
        self.latencies
    }

    /// Intra-group dimension sizes (`[a]` for a complete group).
    pub fn group_dims(&self) -> &[usize] {
        &self.dims
    }

    /// Local (intra-group) ports per router: `a - 1` for a complete
    /// group, fewer for multi-dimensional groups.
    pub fn local_ports_per_router(&self) -> usize {
        self.local_ports
    }

    /// Upper bound on the hops of any valid route, derived from the
    /// topology diameter: the longest (Valiant) route traverses at most
    /// three groups — each at most the intra-group diameter, which is
    /// the group's dimension count (under faults, the longest surviving
    /// intra-group shortest path) — plus two global channels and the
    /// ejection hop. Route walkers ([`crate::trace_route`],
    /// [`dfly_netsim::trace_path`]) report a
    /// [`dfly_netsim::SimError::RouteLoop`] past this bound.
    pub fn route_hop_bound(&self) -> usize {
        let group_diameter = match &self.faults {
            Some(f) => f.max_local_dist.max(self.dims.len()),
            None => self.dims.len(),
        };
        3 * group_diameter + 3
    }

    /// Actual router radix: `p + local ports + h`. Equals
    /// [`DragonflyParams::router_radix`] for complete groups and is
    /// smaller for multi-dimensional groups — the §3.2 trade.
    pub fn router_radix(&self) -> usize {
        self.params.terminals_per_router()
            + self.local_ports
            + self.params.global_ports_per_router()
    }

    /// Global ports per group the construction left unused (non-zero
    /// for some non-maximal configurations and for tapered networks).
    pub fn unused_global_ports_per_group(&self) -> usize {
        self.unused_slots_per_group
    }

    /// Global slots per group the ring construction actually wired.
    fn used_slots(&self) -> usize {
        self.params.global_ports_per_group() - self.unused_slots_per_group
    }

    /// Canonical ring offset between two distinct groups.
    fn ring_offset(&self, x: usize, y: usize) -> usize {
        let g = self.params.num_groups();
        let diff = (y + g - x) % g;
        diff.min(g - diff)
    }

    /// `x`'s slot within `ring` whose channel leads to `y` (one of `x`'s
    /// partners at the ring's offset).
    ///
    /// Slot order within a cost-2 ring follows the construction's pair
    /// sweep `i = 0..g` over `(i, (i+d) mod g)`: group `x` is visited as
    /// the `+d` end at iteration `x` and as the `-d` end at iteration
    /// `(x - d) mod g`, so for `x >= d` the `-d` slot comes first.
    fn slot_in_ring(&self, ring: Ring, x: usize, y: usize) -> usize {
        let (d, base) = (ring.d as usize, ring.base as usize);
        if ring.cost == 1 {
            return base;
        }
        let plus = (x + d) % self.params.num_groups() == y;
        if (x >= d) == plus {
            base + 1
        } else {
            base
        }
    }

    /// Fault-free count of parallel `src → dst` global channels: the
    /// number of placed rings at the pair's offset.
    fn clean_slot_count(&self, src_group: usize, dst_group: usize) -> usize {
        if src_group == dst_group {
            return 0;
        }
        self.rings_by_d[self.ring_offset(src_group, dst_group)].len()
    }

    /// Fault-free `i`-th parallel `src → dst` slot, in ring-placement
    /// order.
    fn clean_slot_at(&self, src_group: usize, dst_group: usize, i: usize) -> usize {
        let ring = self.rings[self.rings_by_d[self.ring_offset(src_group, dst_group)][i] as usize];
        self.slot_in_ring(ring, src_group, dst_group)
    }

    /// How many parallel `src_group → dst_group` global channels exist
    /// (0 for `src == dst`). Under a fault plan only surviving channels
    /// are counted, so routing picks stay consistent with the channels
    /// packets actually use.
    ///
    /// # Panics
    ///
    /// Panics if either group index is out of range.
    pub fn global_slot_count(&self, src_group: usize, dst_group: usize) -> usize {
        let g = self.params.num_groups();
        assert!(src_group < g && dst_group < g, "group out of range");
        match &self.faults {
            Some(f) => f.alive_links[src_group * g + dst_group].len(),
            None => self.clean_slot_count(src_group, dst_group),
        }
    }

    /// The `i`-th of the parallel `src_group → dst_group` global slots,
    /// `i < global_slot_count(..)`. Computed arithmetically from the
    /// ring schedule on a fault-free network; read from the surviving
    /// slot lists under a fault plan.
    ///
    /// # Panics
    ///
    /// Panics if a group index or `i` is out of range.
    pub fn global_slot_at(&self, src_group: usize, dst_group: usize, i: usize) -> usize {
        let g = self.params.num_groups();
        assert!(src_group < g && dst_group < g, "group out of range");
        match &self.faults {
            Some(f) => f.alive_links[src_group * g + dst_group][i] as usize,
            None => self.clean_slot_at(src_group, dst_group, i),
        }
    }

    /// Salt-picks one of the parallel `src_group → dst_group` slots, or
    /// `None` when the pair has no (surviving) direct channel.
    pub fn pick_global_slot(
        &self,
        src_group: usize,
        dst_group: usize,
        salt: u32,
        leg: u32,
    ) -> Option<usize> {
        let n = self.global_slot_count(src_group, dst_group);
        (n > 0).then(|| self.global_slot_at(src_group, dst_group, self.pick(n, salt, leg)))
    }

    /// `(peer_group, peer_slot)` reached by global slot `q` of `group`,
    /// or `None` for an unused slot.
    ///
    /// # Panics
    ///
    /// Panics if `group` or `q` is out of range.
    pub fn global_slot_target(&self, group: usize, q: usize) -> Option<(usize, usize)> {
        let g = self.params.num_groups();
        let ah = self.params.global_ports_per_group();
        assert!(group < g && q < ah, "out of range");
        if q >= self.used_slots() {
            return None;
        }
        // Bases ascend in placement order; find the ring containing q.
        let idx = self.rings.partition_point(|r| (r.base as usize) <= q) - 1;
        let ring = self.rings[idx];
        let (d, off) = (ring.d as usize, q - ring.base as usize);
        let plus = ring.cost == 1 || ((group < d) == (off == 0));
        let peer = if plus {
            (group + d) % g
        } else {
            (group + g - d) % g
        };
        Some((peer, self.slot_in_ring(ring, peer, group)))
    }

    /// Router (global index) owning global slot `q` of `group`.
    pub fn slot_router(&self, group: usize, q: usize) -> usize {
        group * self.params.routers_per_group() + q / self.params.global_ports_per_router()
    }

    /// Router port carrying global slot `q`.
    pub fn slot_port(&self, q: usize) -> usize {
        let p = self.params.terminals_per_router();
        let h = self.params.global_ports_per_router();
        p + self.local_ports + q % h
    }

    /// Intra-group coordinates of a router (by its index within the
    /// group), least-significant dimension first.
    fn group_coords(&self, idx: usize) -> [usize; 8] {
        debug_assert!(self.dims.len() <= 8);
        let mut coords = [0usize; 8];
        let mut rem = idx;
        for (d, &s) in self.dims.iter().enumerate() {
            coords[d] = rem % s;
            rem /= s;
        }
        coords
    }

    /// Local hops between two routers of the same group: the number of
    /// group dimensions in which they differ (1 for complete groups);
    /// under a fault plan, the BFS distance over the surviving local
    /// links.
    ///
    /// # Panics
    ///
    /// Panics if the routers are in different groups.
    pub fn local_hops(&self, router: usize, peer: usize) -> usize {
        let a = self.params.routers_per_group();
        assert_eq!(router / a, peer / a, "routers in different groups");
        if let Some(f) = &self.faults {
            return f.local_dist[router * a + peer % a] as usize;
        }
        let ca = self.group_coords(router % a);
        let cb = self.group_coords(peer % a);
        (0..self.dims.len()).filter(|&d| ca[d] != cb[d]).count()
    }

    /// The local port of `router` leading one hop toward `peer` (both in
    /// the same group): dimension-ordered on a fault-free network (the
    /// direct channel for complete groups), the BFS next hop over the
    /// surviving local links under a fault plan.
    ///
    /// # Panics
    ///
    /// Panics if the routers are not distinct members of one group.
    pub fn local_next_hop(&self, router: usize, peer: usize) -> usize {
        let a = self.params.routers_per_group();
        assert_eq!(router / a, peer / a, "routers in different groups");
        assert_ne!(router, peer, "no local channel to self");
        if let Some(f) = &self.faults {
            return f.local_next[router * a + peer % a] as usize;
        }
        self.local_port_toward(router, peer)
    }

    /// The fault-free dimension-ordered local port from `router` toward
    /// `peer`: the physical wiring, used to build the spec.
    fn local_port_toward(&self, router: usize, peer: usize) -> usize {
        let a = self.params.routers_per_group();
        let ca = self.group_coords(router % a);
        let cb = self.group_coords(peer % a);
        let d = (0..self.dims.len())
            .find(|&d| ca[d] != cb[d])
            .expect("distinct routers differ somewhere");
        let me = ca[d];
        let them = cb[d];
        let p = self.params.terminals_per_router();
        p + self.dim_base[d] + if them < me { them } else { them - 1 }
    }

    /// The router reached from `router` through its local port `port`.
    fn local_peer(&self, router: usize, port: usize) -> usize {
        let p = self.params.terminals_per_router();
        let off = port - p;
        let d = (0..self.dims.len())
            .rfind(|&d| self.dim_base[d] <= off)
            .expect("port within local range");
        let within = off - self.dim_base[d];
        let ca = self.group_coords(router % self.params.routers_per_group());
        let me = ca[d];
        let them = if within < me { within } else { within + 1 };
        // Rebuild the group-local index with dimension d replaced.
        let place: usize = self.dims[..d].iter().product();
        let idx = router % self.params.routers_per_group();
        let group = router - idx;
        group + idx - me * place + them * place
    }

    /// Deterministically picks one of `n` parallel channels from a
    /// per-packet `salt` and the route leg, so that the queue a routing
    /// decision inspects is the queue the packet will use.
    pub fn pick(&self, n: usize, salt: u32, leg: u32) -> usize {
        debug_assert!(n > 0);
        if n == 1 {
            return 0;
        }
        let mut z = (salt as u64) ^ ((leg as u64) << 32) ^ 0x9E37_79B9_7F4A_7C15;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z >> 32) as usize % n
    }

    /// The ejection port for `terminal` on its router.
    pub fn eject_port(&self, terminal: usize) -> usize {
        terminal % self.params.terminals_per_router()
    }

    /// Builds the cycle-accurate network description (3 VCs, the count
    /// the paper's deadlock-avoidance assignment needs). Any applied
    /// fault plan is re-applied, so the spec's failure marks always
    /// match this dragonfly's routing tables.
    ///
    /// # Panics
    ///
    /// Panics only if the internal wiring is inconsistent, which would
    /// be a bug in this crate.
    pub fn build_spec(&self) -> NetworkSpec {
        let spec = self.build_spec_clean();
        match &self.faults {
            None => spec,
            Some(f) => spec
                .with_faults(&FaultPlan::Explicit(f.failed_links.clone()))
                .expect("stored fault list was validated when the plan was applied"),
        }
    }

    /// The fault-free wiring.
    fn build_spec_clean(&self) -> NetworkSpec {
        let p = self.params.terminals_per_router();
        let a = self.params.routers_per_group();
        let h = self.params.global_ports_per_router();
        let g = self.params.num_groups();
        let mut routers = Vec::with_capacity(self.params.num_routers());
        for grp in 0..g {
            for idx in 0..a {
                let router = grp * a + idx;
                let mut ports = Vec::with_capacity(p + self.local_ports + h);
                for t in 0..p {
                    ports.push(PortSpec {
                        conn: Connection::Terminal {
                            terminal: (router * p + t) as u32,
                        },
                        latency: self.latencies.terminal,
                        class: ChannelClass::Terminal,
                    });
                }
                for port in p..p + self.local_ports {
                    let peer = self.local_peer(router, port);
                    ports.push(PortSpec {
                        conn: Connection::Router {
                            router: peer as u32,
                            port: self.local_port_toward(peer, router) as u32,
                        },
                        latency: self.latencies.local,
                        class: ChannelClass::Local,
                    });
                }
                for j in 0..h {
                    let q = idx * h + j;
                    // Unused slots (tapering / odd leftovers) only ever
                    // occupy the tail of the group's slot numbering, so
                    // skipping them keeps port indices contiguous.
                    let Some((peer_group, peer_slot)) = self.global_slot_target(grp, q) else {
                        continue;
                    };
                    ports.push(PortSpec {
                        conn: Connection::Router {
                            router: self.slot_router(peer_group, peer_slot) as u32,
                            port: self.slot_port(peer_slot) as u32,
                        },
                        latency: self.latencies.global,
                        class: ChannelClass::Global,
                    });
                }
                routers.push(RouterSpec { ports });
            }
        }
        NetworkSpec::validated(routers, 3).expect("dragonfly wiring must validate")
    }
}

impl Topology for Dragonfly {
    fn name(&self) -> &'static str {
        "dragonfly"
    }

    fn num_routers(&self) -> usize {
        self.params.num_routers()
    }

    fn num_terminals(&self) -> usize {
        self.params.num_terminals()
    }

    fn radix(&self) -> usize {
        self.router_radix()
    }

    fn router_graph(&self) -> Graph {
        let a = self.params.routers_per_group();
        let g = self.params.num_groups();
        let ah = self.params.global_ports_per_group();
        let p = self.params.terminals_per_router();
        let mut graph = Graph::new(self.params.num_routers());
        for grp in 0..g {
            for idx in 0..a {
                let r = grp * a + idx;
                for port in p..p + self.local_ports {
                    let peer = self.local_peer(r, port);
                    if r < peer {
                        graph.add_bidirectional(r, peer);
                    }
                }
            }
            for q in 0..ah {
                if let Some((pg, pq)) = self.global_slot_target(grp, q) {
                    // Add each global channel once, from the lower group.
                    if pg > grp {
                        graph.add_bidirectional(self.slot_router(grp, q), self.slot_router(pg, pq));
                    }
                }
            }
        }
        graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n72() -> Dragonfly {
        Dragonfly::new(DragonflyParams::new(2, 4, 2).unwrap())
    }

    #[test]
    fn max_size_connects_every_pair_once() {
        let df = n72();
        let g = df.params().num_groups();
        for i in 0..g {
            for j in 0..g {
                let n = df.global_slot_count(i, j);
                if i == j {
                    assert_eq!(n, 0, "self link {i}");
                } else {
                    assert_eq!(n, 1, "pair ({i},{j})");
                }
            }
        }
        assert_eq!(df.unused_global_ports_per_group(), 0);
    }

    #[test]
    fn slot_pairing_is_involutive() {
        let df = n72();
        let g = df.params().num_groups();
        let ah = df.params().global_ports_per_group();
        for grp in 0..g {
            for q in 0..ah {
                let (pg, pq) = df.global_slot_target(grp, q).expect("slot used");
                assert_eq!(df.global_slot_target(pg, pq), Some((grp, q)));
                assert_ne!(pg, grp);
            }
        }
    }

    /// The pre-arithmetic table construction, kept as the reference the
    /// closed-form slot algebra is checked against: one full
    /// `links`/`slot_target` build exactly as the old code wrote it.
    fn reference_tables(
        params: &DragonflyParams,
        taper: f64,
    ) -> (Vec<Vec<u16>>, Vec<(u32, u16)>, usize) {
        let g = params.num_groups();
        let ah = params.global_ports_per_group();
        let mut links = vec![Vec::new(); g * g];
        let mut slot_target = vec![(u32::MAX, 0u16); g * ah];
        let mut next_slot = vec![0usize; g];
        let mut budget = ((ah as f64) * taper).round() as usize;
        let unused = ah - budget;
        let half = g / 2;
        'outer: loop {
            let mut placed = false;
            for d in 1..=half {
                let cost = if 2 * d == g { 1 } else { 2 };
                if budget < cost {
                    continue;
                }
                budget -= cost;
                placed = true;
                let pairs: Vec<(usize, usize)> = if 2 * d == g {
                    (0..half).map(|i| (i, i + d)).collect()
                } else {
                    (0..g).map(|i| (i, (i + d) % g)).collect()
                };
                for (i, j) in pairs {
                    let qi = next_slot[i];
                    next_slot[i] += 1;
                    let qj = next_slot[j];
                    next_slot[j] += 1;
                    slot_target[i * ah + qi] = (j as u32, qj as u16);
                    slot_target[j * ah + qj] = (i as u32, qi as u16);
                    links[i * g + j].push(qi as u16);
                    links[j * g + i].push(qj as u16);
                }
                if budget == 0 {
                    break 'outer;
                }
            }
            if !placed {
                break;
            }
        }
        (links, slot_target, unused + budget)
    }

    #[test]
    fn arithmetic_slots_match_reference_table_sweep() {
        // (p, a, h, g, taper): maximum-size, multi-pass parallel links,
        // odd leftover port, even g with a self-paired middle ring (both
        // single- and repeated-ring), and a tapered build.
        let cases = [
            (2, 4, 2, 9, 1.0),
            (2, 4, 2, 5, 1.0),
            (1, 3, 1, 3, 1.0),
            (2, 2, 4, 8, 1.0),
            (1, 2, 3, 6, 1.0),
            (2, 4, 2, 5, 0.5),
            (1, 2, 2, 4, 0.75),
        ];
        for (p, a, h, g, taper) in cases {
            let params = DragonflyParams::with_groups(p, a, h, g).unwrap();
            let df = if taper < 1.0 {
                Dragonfly::with_taper(params, taper).unwrap()
            } else {
                Dragonfly::new(params)
            };
            let (links, slot_target, unused) = reference_tables(&params, taper);
            let ah = params.global_ports_per_group();
            assert_eq!(
                df.unused_global_ports_per_group(),
                unused,
                "unused mismatch for {params:?}"
            );
            for i in 0..g {
                for j in 0..g {
                    let reference = &links[i * g + j];
                    let computed: Vec<u16> = (0..df.global_slot_count(i, j))
                        .map(|k| df.global_slot_at(i, j, k) as u16)
                        .collect();
                    assert_eq!(&computed, reference, "slots {i}->{j} for {params:?}");
                }
                for q in 0..ah {
                    let (pg, pq) = slot_target[i * ah + q];
                    let reference = (pg != u32::MAX).then_some((pg as usize, pq as usize));
                    assert_eq!(
                        df.global_slot_target(i, q),
                        reference,
                        "target of ({i}, {q}) for {params:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn diameter_is_three_for_multi_group() {
        let df = n72();
        assert_eq!(df.diameter(), Some(3));
    }

    #[test]
    fn spec_validates_and_counts_match() {
        let df = n72();
        let spec = df.build_spec();
        assert_eq!(spec.num_routers(), 36);
        assert_eq!(spec.num_terminals(), 72);
        // Every router has p + (a-1) + h = 7 ports.
        for r in &spec.routers {
            assert_eq!(r.ports.len(), 7);
        }
        // Global channel count: g*(g-1)/2 pairs * 2 directions.
        let globals = spec
            .network_channels()
            .filter(|&(r, p)| spec.routers[r].ports[p].class == ChannelClass::Global)
            .count();
        assert_eq!(globals, 9 * 8);
    }

    #[test]
    fn paper_evaluation_spec_builds() {
        let df = Dragonfly::new(DragonflyParams::new(4, 8, 4).unwrap());
        let spec = df.build_spec();
        assert_eq!(spec.num_terminals(), 1056);
        assert_eq!(spec.num_routers(), 264);
        assert_eq!(df.diameter(), Some(3));
    }

    #[test]
    fn non_maximal_group_count_spreads_links() {
        // a*h = 8 ports over g-1 = 4 other groups: every pair gets 2.
        let df = Dragonfly::new(DragonflyParams::with_groups(2, 4, 2, 5).unwrap());
        for i in 0..5 {
            for j in 0..5 {
                if i != j {
                    assert_eq!(df.global_slot_count(i, j), 2, "pair ({i},{j})");
                }
            }
        }
        assert_eq!(df.unused_global_ports_per_group(), 0);
        df.build_spec();
    }

    #[test]
    fn odd_leftover_ports_are_reported() {
        // g = 3 (odd, rings cost 2), a*h = 3: one port per group unused.
        let df = Dragonfly::new(DragonflyParams::with_groups(1, 3, 1, 3).unwrap());
        assert_eq!(df.unused_global_ports_per_group(), 1);
        let spec = df.build_spec();
        assert!(spec.num_terminals() == 9);
    }

    #[test]
    fn local_port_map_is_consistent() {
        let df = n72();
        // Router 5 (group 1, idx 1): locals to peers 4, 6, 7.
        assert_eq!(df.local_next_hop(5, 4), 2);
        assert_eq!(df.local_next_hop(5, 6), 3);
        assert_eq!(df.local_next_hop(5, 7), 4);
        // And the peer's port back to 5 (idx 1).
        assert_eq!(df.local_next_hop(4, 5), 2);
        assert_eq!(df.local_next_hop(6, 5), 3);
        // Complete groups: every pair one hop apart.
        assert_eq!(df.local_hops(4, 7), 1);
    }

    #[test]
    fn pick_is_deterministic_and_in_range() {
        let df = n72();
        for n in 1..5 {
            for salt in 0..100u32 {
                let x = df.pick(n, salt, 0);
                assert!(x < n);
                assert_eq!(x, df.pick(n, salt, 0));
            }
        }
        // Different legs usually differ for n > 1.
        let diffs = (0..64u32)
            .filter(|&s| df.pick(4, s, 0) != df.pick(4, s, 1))
            .count();
        assert!(diffs > 16, "legs correlated: {diffs}");
    }

    #[test]
    fn average_hop_count_below_three() {
        let df = n72();
        let avg = df.average_hop_count().unwrap();
        assert!(avg < 3.0, "avg {avg}");
        assert!(avg > 1.5, "avg {avg}");
    }

    // ----- §3.2 variants -----

    /// Figure 6(b): a 3-D flattened-butterfly group of 2x2x2 routers
    /// with p = h = 2 keeps the k = 7 router of Figure 5 while raising
    /// the group's effective radix.
    #[test]
    fn cube_group_matches_figure6() {
        let params = DragonflyParams::new(2, 8, 2).unwrap();
        let df = Dragonfly::with_group_topology(
            params,
            GroupTopology::FlattenedButterfly(vec![2, 2, 2]),
            ChannelLatencies::default(),
        )
        .unwrap();
        // p + (1+1+1) + h = 7 ports, same as the complete 4-router group.
        assert_eq!(df.router_radix(), 7);
        assert_eq!(df.local_ports_per_router(), 3);
        // Effective radix doubles vs the Figure-5 group: a(p + h) = 32.
        assert_eq!(params.effective_radix(), 32);
        // The spec wires and the local network is a 3-cube: diameter 3
        // within a group, so network diameter local(3)+global+local(3).
        let spec = df.build_spec();
        assert_eq!(spec.num_terminals(), params.num_terminals());
        assert_eq!(df.local_hops(0, 7), 3); // opposite cube corners
        assert_eq!(df.local_hops(0, 3), 2);
        assert_eq!(df.local_hops(0, 4), 1);
    }

    #[test]
    fn group_dims_must_multiply_to_a() {
        let params = DragonflyParams::new(2, 8, 2).unwrap();
        assert!(Dragonfly::with_group_topology(
            params,
            GroupTopology::FlattenedButterfly(vec![3, 3]),
            ChannelLatencies::default(),
        )
        .is_err());
        assert!(Dragonfly::with_group_topology(
            params,
            GroupTopology::FlattenedButterfly(vec![8, 1]),
            ChannelLatencies::default(),
        )
        .is_err());
    }

    #[test]
    fn local_next_hop_walks_dimension_order() {
        let params = DragonflyParams::new(2, 8, 2).unwrap();
        let df = Dragonfly::with_group_topology(
            params,
            GroupTopology::FlattenedButterfly(vec![2, 2, 2]),
            ChannelLatencies::default(),
        )
        .unwrap();
        // From router 0 to router 7 (coords 111): first hop flips dim 0
        // -> router 1; from router 1, flips dim 1 -> router 3; then 7.
        let spec = df.build_spec();
        let mut at = 0usize;
        let mut hops = 0;
        while at != 7 {
            let port_spec = spec.routers[at].ports[df.local_next_hop(at, 7)];
            // `NetworkSpec::validated` rejects any local-class port wired
            // to a terminal at construction, so the wiring guarantee
            // holds before any route is ever walked.
            assert_eq!(port_spec.class, ChannelClass::Local);
            let Connection::Router { router, .. } = port_spec.conn else {
                unreachable!("validated spec: non-terminal class implies router wiring");
            };
            at = router as usize;
            hops += 1;
            assert!(hops <= 3, "dimension-order walk too long");
        }
        assert_eq!(hops, 3);
    }

    #[test]
    fn two_dim_group_spec_is_symmetric() {
        let params = DragonflyParams::new(2, 4, 2).unwrap();
        let df = Dragonfly::with_group_topology(
            params,
            GroupTopology::FlattenedButterfly(vec![2, 2]),
            ChannelLatencies::default(),
        )
        .unwrap();
        assert_eq!(df.router_radix(), 6); // one port fewer than complete
        let spec = df.build_spec();
        assert_eq!(spec.num_terminals(), 72);
        // Validation inside build_spec checked symmetric wiring.
        use dfly_topo::Topology;
        assert!(df.router_graph().is_connected());
        // Worst minimal route is local(2) + global + local(2) = 5, but
        // shortest paths may cut through a third group, so the graph
        // diameter sits between the complete-group 3 and 5.
        let diameter = df.diameter().unwrap();
        assert!((4..=5).contains(&diameter), "diameter {diameter}");
    }

    #[test]
    fn taper_halves_global_channels() {
        let params = DragonflyParams::with_groups(2, 4, 2, 5).unwrap();
        let full = Dragonfly::new(params);
        let tapered = Dragonfly::with_taper(params, 0.5).unwrap();
        let count = |df: &Dragonfly| {
            (0..5)
                .map(|i| (0..5).map(|j| df.global_slot_count(i, j)).sum::<usize>())
                .sum::<usize>()
        };
        assert_eq!(count(&tapered) * 2, count(&full));
        assert_eq!(tapered.unused_global_ports_per_group(), 4);
        tapered.build_spec();
    }

    #[test]
    fn taper_too_aggressive_is_rejected() {
        // 9 groups need at least 8 of the 8 ports: taper below 1.0
        // disconnects some pair.
        let params = DragonflyParams::new(2, 4, 2).unwrap();
        assert!(Dragonfly::with_taper(params, 0.3).is_err());
        assert!(Dragonfly::with_taper(params, 1.5).is_err());
        assert!(Dragonfly::with_taper(params, 1.0).is_ok());
    }

    /// The (router, port) of the unique global cable from group `ga`
    /// toward group `gb` in `spec`.
    fn global_cable(df: &Dragonfly, spec: &NetworkSpec, ga: usize, gb: usize) -> (usize, usize) {
        let a = df.params().routers_per_group();
        for r in ga * a..(ga + 1) * a {
            for (p, port) in spec.routers[r].ports.iter().enumerate() {
                if let Connection::Router { router: peer, .. } = port.conn {
                    if port.class == ChannelClass::Global
                        && df.params().group_of_router(peer as usize) == gb
                    {
                        return (r, p);
                    }
                }
            }
        }
        panic!("no cable {ga}-{gb}")
    }

    #[test]
    fn fault_plan_filters_slots_and_intermediates() {
        let clean = n72();
        assert!(!clean.has_faults());
        assert!(clean.viable_intermediates(0, 1).is_none());
        let cable = global_cable(&clean, &clean.build_spec(), 0, 1);
        let df = clean
            .with_fault_plan(&FaultPlan::Explicit(vec![cable]))
            .unwrap();
        assert!(df.has_faults());
        assert_eq!(df.failed_links().len(), 1);
        // The dead cable vanishes from both directions' slot lists;
        // every other pair keeps its single cable.
        assert_eq!(df.global_slot_count(0, 1), 0);
        assert_eq!(df.global_slot_count(1, 0), 0);
        assert_eq!(df.global_slot_count(0, 2), 1);
        assert_eq!(df.dead_global_slots(0, 1), 1);
        assert_eq!(df.dead_global_slots(0, 2), 0);
        let viable = df.viable_intermediates(0, 1).unwrap();
        assert!(!viable.is_empty());
        assert!(viable.iter().all(|&gi| gi != 0 && gi != 1));
        // An unaffected pair keeps every third group viable.
        assert_eq!(
            df.viable_intermediates(2, 3).unwrap().len(),
            df.params().num_groups() - 2
        );
    }

    #[test]
    fn local_fault_detours_within_group() {
        let clean = n72();
        let spec = clean.build_spec();
        // Kill the 0 <-> 1 local cable inside group 0.
        let cable = spec.routers[0]
            .ports
            .iter()
            .enumerate()
            .find_map(|(p, port)| match port.conn {
                Connection::Router { router: 1, .. } if port.class == ChannelClass::Local => {
                    Some((0, p))
                }
                _ => None,
            })
            .expect("group peers are directly wired");
        let df = clean
            .with_fault_plan(&FaultPlan::Explicit(vec![cable]))
            .unwrap();
        // Router 0 now reaches router 1 in two hops via a live peer, and
        // the first hop stays inside the group.
        assert_eq!(df.local_hops(0, 1), 2);
        let via = df.local_next_hop(0, 1);
        let step = match df.build_spec().routers[0].ports[via].conn {
            Connection::Router { router, .. } => router as usize,
            other => panic!("local hop left the network: {other:?}"),
        };
        assert!(step < df.params().routers_per_group());
        assert_ne!(step, 1);
        assert_eq!(df.local_hops(step, 1), 1);
        // The hop bound stretches to cover the detour.
        assert!(df.route_hop_bound() > n72().route_hop_bound());
    }

    #[test]
    fn local_fault_that_splits_a_group_is_rejected() {
        // p=1, a=2: each group is two routers joined by one local cable.
        let params = DragonflyParams::new(1, 2, 2).unwrap();
        let clean = Dragonfly::new(params);
        let spec = clean.build_spec();
        let cable = spec.routers[0]
            .ports
            .iter()
            .enumerate()
            .find_map(|(p, port)| (port.class == ChannelClass::Local).then_some((0usize, p)))
            .expect("local cable exists");
        let err = clean
            .with_fault_plan(&FaultPlan::Explicit(vec![cable]))
            .expect_err("splitting a group must be rejected");
        assert!(
            matches!(err, SimError::InvalidFaultPlan(_)),
            "unexpected error {err:?}"
        );
    }

    #[test]
    fn fault_plans_compose_and_zero_fraction_is_clean() {
        let clean = n72();
        let spec = clean.build_spec();
        let c01 = global_cable(&clean, &spec, 0, 1);
        let c23 = global_cable(&clean, &spec, 2, 3);
        let df = n72()
            .with_fault_plan(&FaultPlan::Explicit(vec![c01]))
            .unwrap()
            .with_fault_plan(&FaultPlan::Explicit(vec![c23]))
            .unwrap();
        assert_eq!(df.failed_links().len(), 2);
        assert_eq!(df.global_slot_count(0, 1), 0);
        assert_eq!(df.global_slot_count(2, 3), 0);
        let df0 = n72()
            .with_fault_plan(&FaultPlan::random_global(0.0, 9))
            .unwrap();
        assert!(!df0.has_faults());
    }
}
