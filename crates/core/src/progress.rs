//! Live sweep-progress events: a structured JSON-lines stream with an
//! optional human TTY renderer.
//!
//! Campaign sweeps can run for hours; this module makes them observable
//! without touching their results. A [`ProgressSink`] is an event
//! outlet selected by the `DFLY_PROGRESS` environment variable:
//!
//! * unset / `""` / `0` / `off` — disabled (the default; zero work per
//!   cell beyond one atomic check);
//! * `tty` / `stderr` — human-readable one-line-per-event rendering on
//!   standard error;
//! * anything else — treated as a file path receiving one JSON object
//!   per line (`begin` / `cell` / `end` events).
//!
//! A [`SweepProgress`] tracks one sweep through the sink: cell
//! completions carry a running `done/total`, the hit/miss split, the
//! cell's own wall time, and an ETA extrapolated from the median
//! observed miss time — seeded from the campaign store's journaled
//! cell timings (see `CampaignStore::median_timing`) so a resumed
//! campaign has a sane ETA from its very first cell.
//!
//! Events carry wall-clock timestamps and durations, which is exactly
//! why they live in a side channel: nothing here feeds back into
//! simulation results, so runs stay bit-identical with progress on,
//! off, or redirected.

use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::Path;
use std::sync::Mutex;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use dfly_netsim::telemetry::json_escape;

/// Milliseconds since the Unix epoch — the wall-clock stamp on every
/// emitted event.
fn unix_ms() -> u128 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis())
        .unwrap_or(0)
}

enum Outlet {
    Off,
    Tty,
    File(Mutex<File>),
}

/// Destination for progress events. Cheap to share: one sink serves
/// every sweep of a process, and emission is internally locked.
pub struct ProgressSink {
    outlet: Outlet,
}

impl ProgressSink {
    /// A disabled sink: every emission is a no-op.
    pub fn off() -> Self {
        ProgressSink {
            outlet: Outlet::Off,
        }
    }

    /// A sink rendering human-readable lines on standard error.
    pub fn tty() -> Self {
        ProgressSink {
            outlet: Outlet::Tty,
        }
    }

    /// A sink appending JSON-lines events to `path` (created if
    /// absent).
    ///
    /// # Errors
    ///
    /// Any failure opening `path` for append.
    pub fn to_file(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path.as_ref())?;
        Ok(ProgressSink {
            outlet: Outlet::File(Mutex::new(file)),
        })
    }

    /// The sink `DFLY_PROGRESS` selects (see the module docs). An
    /// unopenable file path degrades to a disabled sink rather than
    /// failing the sweep — progress is never worth a lost campaign.
    pub fn from_env() -> Self {
        match std::env::var("DFLY_PROGRESS") {
            Err(_) => Self::off(),
            Ok(v) => match v.as_str() {
                "" | "0" | "off" => Self::off(),
                "tty" | "stderr" => Self::tty(),
                path => Self::to_file(path).unwrap_or_else(|_| Self::off()),
            },
        }
    }

    /// Whether emissions are no-ops.
    pub fn is_off(&self) -> bool {
        matches!(self.outlet, Outlet::Off)
    }

    /// Emits one event: `json` to a file sink, `human` to a TTY sink.
    fn emit(&self, json: &str, human: &str) {
        match &self.outlet {
            Outlet::Off => {}
            Outlet::Tty => eprintln!("{human}"),
            Outlet::File(file) => {
                let mut file = file.lock().expect("progress sink poisoned");
                // Best-effort: a full disk must not kill the sweep.
                let _ = writeln!(file, "{json}");
                let _ = file.flush();
            }
        }
    }
}

/// Running tally behind one sweep's progress stream.
struct SweepState {
    done: usize,
    hits: usize,
    /// Wall seconds of every completed miss, kept sorted-on-demand for
    /// the median.
    miss_secs: Vec<f64>,
}

/// Progress tracking for one named sweep: emits a `begin` event on
/// construction, a `cell` event per completed cell (any thread), and an
/// `end` event from [`SweepProgress::finish`].
pub struct SweepProgress<'s> {
    sink: &'s ProgressSink,
    sweep: String,
    total: usize,
    /// Median cell seconds from previous sessions (the campaign store's
    /// timing sidecar), used for the ETA until live misses accumulate.
    prior_secs: Option<f64>,
    started: Instant,
    state: Mutex<SweepState>,
}

impl<'s> SweepProgress<'s> {
    /// Starts tracking `total` cells of the sweep named `sweep`,
    /// emitting the `begin` event. `prior_secs` seeds the ETA (median
    /// per-cell seconds from earlier sessions), if known.
    pub fn begin(
        sink: &'s ProgressSink,
        sweep: &str,
        total: usize,
        prior_secs: Option<f64>,
    ) -> Self {
        if !sink.is_off() {
            let json = format!(
                "{{\"event\":\"begin\",\"sweep\":\"{}\",\"total\":{},\"unix_ms\":{}}}",
                json_escape(sweep),
                total,
                unix_ms()
            );
            let human = format!("[{sweep}] 0/{total} starting");
            sink.emit(&json, &human);
        }
        SweepProgress {
            sink,
            sweep: sweep.to_string(),
            total,
            prior_secs,
            started: Instant::now(),
            state: Mutex::new(SweepState {
                done: 0,
                hits: 0,
                miss_secs: Vec::new(),
            }),
        }
    }

    /// Records cell `index` as complete (`hit` from the store, or a
    /// fresh simulation that took `secs`) and emits the `cell` event
    /// with the running ETA. Callable from any worker thread.
    pub fn cell(&self, index: usize, hit: bool, secs: f64) {
        if self.sink.is_off() {
            return;
        }
        let (done, hits, eta) = {
            let mut st = self.state.lock().expect("sweep progress poisoned");
            st.done += 1;
            if hit {
                st.hits += 1;
            } else {
                st.miss_secs.push(secs);
            }
            let remaining = self.total.saturating_sub(st.done);
            let per_cell = median(&mut st.miss_secs).or(self.prior_secs);
            (st.done, st.hits, per_cell.map(|s| s * remaining as f64))
        };
        let eta_json = eta.map_or("null".to_string(), |e| format!("{e:.3}"));
        let json = format!(
            "{{\"event\":\"cell\",\"sweep\":\"{}\",\"cell\":{},\"hit\":{},\"secs\":{:.3},\
             \"done\":{},\"total\":{},\"hits\":{},\"eta_secs\":{},\"unix_ms\":{}}}",
            json_escape(&self.sweep),
            index,
            hit,
            secs,
            done,
            self.total,
            hits,
            eta_json,
            unix_ms()
        );
        let eta_human = eta.map_or(String::new(), |e| format!(" eta {e:.1}s"));
        let human = format!(
            "[{}] {}/{} ({} hits){}",
            self.sweep, done, self.total, hits, eta_human
        );
        self.sink.emit(&json, &human);
    }

    /// Emits the `end` event with the final tally and total wall time.
    pub fn finish(&self) {
        if self.sink.is_off() {
            return;
        }
        let st = self.state.lock().expect("sweep progress poisoned");
        let secs = self.started.elapsed().as_secs_f64();
        let json = format!(
            "{{\"event\":\"end\",\"sweep\":\"{}\",\"done\":{},\"total\":{},\"hits\":{},\
             \"misses\":{},\"secs\":{:.3},\"unix_ms\":{}}}",
            json_escape(&self.sweep),
            st.done,
            self.total,
            st.hits,
            st.done - st.hits,
            secs,
            unix_ms()
        );
        let human = format!(
            "[{}] done: {}/{} cells, {} hits, {} misses in {:.1}s",
            self.sweep,
            st.done,
            self.total,
            st.hits,
            st.done - st.hits,
            secs
        );
        self.sink.emit(&json, &human);
    }
}

/// Median of `values` (sorting in place); `None` when empty.
fn median(values: &mut [f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    values.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    Some(values[values.len() / 2])
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::PathBuf;

    fn temp_file(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("dfly-progress-{}-{}", std::process::id(), name))
    }

    #[test]
    fn off_sink_emits_nothing_cheaply() {
        let sink = ProgressSink::off();
        assert!(sink.is_off());
        let sweep = SweepProgress::begin(&sink, "grid", 4, None);
        sweep.cell(0, true, 0.0);
        sweep.finish();
    }

    #[test]
    fn file_sink_writes_one_json_object_per_event() {
        let path = temp_file("jsonl");
        let _ = fs::remove_file(&path);
        {
            let sink = ProgressSink::to_file(&path).unwrap();
            assert!(!sink.is_off());
            let sweep = SweepProgress::begin(&sink, "grid", 3, Some(0.5));
            sweep.cell(2, true, 0.0);
            sweep.cell(0, false, 1.25);
            sweep.cell(1, false, 0.75);
            sweep.finish();
        }
        let text = fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5, "begin + 3 cells + end: {text}");
        assert!(lines[0].contains("\"event\":\"begin\""));
        assert!(lines[0].contains("\"total\":3"));
        // First cell is a hit: the ETA falls back to the prior median.
        assert!(lines[1].contains("\"hit\":true"));
        assert!(lines[1].contains("\"eta_secs\":1.000"), "{}", lines[1]);
        // Second cell: one live miss at 1.25s, one cell left.
        assert!(lines[2].contains("\"done\":2"));
        assert!(lines[2].contains("\"eta_secs\":1.250"), "{}", lines[2]);
        // Last cell: nothing remaining, ETA zero.
        assert!(lines[3].contains("\"eta_secs\":0.000"), "{}", lines[3]);
        assert!(lines[4].contains("\"event\":\"end\""));
        assert!(lines[4].contains("\"hits\":1"));
        assert!(lines[4].contains("\"misses\":2"));
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
            assert_eq!(line.matches('{').count(), line.matches('}').count());
            assert!(line.contains("\"unix_ms\":"));
        }
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn median_is_order_insensitive() {
        assert_eq!(median(&mut []), None);
        assert_eq!(median(&mut [2.0]), Some(2.0));
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&mut [4.0, 1.0]), Some(4.0));
    }
}
