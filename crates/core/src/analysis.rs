//! Analytical throughput bounds for the dragonfly.
//!
//! The paper quotes two closed-form limits: minimal routing on the
//! worst-case pattern collapses to `1/(a·h)` (one global channel carries
//! a whole group's traffic), and Valiant routing tops out at 50% (every
//! packet consumes two global channel traversals). This module computes
//! those bounds — generalised to non-maximal group counts, tapered
//! networks and arbitrary group offsets — by locating the bottleneck
//! channel class under each routing discipline. The integration tests
//! cross-check them against measured saturation throughput.

use crate::topology::Dragonfly;

/// Analytical saturation-throughput bounds (fractions of per-node
/// injection bandwidth) for one dragonfly under one traffic pattern.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputBounds {
    /// Upper bound under minimal routing.
    pub minimal: f64,
    /// Upper bound under Valiant (uniformly random intermediate group)
    /// routing.
    pub valiant: f64,
}

/// Bounds for the group-offset adversarial pattern (every node in group
/// `i` sends to group `i + offset`): minimal routing is limited by the
/// thinnest direct group-pair connection, Valiant by the doubled global
/// traversal.
///
/// # Panics
///
/// Panics if `offset % g == 0` (the pattern would be intra-group).
pub fn group_offset_bounds(df: &Dragonfly, offset: usize) -> ThroughputBounds {
    let params = df.params();
    let g = params.num_groups();
    assert!(
        !offset.is_multiple_of(g),
        "offset {offset} maps groups onto themselves"
    );
    let ap = (params.routers_per_group() * params.terminals_per_router()) as f64;

    // Minimal: all of group i's traffic (ap·r flits/cycle) crosses the
    // direct channels to group i+offset.
    let thinnest = (0..g)
        .map(|i| df.global_slot_count(i, (i + offset) % g))
        .min()
        .unwrap_or(0) as f64;
    let minimal = thinnest / ap;

    // Valiant: each packet crosses two global channels; a group's
    // outgoing demand of ap·r spreads over its wired global ports on the
    // way out, and again on the way in at the intermediate group.
    let wired = (params.global_ports_per_group() - df.unused_global_ports_per_group()) as f64;
    let valiant = (wired / (2.0 * ap)).min(1.0);

    ThroughputBounds { minimal, valiant }
}

/// Bounds for uniform random traffic.
///
/// Minimal routing is limited by whichever channel class saturates
/// first: global channels carry the inter-group fraction `(g-1)/g` of
/// all traffic once each; local channels carry up to two hops per
/// packet. Valiant halves the global budget (two global traversals per
/// inter-group packet).
pub fn uniform_bounds(df: &Dragonfly) -> ThroughputBounds {
    let params = df.params();
    let g = params.num_groups() as f64;
    let a = params.routers_per_group() as f64;
    let p = params.terminals_per_router() as f64;
    let ap = a * p;
    let wired = (params.global_ports_per_group() - df.unused_global_ports_per_group()) as f64;
    let inter = (g - 1.0) / g;

    // Global channels: demand ap·r·inter spread over `wired` ports.
    let global_cap = wired / (ap * inter);
    // Local channels: a fully connected group has a(a-1) directed local
    // channels; a uniform inter-group packet takes ~(a-1)/a local hops at
    // each end, an intra-group one ~(a-1)/a in total.
    let local_channels = {
        // Generalised to multi-dimensional groups: sum of (s_d - 1) ports
        // per router times a routers.
        (df.local_ports_per_router() as f64) * a
    };
    let local_hops_per_packet = inter * 2.0 * (a - 1.0) / a + (1.0 - inter) * (a - 1.0) / a;
    let local_cap = if local_hops_per_packet > 0.0 {
        local_channels / (ap * local_hops_per_packet)
    } else {
        f64::INFINITY
    };
    let ejection_cap = 1.0;

    let minimal = global_cap.min(local_cap).min(ejection_cap);
    let valiant = (wired / (2.0 * ap * inter)).min(local_cap).min(1.0);
    ThroughputBounds { minimal, valiant }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::DragonflyParams;

    #[test]
    fn paper_network_wc_bound_is_one_over_ah() {
        let df = Dragonfly::new(DragonflyParams::new(4, 8, 4).unwrap());
        let b = group_offset_bounds(&df, 1);
        assert!((b.minimal - 1.0 / 32.0).abs() < 1e-12, "{}", b.minimal);
        assert!((b.valiant - 0.5).abs() < 1e-12, "{}", b.valiant);
    }

    #[test]
    fn uniform_bounds_are_one_and_half_for_balanced() {
        let df = Dragonfly::new(DragonflyParams::new(4, 8, 4).unwrap());
        let b = uniform_bounds(&df);
        // Balanced network: global and local budgets both cover full
        // injection; ejection is the binding constraint.
        assert!((b.minimal - 1.0).abs() < 0.05, "min {}", b.minimal);
        assert!((b.valiant - 0.5).abs() < 0.05, "val {}", b.valiant);
    }

    #[test]
    fn non_maximal_network_has_fatter_pairs() {
        // 5 groups over a*h = 8 ports: 2 channels per pair doubles the
        // minimal worst-case bound.
        let df = Dragonfly::new(DragonflyParams::with_groups(2, 4, 2, 5).unwrap());
        let b = group_offset_bounds(&df, 1);
        assert!((b.minimal - 2.0 / 8.0).abs() < 1e-12, "{}", b.minimal);
        // And Valiant is over-provisioned past 0.5.
        assert!(b.valiant >= 0.5);
    }

    #[test]
    fn taper_halves_both_bounds() {
        let params = DragonflyParams::with_groups(2, 4, 2, 5).unwrap();
        let full = Dragonfly::new(params);
        let tapered = Dragonfly::with_taper(params, 0.5).unwrap();
        let bf = group_offset_bounds(&full, 1);
        let bt = group_offset_bounds(&tapered, 1);
        assert!((bt.minimal - bf.minimal / 2.0).abs() < 1e-12);
        assert!(bt.valiant < bf.valiant);
    }

    #[test]
    #[should_panic(expected = "onto themselves")]
    fn intra_group_offset_rejected() {
        let df = Dragonfly::new(DragonflyParams::new(2, 4, 2).unwrap());
        group_offset_bounds(&df, 9);
    }
}
