//! High-level experiment harness: build a dragonfly once, sweep loads,
//! and collect latency/throughput curves the way the paper's figures do.

use std::sync::Arc;

use dfly_netsim::{
    CreditMode, FaultPlan, NetworkSpec, RoutingAlgorithm, RunStats, SimConfig, SimError, SimPerf,
    Simulation,
};
use dfly_traffic::{GroupAdversarial, Permutation, TrafficPattern, UniformRandom, Workload};

use crate::routing::{MinimalRouting, UgalRouting, UgalVariant, ValiantRouting};
use crate::topology::Dragonfly;
use crate::DragonflyParams;

/// The routing configurations evaluated in the paper, combining a
/// decision rule with (for UGAL-L(CR)) the credit round-trip mechanism.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RoutingChoice {
    /// Minimal routing.
    Min,
    /// Valiant randomised routing.
    Valiant,
    /// UGAL with local total-port occupancy.
    UgalL,
    /// UGAL with per-VC occupancy (UGAL-L_VC).
    UgalLVc,
    /// UGAL with the hybrid VC discrimination (UGAL-L_VCH).
    UgalLVcH,
    /// UGAL-L_VCH plus credit round-trip backpressure (UGAL-L_CR).
    UgalLCr,
    /// The idealised global-information oracle (UGAL-G).
    UgalG,
    /// UGAL with EWMA-smoothed local occupancy (UGAL-L_EWMA).
    UgalLEwma,
}

impl RoutingChoice {
    /// All choices, in the order the paper introduces them (with the
    /// EWMA ablation appended).
    pub const ALL: [RoutingChoice; 8] = [
        RoutingChoice::Min,
        RoutingChoice::Valiant,
        RoutingChoice::UgalL,
        RoutingChoice::UgalLVc,
        RoutingChoice::UgalLVcH,
        RoutingChoice::UgalLCr,
        RoutingChoice::UgalG,
        RoutingChoice::UgalLEwma,
    ];

    /// Display label matching the paper's plots.
    pub fn label(&self) -> &'static str {
        match self {
            RoutingChoice::Min => "MIN",
            RoutingChoice::Valiant => "VAL",
            RoutingChoice::UgalL => "UGAL-L",
            RoutingChoice::UgalLVc => "UGAL-L_VC",
            RoutingChoice::UgalLVcH => "UGAL-L_VCH",
            RoutingChoice::UgalLCr => "UGAL-L_CR",
            RoutingChoice::UgalG => "UGAL-G",
            RoutingChoice::UgalLEwma => "UGAL-L_EWMA",
        }
    }

    /// Whether this choice requires the credit round-trip mechanism.
    pub fn needs_round_trip_credits(&self) -> bool {
        matches!(self, RoutingChoice::UgalLCr)
    }

    /// Builds the routing algorithm for `df`. Public so generic
    /// cross-topology harnesses (e.g. the bench crate's curve sweeps)
    /// can drive dragonfly choices through the same code path as the
    /// baseline topologies.
    pub fn build(&self, df: Arc<Dragonfly>) -> Box<dyn RoutingAlgorithm + Send + Sync> {
        match self {
            RoutingChoice::Min => Box::new(MinimalRouting::new(df)),
            RoutingChoice::Valiant => Box::new(ValiantRouting::new(df)),
            RoutingChoice::UgalL => Box::new(UgalRouting::new(df, UgalVariant::Local)),
            RoutingChoice::UgalLVc => Box::new(UgalRouting::new(df, UgalVariant::LocalVc)),
            RoutingChoice::UgalLVcH => Box::new(UgalRouting::new(df, UgalVariant::LocalVcHybrid)),
            RoutingChoice::UgalLCr => Box::new(UgalRouting::new(df, UgalVariant::CreditRoundTrip)),
            RoutingChoice::UgalG => Box::new(UgalRouting::new(df, UgalVariant::Global)),
            RoutingChoice::UgalLEwma => Box::new(UgalRouting::new(df, UgalVariant::LocalEwma)),
        }
    }
}

/// The synthetic traffic patterns of the paper's evaluation.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficChoice {
    /// Uniform random (UR) — benign.
    Uniform,
    /// Worst case (WC): group `i` sends to random nodes of group `i+1`.
    WorstCase,
    /// Group-level tornado: offset `⌈g/2⌉-1`.
    GroupTornado,
    /// A random terminal permutation (derangement), seeded for
    /// reproducibility.
    RandomPermutation {
        /// Permutation seed.
        seed: u64,
    },
}

impl TrafficChoice {
    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            TrafficChoice::Uniform => "UR",
            TrafficChoice::WorstCase => "WC",
            TrafficChoice::GroupTornado => "tornado",
            TrafficChoice::RandomPermutation { .. } => "permutation",
        }
    }

    /// Builds the pattern for a dragonfly of the given parameters.
    pub fn build(&self, params: &DragonflyParams) -> Box<dyn TrafficPattern + Send + Sync> {
        let n = params.num_terminals();
        let group = params.routers_per_group() * params.terminals_per_router();
        match *self {
            TrafficChoice::Uniform => Box::new(UniformRandom::new(n)),
            TrafficChoice::WorstCase => Box::new(GroupAdversarial::next_group(n, group)),
            TrafficChoice::GroupTornado => Box::new(GroupAdversarial::tornado(n, group)),
            TrafficChoice::RandomPermutation { seed } => {
                let mut rng = dfly_traffic::rng_for(seed, 0);
                Box::new(Permutation::random(n, &mut rng))
            }
        }
    }
}

/// One point of a latency-load curve.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadPoint {
    /// Offered load (packets/terminal/cycle).
    pub load: f64,
    /// Full statistics of the run.
    pub stats: RunStats,
}

impl LoadPoint {
    /// Mean packet latency, `None` if the run saturated without draining.
    pub fn latency(&self) -> Option<f64> {
        if self.stats.drained {
            self.stats.avg_latency()
        } else {
            None
        }
    }
}

/// A reusable dragonfly simulation harness: the network is wired once
/// and can then be run under any routing choice, traffic and load.
///
/// # Example
///
/// ```no_run
/// use dragonfly::{DragonflyParams, DragonflySim, RoutingChoice, TrafficChoice};
///
/// let sim = DragonflySim::new(DragonflyParams::new(2, 4, 2).unwrap());
/// let stats = sim.run(
///     RoutingChoice::UgalLVcH,
///     TrafficChoice::WorstCase,
///     sim.config(0.3),
/// );
/// println!("avg latency: {:?}", stats.avg_latency());
/// ```
#[derive(Debug)]
pub struct DragonflySim {
    df: Arc<Dragonfly>,
    spec: NetworkSpec,
}

impl DragonflySim {
    /// Builds the harness for `params`.
    pub fn new(params: DragonflyParams) -> Self {
        Self::with_dragonfly(Dragonfly::new(params))
    }

    /// Builds the harness for `params` with a [`FaultPlan`] applied:
    /// the spec carries the failure marks and every routing choice
    /// steers around the dead links.
    ///
    /// # Errors
    ///
    /// Everything [`Dragonfly::with_fault_plan`] rejects: malformed
    /// plans, locally disconnected groups, and plans that leave some
    /// group pair with no usable route
    /// ([`dfly_netsim::SimError::Unreachable`]).
    pub fn with_faults(params: DragonflyParams, plan: &FaultPlan) -> Result<Self, SimError> {
        Ok(Self::with_dragonfly(Dragonfly::with_faults(params, plan)?))
    }

    /// Builds the harness around an explicitly configured dragonfly
    /// (e.g. with non-unit channel latencies).
    pub fn with_dragonfly(df: Dragonfly) -> Self {
        let df = Arc::new(df);
        let spec = df.build_spec();
        DragonflySim { df, spec }
    }

    /// The underlying dragonfly.
    pub fn dragonfly(&self) -> &Dragonfly {
        &self.df
    }

    /// A shared handle on the underlying dragonfly, for building
    /// routing algorithms outside the harness (see
    /// [`RoutingChoice::build`]).
    pub fn shared_dragonfly(&self) -> Arc<Dragonfly> {
        Arc::clone(&self.df)
    }

    /// The wired network description.
    pub fn spec(&self) -> &NetworkSpec {
        &self.spec
    }

    /// A run configuration with the paper's defaults at the given load,
    /// scaled-down warm-up for small networks.
    pub fn config(&self, load: f64) -> SimConfig {
        SimConfig::paper_default(load)
    }

    /// Runs one simulation.
    ///
    /// For [`RoutingChoice::UgalLCr`] the credit round-trip mechanism is
    /// switched on automatically unless the configuration already
    /// selects a round-trip mode.
    pub fn run(
        &self,
        choice: RoutingChoice,
        traffic: TrafficChoice,
        mut cfg: SimConfig,
    ) -> RunStats {
        if choice.needs_round_trip_credits() && cfg.credit_mode == CreditMode::Conventional {
            cfg.credit_mode = CreditMode::round_trip();
        }
        let algo = choice.build(self.df.clone());
        let pattern = traffic.build(self.df.params());
        Simulation::new(&self.spec, algo.as_ref(), pattern.as_ref(), cfg)
            .expect("harness-built simulation must be valid")
            .finish()
    }

    /// Like [`DragonflySim::run`], but surfaces a stall watchdog trip
    /// (see [`SimConfig::watchdog_every`](dfly_netsim::SimConfig)) as
    /// [`SimError::Stalled`] instead of silently returning the stats of
    /// a wedged run.
    pub fn try_run(
        &self,
        choice: RoutingChoice,
        traffic: TrafficChoice,
        mut cfg: SimConfig,
    ) -> Result<RunStats, SimError> {
        if choice.needs_round_trip_credits() && cfg.credit_mode == CreditMode::Conventional {
            cfg.credit_mode = CreditMode::round_trip();
        }
        let algo = choice.build(self.df.clone());
        let pattern = traffic.build(self.df.params());
        Simulation::new(&self.spec, algo.as_ref(), pattern.as_ref(), cfg)
            .expect("harness-built simulation must be valid")
            .try_finish()
    }

    /// Runs one simulation driven by a closed-loop workload instead of
    /// an open-loop traffic pattern (see `dfly_traffic::Workload`).
    ///
    /// `factory` builds one workload instance per engine shard, handed
    /// that shard's terminal range — the contract of
    /// [`Simulation::with_workload`]. Pair it with
    /// [`Termination::WorkComplete`](dfly_netsim::Termination) to end
    /// the run when the workload finishes; [`RunStats::completion`]
    /// then reports the completion cycle.
    ///
    /// As with [`DragonflySim::run`], [`RoutingChoice::UgalLCr`] turns
    /// on credit round-trip automatically.
    pub fn run_workload(
        &self,
        choice: RoutingChoice,
        mut cfg: SimConfig,
        factory: &(dyn Fn(std::ops::Range<usize>) -> Box<dyn Workload + Send> + Sync),
    ) -> RunStats {
        if choice.needs_round_trip_credits() && cfg.credit_mode == CreditMode::Conventional {
            cfg.credit_mode = CreditMode::round_trip();
        }
        let algo = choice.build(self.df.clone());
        let stats =
            Simulation::with_workload(&self.spec, algo.as_ref(), cfg, |range| factory(range))
                .expect("harness-built simulation must be valid")
                .finish();
        stats
    }

    /// Like [`DragonflySim::run`], but also returns the engine's
    /// phase-level performance counters (see [`SimPerf`]).
    pub fn run_instrumented(
        &self,
        choice: RoutingChoice,
        traffic: TrafficChoice,
        mut cfg: SimConfig,
    ) -> (RunStats, SimPerf) {
        if choice.needs_round_trip_credits() && cfg.credit_mode == CreditMode::Conventional {
            cfg.credit_mode = CreditMode::round_trip();
        }
        let algo = choice.build(self.df.clone());
        let pattern = traffic.build(self.df.params());
        Simulation::new(&self.spec, algo.as_ref(), pattern.as_ref(), cfg)
            .expect("harness-built simulation must be valid")
            .run_instrumented()
    }

    /// Runs a load sweep, returning one [`LoadPoint`] per load.
    ///
    /// The points are independent runs, so they fan out across the
    /// worker pool (see [`crate::parallel::configured_threads`]); the
    /// results are bit-identical to a serial sweep and in load order.
    ///
    /// Sweeps continue past saturated points (the paper's throughput
    /// plots need them); use [`LoadPoint::latency`] to get `None` at
    /// saturation.
    pub fn sweep(
        &self,
        choice: RoutingChoice,
        traffic: TrafficChoice,
        loads: &[f64],
        base: &SimConfig,
    ) -> Vec<LoadPoint> {
        let grid = crate::parallel::RunGrid::load_sweep(choice, traffic, loads, base);
        loads
            .iter()
            .zip(grid.execute(self))
            .map(|(&load, stats)| LoadPoint { load, stats })
            .collect()
    }

    /// Estimates saturation throughput: the accepted rate at an offered
    /// load of ~1.0 (the network accepts what it can and the measured
    /// ejection rate plateaus at capacity).
    pub fn saturation_throughput(
        &self,
        choice: RoutingChoice,
        traffic: TrafficChoice,
        base: &SimConfig,
    ) -> f64 {
        let mut cfg = base.clone();
        cfg.injection = dfly_netsim::InjectionKind::Bernoulli { rate: 1.0 };
        // Don't wait for a futile drain at full load.
        cfg.drain_cap = 0;
        self.run(choice, traffic, cfg).accepted_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> DragonflySim {
        DragonflySim::new(DragonflyParams::new(2, 4, 2).unwrap())
    }

    fn fast_cfg(sim: &DragonflySim, load: f64) -> SimConfig {
        let mut cfg = sim.config(load);
        cfg.warmup = 500;
        cfg.measure = 1_500;
        cfg.drain_cap = 20_000;
        cfg
    }

    #[test]
    fn min_delivers_uniform_traffic_at_low_load() {
        let sim = tiny();
        let cfg = fast_cfg(&sim, 0.2);
        let stats = sim.run(RoutingChoice::Min, TrafficChoice::Uniform, cfg);
        assert!(stats.drained);
        assert!((stats.accepted_rate - 0.2).abs() < 0.03);
        // Zero-load minimal latency: inject + <=3 hops + eject.
        let avg = stats.avg_latency().unwrap();
        assert!(avg < 10.0, "avg {avg}");
    }

    #[test]
    fn min_saturates_early_on_worst_case() {
        let sim = tiny();
        // Capacity under WC for MIN is 1/(a*h) = 1/8 of injection bw.
        let cap = sim.saturation_throughput(
            RoutingChoice::Min,
            TrafficChoice::WorstCase,
            &fast_cfg(&sim, 1.0),
        );
        assert!(cap < 0.2, "MIN WC capacity {cap}");
        assert!(cap > 0.05, "MIN WC capacity {cap}");
    }

    #[test]
    fn valiant_handles_worst_case() {
        let sim = tiny();
        let stats = sim.run(
            RoutingChoice::Valiant,
            TrafficChoice::WorstCase,
            fast_cfg(&sim, 0.25),
        );
        assert!(stats.drained, "VAL should sustain 0.25 on WC");
    }

    #[test]
    fn ugal_g_matches_min_on_uniform_low_load() {
        let sim = tiny();
        let s_min = sim.run(
            RoutingChoice::Min,
            TrafficChoice::Uniform,
            fast_cfg(&sim, 0.3),
        );
        let s_ugal = sim.run(
            RoutingChoice::UgalG,
            TrafficChoice::Uniform,
            fast_cfg(&sim, 0.3),
        );
        assert!(s_min.drained && s_ugal.drained);
        let (a, b) = (s_min.avg_latency().unwrap(), s_ugal.avg_latency().unwrap());
        assert!((a - b).abs() < 3.0, "MIN {a} vs UGAL-G {b}");
        // UGAL-G routes predominantly minimally on benign traffic.
        assert!(s_ugal.minimal_fraction().unwrap() > 0.8);
    }

    #[test]
    fn sweep_produces_monotone_loads() {
        let sim = tiny();
        let points = sim.sweep(
            RoutingChoice::Min,
            TrafficChoice::Uniform,
            &[0.1, 0.3],
            &fast_cfg(&sim, 0.0),
        );
        assert_eq!(points.len(), 2);
        assert!(points[0].latency().is_some());
        assert!(points[1].latency().unwrap() >= points[0].latency().unwrap() - 0.5);
    }

    #[test]
    fn labels_and_round_trip_flags() {
        assert_eq!(RoutingChoice::ALL.len(), 8);
        let labels: Vec<&str> = RoutingChoice::ALL.iter().map(|c| c.label()).collect();
        assert!(labels.contains(&"UGAL-L_CR"));
        assert!(labels.contains(&"UGAL-L_EWMA"));
        for c in RoutingChoice::ALL {
            assert_eq!(
                c.needs_round_trip_credits(),
                c == RoutingChoice::UgalLCr,
                "{}",
                c.label()
            );
        }
        assert_eq!(TrafficChoice::WorstCase.label(), "WC");
        assert_eq!(
            TrafficChoice::RandomPermutation { seed: 1 }.label(),
            "permutation"
        );
    }

    #[test]
    fn traffic_choice_builds_correct_sizes() {
        let params = DragonflyParams::new(2, 4, 2).unwrap();
        for t in [
            TrafficChoice::Uniform,
            TrafficChoice::WorstCase,
            TrafficChoice::GroupTornado,
            TrafficChoice::RandomPermutation { seed: 3 },
        ] {
            assert_eq!(t.build(&params).num_terminals(), 72, "{}", t.label());
        }
    }

    #[test]
    fn ugal_lcr_turns_on_round_trip_credits() {
        // Indirectly: the run completes and behaves like VCH at low load.
        let sim = tiny();
        let stats = sim.run(
            RoutingChoice::UgalLCr,
            TrafficChoice::WorstCase,
            fast_cfg(&sim, 0.15),
        );
        assert!(stats.drained);
    }
}
