//! Routing algorithms for the dragonfly: MIN, VAL and the UGAL family.
//!
//! All algorithms share the same per-hop route computation and the
//! paper's deadlock-free VC assignment (Figure 7); they differ only in
//! the *injection-time* decision between the minimal and the Valiant
//! (non-minimal) path:
//!
//! | algorithm | decision |
//! |---|---|
//! | [`MinimalRouting`] | always minimal |
//! | [`ValiantRouting`] | always non-minimal (random intermediate group) |
//! | [`UgalRouting`] ([`UgalVariant::Local`]) | `q_m·H_m ≤ q_nm·H_nm` with local total-port occupancies |
//! | [`UgalVariant::LocalVc`] | per-VC occupancies (UGAL-L_VC) |
//! | [`UgalVariant::LocalVcHybrid`] | per-VC only when the two paths share an output port (UGAL-L_VCH) |
//! | [`UgalVariant::Global`] | oracle occupancy of the actual global channels (UGAL-G) |
//! | [`UgalVariant::CreditRoundTrip`] | the hybrid rule over credit-inclusive estimates (UGAL-L_CR) |
//! | [`UgalVariant::LocalEwma`] | EWMA-smoothed local total-port occupancies (UGAL-L_EWMA) |
//!
//! UGAL-L(CR) pairs [`UgalVariant::CreditRoundTrip`] with
//! [`dfly_netsim::CreditMode::RoundTrip`]: queue estimates count the
//! flits whose credits have not yet returned, and the simulator returns
//! credits only when a flit leaves the downstream router — delayed
//! further in proportion to measured congestion — so a congested remote
//! global channel is sensed within one credit round trip instead of
//! after the intervening buffers fill.
//!
//! # VC assignment (deadlock freedom)
//!
//! Local channels use VC0 (non-minimal hop in the source group), VC1
//! (minimal hop in the source group, or non-minimal hop in the
//! intermediate group) and VC2 (any hop in the destination group);
//! global channels use VC0 (first non-minimal hop) and VC1 (minimal hop
//! or second non-minimal hop). Along every route the (channel-class, VC)
//! pair ascends the order `l0 < g0 < l1 < g1 < l2`, so the channel
//! dependency graph is acyclic.

use std::sync::Arc;

use dfly_netsim::{
    CandidatePath, CandidatePaths, CongestionEstimator, CreditCommitted, DecisionRecord,
    EwmaOccupancy, Flit, GlobalOracle, NetView, PortVc, QueueOccupancy, RouteAlgebra, RouteClass,
    RouteInfo, RoutingAlgorithm, SimError, UgalChooser, VcHybrid, VcOccupancy,
};
use rand::rngs::SmallRng;
use rand::Rng;

use crate::topology::Dragonfly;

pub use dfly_netsim::TraceHop;

/// Per-hop route computation shared by every algorithm.
///
/// `flit.route` carries the class, the intermediate group and the salt;
/// everything else is derived from the dragonfly tables, so the function
/// is deterministic and every flit of a packet follows the same path.
fn route_flit(df: &Dragonfly, router: usize, flit: &Flit) -> PortVc {
    let params = df.params();
    let dest = flit.dest as usize;
    let rd = params.router_of_terminal(dest);
    if router == rd {
        return PortVc::new(df.eject_port(dest), 0);
    }
    let gr = params.group_of_router(router);
    let gd = params.group_of_router(rd);
    if gr == gd {
        // Local hop(s) in the destination group (or intra-group minimal
        // traffic): dimension-ordered within multi-dimensional groups.
        return PortVc::new(df.local_next_hop(router, rd), 2);
    }
    let salt = flit.route.salt;
    let (target_group, leg) = match flit.route.class {
        RouteClass::Minimal => (gd, 0),
        RouteClass::NonMinimal => {
            let gi = flit
                .route
                .intermediate()
                .expect("non-minimal flit without intermediate") as usize;
            if gr == gi {
                (gd, 1)
            } else {
                (gi, 0)
            }
        }
    };
    let q = df
        .pick_global_slot(gr, target_group, salt, leg)
        .expect("routed group pair keeps an alive channel");
    let owner = df.slot_router(gr, q);
    // VC for this hop: minimal hops use VC1 until the destination group;
    // non-minimal hops use VC0 on the first leg and VC1 on the second.
    let vc = match flit.route.class {
        RouteClass::Minimal => 1,
        RouteClass::NonMinimal => leg,
    } as usize;
    if owner == router {
        PortVc::new(df.slot_port(q), vc)
    } else {
        PortVc::new(df.local_next_hop(router, owner), vc)
    }
}

/// Closed-form routing algebra for the dragonfly: every answer falls
/// out of the group/slot arithmetic (ring schedule, local next-hop
/// coordinates), so no per-pair state is stored. Under a fault plan
/// the salt-selected slot is drawn from the surviving channels and the
/// Valiant set shrinks to the viable intermediates.
impl RouteAlgebra for Dragonfly {
    fn terminal_router(&self, terminal: usize) -> usize {
        self.params().router_of_terminal(terminal)
    }

    fn ejection_port(&self, terminal: usize) -> usize {
        self.eject_port(terminal)
    }

    fn minimal_port(&self, router: usize, dest: usize, salt: u32) -> PortVc {
        let params = self.params();
        let rd = params.router_of_terminal(dest);
        if router == rd {
            return PortVc::new(self.eject_port(dest), 0);
        }
        let gs = params.group_of_router(router);
        let gd = params.group_of_router(rd);
        if gs == gd {
            return PortVc::new(self.local_next_hop(router, rd), 2);
        }
        let q = self
            .pick_global_slot(gs, gd, salt, 0)
            .expect("minimal route requested for a pair with an alive channel");
        let owner = self.slot_router(gs, q);
        let port = if router == owner {
            self.slot_port(q)
        } else {
            self.local_next_hop(router, owner)
        };
        PortVc::new(port, 1)
    }

    fn minimal_hops(&self, router: usize, dest: usize, salt: u32) -> u32 {
        let params = self.params();
        let rd = params.router_of_terminal(dest);
        if router == rd {
            return 0;
        }
        let gs = params.group_of_router(router);
        let gd = params.group_of_router(rd);
        if gs == gd {
            return self.local_hops(router, rd) as u32;
        }
        let q = self
            .pick_global_slot(gs, gd, salt, 0)
            .expect("minimal route requested for a pair with an alive channel");
        let owner = self.slot_router(gs, q);
        let (pg, pq) = self.global_slot_target(gs, q).expect("wired slot");
        let entry = self.slot_router(pg, pq);
        self.local_hops(router, owner) as u32 + 1 + self.local_hops(entry, rd) as u32
    }

    fn valiant_degree(&self, router: usize, dest: usize) -> usize {
        let params = self.params();
        let gs = params.group_of_router(router);
        let gd = params.group_of_router(params.router_of_terminal(dest));
        if gs == gd {
            return 0;
        }
        match self.viable_intermediates(gs, gd) {
            Some(viable) => viable.len(),
            None => params.num_groups() - 2,
        }
    }

    fn valiant_tag(&self, router: usize, dest: usize, i: usize) -> u32 {
        let params = self.params();
        let gs = params.group_of_router(router);
        let gd = params.group_of_router(params.router_of_terminal(dest));
        debug_assert_ne!(gs, gd, "no detour for intra-group traffic");
        if let Some(viable) = self.viable_intermediates(gs, gd) {
            return viable[i];
        }
        // Fault-free: the i-th group other than gs and gd.
        let (lo, hi) = (gs.min(gd), gs.max(gd));
        let mut gi = i;
        if gi >= lo {
            gi += 1;
        }
        if gi >= hi {
            gi += 1;
        }
        gi as u32
    }

    fn vc_count(&self) -> usize {
        3
    }
}

/// The dragonfly's UGAL candidates: the minimal path (≤ 1 global
/// channel) and the Valiant path through intermediate group
/// `intermediate`, each summarised by its salt-selected first-hop port,
/// the first entry of its VC schedule, its total hop count, and — as the
/// oracle probe point — the router and port owning its first global
/// channel.
///
/// Under a fault plan the salt picks among the *surviving* parallel
/// channels only, and each candidate reports the removed channels along
/// its legs as [`CandidatePath::dropped`]. Callers must not request a
/// candidate whose group pair has lost every direct channel (injection
/// logic checks [`Dragonfly::global_slot_count`] /
/// [`Dragonfly::viable_intermediates`] first).
impl CandidatePaths for Dragonfly {
    fn minimal_candidate(&self, router: usize, dest: usize, salt: u32) -> CandidatePath {
        let params = self.params();
        let first = self.minimal_port(router, dest, salt);
        let hops = RouteAlgebra::minimal_hops(self, router, dest, salt);
        let path = CandidatePath::new(first.port as usize, first.vc as usize, hops);
        let rd = params.router_of_terminal(dest);
        let gs = params.group_of_router(router);
        let gd = params.group_of_router(rd);
        if router == rd || gs == gd {
            return path;
        }
        // The probe point is the salt-selected global channel itself.
        let q = self
            .pick_global_slot(gs, gd, salt, 0)
            .expect("candidate requested for a pair with an alive channel");
        path.with_probe(self.slot_router(gs, q), self.slot_port(q))
            .with_dropped(self.dead_global_slots(gs, gd))
    }

    fn non_minimal_candidate(
        &self,
        router: usize,
        dest: usize,
        intermediate: u32,
        salt: u32,
    ) -> CandidatePath {
        let params = self.params();
        let rs = router;
        let gi = intermediate as usize;
        let rd = params.router_of_terminal(dest);
        let gs = params.group_of_router(rs);
        let gd = params.group_of_router(rd);
        debug_assert!(gi != gs && gi != gd, "intermediate must be a third group");
        let q1 = self
            .pick_global_slot(gs, gi, salt, 0)
            .expect("viable intermediate keeps its first leg alive");
        let owner1 = self.slot_router(gs, q1);
        let (pg1, pq1) = self.global_slot_target(gs, q1).expect("wired slot");
        let entry1 = self.slot_router(pg1, pq1);
        let q2 = self
            .pick_global_slot(gi, gd, salt, 1)
            .expect("viable intermediate keeps its second leg alive");
        let owner2 = self.slot_router(gi, q2);
        let (pg2, pq2) = self.global_slot_target(gi, q2).expect("wired slot");
        let entry2 = self.slot_router(pg2, pq2);
        let hops = self.local_hops(rs, owner1) as u32
            + 1
            + self.local_hops(entry1, owner2) as u32
            + 1
            + self.local_hops(entry2, rd) as u32;
        let port = if rs == owner1 {
            self.slot_port(q1)
        } else {
            self.local_next_hop(rs, owner1)
        };
        CandidatePath::new(port, 0, hops)
            .with_probe(owner1, self.slot_port(q1))
            .with_dropped(self.dead_global_slots(gs, gi) + self.dead_global_slots(gi, gd))
    }
}

/// Walks the exact path a packet with the given [`RouteInfo`] takes from
/// `src` to `dest`, hop by hop, ending with the ejection hop — the same
/// deterministic computation the simulator performs, exposed for
/// debugging, validation and teaching.
///
/// # Errors
///
/// Returns [`SimError::InvalidRoute`] for out-of-range terminals or a
/// route that ejects at the wrong terminal, and [`SimError::RouteLoop`]
/// if the route fails to eject within the diameter-derived bound of
/// [`Dragonfly::route_hop_bound`] (which would indicate an invalid
/// `RouteInfo`, e.g. a non-minimal route whose intermediate group equals
/// the source's).
///
/// # Example
///
/// ```
/// use dragonfly::{trace_route, Dragonfly, DragonflyParams};
/// use dfly_netsim::RouteInfo;
///
/// let df = Dragonfly::new(DragonflyParams::new(2, 4, 2).unwrap());
/// let hops = trace_route(&df, 0, 70, RouteInfo::minimal()).unwrap();
/// // local?, one global, local?, eject: at most 4 hops.
/// assert!(hops.len() <= 4);
/// ```
pub fn trace_route(
    df: &Dragonfly,
    src: usize,
    dest: usize,
    route: RouteInfo,
) -> Result<Vec<TraceHop>, SimError> {
    let params = df.params();
    if src >= params.num_terminals() || dest >= params.num_terminals() {
        return Err(SimError::InvalidRoute("terminal out of range".into()));
    }
    let spec = df.build_spec();
    let mut flit = Flit {
        packet: 0,
        src: src as u32,
        dest: dest as u32,
        route,
        created: 0,
        injected: 0,
        hops: 0,
        vc: route.injection_vc,
        is_head: true,
        is_tail: true,
        labeled: false,
        tag: 0,
    };
    let mut router = params.router_of_terminal(src);
    let mut hops = Vec::new();
    let bound = df.route_hop_bound();
    for _ in 0..bound {
        let pv = route_flit(df, router, &flit);
        let port_spec = spec.routers[router].ports[pv.port as usize];
        hops.push(TraceHop {
            router,
            port: pv.port as usize,
            vc: pv.vc as usize,
            class: port_spec.class,
        });
        match port_spec.conn {
            dfly_netsim::Connection::Terminal { terminal } => {
                return if terminal as usize == dest {
                    Ok(hops)
                } else {
                    Err(SimError::InvalidRoute(format!(
                        "route ejected at terminal {terminal}, not {dest}"
                    )))
                };
            }
            dfly_netsim::Connection::Router { router: peer, .. } => {
                flit.hops += 1;
                flit.vc = pv.vc;
                router = peer as usize;
            }
        }
    }
    Err(SimError::RouteLoop { src, dest, bound })
}

/// Draws a uniformly random intermediate group different from both `gs`
/// and `gd`. Returns `None` when no third group exists.
fn random_intermediate(g: usize, gs: usize, gd: usize, rng: &mut SmallRng) -> Option<usize> {
    debug_assert_ne!(gs, gd);
    if g < 3 {
        return None;
    }
    let mut gi = rng.gen_range(0..g - 2);
    let (lo, hi) = if gs < gd { (gs, gd) } else { (gd, gs) };
    if gi >= lo {
        gi += 1;
    }
    if gi >= hi {
        gi += 1;
    }
    Some(gi)
}

/// Fault-aware intermediate draw: uniform over the third groups whose
/// Valiant legs both survive (every third group on a fault-free
/// network). Returns `None` when no usable intermediate exists.
fn pick_intermediate(df: &Dragonfly, gs: usize, gd: usize, rng: &mut SmallRng) -> Option<usize> {
    match df.viable_intermediates(gs, gd) {
        None => random_intermediate(df.params().num_groups(), gs, gd, rng),
        Some([]) => None,
        Some(viable) => Some(viable[rng.gen_range(0..viable.len())] as usize),
    }
}

/// Minimal (MIN) routing: always the shortest path — at most one global
/// channel (local, global, local).
///
/// Optimal for benign traffic; collapses to `1/(a·h)` throughput on the
/// worst-case pattern because an entire group's traffic funnels through
/// one global channel.
#[derive(Debug, Clone)]
pub struct MinimalRouting {
    df: Arc<Dragonfly>,
}

impl MinimalRouting {
    /// Creates MIN routing over `df`.
    pub fn new(df: Arc<Dragonfly>) -> Self {
        MinimalRouting { df }
    }
}

impl RoutingAlgorithm for MinimalRouting {
    fn name(&self) -> String {
        "MIN".into()
    }

    fn inject(&self, view: &NetView<'_>, src: usize, dest: usize, rng: &mut SmallRng) -> RouteInfo {
        self.inject_traced(view, src, dest, rng).0
    }

    fn inject_traced(
        &self,
        _view: &NetView<'_>,
        src: usize,
        dest: usize,
        rng: &mut SmallRng,
    ) -> (RouteInfo, DecisionRecord) {
        let salt: u32 = rng.gen();
        if self.df.has_faults() {
            let params = self.df.params();
            let gs = params.group_of_terminal(src);
            let gd = params.group_of_terminal(dest);
            if gs != gd && self.df.global_slot_count(gs, gd) == 0 {
                // Every direct channel is dead: detour through a viable
                // intermediate group (fault validation guarantees one).
                let viable = self
                    .df
                    .viable_intermediates(gs, gd)
                    .expect("faulted network has viability tables");
                let gi = viable[rng.gen_range(0..viable.len())];
                let route = RouteInfo::non_minimal(gi)
                    .with_salt(salt)
                    .with_injection_vc(0);
                let record = DecisionRecord {
                    fault_avoided: true,
                    dropped_candidates: 1,
                    ..DecisionRecord::default()
                };
                return (route, record);
            }
        }
        let route = RouteInfo::minimal().with_salt(salt).with_injection_vc(1);
        (route, DecisionRecord::default())
    }

    fn route(&self, _view: &NetView<'_>, router: usize, flit: &Flit) -> PortVc {
        route_flit(&self.df, router, flit)
    }
}

/// Valiant (VAL) routing: every inter-group packet detours through a
/// uniformly random intermediate group, bounding worst-case throughput
/// at ~50% of capacity (each packet crosses two global channels) while
/// halving best-case throughput for benign traffic.
#[derive(Debug, Clone)]
pub struct ValiantRouting {
    df: Arc<Dragonfly>,
}

impl ValiantRouting {
    /// Creates VAL routing over `df`.
    pub fn new(df: Arc<Dragonfly>) -> Self {
        ValiantRouting { df }
    }
}

impl RoutingAlgorithm for ValiantRouting {
    fn name(&self) -> String {
        "VAL".into()
    }

    fn inject(&self, view: &NetView<'_>, src: usize, dest: usize, rng: &mut SmallRng) -> RouteInfo {
        self.inject_traced(view, src, dest, rng).0
    }

    fn inject_traced(
        &self,
        _view: &NetView<'_>,
        src: usize,
        dest: usize,
        rng: &mut SmallRng,
    ) -> (RouteInfo, DecisionRecord) {
        let params = self.df.params();
        let gs = params.group_of_terminal(src);
        let gd = params.group_of_terminal(dest);
        if gs == gd {
            // Intra-group traffic stays minimal; Valiant randomisation at
            // the system level only needs to balance the global channels.
            let route = RouteInfo::minimal()
                .with_salt(rng.gen())
                .with_injection_vc(1);
            return (route, DecisionRecord::default());
        }
        match pick_intermediate(&self.df, gs, gd, rng) {
            Some(gi) => {
                let route = RouteInfo::non_minimal(gi as u32)
                    .with_salt(rng.gen())
                    .with_injection_vc(0);
                (route, DecisionRecord::default())
            }
            None => {
                // No third group (tiny network), or faults killed every
                // viable intermediate while the direct channel survives.
                let route = RouteInfo::minimal()
                    .with_salt(rng.gen())
                    .with_injection_vc(1);
                let record = if self.df.has_faults() && params.num_groups() >= 3 {
                    DecisionRecord {
                        fault_avoided: true,
                        dropped_candidates: 1,
                        ..DecisionRecord::default()
                    }
                } else {
                    DecisionRecord::default()
                };
                (route, record)
            }
        }
    }

    fn route(&self, _view: &NetView<'_>, router: usize, flit: &Flit) -> PortVc {
        route_flit(&self.df, router, flit)
    }
}

/// Which congestion information the UGAL decision consults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UgalVariant {
    /// UGAL-L: total occupancy of the candidate output ports at the
    /// source router.
    Local,
    /// UGAL-L_VC: per-VC occupancy (minimal traffic on VC1, non-minimal
    /// on VC0), always.
    LocalVc,
    /// UGAL-L_VCH: per-VC occupancy only when both candidate paths leave
    /// through the same output port, total occupancy otherwise — the
    /// paper's hybrid that fixes UGAL-L_VC's uniform-random loss.
    LocalVcHybrid,
    /// UGAL-G: oracle occupancy of the actual global channels, read from
    /// whichever routers own them. An idealised upper bound.
    Global,
    /// UGAL-L(CR): the hybrid VC-discriminated rule, but with queue
    /// estimates that include the flits sent on the first-hop channel
    /// whose credits have not yet returned. Paired with
    /// [`dfly_netsim::CreditMode::RoundTrip`] — credits return when a
    /// flit leaves the downstream router and are further delayed in
    /// proportion to measured congestion — this senses a congested
    /// remote global channel within one credit round trip instead of
    /// waiting for the intervening buffers to fill (§4.3.2).
    CreditRoundTrip,
    /// UGAL-L(EWMA): local total-port occupancies smoothed by an
    /// integer exponentially weighted moving average (weight 1/4 on new
    /// readings), damping the transient-burst noise that inflates the
    /// raw occupancy estimators' error under Markov on/off injection.
    /// The estimator is stateful, so each [`UgalRouting`] instance
    /// (and each clone) carries its own accumulators.
    LocalEwma,
}

impl UgalVariant {
    /// The shared [`CongestionEstimator`] implementing this variant's
    /// congestion sensing — the same estimator objects every topology's
    /// UGAL uses.
    pub fn estimator(&self) -> Box<dyn CongestionEstimator> {
        match self {
            UgalVariant::Local => Box::new(QueueOccupancy),
            UgalVariant::LocalVc => Box::new(VcOccupancy),
            UgalVariant::LocalVcHybrid => Box::new(VcHybrid),
            UgalVariant::Global => Box::new(GlobalOracle),
            UgalVariant::CreditRoundTrip => Box::new(CreditCommitted),
            UgalVariant::LocalEwma => Box::new(EwmaOccupancy::new(2)),
        }
    }
}

/// Universal Globally-Adaptive Load-balanced routing (UGAL) over a
/// dragonfly: picks minimal or Valiant per packet by comparing
/// `q_m · H_m ≤ q_nm · H_nm`.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use dragonfly::{Dragonfly, DragonflyParams, UgalRouting, UgalVariant};
///
/// let df = Arc::new(Dragonfly::new(DragonflyParams::new(2, 4, 2).unwrap()));
/// let ugal = UgalRouting::new(df, UgalVariant::LocalVcHybrid);
/// ```
#[derive(Debug)]
pub struct UgalRouting {
    df: Arc<Dragonfly>,
    variant: UgalVariant,
    chooser: UgalChooser,
}

impl UgalRouting {
    /// Creates UGAL routing of the given variant over `df`.
    pub fn new(df: Arc<Dragonfly>, variant: UgalVariant) -> Self {
        let chooser = UgalChooser::new(variant.estimator());
        UgalRouting {
            df,
            variant,
            chooser,
        }
    }

    /// The variant in use.
    pub fn variant(&self) -> UgalVariant {
        self.variant
    }
}

impl Clone for UgalRouting {
    fn clone(&self) -> Self {
        UgalRouting::new(self.df.clone(), self.variant)
    }
}

impl RoutingAlgorithm for UgalRouting {
    fn name(&self) -> String {
        match self.variant {
            UgalVariant::Local => "UGAL-L".into(),
            UgalVariant::LocalVc => "UGAL-L_VC".into(),
            UgalVariant::LocalVcHybrid => "UGAL-L_VCH".into(),
            UgalVariant::Global => "UGAL-G".into(),
            UgalVariant::CreditRoundTrip => "UGAL-L_CR".into(),
            UgalVariant::LocalEwma => "UGAL-L_EWMA".into(),
        }
    }

    fn inject(&self, view: &NetView<'_>, src: usize, dest: usize, rng: &mut SmallRng) -> RouteInfo {
        self.inject_traced(view, src, dest, rng).0
    }

    fn inject_traced(
        &self,
        view: &NetView<'_>,
        src: usize,
        dest: usize,
        rng: &mut SmallRng,
    ) -> (RouteInfo, DecisionRecord) {
        let df = &self.df;
        let params = df.params();
        let rs = params.router_of_terminal(src);
        let rd = params.router_of_terminal(dest);
        let gs = params.group_of_router(rs);
        let gd = params.group_of_router(rd);
        let salt: u32 = rng.gen();
        if rs == rd || gs == gd {
            let route = RouteInfo::minimal().with_salt(salt).with_injection_vc(1);
            return (route, DecisionRecord::default());
        }
        let direct_alive = !df.has_faults() || df.global_slot_count(gs, gd) > 0;
        let gi = match pick_intermediate(df, gs, gd, rng) {
            Some(gi) => gi,
            None if direct_alive => {
                // No usable intermediate: minimal is the only shape left.
                let route = RouteInfo::minimal().with_salt(salt).with_injection_vc(1);
                let record = if df.has_faults() && params.num_groups() >= 3 {
                    DecisionRecord {
                        fault_avoided: true,
                        dropped_candidates: 1,
                        ..DecisionRecord::default()
                    }
                } else {
                    DecisionRecord::default()
                };
                return (route, record);
            }
            None => unreachable!(
                "fault validation guarantees a direct channel or a viable intermediate"
            ),
        };
        if !direct_alive {
            // Every direct channel is dead: the Valiant path wins without
            // a queue comparison.
            let route = RouteInfo::non_minimal(gi as u32)
                .with_salt(salt)
                .with_injection_vc(0);
            let record = DecisionRecord {
                fault_avoided: true,
                dropped_candidates: 1,
                ..DecisionRecord::default()
            };
            return (route, record);
        }
        let m = df.minimal_candidate(rs, dest, salt);
        let nm = df.non_minimal_candidate(rs, dest, gi as u32, salt);
        let decision = self.chooser.choose(view, rs, &m, &nm);
        let record = DecisionRecord {
            adaptive: !decision.fault_avoided,
            estimator_disagreed: decision.estimator_disagreed,
            fault_avoided: decision.fault_avoided,
            dropped_candidates: decision.dropped_candidates,
            probe_fallbacks: decision.probe_fallbacks,
            q_chosen: decision.q_chosen(),
            oracle_chosen: decision.oracle_chosen(),
            oracle_disagreed: decision.oracle_disagreed,
            oracle_scored: decision.oracle_scored,
        };
        if decision.minimal {
            let route = RouteInfo::minimal().with_salt(salt).with_injection_vc(1);
            (route, record)
        } else {
            let route = RouteInfo::non_minimal(gi as u32)
                .with_salt(salt)
                .with_injection_vc(0);
            (route, record)
        }
    }

    fn route(&self, _view: &NetView<'_>, router: usize, flit: &Flit) -> PortVc {
        route_flit(&self.df, router, flit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::DragonflyParams;
    use dfly_netsim::{ChannelClass, FaultPlan};
    use dfly_traffic::rng_for;

    fn df72() -> Arc<Dragonfly> {
        Arc::new(Dragonfly::new(DragonflyParams::new(2, 4, 2).unwrap()))
    }

    /// Walks a flit from its source router to ejection, returning the
    /// sequence of (channel class, vc) traversed. Ejecting at the wrong
    /// terminal or looping past the diameter bound surfaces as a
    /// [`SimError`] from [`trace_route`].
    fn walk(df: &Dragonfly, src: usize, dest: usize, route: RouteInfo) -> Vec<(ChannelClass, u8)> {
        trace_route(df, src, dest, route)
            .expect("route must eject at its destination")
            .iter()
            .map(|hop| (hop.class, hop.vc as u8))
            .collect()
    }

    #[test]
    fn minimal_route_crosses_at_most_one_global() {
        let df = df72();
        let mut rng = rng_for(1, 0);
        for src in 0..72 {
            for dest in 0..72 {
                if src == dest {
                    continue;
                }
                let route = RouteInfo::minimal().with_salt(rng.gen());
                let path = walk(&df, src, dest, route);
                let globals = path
                    .iter()
                    .filter(|(c, _)| *c == ChannelClass::Global)
                    .count();
                assert!(globals <= 1, "{src}->{dest}: {globals} globals");
                // local-global-local-eject at most.
                assert!(path.len() <= 4, "{src}->{dest}: path {path:?}");
            }
        }
    }

    #[test]
    fn valiant_route_visits_intermediate_group() {
        let df = df72();
        // src terminal 0 (group 0), dest terminal 70 (group 8), via 4.
        let route = RouteInfo::non_minimal(4).with_salt(17);
        let path = walk(&df, 0, 70, route);
        let globals = path
            .iter()
            .filter(|(c, _)| *c == ChannelClass::Global)
            .count();
        assert_eq!(globals, 2);
        assert!(path.len() <= 6);
    }

    #[test]
    fn vc_order_is_monotonic_for_deadlock_freedom() {
        // Rank channels l0 < g0 < l1 < g1 < l2; every walk must ascend.
        fn rank(class: ChannelClass, vc: u8) -> u32 {
            match (class, vc) {
                (ChannelClass::Local, v) => 2 * v as u32,
                (ChannelClass::Global, v) => 2 * v as u32 + 1,
                (ChannelClass::Terminal, _) => 100,
            }
        }
        let df = df72();
        let mut rng = rng_for(2, 0);
        for src in (0..72).step_by(5) {
            for dest in (0..72).step_by(7) {
                if src == dest {
                    continue;
                }
                let gs = df.params().group_of_terminal(src);
                let gd = df.params().group_of_terminal(dest);
                let routes = if gs != gd {
                    let gi = (0..9).find(|&x| x != gs && x != gd).unwrap();
                    vec![
                        RouteInfo::minimal().with_salt(rng.gen()),
                        RouteInfo::non_minimal(gi as u32).with_salt(rng.gen()),
                    ]
                } else {
                    vec![RouteInfo::minimal().with_salt(rng.gen())]
                };
                for route in routes {
                    let path = walk(&df, src, dest, route);
                    let ranks: Vec<u32> = path.iter().map(|&(c, v)| rank(c, v)).collect();
                    for w in ranks.windows(2) {
                        assert!(w[0] <= w[1], "{src}->{dest} ranks {ranks:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn min_path_hops_match_walk() {
        let df = df72();
        for src in (0..72).step_by(3) {
            for dest in (1..72).step_by(4) {
                if src == dest {
                    continue;
                }
                let salt = 99;
                let rs = df.params().router_of_terminal(src);
                let plan = df.minimal_candidate(rs, dest, salt);
                let path = walk(&df, src, dest, RouteInfo::minimal().with_salt(salt));
                // walk includes the ejection hop; plan.hops counts only
                // router-to-router channels.
                assert_eq!(plan.hops as usize, path.len() - 1, "{src}->{dest}");
            }
        }
    }

    #[test]
    fn nonmin_path_hops_match_walk() {
        let df = df72();
        let salt = 7;
        for (src, dest) in [(0usize, 70usize), (3, 40), (10, 65)] {
            let rs = df.params().router_of_terminal(src);
            let gs = df.params().group_of_terminal(src);
            let gd = df.params().group_of_terminal(dest);
            let gi = (0..9).find(|&x| x != gs && x != gd).unwrap();
            let plan = df.non_minimal_candidate(rs, dest, gi as u32, salt);
            let path = walk(
                &df,
                src,
                dest,
                RouteInfo::non_minimal(gi as u32).with_salt(salt),
            );
            assert_eq!(plan.hops as usize, path.len() - 1, "{src}->{dest}");
        }
    }

    #[test]
    fn random_intermediate_avoids_endpoints() {
        let mut rng = rng_for(5, 0);
        let mut seen = [false; 9];
        for _ in 0..500 {
            let gi = random_intermediate(9, 2, 6, &mut rng).unwrap();
            assert_ne!(gi, 2);
            assert_ne!(gi, 6);
            seen[gi] = true;
        }
        assert_eq!(seen.iter().filter(|&&s| s).count(), 7);
        assert_eq!(random_intermediate(2, 0, 1, &mut rng), None);
    }

    #[test]
    fn ugal_names() {
        let df = df72();
        assert_eq!(
            UgalRouting::new(df.clone(), UgalVariant::Local).name(),
            "UGAL-L"
        );
        assert_eq!(
            UgalRouting::new(df.clone(), UgalVariant::Global).name(),
            "UGAL-G"
        );
        assert_eq!(MinimalRouting::new(df.clone()).name(), "MIN");
        assert_eq!(ValiantRouting::new(df).name(), "VAL");
    }

    /// A 72-terminal dragonfly with the single group 0 <-> 1 global
    /// cable failed.
    fn df72_dead_01() -> Dragonfly {
        let params = DragonflyParams::new(2, 4, 2).unwrap();
        let clean = Dragonfly::new(params);
        let spec = clean.build_spec();
        let a = params.routers_per_group();
        let cable = (0..a)
            .flat_map(|r| {
                spec.routers[r]
                    .ports
                    .iter()
                    .enumerate()
                    .map(move |(p, port)| (r, p, *port))
                    .collect::<Vec<_>>()
            })
            .find_map(|(r, p, port)| match port.conn {
                dfly_netsim::Connection::Router { router: peer, .. }
                    if port.class == ChannelClass::Global
                        && params.group_of_router(peer as usize) == 1 =>
                {
                    Some((r, p))
                }
                _ => None,
            })
            .expect("0-1 cable exists");
        clean
            .with_fault_plan(&FaultPlan::Explicit(vec![cable]))
            .unwrap()
    }

    #[test]
    fn min_detours_nonminimally_around_dead_direct_cable() {
        use crate::{DragonflySim, RoutingChoice, TrafficChoice};
        let sim = DragonflySim::with_dragonfly(df72_dead_01());
        let mut cfg = sim.config(0.2);
        cfg.warmup = 300;
        cfg.measure = 1_000;
        cfg.drain_cap = 30_000;
        let stats = sim.run(RoutingChoice::Min, TrafficChoice::Uniform, cfg);
        assert!(stats.drained, "MIN starved around the dead cable");
        // Every group 0 <-> 1 packet was force-detoured and counted.
        assert!(stats.routing.fault_avoided_decisions > 0);
        assert!(stats.routing.dropped_candidates > 0);
        assert!(stats.routing.non_minimal_takes > 0);
    }

    #[test]
    fn ugal_detours_and_keeps_adapting_around_dead_cable() {
        use crate::{DragonflySim, RoutingChoice, TrafficChoice};
        let sim = DragonflySim::with_dragonfly(df72_dead_01());
        let mut cfg = sim.config(0.2);
        cfg.warmup = 300;
        cfg.measure = 1_000;
        cfg.drain_cap = 30_000;
        let stats = sim.run(RoutingChoice::UgalLVcH, TrafficChoice::Uniform, cfg);
        assert!(stats.drained, "UGAL starved around the dead cable");
        assert!(stats.routing.fault_avoided_decisions > 0);
        // Pairs with a live direct cable still run the full comparison.
        assert!(stats.routing.adaptive_decisions > 0);
    }

    #[test]
    fn forced_detours_trace_through_a_viable_intermediate() {
        let df = df72_dead_01();
        let viable = df.viable_intermediates(0, 1).unwrap().to_vec();
        assert!(!viable.is_empty());
        for gi in viable {
            let hops = walk(&df, 0, 8, RouteInfo::non_minimal(gi));
            let globals = hops
                .iter()
                .filter(|(class, _)| *class == ChannelClass::Global)
                .count();
            assert_eq!(globals, 2, "detour via {gi} must cross two globals");
        }
    }

    #[test]
    fn valiant_under_faults_avoids_dead_legs() {
        // Every Valiant route drawn at injection must stay on alive
        // cables: exercise the picker through a live simulation.
        use crate::{DragonflySim, RoutingChoice, TrafficChoice};
        let sim = DragonflySim::with_dragonfly(df72_dead_01());
        let mut cfg = sim.config(0.15);
        cfg.warmup = 300;
        cfg.measure = 1_000;
        cfg.drain_cap = 30_000;
        let stats = sim.run(RoutingChoice::Valiant, TrafficChoice::Uniform, cfg);
        assert!(stats.drained, "VAL starved around the dead cable");
    }
}
