//! Multi-tenant job scheduling: place several closed-loop jobs onto one
//! dragonfly and measure how they interfere.
//!
//! A [`JobMix`] describes a set of concurrent jobs — each a collective
//! workload from `dfly-traffic` ([`Barrier`], [`AllReduce`],
//! [`AllToAll`], [`RequestReply`]) over a slice of the machine — plus a
//! [`Placement`] policy mapping jobs onto dragonfly groups and an
//! optional open-loop background load on the unused terminals. The mix
//! instantiates as one [`MixWorkload`] per engine shard (the factory
//! contract of `Simulation::with_workload`), so sharded runs stay
//! bit-identical.
//!
//! Per-job accounting lives in a [`JobLedger`]: every delivery of a job
//! packet bumps that job's [`JobBook`] (count, latency histogram, last
//! delivery cycle). All ledger writes are commutative — sums, maxima
//! and histogram-bucket increments — so the final books are identical
//! at any shard count even though shards take the lock in
//! nondeterministic order.
//!
//! The two placement policies bracket the interference question the
//! paper's global channels pose: [`Placement::GroupDisjoint`] gives
//! each job private groups (its traffic shares no local router with
//! another job), while [`Placement::Interfering`] stripes every job
//! round-robin across all groups, forcing the jobs to contend for the
//! same routers and global cables. Comparing per-job completion times
//! across the two placements measures interference directly; see
//! [`crate::parallel::WorkloadSweep`].

use std::sync::{Arc, Mutex};

use dfly_netsim::LogHistogram;
use dfly_traffic::{
    AllReduce, AllToAll, Barrier, Bernoulli, Delivery, InjectionProcess, MessageIntent,
    RequestReply, TrafficPattern, UniformRandom, Workload,
};
use rand::rngs::SmallRng;

use crate::DragonflyParams;

/// Why a [`JobMix`] could not be validated or placed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// A job spec's parameters are inconsistent (zero size,
    /// non-power-of-two recursive doubling, bad client count).
    InvalidSpec(String),
    /// The machine cannot hold the mix under the requested
    /// [`Placement`].
    Placement(String),
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::InvalidSpec(msg) => write!(f, "invalid job spec: {msg}"),
            JobError::Placement(msg) => write!(f, "placement failed: {msg}"),
        }
    }
}

impl std::error::Error for JobError {}

/// The collective a job runs, with its per-kind parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// `iterations` rounds of a centralized barrier.
    Barrier {
        /// Number of barrier rounds.
        iterations: u32,
    },
    /// Ring all-reduce: reduce-scatter + all-gather, `2(N-1)` steps.
    AllReduceRing,
    /// Recursive-doubling all-reduce (`log2 N` steps); the job size
    /// must be a power of two.
    AllReduceRecursiveDoubling,
    /// Full personalized exchange: every member sends one packet to
    /// every other member.
    AllToAll,
    /// Credit-windowed request/reply service. The first `clients`
    /// members are clients, the rest servers.
    RequestReply {
        /// Number of client terminals (the remaining members serve).
        clients: usize,
        /// Requests each client issues in total.
        requests: u32,
        /// Maximum outstanding requests per client.
        window: u32,
        /// Server-side hold time per request, in cycles.
        service_delay: u64,
    },
}

/// One tenant: a named collective over `size` terminals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Job name, used as the metrics scope (`jobs/{name}/...`).
    pub name: String,
    /// Number of terminals the job occupies.
    pub size: usize,
    /// Which collective the members run.
    pub kind: JobKind,
}

impl JobSpec {
    /// A barrier job.
    pub fn barrier(name: &str, size: usize, iterations: u32) -> Self {
        JobSpec {
            name: name.to_string(),
            size,
            kind: JobKind::Barrier { iterations },
        }
    }

    /// A ring all-reduce job.
    pub fn all_reduce_ring(name: &str, size: usize) -> Self {
        JobSpec {
            name: name.to_string(),
            size,
            kind: JobKind::AllReduceRing,
        }
    }

    /// An all-to-all job.
    pub fn all_to_all(name: &str, size: usize) -> Self {
        JobSpec {
            name: name.to_string(),
            size,
            kind: JobKind::AllToAll,
        }
    }

    /// Builds the job's workload over its placed member terminals.
    fn build(&self, members: Vec<usize>) -> Box<dyn Workload + Send> {
        match self.kind {
            JobKind::Barrier { iterations } => Box::new(Barrier::new(members, iterations)),
            JobKind::AllReduceRing => Box::new(AllReduce::ring(members)),
            JobKind::AllReduceRecursiveDoubling => Box::new(AllReduce::recursive_doubling(members)),
            JobKind::AllToAll => Box::new(AllToAll::new(members)),
            JobKind::RequestReply {
                clients,
                requests,
                window,
                service_delay,
            } => {
                let (c, s) = members.split_at(clients);
                Box::new(RequestReply::new(
                    c.to_vec(),
                    s.to_vec(),
                    requests,
                    window,
                    service_delay,
                ))
            }
        }
    }

    /// Per-kind parameter validation, before placement.
    fn validate(&self) -> Result<(), JobError> {
        if self.size == 0 {
            return Err(JobError::InvalidSpec(format!(
                "job '{}' has zero size",
                self.name
            )));
        }
        match self.kind {
            JobKind::AllReduceRecursiveDoubling if !self.size.is_power_of_two() => {
                Err(JobError::InvalidSpec(format!(
                    "job '{}': recursive doubling needs a power-of-two size, got {}",
                    self.name, self.size
                )))
            }
            JobKind::RequestReply { clients, .. } if clients == 0 || clients >= self.size => {
                Err(JobError::InvalidSpec(format!(
                    "job '{}': need 1..size clients, got {clients} of {}",
                    self.name, self.size
                )))
            }
            _ => Ok(()),
        }
    }
}

/// How a [`JobMix`] maps jobs onto dragonfly groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Each job gets a private contiguous block of groups: no two jobs
    /// share a router, so they interact only through the global-channel
    /// fabric their minimal paths happen to cross.
    GroupDisjoint,
    /// Every job is striped round-robin across all groups, so the jobs
    /// share local routers and contend for the same global cables — the
    /// deliberately adversarial co-location.
    Interfering,
}

impl Placement {
    /// Short label for metric scopes and reports.
    pub fn label(&self) -> &'static str {
        match self {
            Placement::GroupDisjoint => "disjoint",
            Placement::Interfering => "interfering",
        }
    }
}

/// A set of concurrent jobs plus placement policy and background load.
#[derive(Debug, Clone)]
pub struct JobMix {
    /// The tenant jobs, placed in order.
    pub jobs: Vec<JobSpec>,
    /// Group-mapping policy.
    pub placement: Placement,
    /// Untracked uniform-random Bernoulli load offered by every
    /// terminal not owned by a job (packets/terminal/cycle). Background
    /// packets never block work-complete termination.
    pub background_load: f64,
}

impl JobMix {
    /// A mix with no background traffic.
    pub fn new(jobs: Vec<JobSpec>, placement: Placement) -> Self {
        JobMix {
            jobs,
            placement,
            background_load: 0.0,
        }
    }

    /// The same mix with open-loop background load on non-job terminals.
    pub fn with_background(mut self, load: f64) -> Self {
        self.background_load = load;
        self
    }

    /// Places every job onto `params`' terminals under the mix's policy.
    ///
    /// # Errors
    ///
    /// If a job spec is invalid, the machine has too few groups
    /// ([`Placement::GroupDisjoint`]) or too few terminals to hold the
    /// mix.
    pub fn assign(&self, params: &DragonflyParams) -> Result<JobAssignment, JobError> {
        for job in &self.jobs {
            job.validate()?;
        }
        let tpg = params.terminals_per_router() * params.routers_per_group();
        let groups = params.num_groups();
        let total = params.num_terminals();
        let mut members: Vec<Vec<usize>> = Vec::with_capacity(self.jobs.len());
        match self.placement {
            Placement::GroupDisjoint => {
                let mut next_group = 0usize;
                for job in &self.jobs {
                    let need = job.size.div_ceil(tpg);
                    if next_group + need > groups {
                        return Err(JobError::Placement(format!(
                            "job '{}' needs {need} more group(s) but only {} of {groups} remain",
                            job.name,
                            groups - next_group
                        )));
                    }
                    let first = next_group * tpg;
                    members.push((first..first + job.size).collect());
                    next_group += need;
                }
            }
            Placement::Interfering => {
                // Enumerate terminals transposed — slot k lives in group
                // k % groups — so consecutive slots of one job land in
                // consecutive groups and every job overlaps every group.
                let mut k = 0usize;
                for job in &self.jobs {
                    if k + job.size > total {
                        return Err(JobError::Placement(format!(
                            "job '{}' overflows the machine: {} terminals, {total} available",
                            job.name,
                            k + job.size
                        )));
                    }
                    members.push(
                        (k..k + job.size)
                            .map(|i| (i % groups) * tpg + i / groups)
                            .collect(),
                    );
                    k += job.size;
                }
            }
        }
        let mut term_job = vec![0u32; total];
        for (j, m) in members.iter().enumerate() {
            for &t in m {
                debug_assert_eq!(term_job[t], 0, "terminal {t} placed twice");
                term_job[t] = (j + 1) as u32;
            }
        }
        Ok(JobAssignment {
            members,
            term_job,
            num_terminals: total,
        })
    }

    /// A fresh ledger sized for this mix, one [`JobBook`] per job.
    pub fn ledger(&self) -> JobLedger {
        JobLedger::new(self.jobs.len())
    }

    /// Instantiates the per-shard workload for the terminals in
    /// `range`, as required by `Simulation::with_workload`'s factory.
    /// Every instance gets fresh collective state (instances coordinate
    /// only through simulated messages) and a clone of the shared
    /// `ledger`.
    pub fn workload(
        &self,
        assignment: &JobAssignment,
        range: std::ops::Range<usize>,
        ledger: &JobLedger,
    ) -> MixWorkload {
        let jobs = self
            .jobs
            .iter()
            .zip(&assignment.members)
            .map(|(spec, members)| spec.build(members.clone()))
            .collect();
        let background = (self.background_load > 0.0).then(|| Background {
            procs: vec![Bernoulli::new(self.background_load); range.len()],
            base: range.start,
            pattern: UniformRandom::new(assignment.num_terminals),
        });
        MixWorkload {
            jobs,
            term_job: assignment.term_job.clone(),
            background,
            ledger: ledger.clone(),
        }
    }
}

/// The concrete terminal sets a [`JobMix`] placement produced.
#[derive(Debug, Clone)]
pub struct JobAssignment {
    /// Member terminals per job, in job order.
    members: Vec<Vec<usize>>,
    /// Terminal → job index + 1; 0 marks a background terminal.
    term_job: Vec<u32>,
    num_terminals: usize,
}

impl JobAssignment {
    /// Member terminals of job `job`, in rank order.
    pub fn members(&self, job: usize) -> &[usize] {
        &self.members[job]
    }

    /// Job index owning `terminal`, if any.
    pub fn job_of(&self, terminal: usize) -> Option<usize> {
        match self.term_job[terminal] {
            0 => None,
            j => Some((j - 1) as usize),
        }
    }

    /// The distinct groups job `job` occupies, given the same `params`
    /// the assignment was built from.
    pub fn groups_of(&self, job: usize, params: &DragonflyParams) -> Vec<usize> {
        let mut gs: Vec<usize> = self.members[job]
            .iter()
            .map(|&t| params.group_of_terminal(t))
            .collect();
        gs.sort_unstable();
        gs.dedup();
        gs
    }
}

/// Per-job accounting accumulated over one run. All fields are built
/// from commutative updates, so books are bit-identical at any shard
/// count.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JobBook {
    /// Tracked job packets delivered to members.
    pub delivered: u64,
    /// Packet latency (generation → ejection) of those deliveries.
    pub latency: LogHistogram,
    /// Cycle of the job's last delivery — the job's completion time
    /// under work-complete termination (0 if nothing was delivered).
    pub completion: u64,
}

/// Shared, shard-safe collection of [`JobBook`]s for one run.
///
/// Cloning shares the underlying books (it is an `Arc`); take a
/// [`JobLedger::snapshot`] after the run to read them.
#[derive(Debug, Clone)]
pub struct JobLedger {
    books: Arc<Mutex<Vec<JobBook>>>,
}

impl JobLedger {
    /// A ledger of `jobs` empty books.
    pub fn new(jobs: usize) -> Self {
        JobLedger {
            books: Arc::new(Mutex::new(vec![JobBook::default(); jobs])),
        }
    }

    /// A copy of the current books, in job order.
    pub fn snapshot(&self) -> Vec<JobBook> {
        self.books.lock().expect("job ledger poisoned").clone()
    }
}

/// Per-terminal open-loop background source for non-job terminals.
#[derive(Debug, Clone)]
struct Background {
    /// One process per terminal of the shard range (job-terminal slots
    /// exist but are never drawn).
    procs: Vec<Bernoulli>,
    base: usize,
    pattern: UniformRandom,
}

/// One engine shard's view of a [`JobMix`]: routes offers and delivery
/// notifications to the owning job's collective, drives the background
/// load, and books per-job statistics into the shared ledger.
pub struct MixWorkload {
    jobs: Vec<Box<dyn Workload + Send>>,
    term_job: Vec<u32>,
    background: Option<Background>,
    ledger: JobLedger,
}

impl Workload for MixWorkload {
    fn name(&self) -> &'static str {
        "job-mix"
    }

    fn offer(&mut self, terminal: usize, cycle: u64, rng: &mut SmallRng) -> Option<MessageIntent> {
        match self.term_job[terminal] {
            0 => {
                let bg = self.background.as_mut()?;
                if !bg.procs[terminal - bg.base].inject(rng) {
                    return None;
                }
                Some(MessageIntent {
                    dest: bg.pattern.destination(terminal, rng),
                    tag: 0,
                    tracked: false,
                })
            }
            j => self.jobs[(j - 1) as usize].offer(terminal, cycle, rng),
        }
    }

    fn delivered(&mut self, terminal: usize, msg: &Delivery, cycle: u64) {
        let j = self.term_job[terminal];
        if j == 0 {
            return;
        }
        // Background packets can land on job terminals; their tags mean
        // nothing to the collective. A packet belongs to job `j` only
        // if both endpoints do.
        if self.term_job[msg.src] != j || self.term_job[msg.dest] != j {
            return;
        }
        if terminal == msg.dest {
            let mut books = self.ledger.books.lock().expect("job ledger poisoned");
            let book = &mut books[(j - 1) as usize];
            book.delivered += 1;
            book.latency.record(cycle.saturating_sub(msg.created));
            book.completion = book.completion.max(cycle);
        }
        self.jobs[(j - 1) as usize].delivered(terminal, msg, cycle);
    }

    fn all_done(&self) -> bool {
        self.jobs.iter().all(|j| j.all_done())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_params() -> DragonflyParams {
        DragonflyParams::new(2, 4, 2).unwrap()
    }

    fn two_jobs() -> Vec<JobSpec> {
        vec![
            JobSpec::barrier("alpha", 8, 2),
            JobSpec::all_reduce_ring("beta", 8),
        ]
    }

    #[test]
    fn group_disjoint_placement_separates_groups() {
        let params = tiny_params();
        let mix = JobMix::new(two_jobs(), Placement::GroupDisjoint);
        let asg = mix.assign(&params).unwrap();
        assert_eq!(asg.groups_of(0, &params), vec![0]);
        assert_eq!(asg.groups_of(1, &params), vec![1]);
        assert_eq!(asg.members(0), (0..8).collect::<Vec<_>>().as_slice());
        assert_eq!(asg.job_of(0), Some(0));
        assert_eq!(asg.job_of(8), Some(1));
        assert_eq!(asg.job_of(16), None);
    }

    #[test]
    fn interfering_placement_overlaps_every_group() {
        let params = tiny_params();
        let mix = JobMix::new(two_jobs(), Placement::Interfering);
        let asg = mix.assign(&params).unwrap();
        // 8-member jobs on a 9-group machine: 8 distinct groups each,
        // with 7 groups hosting both jobs.
        assert_eq!(asg.groups_of(0, &params).len(), 8);
        assert_eq!(asg.groups_of(1, &params).len(), 8);
        let a = asg.groups_of(0, &params);
        let b = asg.groups_of(1, &params);
        let shared = a.iter().filter(|g| b.contains(g)).count();
        assert!(shared >= 7, "expected heavy overlap, got {shared}");
        // No terminal is double-booked.
        let mut all: Vec<usize> = (0..2).flat_map(|j| asg.members(j).to_vec()).collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 16);
    }

    #[test]
    fn placement_errors_are_reported() {
        let params = tiny_params();
        // 10 jobs of one group each cannot fit in 9 groups.
        let jobs: Vec<JobSpec> = (0..10)
            .map(|i| JobSpec::barrier(&format!("j{i}"), 8, 1))
            .collect();
        assert!(JobMix::new(jobs, Placement::GroupDisjoint)
            .assign(&params)
            .is_err());
        // 73 terminals overflow a 72-terminal machine.
        let jobs = vec![JobSpec::barrier("big", 73, 1)];
        assert!(JobMix::new(jobs, Placement::Interfering)
            .assign(&params)
            .is_err());
        // Invalid spec parameters.
        assert!(JobSpec {
            name: "rd".into(),
            size: 6,
            kind: JobKind::AllReduceRecursiveDoubling,
        }
        .validate()
        .is_err());
        assert!(JobSpec {
            name: "rr".into(),
            size: 4,
            kind: JobKind::RequestReply {
                clients: 4,
                requests: 1,
                window: 1,
                service_delay: 0,
            },
        }
        .validate()
        .is_err());
        assert!(JobSpec::barrier("empty", 0, 1).validate().is_err());
    }

    #[test]
    fn mix_workload_routes_offers_and_deliveries() {
        let params = tiny_params();
        let mix = JobMix::new(
            vec![JobSpec::barrier("solo", 4, 1)],
            Placement::GroupDisjoint,
        )
        .with_background(1.0);
        let asg = mix.assign(&params).unwrap();
        let ledger = mix.ledger();
        let mut w = mix.workload(&asg, 0..params.num_terminals(), &ledger);
        let mut rng = dfly_traffic::rng_for(7, 0);
        // Barrier rank 0 is the root: it offers nothing until arrivals.
        assert!(w.offer(0, 0, &mut rng).is_none());
        // Non-root member sends its arrival to the root.
        let intent = w.offer(1, 0, &mut rng).expect("member must arrive");
        assert_eq!(intent.dest, 0);
        assert!(intent.tracked);
        // Background terminal injects untracked uniform traffic at rate 1.
        let bg = w.offer(40, 0, &mut rng).expect("rate-1.0 must fire");
        assert!(!bg.tracked);
        assert_ne!(bg.dest, 40);
        assert!(!w.all_done());
        // A background delivery into a job terminal must not reach the
        // barrier or the books.
        let stray = Delivery {
            src: 40,
            dest: 0,
            tag: 0,
            packet: 1,
            created: 0,
        };
        w.delivered(0, &stray, 9);
        assert_eq!(ledger.snapshot()[0], JobBook::default());
        // A genuine job delivery books latency and completion.
        let arrive = Delivery {
            src: 1,
            dest: 0,
            tag: intent.tag,
            packet: 2,
            created: 0,
        };
        w.delivered(0, &arrive, 11);
        let book = &ledger.snapshot()[0];
        assert_eq!(book.delivered, 1);
        assert_eq!(book.completion, 11);
        assert_eq!(book.latency.count, 1);
        assert_eq!(book.latency.max, 11);
    }

    #[test]
    fn ledger_snapshots_are_shared_across_clones() {
        let ledger = JobLedger::new(2);
        let clone = ledger.clone();
        clone.books.lock().unwrap()[1].delivered = 5;
        assert_eq!(ledger.snapshot()[1].delivered, 5);
        assert_eq!(ledger.snapshot()[0], JobBook::default());
    }
}
