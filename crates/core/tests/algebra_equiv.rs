//! Equivalence of the closed-form [`RouteAlgebra`] with a BFS oracle.
//!
//! The algebra answers routing queries from index arithmetic alone; the
//! old table-driven path derived the same answers from BFS over the
//! built [`NetworkSpec`]. This suite pins the two together on small
//! instances of all four topologies: following `minimal_port` hop by
//! hop must traverse only alive links, shed exactly one hop of
//! `minimal_hops` per step, and end at the destination's ejection port;
//! the hop count itself must match the BFS distance (dragonfly minimal
//! routes are salt-selected among parallel global channels, so there
//! the algebra is checked as a real path of bounded length instead).
//! The same walks are repeated under an explicit single-cable
//! [`FaultPlan`], where the algebra is allowed to consult the lazy
//! per-destination BFS columns — its answers must agree with a fresh
//! oracle built over the degraded spec.

use dfly_netsim::{ChannelClass, Connection, FaultPlan, NetworkSpec, RouteAlgebra};
use dfly_topo::{FlattenedButterfly, FoldedClos, Torus};
use dragonfly::butterfly::ButterflyNetwork;
use dragonfly::clos_sim::ClosNetwork;
use dragonfly::torus_sim::TorusNetwork;
use dragonfly::{Dragonfly, DragonflyParams};

const SALTS: [u32; 3] = [0, 1, 7];

/// Router-to-router hop distances from `start` over alive links only.
fn bfs_from(spec: &NetworkSpec, start: usize) -> Vec<u32> {
    let mut dist = vec![u32::MAX; spec.num_routers()];
    dist[start] = 0;
    let mut queue = std::collections::VecDeque::from([start]);
    while let Some(r) = queue.pop_front() {
        for (p, port) in spec.routers[r].ports.iter().enumerate() {
            if spec.is_failed(r, p) {
                continue;
            }
            if let Connection::Router { router: peer, .. } = port.conn {
                let peer = peer as usize;
                if dist[peer] == u32::MAX {
                    dist[peer] = dist[r] + 1;
                    queue.push_back(peer);
                }
            }
        }
    }
    dist
}

/// All-pairs distances, indexed `[from][to]`.
fn bfs_all(spec: &NetworkSpec) -> Vec<Vec<u32>> {
    (0..spec.num_routers()).map(|r| bfs_from(spec, r)).collect()
}

/// The algebra's terminal attachment must be the spec's, and its VC
/// schedule must fit the spec's channel provisioning.
fn check_terminals(alg: &dyn RouteAlgebra, spec: &NetworkSpec) {
    assert!(alg.vc_count() >= 1 && alg.vc_count() <= spec.vcs);
    for t in 0..spec.num_terminals() {
        assert_eq!(
            spec.terminal_port(t),
            (alg.terminal_router(t), alg.ejection_port(t)),
            "terminal {t} attachment disagrees with the spec"
        );
    }
}

/// Walks the salt-selected minimal route from `router` to terminal
/// `dest`: every hop must use an alive router-router port, carry a VC
/// inside the schedule, and reduce the remaining `minimal_hops` by
/// exactly one; the walk must end at the destination's router, where
/// `minimal_port` becomes the ejection hop on VC 0. Returns the hop
/// count taken.
fn walk_minimal(
    alg: &dyn RouteAlgebra,
    spec: &NetworkSpec,
    router: usize,
    dest: usize,
    salt: u32,
) -> u32 {
    let rd = alg.terminal_router(dest);
    let hops = alg.minimal_hops(router, dest, salt);
    let mut r = router;
    for step in 0..hops {
        let pv = alg.minimal_port(r, dest, salt);
        assert!(
            (pv.vc as usize) < alg.vc_count(),
            "VC {} out of schedule at router {r} ({router}->t{dest}, salt {salt})",
            pv.vc
        );
        let p = pv.port as usize;
        assert!(
            !spec.is_failed(r, p),
            "minimal route crosses a failed link at ({r}, {p})"
        );
        let Connection::Router { router: peer, .. } = spec.routers[r].ports[p].conn else {
            panic!("minimal_port ejected early at router {r}, step {step} ({router}->t{dest})");
        };
        r = peer as usize;
        assert_eq!(
            alg.minimal_hops(r, dest, salt),
            hops - step - 1,
            "remaining hops did not shed by one at router {r} ({router}->t{dest}, salt {salt})"
        );
    }
    assert_eq!(r, rd, "walk of {hops} hops missed the destination router");
    let eject = alg.minimal_port(rd, dest, salt);
    assert_eq!(eject.port as usize, alg.ejection_port(dest));
    assert_eq!(eject.vc, 0, "ejection must ride VC 0");
    assert_eq!(
        spec.routers[rd].ports[eject.port as usize].conn,
        Connection::Terminal {
            terminal: dest as u32
        }
    );
    hops
}

/// The Valiant tag enumeration must produce `valiant_degree` distinct
/// tags. Returns them for topology-specific checks.
fn valiant_tags(alg: &dyn RouteAlgebra, router: usize, dest: usize) -> Vec<u32> {
    let tags: Vec<u32> = (0..alg.valiant_degree(router, dest))
        .map(|i| alg.valiant_tag(router, dest, i))
        .collect();
    let mut sorted = tags.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(
        sorted.len(),
        tags.len(),
        "duplicate Valiant tags for {router}->t{dest}"
    );
    tags
}

/// Walk + BFS-equality sweep over every (router, terminal, salt) of a
/// topology whose minimal routes are true shortest paths.
fn check_exact(alg: &dyn RouteAlgebra, spec: &NetworkSpec) {
    check_terminals(alg, spec);
    let dist = bfs_all(spec);
    for (router, drow) in dist.iter().enumerate() {
        for dest in 0..spec.num_terminals() {
            let rd = alg.terminal_router(dest);
            for salt in SALTS {
                let hops = walk_minimal(alg, spec, router, dest, salt);
                assert_eq!(
                    hops, drow[rd],
                    "minimal_hops({router}, t{dest}) disagrees with the BFS oracle"
                );
            }
            valiant_tags(alg, router, dest);
        }
    }
}

#[test]
fn butterfly_algebra_matches_bfs_oracle() {
    let net = ButterflyNetwork::new(FlattenedButterfly::new(2, 4, 2));
    let spec = net.build_spec();
    check_exact(&net, &spec);
    // Fault-free, the detour set is every third router.
    let routers = spec.num_routers();
    let c = net.topology().concentration();
    for (router, dest) in [(0usize, (routers - 1) * c), (3, 5 * c)] {
        let rd = dest / c;
        let tags = valiant_tags(&net, router, dest);
        assert_eq!(tags.len(), routers - 2);
        for &tag in &tags {
            assert!((tag as usize) < routers);
            assert_ne!(tag as usize, router, "detour through the source router");
            assert_ne!(tag as usize, rd, "detour through the destination router");
        }
    }
}

#[test]
fn butterfly_algebra_matches_bfs_oracle_under_faults() {
    let cable = first_cable(&ButterflyNetwork::new(FlattenedButterfly::new(2, 4, 2)).build_spec());
    let net = ButterflyNetwork::new(FlattenedButterfly::new(2, 4, 2))
        .with_fault_plan(&FaultPlan::Explicit(vec![cable]))
        .unwrap();
    let spec = net.build_spec();
    assert!(spec.has_faults());
    check_exact(&net, &spec);
}

#[test]
fn torus_algebra_matches_bfs_oracle() {
    let net = TorusNetwork::new(Torus::new(2, 4, 1));
    let spec = net.build_spec();
    check_exact(&net, &spec);
    // The single detour tag names a (dimension, long direction) ring.
    let tags = valiant_tags(&net, 0, spec.num_terminals() - 1);
    assert_eq!(tags.len(), 1);
    assert!(
        (tags[0] as usize) < 2 * 2,
        "tag {} outside dim*2+dir range",
        tags[0]
    );
}

#[test]
fn torus_algebra_matches_bfs_oracle_under_faults() {
    let cable = first_cable(&TorusNetwork::new(Torus::new(2, 4, 1)).build_spec());
    let net = TorusNetwork::new(Torus::new(2, 4, 1))
        .with_fault_plan(&FaultPlan::Explicit(vec![cable]))
        .unwrap();
    let spec = net.build_spec();
    assert!(spec.has_faults());
    check_exact(&net, &spec);
}

#[test]
fn clos_algebra_matches_bfs_oracle() {
    // Radix 6 exercises the odd virtual-top parity split; (3, 4) the
    // multi-level ascend/descend arithmetic.
    for (levels, radix) in [(2usize, 6usize), (3, 4)] {
        let net = ClosNetwork::new(FoldedClos::new(levels, radix));
        let spec = net.build_spec();
        check_exact(&net, &spec);
    }
}

#[test]
fn clos_algebra_matches_bfs_oracle_under_faults() {
    for (levels, radix) in [(2usize, 6usize), (3, 4)] {
        let cable = first_cable(&ClosNetwork::new(FoldedClos::new(levels, radix)).build_spec());
        let net = ClosNetwork::new(FoldedClos::new(levels, radix))
            .with_fault_plan(&FaultPlan::Explicit(vec![cable]))
            .unwrap();
        let spec = net.build_spec();
        assert!(spec.has_faults());
        check_exact(&net, &spec);
        // Under faults the routing rides BFS columns, not tags.
        assert_eq!(net.valiant_degree(0, spec.num_terminals() - 1), 0);
    }
}

#[test]
fn dragonfly_algebra_is_consistent_and_bfs_bounded() {
    // The dragonfly's minimal route is salt-selected among parallel
    // global channels, so its hop count is a valid path length bounded
    // below by the BFS distance and above by local+global+local.
    let params = DragonflyParams::new(2, 4, 2).unwrap();
    let df = Dragonfly::new(params);
    let spec = df.build_spec();
    check_terminals(&df, &spec);
    let dist = bfs_all(&spec);
    for (router, drow) in dist.iter().enumerate() {
        for dest in 0..spec.num_terminals() {
            let rd = df.terminal_router(dest);
            for salt in SALTS {
                let hops = walk_minimal(&df, &spec, router, dest, salt);
                assert!(
                    hops >= drow[rd],
                    "algebra beat the BFS shortest path {router}->t{dest}"
                );
                assert!(hops <= 3, "minimal dragonfly route longer than l+g+l");
            }
            let gs = params.group_of_router(router);
            let gd = params.group_of_router(rd);
            let tags = valiant_tags(&df, router, dest);
            if gs == gd {
                assert!(tags.is_empty(), "detour offered for intra-group traffic");
            } else {
                assert_eq!(tags.len(), params.num_groups() - 2);
                for &tag in &tags {
                    assert!((tag as usize) < params.num_groups());
                    assert_ne!(tag as usize, gs, "detour through the source group");
                    assert_ne!(tag as usize, gd, "detour through the destination group");
                }
            }
        }
    }
}

#[test]
fn dragonfly_algebra_is_consistent_under_faults() {
    // Kill one global cable: pairs that still own an alive slot must
    // keep walking consistently; the severed group pair must instead
    // expose a non-empty viable-intermediate set (its Valiant tags).
    let params = DragonflyParams::new(2, 4, 2).unwrap();
    let clean_spec = Dragonfly::new(params).build_spec();
    let cable = first_global_cable(&clean_spec);
    let df = Dragonfly::new(params)
        .with_fault_plan(&FaultPlan::Explicit(vec![cable]))
        .unwrap();
    let spec = df.build_spec();
    assert!(spec.has_faults());
    check_terminals(&df, &spec);
    let dist = bfs_all(&spec);
    let mut severed_pairs = 0;
    for (router, drow) in dist.iter().enumerate() {
        for dest in 0..spec.num_terminals() {
            let rd = df.terminal_router(dest);
            let gs = params.group_of_router(router);
            let gd = params.group_of_router(rd);
            if gs != gd && df.global_slot_count(gs, gd) == 0 {
                // No minimal route exists; the tag set must route around.
                severed_pairs += 1;
                let tags = valiant_tags(&df, router, dest);
                assert!(
                    !tags.is_empty(),
                    "severed pair {gs}->{gd} with no detour tags"
                );
                continue;
            }
            for salt in SALTS {
                let hops = walk_minimal(&df, &spec, router, dest, salt);
                assert!(hops >= drow[rd]);
            }
        }
    }
    // p=2 a=4 h=2 has exactly one cable per group pair, so exactly one
    // ordered group pair each way loses its minimal route.
    assert!(
        severed_pairs > 0,
        "a dead global cable severed no group pair"
    );
}

/// The first router-to-router cable of `spec`, canonical end.
fn first_cable(spec: &NetworkSpec) -> (usize, usize) {
    spec.network_channels()
        .next()
        .expect("network has at least one cable")
}

/// The first global cable of `spec`, canonical end.
fn first_global_cable(spec: &NetworkSpec) -> (usize, usize) {
    spec.network_channels()
        .find(|&(r, p)| spec.routers[r].ports[p].class == ChannelClass::Global)
        .expect("dragonfly has global cables")
}
