//! Fault-injection properties across all four topologies.
//!
//! For every single failed link, every still-connected terminal pair
//! must deliver within the topology's diameter-derived hop bound
//! (`route_hop_bound`), and malformed or disconnecting fault plans must
//! be rejected with typed errors — never a hang or a panic.

use std::sync::Arc;

use dfly_netsim::{
    trace_path, ChannelClass, Connection, FaultPlan, NetworkSpec, RouteInfo, SimConfig, SimError,
};
use dfly_topo::{FlattenedButterfly, FoldedClos, Torus};
use dragonfly::butterfly::{ButterflyNetwork, ButterflyRouting};
use dragonfly::clos_sim::{ClosNetwork, ClosRouting};
use dragonfly::torus_sim::{TorusNetwork, TorusRouting};
use dragonfly::{
    trace_route, Dragonfly, DragonflyParams, FaultSweep, RoutingChoice, TrafficChoice,
};

/// Every router-to-router cable of `spec`, one canonical end each.
fn cables(spec: &NetworkSpec) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for (r, router) in spec.routers.iter().enumerate() {
        for (p, port) in router.ports.iter().enumerate() {
            if let Connection::Router {
                router: peer,
                port: peer_port,
            } = port.conn
            {
                if (r, p) < (peer as usize, peer_port as usize) {
                    out.push((r, p));
                }
            }
        }
    }
    out
}

#[test]
fn dragonfly_delivers_around_any_single_global_failure() {
    // p=2, a=4, h=2: 9 groups with exactly one cable per group pair, so
    // a failed global cable removes the only minimal inter-group path.
    let params = DragonflyParams::new(2, 4, 2).unwrap();
    let clean_spec = Dragonfly::new(params).build_spec();
    let tpg = params.num_terminals() / params.num_groups();
    for cable in cables(&clean_spec)
        .into_iter()
        .filter(|&(r, p)| clean_spec.routers[r].ports[p].class == ChannelClass::Global)
    {
        let df = Dragonfly::new(params)
            .with_fault_plan(&FaultPlan::Explicit(vec![cable]))
            .unwrap_or_else(|e| panic!("cable {cable:?} rejected: {e}"));
        let bound = df.route_hop_bound();
        for gs in 0..params.num_groups() {
            for gd in 0..params.num_groups() {
                if gs == gd {
                    continue;
                }
                let (src, dest) = (gs * tpg, gd * tpg);
                let route = if df.global_slot_count(gs, gd) == 0 {
                    let viable = df
                        .viable_intermediates(gs, gd)
                        .expect("faulty dragonfly exposes viable intermediates");
                    assert!(
                        !viable.is_empty(),
                        "no route {gs}->{gd} with cable {cable:?} down"
                    );
                    RouteInfo::non_minimal(viable[0])
                } else {
                    RouteInfo::minimal()
                };
                let hops = trace_route(&df, src, dest, route)
                    .unwrap_or_else(|e| panic!("{gs}->{gd}, cable {cable:?} down: {e}"));
                assert!(
                    hops.len() <= bound,
                    "{gs}->{gd} took {} hops (bound {bound}) with cable {cable:?} down",
                    hops.len()
                );
            }
        }
    }
}

#[test]
fn butterfly_delivers_around_any_single_failure() {
    let net = ButterflyNetwork::new(FlattenedButterfly::new(2, 4, 2));
    let all = cables(&net.build_spec());
    for cable in all {
        let net = ButterflyNetwork::new(FlattenedButterfly::new(2, 4, 2))
            .with_fault_plan(&FaultPlan::Explicit(vec![cable]))
            .unwrap_or_else(|e| panic!("cable {cable:?} rejected: {e}"));
        let bound = net.route_hop_bound();
        let spec = net.build_spec();
        let c = net.topology().concentration();
        let routing = ButterflyRouting::minimal(Arc::new(net));
        for sr in 0..spec.num_routers() {
            for dr in 0..spec.num_routers() {
                let (src, dest) = (sr * c, dr * c);
                let hops = trace_path(&spec, &routing, src, dest, RouteInfo::minimal(), bound)
                    .unwrap_or_else(|e| panic!("{sr}->{dr}, cable {cable:?} down: {e}"));
                assert!(hops.len() <= bound);
            }
        }
    }
}

#[test]
fn torus_delivers_around_any_single_failure() {
    let all = cables(&TorusNetwork::new(Torus::new(2, 4, 1)).build_spec());
    for cable in all {
        let net = TorusNetwork::new(Torus::new(2, 4, 1))
            .with_fault_plan(&FaultPlan::Explicit(vec![cable]))
            .unwrap_or_else(|e| panic!("cable {cable:?} rejected: {e}"));
        let bound = net.route_hop_bound();
        let spec = net.build_spec();
        let n = spec.num_terminals();
        let routing = TorusRouting::new(Arc::new(net));
        for src in 0..n {
            for dest in 0..n {
                let hops = trace_path(&spec, &routing, src, dest, RouteInfo::minimal(), bound)
                    .unwrap_or_else(|e| panic!("{src}->{dest}, cable {cable:?} down: {e}"));
                assert!(hops.len() <= bound);
            }
        }
    }
}

#[test]
fn clos_delivers_around_any_single_failure() {
    // Radix 6 also exercises the odd-half top rank under faults.
    for (levels, radix) in [(2usize, 6usize), (3, 4)] {
        let all = cables(&ClosNetwork::new(FoldedClos::new(levels, radix)).build_spec());
        for cable in all {
            let net = ClosNetwork::new(FoldedClos::new(levels, radix))
                .with_fault_plan(&FaultPlan::Explicit(vec![cable]))
                .unwrap_or_else(|e| panic!("cable {cable:?} rejected: {e}"));
            let bound = net.route_hop_bound();
            let spec = net.build_spec();
            let n = spec.num_terminals();
            let routing = ClosRouting::new(Arc::new(net));
            for src in 0..n {
                for dest in 0..n {
                    let route = RouteInfo::minimal().with_salt(src as u32 ^ 0x9E37);
                    let hops = trace_path(&spec, &routing, src, dest, route, bound)
                        .unwrap_or_else(|e| panic!("{src}->{dest}, cable {cable:?} down: {e}"));
                    assert!(hops.len() <= bound);
                }
            }
        }
    }
}

#[test]
fn out_of_range_fraction_is_rejected() {
    let params = DragonflyParams::new(2, 4, 2).unwrap();
    for fraction in [-0.1, 1.5, f64::NAN] {
        let err = Dragonfly::with_faults(params, &FaultPlan::random_global(fraction, 1))
            .expect_err("fraction outside [0, 1] must be rejected");
        assert!(
            matches!(err, SimError::InvalidFaultPlan(_)),
            "unexpected error {err:?}"
        );
    }
}

#[test]
fn malformed_explicit_plans_are_rejected() {
    let params = DragonflyParams::new(2, 4, 2).unwrap();
    // Router out of range, port out of range, and a terminal channel.
    for bad in [(9999usize, 0usize), (0, 9999), (0, 0)] {
        let err = Dragonfly::with_faults(params, &FaultPlan::Explicit(vec![bad]))
            .expect_err("malformed explicit plan must be rejected");
        assert!(
            matches!(err, SimError::InvalidFaultPlan(_)),
            "unexpected error {err:?} for {bad:?}"
        );
    }
}

#[test]
fn disconnecting_plan_is_rejected_not_hung() {
    // A 4-ring: killing the 0-1 and 2-3 cables splits {1, 2} from
    // {3, 0}. dir_port(dim 0, +) = 1 for every router (c = 1).
    let err = TorusNetwork::new(Torus::new(1, 4, 1))
        .with_fault_plan(&FaultPlan::Explicit(vec![(0, 1), (2, 1)]))
        .expect_err("disconnecting plan must be rejected");
    assert!(
        matches!(err, SimError::Unreachable { .. }),
        "unexpected error {err:?}"
    );
}

#[test]
fn dragonfly_rejects_pairs_with_no_valiant_shaped_path() {
    // p=1, a=2, h=2: 5 groups, one cable per pair. Killing 0-1, 0-2,
    // 0-3 and 4-1 leaves the network connected (0-4-2-1 exists) but the
    // 0 -> 1 pair has neither a direct cable nor an intermediate group
    // with both legs alive, so the dragonfly's Valiant-shaped routing
    // cannot reach it.
    let params = DragonflyParams::new(1, 2, 2).unwrap();
    let clean = Dragonfly::new(params);
    let spec = clean.build_spec();
    let cable_between = |ga: usize, gb: usize| {
        let a = params.routers_per_group();
        for r in ga * a..(ga + 1) * a {
            for (p, port) in spec.routers[r].ports.iter().enumerate() {
                if let Connection::Router { router: peer, .. } = port.conn {
                    if port.class == ChannelClass::Global
                        && params.group_of_router(peer as usize) == gb
                    {
                        return (r, p);
                    }
                }
            }
        }
        panic!("no cable {ga}-{gb}")
    };
    let plan = FaultPlan::Explicit(vec![
        cable_between(0, 1),
        cable_between(0, 2),
        cable_between(0, 3),
        cable_between(4, 1),
    ]);
    let err = Dragonfly::with_faults(params, &plan)
        .expect_err("pair without direct cable or viable intermediate must be rejected");
    assert!(
        matches!(err, SimError::Unreachable { .. }),
        "unexpected error {err:?}"
    );
}

#[test]
fn fault_sweep_on_1056_nodes_is_monotone_and_parallel_identical() {
    // The acceptance configuration: the paper's 1056-terminal dragonfly
    // (33 groups, 264 routers, one global cable per group pair).
    let params = DragonflyParams::new(4, 8, 4).unwrap();
    assert_eq!(params.num_terminals(), 1056);
    let mut cfg = SimConfig::paper_default(1.0);
    cfg.warmup = 100;
    cfg.measure = 250;
    let sweep = FaultSweep::new(
        params,
        RoutingChoice::UgalLVcH,
        TrafficChoice::Uniform,
        &cfg,
        &[0.0, 1.0 / 16.0, 1.0 / 8.0, 1.0 / 4.0],
        42,
    );
    let parallel = sweep.execute().unwrap();
    let serial = sweep.execute_serial().unwrap();
    assert_eq!(parallel, serial, "parallel sweep diverged from serial");
    assert_eq!(parallel.len(), 4);
    assert_eq!(parallel[0].failed_links, 0);
    // 528 global cables: the fractions fail 33, 66 and 132 of them.
    assert_eq!(parallel[1].failed_links, 33);
    assert_eq!(parallel[2].failed_links, 66);
    assert_eq!(parallel[3].failed_links, 132);
    for pair in parallel.windows(2) {
        assert!(
            pair[1].throughput() <= pair[0].throughput() + 1e-9,
            "throughput rose with more failures: {} -> {} at fraction {}",
            pair[0].throughput(),
            pair[1].throughput(),
            pair[1].fraction
        );
    }
    assert!(parallel[0].throughput() > 0.3, "healthy network too slow");
    assert!(
        parallel[3].throughput() > 0.0,
        "quarter-failed network delivered nothing"
    );
}
