//! Whole-graph statistics and bisection analysis.

use crate::{Graph, Topology};

/// Summary statistics of a router graph, computed once.
///
/// # Example
///
/// ```
/// use dfly_topo::{FlattenedButterfly, GraphStats, Topology};
///
/// let fb = FlattenedButterfly::new(2, 4, 2);
/// let stats = GraphStats::compute(&fb.router_graph());
/// assert_eq!(stats.diameter, Some(2));
/// assert!(stats.connected);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of directed edges (parallel edges counted).
    pub edges: usize,
    /// Whether the graph is strongly connected.
    pub connected: bool,
    /// Longest shortest path, if connected.
    pub diameter: Option<usize>,
    /// Mean shortest path over distinct ordered pairs, if connected.
    pub average_shortest_path: Option<f64>,
    /// Minimum out-degree.
    pub min_degree: usize,
    /// Maximum out-degree.
    pub max_degree: usize,
}

impl GraphStats {
    /// Computes all statistics for `g`.
    ///
    /// Runs one BFS per node (`O(V·E)`), fine for the network sizes the
    /// simulator targets.
    pub fn compute(g: &Graph) -> Self {
        let degrees: Vec<usize> = (0..g.len()).map(|u| g.degree(u)).collect();
        GraphStats {
            nodes: g.len(),
            edges: g.edge_count(),
            connected: g.is_connected(),
            diameter: g.diameter(),
            average_shortest_path: g.average_shortest_path(),
            min_degree: degrees.iter().copied().min().unwrap_or(0),
            max_degree: degrees.iter().copied().max().unwrap_or(0),
        }
    }

    /// Convenience: statistics of a topology's router graph.
    pub fn of<T: Topology + ?Sized>(topo: &T) -> Self {
        Self::compute(&topo.router_graph())
    }
}

/// The channel cut induced by splitting the routers into a low half and a
/// high half by index.
///
/// For the symmetric, vertex-transitive topologies in this crate the
/// index-halving cut is a reasonable bisection estimate; exact minimum
/// bisection is NP-hard and unnecessary for the paper's comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BisectionCut {
    /// Directed channels crossing low → high.
    pub forward: usize,
    /// Directed channels crossing high → low.
    pub backward: usize,
}

impl BisectionCut {
    /// Computes the index-halving cut of `g`.
    pub fn compute(g: &Graph) -> Self {
        let half = g.len() / 2;
        BisectionCut {
            forward: g.cut_size(|u| u < half),
            backward: g.reversed().cut_size(|u| u < half),
        }
    }

    /// Total channels crossing the cut in both directions.
    pub fn total(&self) -> usize {
        self.forward + self.backward
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FlattenedButterfly, FullyConnected, Torus};

    #[test]
    fn stats_of_complete_graph() {
        let fc = FullyConnected::new(6, 1);
        let s = GraphStats::of(&fc);
        assert_eq!(s.nodes, 6);
        assert_eq!(s.edges, 30);
        assert!(s.connected);
        assert_eq!(s.diameter, Some(1));
        assert_eq!(s.min_degree, 5);
        assert_eq!(s.max_degree, 5);
    }

    #[test]
    fn torus_bisection() {
        // A 1-D ring of even size k cut in half crosses 2 links each way.
        let t = Torus::new(1, 8, 1);
        let cut = BisectionCut::compute(&t.router_graph());
        assert_eq!(cut.forward, 2);
        assert_eq!(cut.backward, 2);
        assert_eq!(cut.total(), 4);
    }

    #[test]
    fn fb_one_dim_bisection_is_quadratic() {
        // Complete graph of s routers: cut = (s/2)^2 each way.
        let fb = FlattenedButterfly::new(1, 8, 1);
        let cut = BisectionCut::compute(&fb.router_graph());
        assert_eq!(cut.forward, 16);
        assert_eq!(cut.backward, 16);
    }

    #[test]
    fn stats_are_symmetric_in_degree_for_regular_graphs() {
        let t = Torus::new(2, 4, 1);
        let s = GraphStats::of(&t);
        assert_eq!(s.min_degree, s.max_degree);
    }
}
