//! Folded-Clos (fat-tree) networks.

use crate::{Graph, Topology};

/// A folded-Clos (fat-tree) network built from uniform radix-`k` switches.
///
/// The network has `levels` ranks of switches. Leaf (rank-0) switches
/// devote half their ports (`k/2`) to terminals and half to uplinks; every
/// interior rank uses `k/2` ports down and `k/2` up, and the top rank uses
/// all `k` ports downward (so it has half as many switches). This is the
/// full-bisection-bandwidth configuration the paper compares against (its
/// folded-Clos curves and the Cray BlackWidow network are of this family).
///
/// # Example
///
/// ```
/// use dfly_topo::{FoldedClos, Topology};
///
/// // A 2-level fat tree of radix-8 switches: 4 terminals per leaf,
/// // 4 leaves, 2 top switches, 16 terminals.
/// let clos = FoldedClos::new(2, 8);
/// assert_eq!(clos.num_terminals(), 16);
/// assert_eq!(clos.num_routers(), 6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FoldedClos {
    levels: usize,
    radix: usize,
}

impl FoldedClos {
    /// Creates a folded Clos with the given number of switch `levels`
    /// (ranks) built from radix-`radix` switches.
    ///
    /// # Panics
    ///
    /// Panics if `levels == 0`, `radix < 4`, or `radix` is odd.
    pub fn new(levels: usize, radix: usize) -> Self {
        assert!(levels > 0, "folded Clos needs >= 1 level");
        assert!(radix >= 4, "switch radix must be >= 4");
        assert!(radix.is_multiple_of(2), "switch radix must be even");
        FoldedClos { levels, radix }
    }

    /// The smallest folded Clos of radix-`radix` switches that reaches at
    /// least `terminals` terminals — the sizing rule used in the cost
    /// comparison.
    pub fn for_terminals(terminals: usize, radix: usize) -> Self {
        let mut levels = 1;
        loop {
            let clos = FoldedClos::new(levels, radix);
            if clos.num_terminals() >= terminals {
                return clos;
            }
            levels += 1;
        }
    }

    /// Number of switch ranks.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Switch radix `k`.
    pub fn switch_radix(&self) -> usize {
        self.radix
    }

    /// `k/2`, the up/down port split.
    fn half(&self) -> usize {
        self.radix / 2
    }

    /// Switches in rank `level` (0 = leaves).
    ///
    /// Every rank below the top has `(k/2)^(levels-1)` switches; the top
    /// rank has (roughly) half as many because each of its switches
    /// points all `k` ports downward. When the count below the top is
    /// odd (odd `k/2`, e.g. radix 6), the pairing leaves one virtual
    /// switch over: the last real top switch absorbs a single virtual
    /// one and uses only `k/2` of its ports.
    ///
    /// # Panics
    ///
    /// Panics if `level >= self.levels()`.
    pub fn switches_at(&self, level: usize) -> usize {
        assert!(level < self.levels, "level {level} out of range");
        let m = self.half().pow(self.levels as u32 - 1);
        if level + 1 == self.levels {
            m.div_ceil(2)
        } else {
            m
        }
    }

    /// Total bidirectional switch-to-switch cables: each non-top rank
    /// contributes `switches * k/2` uplinks.
    pub fn num_links(&self) -> usize {
        (0..self.levels - 1)
            .map(|l| self.switches_at(l) * self.half())
            .sum()
    }

    /// First router index of rank `level` in the flattened numbering used
    /// by [`Topology::router_graph`].
    fn rank_base(&self, level: usize) -> usize {
        (0..level).map(|l| self.switches_at(l)).sum()
    }

    /// Replace digit `d` (base `k/2`, least significant first) of `s`
    /// with `val`.
    fn with_digit(&self, s: usize, d: usize, val: usize) -> usize {
        let half = self.half();
        let place = half.pow(d as u32);
        let old = (s / place) % half;
        s - old * place + val * place
    }
}

impl Topology for FoldedClos {
    fn name(&self) -> &'static str {
        "folded Clos"
    }

    fn num_routers(&self) -> usize {
        (0..self.levels).map(|l| self.switches_at(l)).sum()
    }

    fn num_terminals(&self) -> usize {
        if self.levels == 1 {
            // A single switch uses all its ports for terminals.
            self.radix
        } else {
            self.switches_at(0) * self.half()
        }
    }

    fn radix(&self) -> usize {
        self.radix
    }

    fn router_graph(&self) -> Graph {
        // Butterfly wiring, folded: a switch below the top rank is indexed
        // by `levels - 1` digits in base k/2. Uplink `u` of switch `s` at
        // rank `l` reaches the rank-`l+1` switch equal to `s` with digit
        // `l` replaced by `u`. The top rank is halved, with real switch
        // `v / 2` absorbing virtual switches `v` and `v ^ 1`.
        let mut g = Graph::new(self.num_routers());
        for level in 0..self.levels - 1 {
            let base = self.rank_base(level);
            let up_base = self.rank_base(level + 1);
            let top = level + 2 == self.levels;
            for s in 0..self.switches_at(level) {
                for u in 0..self.half() {
                    let v = self.with_digit(s, level, u);
                    let target = if top { v / 2 } else { v };
                    g.add_bidirectional(base + s, up_base + target);
                }
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_level_is_one_switch() {
        let c = FoldedClos::new(1, 8);
        assert_eq!(c.num_routers(), 1);
        assert_eq!(c.num_terminals(), 8);
        assert_eq!(c.num_links(), 0);
    }

    #[test]
    fn two_level_counts() {
        let c = FoldedClos::new(2, 8);
        assert_eq!(c.switches_at(0), 4);
        assert_eq!(c.switches_at(1), 2);
        assert_eq!(c.num_terminals(), 16);
        assert_eq!(c.num_links(), 16);
        // Top switches must expose exactly k down ports.
        let g = c.router_graph();
        assert_eq!(g.degree(4), 8);
        assert_eq!(g.degree(5), 8);
    }

    #[test]
    fn terminals_scale_geometrically() {
        let k = 64;
        let t2 = FoldedClos::new(2, k).num_terminals();
        let t3 = FoldedClos::new(3, k).num_terminals();
        assert_eq!(t2, 32 * 32);
        assert_eq!(t3, 32 * 32 * 32);
    }

    #[test]
    fn sizing_covers_request() {
        let c = FoldedClos::for_terminals(5000, 64);
        assert!(c.num_terminals() >= 5000);
        assert_eq!(c.levels(), 3);
    }

    #[test]
    fn graph_is_connected() {
        for levels in 1..=3 {
            let c = FoldedClos::new(levels, 8);
            assert!(c.router_graph().is_connected(), "levels={levels}");
        }
    }

    #[test]
    fn every_rank_has_balanced_degree() {
        let c = FoldedClos::new(3, 8);
        let g = c.router_graph();
        for s in 0..c.switches_at(0) {
            assert_eq!(g.degree(s), 4, "leaf {s}");
        }
        let mid = c.rank_base(1);
        for s in 0..c.switches_at(1) {
            assert_eq!(g.degree(mid + s), 8, "mid {s}");
        }
        let top = c.rank_base(2);
        for s in 0..c.switches_at(2) {
            assert_eq!(g.degree(top + s), 8, "top {s}");
        }
    }

    #[test]
    fn diameter_is_up_and_down() {
        // Leaf-to-leaf worst case traverses to the top rank and back:
        // 2*(levels-1) hops.
        let c = FoldedClos::new(3, 8);
        let g = c.router_graph();
        let leaves = c.switches_at(0);
        let mut worst = 0;
        for a in 0..leaves {
            let d = g.bfs_distances(a);
            for &db in d.iter().take(leaves) {
                assert_ne!(db, usize::MAX);
                worst = worst.max(db);
            }
        }
        assert_eq!(worst, 4);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_radix_panics() {
        FoldedClos::new(2, 7);
    }

    #[test]
    fn odd_half_radix_six_builds() {
        // radix 6 → k/2 = 3 is odd: 3 virtual top switches fold into 2
        // real ones, the last absorbing a single virtual.
        let c = FoldedClos::new(2, 6);
        assert_eq!(c.switches_at(0), 3);
        assert_eq!(c.switches_at(1), 2);
        assert_eq!(c.num_terminals(), 9);
        let g = c.router_graph();
        assert!(g.is_connected());
        // Real top 0 absorbs virtuals 0 and 1 (one uplink from each leaf
        // per virtual); real top 1 absorbs only virtual 2.
        assert_eq!(g.degree(3), 6);
        assert_eq!(g.degree(4), 3);
    }

    #[test]
    fn odd_half_three_levels_stay_connected() {
        let c = FoldedClos::new(3, 6);
        assert_eq!(c.switches_at(0), 9);
        assert_eq!(c.switches_at(2), 5);
        assert!(c.router_graph().is_connected());
    }
}
