//! k-ary n-cube (torus) networks.

use crate::{Graph, Topology};

/// A k-ary n-cube: an `n`-dimensional torus with `k` routers per dimension
/// and `c` terminals per router.
///
/// The 3-D instance is the low-radix baseline of the paper's cost study
/// (Figure 19), standing in for machines like the Cray T3E.
///
/// # Example
///
/// ```
/// use dfly_topo::{Torus, Topology};
///
/// let t = Torus::new(3, 8, 1); // 8x8x8, one node per router
/// assert_eq!(t.num_terminals(), 512);
/// assert_eq!(t.diameter(), Some(12)); // n * floor(k/2)
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Torus {
    dimensions: usize,
    arity: usize,
    concentration: usize,
}

impl Torus {
    /// Creates a k-ary n-cube with `dimensions` dimensions, `arity` routers
    /// per dimension and `concentration` terminals per router.
    ///
    /// # Panics
    ///
    /// Panics if `dimensions == 0` or `arity < 2`.
    pub fn new(dimensions: usize, arity: usize, concentration: usize) -> Self {
        assert!(dimensions > 0, "torus needs >= 1 dimension");
        assert!(arity >= 2, "torus arity must be >= 2");
        Torus {
            dimensions,
            arity,
            concentration,
        }
    }

    /// Builds the smallest cubic 3-D torus with at least `terminals` nodes
    /// at the given concentration — the sizing rule used for the cost
    /// comparison curves.
    pub fn cubic_3d_for(terminals: usize, concentration: usize) -> Self {
        assert!(concentration > 0, "concentration must be >= 1");
        let routers_needed = terminals.div_ceil(concentration);
        let mut k = 2usize;
        while k * k * k < routers_needed {
            k += 1;
        }
        Torus::new(3, k, concentration)
    }

    /// Number of dimensions `n`.
    pub fn dimensions(&self) -> usize {
        self.dimensions
    }

    /// Routers per dimension `k`.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Terminals per router.
    pub fn concentration(&self) -> usize {
        self.concentration
    }

    /// Multi-index coordinates of router `r`, least-significant dimension
    /// first.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.num_routers()`.
    pub fn coordinates(&self, r: usize) -> Vec<usize> {
        assert!(r < self.num_routers(), "router {r} out of range");
        let mut rem = r;
        (0..self.dimensions)
            .map(|_| {
                let c = rem % self.arity;
                rem /= self.arity;
                c
            })
            .collect()
    }

    /// Router index for a coordinate vector.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate count or any coordinate is out of range.
    pub fn router_index(&self, coords: &[usize]) -> usize {
        assert_eq!(coords.len(), self.dimensions, "wrong coordinate count");
        let mut idx = 0;
        for &c in coords.iter().rev() {
            assert!(c < self.arity, "coordinate {c} out of range");
            idx = idx * self.arity + c;
        }
        idx
    }

    /// Minimal hop count between routers `a` and `b`: the sum over
    /// dimensions of the shorter way around each ring.
    pub fn min_hops(&self, a: usize, b: usize) -> usize {
        let ca = self.coordinates(a);
        let cb = self.coordinates(b);
        ca.iter()
            .zip(&cb)
            .map(|(&x, &y)| {
                let d = x.abs_diff(y);
                d.min(self.arity - d)
            })
            .sum()
    }

    /// Number of bidirectional inter-router links: `n * k^n` for `k > 2`
    /// (each router has one plus-direction link per dimension); for `k = 2`
    /// the two directions coincide, giving half that.
    pub fn num_links(&self) -> usize {
        let links = self.dimensions * self.num_routers();
        if self.arity == 2 {
            links / 2
        } else {
            links
        }
    }
}

impl Topology for Torus {
    fn name(&self) -> &'static str {
        "torus"
    }

    fn num_routers(&self) -> usize {
        self.arity.pow(self.dimensions as u32)
    }

    fn num_terminals(&self) -> usize {
        self.num_routers() * self.concentration
    }

    fn radix(&self) -> usize {
        let ring_ports = if self.arity == 2 { 1 } else { 2 };
        self.concentration + self.dimensions * ring_ports
    }

    fn router_graph(&self) -> Graph {
        let n = self.num_routers();
        let mut g = Graph::new(n);
        for r in 0..n {
            let coords = self.coordinates(r);
            for dim in 0..self.dimensions {
                let mut c2 = coords.clone();
                c2[dim] = (coords[dim] + 1) % self.arity;
                let peer = self.router_index(&c2);
                // For arity 2 the +1 and -1 neighbours coincide; add the
                // single link from the lower endpoint only.
                if peer != r && (self.arity > 2 || r < peer) {
                    g.add_bidirectional(r, peer);
                }
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_one_dimensional_torus() {
        let t = Torus::new(1, 6, 1);
        assert_eq!(t.num_routers(), 6);
        assert_eq!(t.diameter(), Some(3));
        assert_eq!(t.radix(), 1 + 2);
    }

    #[test]
    fn diameter_formula() {
        for (n, k) in [(2, 4), (3, 4), (3, 5)] {
            let t = Torus::new(n, k, 1);
            assert_eq!(t.diameter(), Some(n * (k / 2)), "n={n} k={k}");
        }
    }

    #[test]
    fn min_hops_matches_bfs() {
        let t = Torus::new(2, 5, 1);
        let g = t.router_graph();
        for a in 0..t.num_routers() {
            let dist = g.bfs_distances(a);
            for (b, &db) in dist.iter().enumerate() {
                assert_eq!(t.min_hops(a, b), db, "a={a} b={b}");
            }
        }
    }

    #[test]
    fn link_count_matches_graph() {
        let t = Torus::new(3, 4, 2);
        assert_eq!(t.router_graph().edge_count(), 2 * t.num_links());
        let t2 = Torus::new(2, 2, 1);
        assert_eq!(t2.router_graph().edge_count(), 2 * t2.num_links());
    }

    #[test]
    fn arity_two_has_single_link_per_dimension() {
        let t = Torus::new(3, 2, 1);
        assert_eq!(t.radix(), 1 + 3);
        let g = t.router_graph();
        assert_eq!(g.degree(0), 3);
    }

    #[test]
    fn cubic_sizing_covers_request() {
        let t = Torus::cubic_3d_for(5000, 2);
        assert!(t.num_terminals() >= 5000);
        assert_eq!(t.dimensions(), 3);
        // The next-smaller cube must not suffice.
        let smaller = Torus::new(3, t.arity() - 1, 2);
        assert!(smaller.num_terminals() < 5000);
    }

    #[test]
    fn coordinates_round_trip() {
        let t = Torus::new(3, 3, 1);
        for r in 0..t.num_routers() {
            assert_eq!(t.router_index(&t.coordinates(r)), r);
        }
    }
}
