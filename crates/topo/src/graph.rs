//! A compact directed multigraph used for structural network analysis.

use std::collections::VecDeque;

/// A directed multigraph over nodes `0..n`.
///
/// Parallel edges are allowed (networks routinely have multiple channels
/// between the same pair of routers) and are preserved by [`Graph::degree`]
/// and [`Graph::edge_count`], while shortest-path queries treat them as a
/// single unit-weight edge.
///
/// # Example
///
/// ```
/// use dfly_topo::Graph;
///
/// let mut g = Graph::new(3);
/// g.add_bidirectional(0, 1);
/// g.add_bidirectional(1, 2);
/// assert_eq!(g.diameter(), Some(2));
/// assert!(g.is_connected());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Graph {
    /// Outgoing adjacency lists; `adj[u]` holds every head `v` of an edge
    /// `u -> v`, with duplicates for parallel edges.
    adj: Vec<Vec<u32>>,
    edges: usize,
}

impl Graph {
    /// Creates a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        Graph {
            adj: vec![Vec::new(); n],
            edges: 0,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Total number of directed edges, counting parallel edges.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Adds the directed edge `u -> v`.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn add_edge(&mut self, u: usize, v: usize) {
        assert!(v < self.adj.len(), "edge head {v} out of range");
        self.adj[u].push(v as u32);
        self.edges += 1;
    }

    /// Adds both `u -> v` and `v -> u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn add_bidirectional(&mut self, u: usize, v: usize) {
        self.add_edge(u, v);
        self.add_edge(v, u);
    }

    /// Out-degree of `u`, counting parallel edges.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn degree(&self, u: usize) -> usize {
        self.adj[u].len()
    }

    /// Iterator over the heads of edges leaving `u` (with repetition for
    /// parallel edges).
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn neighbors(&self, u: usize) -> impl Iterator<Item = usize> + '_ {
        self.adj[u].iter().map(|&v| v as usize)
    }

    /// Unweighted shortest-path distances from `src` to every node.
    /// Unreachable nodes get `usize::MAX`.
    ///
    /// # Panics
    ///
    /// Panics if `src` is out of range.
    pub fn bfs_distances(&self, src: usize) -> Vec<usize> {
        assert!(src < self.adj.len(), "source {src} out of range");
        let mut dist = vec![usize::MAX; self.adj.len()];
        let mut queue = VecDeque::new();
        dist[src] = 0;
        queue.push_back(src);
        while let Some(u) = queue.pop_front() {
            let du = dist[u];
            for &v in &self.adj[u] {
                let v = v as usize;
                if dist[v] == usize::MAX {
                    dist[v] = du + 1;
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// Length of the shortest path from `u` to `v`, or `None` if `v` is
    /// unreachable.
    pub fn distance(&self, u: usize, v: usize) -> Option<usize> {
        let d = self.bfs_distances(u)[v];
        (d != usize::MAX).then_some(d)
    }

    /// Whether every node can reach every other node.
    ///
    /// The empty graph is connected by convention.
    pub fn is_connected(&self) -> bool {
        if self.adj.is_empty() {
            return true;
        }
        // For the symmetric graphs built here one BFS would do, but network
        // channel graphs are directed in general, so check both directions.
        if self.bfs_distances(0).contains(&usize::MAX) {
            return false;
        }
        let rev = self.reversed();
        !rev.bfs_distances(0).contains(&usize::MAX)
    }

    /// The graph with every edge direction flipped.
    pub fn reversed(&self) -> Graph {
        let mut rev = Graph::new(self.adj.len());
        for (u, outs) in self.adj.iter().enumerate() {
            for &v in outs {
                rev.add_edge(v as usize, u);
            }
        }
        rev
    }

    /// The longest shortest path over all ordered node pairs, or `None`
    /// if the graph is disconnected (or empty).
    pub fn diameter(&self) -> Option<usize> {
        if self.adj.is_empty() {
            return None;
        }
        let mut diameter = 0;
        for u in 0..self.adj.len() {
            let dist = self.bfs_distances(u);
            for &d in &dist {
                if d == usize::MAX {
                    return None;
                }
                diameter = diameter.max(d);
            }
        }
        Some(diameter)
    }

    /// Mean shortest-path length over all ordered pairs of distinct nodes,
    /// or `None` if disconnected or fewer than two nodes.
    pub fn average_shortest_path(&self) -> Option<f64> {
        let n = self.adj.len();
        if n < 2 {
            return None;
        }
        let mut total: u64 = 0;
        for u in 0..n {
            for (v, &d) in self.bfs_distances(u).iter().enumerate() {
                if u == v {
                    continue;
                }
                if d == usize::MAX {
                    return None;
                }
                total += d as u64;
            }
        }
        Some(total as f64 / (n as f64 * (n as f64 - 1.0)))
    }

    /// Counts directed edges crossing from the node set where `side(u)` is
    /// `true` to the set where it is `false`.
    ///
    /// Used by bisection analyses: for a symmetric graph and an equal
    /// split, this is the (directed) bisection channel count.
    pub fn cut_size<F: Fn(usize) -> bool>(&self, side: F) -> usize {
        let mut cut = 0;
        for (u, outs) in self.adj.iter().enumerate() {
            if side(u) {
                cut += outs.iter().filter(|&&v| !side(v as usize)).count();
            }
        }
        cut
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n {
            g.add_bidirectional(i, (i + 1) % n);
        }
        g
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new(0);
        assert!(g.is_empty());
        assert!(g.is_connected());
        assert_eq!(g.diameter(), None);
        assert_eq!(g.average_shortest_path(), None);
    }

    #[test]
    fn single_node() {
        let g = Graph::new(1);
        assert!(g.is_connected());
        assert_eq!(g.diameter(), Some(0));
        assert_eq!(g.average_shortest_path(), None);
    }

    #[test]
    fn ring_distances() {
        let g = ring(8);
        assert_eq!(g.diameter(), Some(4));
        assert_eq!(g.distance(0, 3), Some(3));
        assert_eq!(g.distance(0, 5), Some(3)); // wraps the short way
        assert!(g.is_connected());
        assert_eq!(g.edge_count(), 16);
    }

    #[test]
    fn disconnected_graph() {
        let mut g = Graph::new(4);
        g.add_bidirectional(0, 1);
        g.add_bidirectional(2, 3);
        assert!(!g.is_connected());
        assert_eq!(g.diameter(), None);
        assert_eq!(g.average_shortest_path(), None);
        assert_eq!(g.distance(0, 2), None);
    }

    #[test]
    fn directed_connectivity_requires_both_ways() {
        // 0 -> 1 -> 2 -> 0 is strongly connected; removing one arc is not.
        let mut g = Graph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 0);
        assert!(g.is_connected());
        let mut h = Graph::new(3);
        h.add_edge(0, 1);
        h.add_edge(1, 2);
        assert!(!h.is_connected());
    }

    #[test]
    fn parallel_edges_counted_in_degree_not_distance() {
        let mut g = Graph::new(2);
        g.add_bidirectional(0, 1);
        g.add_bidirectional(0, 1);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.distance(0, 1), Some(1));
    }

    #[test]
    fn average_shortest_path_of_complete_graph_is_one() {
        let n = 6;
        let mut g = Graph::new(n);
        for u in 0..n {
            for v in 0..n {
                if u != v {
                    g.add_edge(u, v);
                }
            }
        }
        assert_eq!(g.average_shortest_path(), Some(1.0));
    }

    #[test]
    fn cut_of_ring_bisection_is_two_each_way() {
        let g = ring(8);
        let cut = g.cut_size(|u| u < 4);
        assert_eq!(cut, 2);
    }

    #[test]
    fn reversed_swaps_edges() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1);
        let r = g.reversed();
        assert_eq!(r.degree(1), 1);
        assert_eq!(r.degree(0), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_edge_out_of_range_panics() {
        let mut g = Graph::new(2);
        g.add_edge(0, 5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bfs_out_of_range_panics() {
        Graph::new(2).bfs_distances(5);
    }

    #[test]
    fn directed_cut_is_asymmetric() {
        // Edges only flow low -> high: the reverse cut is empty.
        let mut g = Graph::new(4);
        g.add_edge(0, 2);
        g.add_edge(1, 3);
        assert_eq!(g.cut_size(|u| u < 2), 2);
        assert_eq!(g.reversed().cut_size(|u| u < 2), 0);
    }

    #[test]
    fn neighbors_iterate_with_multiplicity() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        let mut ns: Vec<usize> = g.neighbors(0).collect();
        ns.sort_unstable();
        assert_eq!(ns, vec![1, 1, 2]);
    }
}
