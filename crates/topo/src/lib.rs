//! Interconnection-network topology substrate.
//!
//! This crate provides the *structural* building blocks used by the
//! dragonfly reproduction: a small directed-multigraph type with the graph
//! analyses that matter for interconnection networks (diameter, average
//! shortest path, connectivity, bisection cuts), and constructors for the
//! classical topologies the paper compares against:
//!
//! * [`FlattenedButterfly`] — the k-ary n-flat of Kim, Dally & Abts
//!   (ISCA 2007), the closest competitor to the dragonfly.
//! * [`FoldedClos`] — the folded-Clos / fat-tree family.
//! * [`Torus`] — k-ary n-cube networks (e.g. the 3-D torus of the Cray T3E).
//! * [`FullyConnected`] — a complete graph of routers with concentration,
//!   the limiting case that motivates Figure 1 of the paper.
//!
//! The dragonfly topology itself lives in the `dragonfly` crate; it builds
//! on the same [`Topology`] trait so that the analyses and the cost model
//! apply uniformly.
//!
//! # Example
//!
//! ```
//! use dfly_topo::{FlattenedButterfly, Topology};
//!
//! // An 8-ary 2-flat with concentration 8: 64 routers, 512 terminals.
//! let fb = FlattenedButterfly::new(2, 8, 8);
//! assert_eq!(fb.num_terminals(), 512);
//! let g = fb.router_graph();
//! assert_eq!(g.diameter(), Some(2)); // one hop per dimension
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod clos;
mod flattened_butterfly;
mod fully_connected;
mod graph;
mod torus;

pub use analysis::{BisectionCut, GraphStats};
pub use clos::FoldedClos;
pub use flattened_butterfly::FlattenedButterfly;
pub use fully_connected::FullyConnected;
pub use graph::Graph;
pub use torus::Torus;

/// A network topology: a set of routers with terminals attached, plus the
/// inter-router connectivity.
///
/// Implementations describe *structure only*; the cycle-accurate behaviour
/// (buffers, credits, routing) lives in `dfly-netsim` and the `dragonfly`
/// crate.
pub trait Topology {
    /// Human-readable topology name, e.g. `"flattened butterfly"`.
    fn name(&self) -> &'static str;

    /// Number of routers (switches) in the network.
    fn num_routers(&self) -> usize;

    /// Number of terminals (processing nodes) attached to the network.
    fn num_terminals(&self) -> usize;

    /// Radix of each router: terminal ports plus network ports.
    ///
    /// For irregular topologies this is the maximum radix over all routers.
    fn radix(&self) -> usize;

    /// The inter-router connectivity as a directed multigraph whose nodes
    /// are routers. A bidirectional link contributes one edge in each
    /// direction.
    fn router_graph(&self) -> Graph;

    /// Network diameter measured in router-to-router hops, ignoring
    /// terminal channels. `None` for a disconnected network.
    fn diameter(&self) -> Option<usize> {
        self.router_graph().diameter()
    }

    /// Average shortest-path length between distinct router pairs,
    /// ignoring terminal channels. `None` for a disconnected network.
    fn average_hop_count(&self) -> Option<f64> {
        self.router_graph().average_shortest_path()
    }
}
