//! The flattened butterfly (k-ary n-flat) topology.

use crate::{Graph, Topology};

/// A flattened butterfly (k-ary n-flat) network, possibly with unequal
/// dimension sizes.
///
/// Routers sit at the points of an `n`-dimensional grid; within each
/// dimension, the routers that share the other coordinates are *fully
/// connected*. Each router additionally concentrates `c` terminals.
///
/// This is the topology of Kim, Dally & Abts (ISCA 2007) that the
/// dragonfly paper uses as its primary comparison point: a dragonfly
/// with fully-connected groups is exactly a 1-D flattened butterfly plus
/// an inter-group stage. Unequal dimensions arise when a machine is
/// scaled by populating a partially filled outer dimension.
///
/// # Example
///
/// ```
/// use dfly_topo::{FlattenedButterfly, Topology};
///
/// // Figure 18(a) of the paper: 64K nodes from 16 routers per dimension,
/// // concentration 16, 3 dimensions.
/// let fb = FlattenedButterfly::new(3, 16, 16);
/// assert_eq!(fb.num_terminals(), 65_536);
/// assert_eq!(fb.radix(), 16 + 3 * 15);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FlattenedButterfly {
    dims: Vec<usize>,
    concentration: usize,
}

impl FlattenedButterfly {
    /// Creates a k-ary n-flat with `dimensions` equal dimensions of
    /// `routers_per_dim` routers and `concentration` terminals per
    /// router.
    ///
    /// # Panics
    ///
    /// Panics if `dimensions == 0` or `routers_per_dim == 0`.
    pub fn new(dimensions: usize, routers_per_dim: usize, concentration: usize) -> Self {
        assert!(dimensions > 0, "flattened butterfly needs >= 1 dimension");
        Self::with_dims(&vec![routers_per_dim; dimensions], concentration)
    }

    /// Creates a flattened butterfly with explicit per-dimension sizes
    /// (first dimension varies fastest in the router numbering).
    ///
    /// # Panics
    ///
    /// Panics if `dims` is empty or any dimension size is zero.
    pub fn with_dims(dims: &[usize], concentration: usize) -> Self {
        assert!(!dims.is_empty(), "flattened butterfly needs >= 1 dimension");
        assert!(
            dims.iter().all(|&s| s > 0),
            "every dimension must have >= 1 router"
        );
        FlattenedButterfly {
            dims: dims.to_vec(),
            concentration,
        }
    }

    /// Number of dimensions `n`.
    pub fn dimensions(&self) -> usize {
        self.dims.len()
    }

    /// Per-dimension sizes.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Routers along dimension 0 (for uniform networks, every dimension).
    pub fn routers_per_dim(&self) -> usize {
        self.dims[0]
    }

    /// Terminals per router.
    pub fn concentration(&self) -> usize {
        self.concentration
    }

    /// The multi-index coordinates of router `r`, least-significant
    /// dimension first.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.num_routers()`.
    pub fn coordinates(&self, r: usize) -> Vec<usize> {
        assert!(r < self.num_routers(), "router {r} out of range");
        let mut rem = r;
        self.dims
            .iter()
            .map(|&s| {
                let c = rem % s;
                rem /= s;
                c
            })
            .collect()
    }

    /// The router index for a coordinate vector (inverse of
    /// [`coordinates`](Self::coordinates)).
    ///
    /// # Panics
    ///
    /// Panics if the coordinate count or any coordinate is out of range.
    pub fn router_index(&self, coords: &[usize]) -> usize {
        assert_eq!(coords.len(), self.dims.len(), "wrong coordinate count");
        let mut idx = 0;
        for (&c, &s) in coords.iter().zip(&self.dims).rev() {
            assert!(c < s, "coordinate {c} out of range");
            idx = idx * s + c;
        }
        idx
    }

    /// Minimal hop count between two routers: the number of dimensions in
    /// which their coordinates differ.
    pub fn min_hops(&self, a: usize, b: usize) -> usize {
        let ca = self.coordinates(a);
        let cb = self.coordinates(b);
        ca.iter().zip(&cb).filter(|(x, y)| x != y).count()
    }

    /// Number of bidirectional inter-router channels: each dimension `d`
    /// contributes `(R / s_d) · s_d (s_d - 1) / 2` links.
    pub fn num_links(&self) -> usize {
        let routers = self.num_routers();
        self.dims
            .iter()
            .map(|&s| (routers / s) * s * (s - 1) / 2)
            .sum()
    }
}

impl Topology for FlattenedButterfly {
    fn name(&self) -> &'static str {
        "flattened butterfly"
    }

    fn num_routers(&self) -> usize {
        self.dims.iter().product()
    }

    fn num_terminals(&self) -> usize {
        self.num_routers() * self.concentration
    }

    fn radix(&self) -> usize {
        self.concentration + self.dims.iter().map(|&s| s - 1).sum::<usize>()
    }

    fn router_graph(&self) -> Graph {
        let n = self.num_routers();
        let mut g = Graph::new(n);
        for r in 0..n {
            let coords = self.coordinates(r);
            for (dim, &s) in self.dims.iter().enumerate() {
                for other in 0..s {
                    if other == coords[dim] {
                        continue;
                    }
                    let mut c2 = coords.clone();
                    c2[dim] = other;
                    let peer = self.router_index(&c2);
                    // Add each undirected link once (from the lower side)
                    // as a pair of directed edges.
                    if r < peer {
                        g.add_bidirectional(r, peer);
                    }
                }
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_dimension_is_complete_graph() {
        let fb = FlattenedButterfly::new(1, 8, 4);
        assert_eq!(fb.num_routers(), 8);
        assert_eq!(fb.num_terminals(), 32);
        assert_eq!(fb.radix(), 4 + 7);
        let g = fb.router_graph();
        assert_eq!(g.diameter(), Some(1));
        assert_eq!(g.edge_count(), 8 * 7);
    }

    #[test]
    fn diameter_equals_dimensions() {
        for n in 1..=3 {
            let fb = FlattenedButterfly::new(n, 4, 2);
            assert_eq!(fb.diameter(), Some(n), "n={n}");
        }
    }

    #[test]
    fn coordinates_round_trip() {
        let fb = FlattenedButterfly::new(3, 5, 1);
        for r in 0..fb.num_routers() {
            assert_eq!(fb.router_index(&fb.coordinates(r)), r);
        }
    }

    #[test]
    fn unequal_dimensions() {
        let fb = FlattenedButterfly::with_dims(&[5, 3], 2);
        assert_eq!(fb.num_routers(), 15);
        assert_eq!(fb.num_terminals(), 30);
        assert_eq!(fb.radix(), 2 + 4 + 2);
        assert_eq!(fb.diameter(), Some(2));
        for r in 0..15 {
            assert_eq!(fb.router_index(&fb.coordinates(r)), r);
        }
        // Link count: dim0: 3 groups of C(5,2)=10 -> 30; dim1: 5 groups
        // of C(3,2)=3 -> 15.
        assert_eq!(fb.num_links(), 45);
        assert_eq!(fb.router_graph().edge_count(), 90);
    }

    #[test]
    fn min_hops_counts_differing_dimensions() {
        let fb = FlattenedButterfly::new(2, 4, 1);
        let a = fb.router_index(&[0, 0]);
        let b = fb.router_index(&[3, 0]);
        let c = fb.router_index(&[3, 2]);
        assert_eq!(fb.min_hops(a, a), 0);
        assert_eq!(fb.min_hops(a, b), 1);
        assert_eq!(fb.min_hops(a, c), 2);
        // Structural hops must match BFS over the graph.
        let g = fb.router_graph();
        assert_eq!(g.distance(a, c), Some(2));
    }

    #[test]
    fn link_count_formula_matches_graph() {
        let fb = FlattenedButterfly::new(2, 6, 3);
        let g = fb.router_graph();
        assert_eq!(g.edge_count(), 2 * fb.num_links());
    }

    #[test]
    fn paper_figure18_configuration() {
        // 64K-node comparison of Section 5: dimension size 16, c=16, n=3.
        let fb = FlattenedButterfly::new(3, 16, 16);
        assert_eq!(fb.num_terminals(), 65_536);
        // Radix = 16 + 3*15 = 61; 30 of 45 network ports serve the two
        // inter-cabinet dimensions.
        assert_eq!(fb.radix(), 61);
    }

    #[test]
    #[should_panic(expected = "dimension")]
    fn zero_dimensions_panics() {
        FlattenedButterfly::new(0, 4, 1);
    }
}
