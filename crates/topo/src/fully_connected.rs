//! The fully-connected router topology of the paper's Figure 1.

use crate::{Graph, Topology};

/// A complete graph of routers with terminal concentration — the limiting
/// "one global hop" topology that motivates Figure 1 of the paper.
///
/// With radix-`k` routers split evenly between terminals and network ports
/// (`k/2` each), a fully-connected network reaches
/// `N = (k/2) * (k/2 + 1)` terminals, i.e. the required radix grows as
/// `k ≈ 2√N`. The dragonfly exists precisely to escape this scaling by
/// substituting a *group* of routers for the single router here.
///
/// # Example
///
/// ```
/// use dfly_topo::{FullyConnected, Topology};
///
/// let fc = FullyConnected::new(9, 8); // 9 routers, 8 terminals each
/// assert_eq!(fc.num_terminals(), 72);
/// assert_eq!(fc.diameter(), Some(1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FullyConnected {
    routers: usize,
    concentration: usize,
}

impl FullyConnected {
    /// Creates a complete graph of `routers` routers, each concentrating
    /// `concentration` terminals.
    ///
    /// # Panics
    ///
    /// Panics if `routers == 0`.
    pub fn new(routers: usize, concentration: usize) -> Self {
        assert!(routers > 0, "need >= 1 router");
        FullyConnected {
            routers,
            concentration,
        }
    }

    /// The largest balanced fully-connected network buildable from
    /// radix-`k` routers with an even terminal/network port split:
    /// `k/2` terminals per router and `k/2 + 1` routers.
    pub fn max_for_radix(k: usize) -> Self {
        let half = (k / 2).max(1);
        FullyConnected::new(half + 1, k - half)
    }

    /// Terminals per router.
    pub fn concentration(&self) -> usize {
        self.concentration
    }

    /// Number of bidirectional links: `r(r-1)/2`.
    pub fn num_links(&self) -> usize {
        self.routers * (self.routers - 1) / 2
    }
}

impl Topology for FullyConnected {
    fn name(&self) -> &'static str {
        "fully connected"
    }

    fn num_routers(&self) -> usize {
        self.routers
    }

    fn num_terminals(&self) -> usize {
        self.routers * self.concentration
    }

    fn radix(&self) -> usize {
        self.concentration + self.routers - 1
    }

    fn router_graph(&self) -> Graph {
        let mut g = Graph::new(self.routers);
        for a in 0..self.routers {
            for b in (a + 1)..self.routers {
                g.add_bidirectional(a, b);
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diameter_is_one() {
        let fc = FullyConnected::new(5, 2);
        assert_eq!(fc.diameter(), Some(1));
        assert_eq!(fc.average_hop_count(), Some(1.0));
    }

    #[test]
    fn max_for_radix_uses_all_ports() {
        let fc = FullyConnected::max_for_radix(64);
        assert_eq!(fc.num_routers(), 33);
        assert_eq!(fc.concentration(), 32);
        assert_eq!(fc.radix(), 64);
        assert_eq!(fc.num_terminals(), 33 * 32);
    }

    #[test]
    fn radix_grows_as_two_sqrt_n() {
        // Figure 1 sanity: k ~ 2 sqrt(N).
        for k in [16usize, 64, 128] {
            let fc = FullyConnected::max_for_radix(k);
            let n = fc.num_terminals() as f64;
            let predicted = 2.0 * n.sqrt();
            let err = (predicted - k as f64).abs() / k as f64;
            assert!(err < 0.10, "k={k} predicted={predicted}");
        }
    }

    #[test]
    fn single_router() {
        let fc = FullyConnected::new(1, 4);
        assert_eq!(fc.num_links(), 0);
        assert_eq!(fc.diameter(), Some(0));
    }
}
