//! Topology-agnostic adaptive routing: candidate paths, pluggable
//! congestion estimators, and the generic UGAL chooser.
//!
//! The paper's UGAL family is one decision — *minimal or Valiant, per
//! packet* — parameterised by where the congestion estimate comes from
//! (§4.3). This module factors that decision out of the topologies:
//!
//! ```text
//!   topology            engine hooks              decision
//!   ────────            ────────────              ────────
//!   CandidatePaths ──►  CandidatePath ×2 ──►  UgalChooser ──► minimal?
//!   (per topology)            │                    ▲
//!                             ▼                    │ (q_m, q_nm)
//!                      CongestionEstimator ────────┘
//!                      (QueueOccupancy │ VcOccupancy │ VcHybrid │
//!                       CreditCommitted │ GlobalOracle)
//! ```
//!
//! A topology implements [`CandidatePaths`] once — enumerating the
//! first-hop port, VC schedule entry and hop count of its minimal and
//! non-minimal candidates — and any [`CongestionEstimator`] becomes
//! available to it, including the credit-round-trip estimator that only
//! the dragonfly used before this layer existed. The estimators read
//! live queue state exclusively through the [`NetView`] hooks
//! ([`NetView::occupancy`], [`NetView::vc_occupancy`],
//! [`NetView::committed`], [`NetView::vc_committed`]), which is where
//! the engine keeps its congestion-sensing state (per-port occupancy
//! aggregates, VC queue depths, outstanding-credit counters fed by the
//! credit-timestamp mechanism).

use std::fmt;

use crate::routing::NetView;

/// First-hop summary of one candidate path, produced by a topology's
/// [`CandidatePaths`] implementation and consumed by a
/// [`CongestionEstimator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CandidatePath {
    /// Output port the path takes out of the deciding router.
    pub port: u16,
    /// VC the packet would occupy on that first channel (the first entry
    /// of the path's VC schedule).
    pub vc: u8,
    /// Router-to-router channel hops on the whole path.
    pub hops: u32,
    /// Router owning the path's bottleneck (e.g. first global) channel,
    /// for oracle estimators; `u32::MAX` when the path has none.
    pub probe_router: u32,
    /// Port of that bottleneck channel on its owning router.
    pub probe_port: u16,
    /// How many alternative candidates of this class the topology
    /// discarded because a fault made them unusable (dead first hop or
    /// dead link further along the path). Surfaced through run
    /// telemetry as `dropped_candidates`.
    pub dropped: u32,
}

impl CandidatePath {
    /// A candidate leaving through `port` on `vc` with `hops` total
    /// router-to-router hops and no oracle probe point.
    pub fn new(port: usize, vc: usize, hops: u32) -> Self {
        CandidatePath {
            port: port as u16,
            vc: vc as u8,
            hops,
            probe_router: u32::MAX,
            probe_port: 0,
            dropped: 0,
        }
    }

    /// Attaches the bottleneck-channel probe point read by
    /// [`GlobalOracle`].
    pub fn with_probe(mut self, router: usize, port: usize) -> Self {
        self.probe_router = router as u32;
        self.probe_port = port as u16;
        self
    }

    /// Records `n` fault-discarded alternatives of this class.
    pub fn with_dropped(mut self, n: u32) -> Self {
        self.dropped = n;
        self
    }

    /// Whether an oracle probe point is attached.
    pub fn has_probe(&self) -> bool {
        self.probe_router != u32::MAX
    }
}

/// A topology's enumeration of the two UGAL candidates.
///
/// `dest` is a terminal index; `intermediate` is a topology-interpreted
/// tag (the dragonfly's intermediate *group*, the flattened butterfly's
/// intermediate *router*, …) matching the `intermediate` field the
/// topology stores in its non-minimal [`crate::RouteInfo`]s; `salt` is
/// the per-packet salt used to pre-select among parallel channels so
/// the queue a decision inspects is the queue the packet will use.
pub trait CandidatePaths {
    /// The minimal candidate from `router` toward `dest`.
    fn minimal_candidate(&self, router: usize, dest: usize, salt: u32) -> CandidatePath;

    /// The non-minimal (Valiant) candidate from `router` toward `dest`
    /// through `intermediate`.
    fn non_minimal_candidate(
        &self,
        router: usize,
        dest: usize,
        intermediate: u32,
        salt: u32,
    ) -> CandidatePath;
}

/// A congestion estimator: turns the two candidates into the queue
/// estimates `(q_m, q_nm)` the UGAL rule compares.
///
/// Implementations read live state only through the [`NetView`] hooks,
/// so they work unchanged on every topology. Both candidates are passed
/// together because the hybrid estimators discriminate per-VC only when
/// the candidates share an output port.
pub trait CongestionEstimator: fmt::Debug + Send + Sync {
    /// Estimator name for reports, e.g. `"queue-occupancy"`.
    fn name(&self) -> &'static str;

    /// Queue estimates `(q_m, q_nm)` for taking `minimal` respectively
    /// `non_minimal` out of `router`.
    fn estimate(
        &self,
        view: &NetView<'_>,
        router: usize,
        minimal: &CandidatePath,
        non_minimal: &CandidatePath,
    ) -> (u64, u64);

    /// Whether this estimator reads candidate probe points (and thus
    /// degrades to a local estimate on candidates without one). The
    /// chooser counts those degradations so a UGAL-G comparison is never
    /// *silently* UGAL-L.
    fn needs_probe(&self) -> bool {
        false
    }
}

/// UGAL-L: total output-queue occupancy of each candidate's first-hop
/// port at the deciding router (the paper's "local queue information").
#[derive(Debug, Clone, Copy, Default)]
pub struct QueueOccupancy;

impl CongestionEstimator for QueueOccupancy {
    fn name(&self) -> &'static str {
        "queue-occupancy"
    }

    fn estimate(
        &self,
        view: &NetView<'_>,
        router: usize,
        minimal: &CandidatePath,
        non_minimal: &CandidatePath,
    ) -> (u64, u64) {
        (
            view.occupancy(router, minimal.port as usize) as u64,
            view.occupancy(router, non_minimal.port as usize) as u64,
        )
    }
}

/// UGAL-L_VC: per-VC output-queue occupancy, always — each candidate is
/// judged by the depth of the VC its own class would occupy.
#[derive(Debug, Clone, Copy, Default)]
pub struct VcOccupancy;

impl CongestionEstimator for VcOccupancy {
    fn name(&self) -> &'static str {
        "vc-occupancy"
    }

    fn estimate(
        &self,
        view: &NetView<'_>,
        router: usize,
        minimal: &CandidatePath,
        non_minimal: &CandidatePath,
    ) -> (u64, u64) {
        (
            view.vc_occupancy(router, minimal.port as usize, minimal.vc as usize) as u64,
            view.vc_occupancy(router, non_minimal.port as usize, non_minimal.vc as usize) as u64,
        )
    }
}

/// UGAL-L_VCH: per-VC occupancy only when both candidates leave through
/// the same output port, total occupancy otherwise — the paper's hybrid
/// that fixes UGAL-L_VC's uniform-random throughput loss.
#[derive(Debug, Clone, Copy, Default)]
pub struct VcHybrid;

impl CongestionEstimator for VcHybrid {
    fn name(&self) -> &'static str {
        "vc-hybrid"
    }

    fn estimate(
        &self,
        view: &NetView<'_>,
        router: usize,
        minimal: &CandidatePath,
        non_minimal: &CandidatePath,
    ) -> (u64, u64) {
        if minimal.port == non_minimal.port {
            VcOccupancy.estimate(view, router, minimal, non_minimal)
        } else {
            QueueOccupancy.estimate(view, router, minimal, non_minimal)
        }
    }
}

/// UGAL-L(EWMA): an integer exponentially weighted moving average of
/// each candidate's first-hop queue occupancy at the deciding router,
/// with weight `1 / 2^shift` on new readings. Instantaneous occupancy
/// is a noisy signal under bursty (Markov on/off) injection — the
/// estimator-accuracy scoreboard shows the raw occupancy estimators
/// tracking transients the oracle has already drained. Smoothing over
/// successive decisions at the same output damps that noise.
///
/// The accumulator for a port is kept scaled by `2^shift` and updated
/// as `s ← s − (s >> shift) + x` per reading; the estimate is
/// `s >> shift`, seeded so the first reading passes through exactly.
/// All arithmetic is integral, so results are bit-reproducible.
///
/// The estimator carries per-(router, port) state across decisions:
/// build a **fresh instance per run** (as [`crate::UgalChooser`]
/// construction does) — sharing one instance across runs would leak
/// state between them. Within a run, a port's state is only ever
/// touched by injections at its own router, in terminal order, so the
/// sharded engine reproduces it bit-identically at any shard count.
#[derive(Debug, Default)]
pub struct EwmaOccupancy {
    shift: u32,
    state: std::sync::Mutex<std::collections::BTreeMap<(u32, u16), u64>>,
}

impl EwmaOccupancy {
    /// An estimator with weight `1 / 2^shift` on new readings.
    pub fn new(shift: u32) -> Self {
        EwmaOccupancy {
            shift,
            state: std::sync::Mutex::new(std::collections::BTreeMap::new()),
        }
    }

    /// Folds reading `x` into the port's accumulator and returns the
    /// smoothed estimate.
    fn update(
        state: &mut std::collections::BTreeMap<(u32, u16), u64>,
        key: (u32, u16),
        x: u64,
        shift: u32,
    ) -> u64 {
        let s = state.entry(key).or_insert(x << shift);
        *s = *s - (*s >> shift) + x;
        *s >> shift
    }
}

impl CongestionEstimator for EwmaOccupancy {
    fn name(&self) -> &'static str {
        "ewma-occupancy"
    }

    fn estimate(
        &self,
        view: &NetView<'_>,
        router: usize,
        minimal: &CandidatePath,
        non_minimal: &CandidatePath,
    ) -> (u64, u64) {
        let (qm, qnm) = QueueOccupancy.estimate(view, router, minimal, non_minimal);
        let mut state = self.state.lock().expect("ewma state poisoned");
        let r = router as u32;
        let em = Self::update(&mut state, (r, minimal.port), qm, self.shift);
        if non_minimal.port == minimal.port {
            // Same output queue: one reading, one accumulator advance.
            (em, em)
        } else {
            let enm = Self::update(&mut state, (r, non_minimal.port), qnm, self.shift);
            (em, enm)
        }
    }
}

/// UGAL-L(CR): the hybrid rule over credit-inclusive estimates — queue
/// depth **plus** the flits sent on the first-hop channel whose credits
/// have not returned. Paired with [`crate::CreditMode::RoundTrip`]
/// (credits return when a flit leaves the downstream router, delayed in
/// proportion to measured congestion), this senses a congested remote
/// channel within one credit round trip (§4.3.2 of the paper).
#[derive(Debug, Clone, Copy, Default)]
pub struct CreditCommitted;

impl CongestionEstimator for CreditCommitted {
    fn name(&self) -> &'static str {
        "credit-round-trip"
    }

    fn estimate(
        &self,
        view: &NetView<'_>,
        router: usize,
        minimal: &CandidatePath,
        non_minimal: &CandidatePath,
    ) -> (u64, u64) {
        if minimal.port == non_minimal.port {
            (
                view.vc_committed(router, minimal.port as usize, minimal.vc as usize) as u64,
                view.vc_committed(router, non_minimal.port as usize, non_minimal.vc as usize)
                    as u64,
            )
        } else {
            (
                view.committed(router, minimal.port as usize) as u64,
                view.committed(router, non_minimal.port as usize) as u64,
            )
        }
    }
}

/// UGAL-G: oracle occupancy of each candidate's bottleneck channel, read
/// from whichever router owns it — an idealised upper bound no real
/// implementation has access to. Falls back to the local first-hop
/// occupancy for candidates without a probe point.
#[derive(Debug, Clone, Copy, Default)]
pub struct GlobalOracle;

impl GlobalOracle {
    fn read(&self, view: &NetView<'_>, router: usize, path: &CandidatePath) -> u64 {
        if path.has_probe() {
            view.occupancy(path.probe_router as usize, path.probe_port as usize) as u64
        } else {
            view.occupancy(router, path.port as usize) as u64
        }
    }
}

impl CongestionEstimator for GlobalOracle {
    fn name(&self) -> &'static str {
        "global-oracle"
    }

    fn estimate(
        &self,
        view: &NetView<'_>,
        router: usize,
        minimal: &CandidatePath,
        non_minimal: &CandidatePath,
    ) -> (u64, u64) {
        (
            self.read(view, router, minimal),
            self.read(view, router, non_minimal),
        )
    }

    fn needs_probe(&self) -> bool {
        true
    }
}

/// Outcome of one [`UgalChooser::choose`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UgalDecision {
    /// `true` to take the minimal candidate.
    pub minimal: bool,
    /// The estimator's queue estimate for the minimal candidate.
    pub q_minimal: u64,
    /// The estimator's queue estimate for the non-minimal candidate.
    pub q_non_minimal: u64,
    /// Whether the configured estimator chose differently from the plain
    /// [`QueueOccupancy`] baseline on the same candidates — the
    /// decision-quality signal surfaced through run telemetry.
    pub estimator_disagreed: bool,
    /// Whether a fault forced the outcome: one candidate's first hop was
    /// a failed link, so the other was taken without comparing queues.
    pub fault_avoided: bool,
    /// Fault-discarded alternatives accumulated over both candidates
    /// (see [`CandidatePath::dropped`]).
    pub dropped_candidates: u32,
    /// How many of the candidates lacked a probe point under an
    /// estimator that [`CongestionEstimator::needs_probe`] — each one a
    /// silent oracle→local degradation (0, 1 or 2).
    pub probe_fallbacks: u32,
    /// The oracle's ground-truth reading for the minimal candidate
    /// (bottleneck-channel occupancy, local first hop when probe-less).
    pub oracle_minimal: u64,
    /// The oracle's ground-truth reading for the non-minimal candidate.
    pub oracle_non_minimal: u64,
    /// Whether the UGAL rule evaluated over the oracle readings would
    /// have picked the other path — the estimator-accuracy scoreboard's
    /// disagreement signal.
    pub oracle_disagreed: bool,
    /// Whether oracle readings were taken; `false` on fault-masked
    /// shortcuts, which never reach the queue comparison.
    pub oracle_scored: bool,
}

impl UgalDecision {
    /// The estimator's reading for the candidate that was chosen.
    pub fn q_chosen(&self) -> u64 {
        if self.minimal {
            self.q_minimal
        } else {
            self.q_non_minimal
        }
    }

    /// The oracle's reading for the candidate that was chosen.
    pub fn oracle_chosen(&self) -> u64 {
        if self.minimal {
            self.oracle_minimal
        } else {
            self.oracle_non_minimal
        }
    }
}

/// The generic UGAL rule: take the minimal candidate iff
/// `q_m · H_m ≤ q_nm · H_nm`, with queue estimates from a pluggable
/// [`CongestionEstimator`].
///
/// The arithmetic (u64 products, `<=` favouring minimal on ties) is the
/// one the paper's §4.3 rule prescribes and every topology previously
/// duplicated.
#[derive(Debug)]
pub struct UgalChooser {
    estimator: Box<dyn CongestionEstimator>,
}

impl UgalChooser {
    /// A chooser over the given estimator.
    pub fn new(estimator: Box<dyn CongestionEstimator>) -> Self {
        UgalChooser { estimator }
    }

    /// The configured estimator's name.
    pub fn estimator_name(&self) -> &'static str {
        self.estimator.name()
    }

    /// Applies the UGAL rule to the two candidates at `router`.
    ///
    /// When the spec carries faults, a candidate whose first hop is a
    /// failed link is masked: the surviving candidate wins outright
    /// (`fault_avoided`), with no queue comparison. Topologies enumerate
    /// candidates around dead links before calling this, so the mask is
    /// a backstop; if both first hops are somehow dead it falls through
    /// to the queue rule (the engine's hop bound, not this chooser, owns
    /// that pathology).
    pub fn choose(
        &self,
        view: &NetView<'_>,
        router: usize,
        minimal: &CandidatePath,
        non_minimal: &CandidatePath,
    ) -> UgalDecision {
        let dropped_candidates = minimal.dropped + non_minimal.dropped;
        let probe_fallbacks = if self.estimator.needs_probe() {
            u32::from(!minimal.has_probe()) + u32::from(!non_minimal.has_probe())
        } else {
            0
        };
        let spec = view.spec();
        if spec.has_faults() {
            let m_dead = spec.is_failed(router, minimal.port as usize);
            let nm_dead = spec.is_failed(router, non_minimal.port as usize);
            if m_dead != nm_dead {
                return UgalDecision {
                    minimal: nm_dead,
                    q_minimal: 0,
                    q_non_minimal: 0,
                    estimator_disagreed: false,
                    fault_avoided: true,
                    dropped_candidates: dropped_candidates + 1,
                    probe_fallbacks,
                    oracle_minimal: 0,
                    oracle_non_minimal: 0,
                    oracle_disagreed: false,
                    oracle_scored: false,
                };
            }
        }
        let (qm, qnm) = self.estimator.estimate(view, router, minimal, non_minimal);
        let take_minimal = qm * minimal.hops as u64 <= qnm * non_minimal.hops as u64;
        // Decision-quality telemetry: would plain queue occupancy have
        // chosen differently? (Reads queue state only — no RNG — so it
        // cannot perturb determinism.)
        let (bm, bnm) = QueueOccupancy.estimate(view, router, minimal, non_minimal);
        let baseline_minimal = bm * minimal.hops as u64 <= bnm * non_minimal.hops as u64;
        // Estimator-accuracy scoreboard: the oracle's ground-truth view
        // of the same candidates (same no-RNG argument as above).
        let (om, onm) = GlobalOracle.estimate(view, router, minimal, non_minimal);
        let oracle_minimal_take = om * minimal.hops as u64 <= onm * non_minimal.hops as u64;
        UgalDecision {
            minimal: take_minimal,
            q_minimal: qm,
            q_non_minimal: qnm,
            estimator_disagreed: take_minimal != baseline_minimal,
            fault_avoided: false,
            dropped_candidates,
            probe_fallbacks,
            oracle_minimal: om,
            oracle_non_minimal: onm,
            oracle_disagreed: take_minimal != oracle_minimal_take,
            oracle_scored: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidate_probe_roundtrip() {
        let c = CandidatePath::new(3, 1, 4);
        assert!(!c.has_probe());
        assert_eq!(c.dropped, 0);
        let c = c.with_probe(7, 2).with_dropped(3);
        assert!(c.has_probe());
        assert_eq!((c.probe_router, c.probe_port), (7, 2));
        assert_eq!(c.dropped, 3);
    }

    #[test]
    fn only_the_oracle_needs_probes() {
        assert!(GlobalOracle.needs_probe());
        assert!(!QueueOccupancy.needs_probe());
        assert!(!VcOccupancy.needs_probe());
        assert!(!VcHybrid.needs_probe());
        assert!(!CreditCommitted.needs_probe());
        assert!(!EwmaOccupancy::new(2).needs_probe());
    }

    #[test]
    fn estimator_names_are_distinct() {
        let names = [
            QueueOccupancy.name(),
            VcOccupancy.name(),
            VcHybrid.name(),
            CreditCommitted.name(),
            GlobalOracle.name(),
            EwmaOccupancy::new(2).name(),
        ];
        let mut dedup = names.to_vec();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }

    #[test]
    fn ewma_smooths_toward_new_readings() {
        let mut state = std::collections::BTreeMap::new();
        let key = (0u32, 0u16);
        // First reading passes through exactly.
        assert_eq!(EwmaOccupancy::update(&mut state, key, 8, 2), 8);
        // A constant signal is a fixed point.
        assert_eq!(EwmaOccupancy::update(&mut state, key, 8, 2), 8);
        // A step change moves the estimate by 1/4 of the gap.
        let e = EwmaOccupancy::update(&mut state, key, 0, 2);
        assert_eq!(e, 6);
        // Repeated zeros converge to zero.
        let mut last = e;
        for _ in 0..64 {
            last = EwmaOccupancy::update(&mut state, key, 0, 2);
        }
        assert_eq!(last, 0);
        // Distinct ports keep independent accumulators.
        assert_eq!(EwmaOccupancy::update(&mut state, (0, 1), 4, 2), 4);
        assert_eq!(state.len(), 2);
    }
}
