//! Typed errors for spec validation, configuration and route tracing.

use std::fmt;

use crate::health::StallReport;

/// An error raised while constructing or driving a simulation.
///
/// Every fallible entry point of the engine — [`crate::NetworkSpec::validated`],
/// [`crate::SimConfig::validate`], [`crate::Simulation::new`] and the route
/// walkers ([`crate::trace_path`]) — reports through this type, so callers can
/// match on the failure kind instead of parsing strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The network description is structurally invalid (dangling wiring,
    /// mismatched channel pairs, missing terminals, …).
    InvalidSpec(String),
    /// The simulation configuration is out of range.
    InvalidConfig(String),
    /// A route is malformed: it references an out-of-range terminal or
    /// ejects at the wrong one.
    InvalidRoute(String),
    /// A route failed to reach its ejection port within the hop bound
    /// derived from the topology diameter — the route computation loops.
    RouteLoop {
        /// Source terminal of the traced route.
        src: usize,
        /// Destination terminal of the traced route.
        dest: usize,
        /// The diameter-derived hop bound that was exceeded.
        bound: usize,
    },
    /// A fault plan is malformed: a fraction out of range, an explicit
    /// link that does not exist (or is a terminal channel), or a random
    /// draw over an empty candidate set.
    InvalidFaultPlan(String),
    /// Applying a fault plan disconnected a pair of terminals: no alive
    /// path remains from `src` to `dest`. Raised at fault-application
    /// time so routing never discovers it as a hang.
    Unreachable {
        /// A terminal that lost connectivity.
        src: usize,
        /// A terminal it can no longer reach.
        dest: usize,
    },
    /// The stall watchdog observed a zero-progress window with packets
    /// still in flight: no flit advanced and no packet ejected for
    /// [`crate::SimConfig::watchdog_every`] cycles. The report names
    /// the hottest blocked resources; it is bit-identical at any shard
    /// count.
    Stalled(StallReport),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidSpec(msg) => write!(f, "invalid network spec: {msg}"),
            SimError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            SimError::InvalidRoute(msg) => write!(f, "invalid route: {msg}"),
            SimError::RouteLoop { src, dest, bound } => write!(
                f,
                "route {src} -> {dest} did not eject within {bound} hops: route loop"
            ),
            SimError::InvalidFaultPlan(msg) => write!(f, "invalid fault plan: {msg}"),
            SimError::Unreachable { src, dest } => write!(
                f,
                "fault plan disconnects the network: terminal {src} cannot reach terminal {dest}"
            ),
            SimError::Stalled(report) => write!(f, "simulation stalled: {report}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_kind_and_detail() {
        let e = SimError::InvalidSpec("router 3 port 1: peer missing".into());
        assert!(e.to_string().contains("invalid network spec"));
        assert!(e.to_string().contains("peer missing"));
        let e = SimError::RouteLoop {
            src: 4,
            dest: 9,
            bound: 6,
        };
        assert!(e.to_string().contains("4 -> 9"));
        assert!(e.to_string().contains("6 hops"));
    }

    #[test]
    fn fault_errors_display() {
        let e = SimError::InvalidFaultPlan("fraction 1.5 out of range".into());
        assert!(e.to_string().contains("invalid fault plan"));
        assert!(e.to_string().contains("1.5"));
        let e = SimError::Unreachable { src: 3, dest: 11 };
        assert!(e.to_string().contains("terminal 3"));
        assert!(e.to_string().contains("terminal 11"));
    }
}
