//! Structural description of a simulatable network.

use crate::error::SimError;
use crate::fault::FaultPlan;

/// The packaging class of a channel, which determines its latency default
/// and whether the credit-delay mechanism applies to credits crossing it
/// (credits over *global* channels are never delayed, per §4.3.2 of the
/// paper).
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChannelClass {
    /// Terminal (injection/ejection) channel between a node and its router.
    Terminal,
    /// Intra-group (or intra-cabinet) electrical channel.
    Local,
    /// Inter-group optical channel.
    Global,
}

/// What a router port is wired to.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Connection {
    /// The port attaches terminal `terminal`.
    Terminal {
        /// Terminal index in `0..num_terminals`.
        terminal: u32,
    },
    /// The port attaches to `port` of `router` by a paired channel
    /// (one in each direction).
    Router {
        /// Peer router index.
        router: u32,
        /// Peer port index on that router.
        port: u32,
    },
}

/// One port of a router: its wiring, channel class and latency.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortSpec {
    /// Wiring of the port.
    pub conn: Connection,
    /// Channel latency in cycles (applies in both directions).
    pub latency: u32,
    /// Packaging class of the attached channel.
    pub class: ChannelClass,
}

/// A router: an ordered list of ports.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RouterSpec {
    /// The router's ports, in a topology-defined order.
    pub ports: Vec<PortSpec>,
}

/// A complete network description: routers, their wiring, terminals and
/// the virtual-channel count.
///
/// Built by topology adapters (the `dragonfly` crate builds dragonflies
/// and flattened butterflies); consumed by [`crate::Simulation`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkSpec {
    /// All routers.
    pub routers: Vec<RouterSpec>,
    /// Number of virtual channels on every channel.
    pub vcs: usize,
    /// For each terminal `t`, the `(router, port)` it attaches to.
    /// Derived by [`NetworkSpec::validated`].
    terminal_ports: Vec<(u32, u32)>,
    /// Per-router per-port failure mask; empty when no faults were
    /// applied. Both directions of a failed cable are marked.
    failed: Vec<Vec<bool>>,
    /// Canonical failed cables, as resolved by the applied [`FaultPlan`]
    /// (lexicographically smaller directed endpoint per cable).
    failed_links: Vec<(usize, usize)>,
}

impl NetworkSpec {
    /// Builds and validates a network description.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidSpec`] describing the first structural
    /// defect found: dangling or asymmetric router-router wiring,
    /// mismatched latency or class across a channel pair, terminals that
    /// are missing, duplicated, or not densely numbered, local ports wired
    /// to a terminal (or vice versa), or a zero VC count. Catching these
    /// at construction means routing never encounters them at run time.
    pub fn validated(routers: Vec<RouterSpec>, vcs: usize) -> Result<Self, SimError> {
        let invalid = |msg: String| SimError::InvalidSpec(msg);
        if vcs == 0 {
            return Err(invalid("virtual channel count must be >= 1".into()));
        }
        let mut terminals: Vec<Option<(u32, u32)>> = Vec::new();
        for (r, router) in routers.iter().enumerate() {
            for (p, port) in router.ports.iter().enumerate() {
                match port.conn {
                    Connection::Terminal { terminal } => {
                        let t = terminal as usize;
                        if port.class != ChannelClass::Terminal {
                            return Err(invalid(format!(
                                "router {r} port {p}: terminal connection with class {:?}",
                                port.class
                            )));
                        }
                        if t >= terminals.len() {
                            terminals.resize(t + 1, None);
                        }
                        if terminals[t].is_some() {
                            return Err(invalid(format!("terminal {t} attached more than once")));
                        }
                        terminals[t] = Some((r as u32, p as u32));
                    }
                    Connection::Router {
                        router: peer,
                        port: peer_port,
                    } => {
                        let peer_spec = routers.get(peer as usize).ok_or_else(|| {
                            invalid(format!("router {r} port {p}: peer {peer} missing"))
                        })?;
                        let back = peer_spec.ports.get(peer_port as usize).ok_or_else(|| {
                            invalid(format!(
                                "router {r} port {p}: peer port {peer_port} missing"
                            ))
                        })?;
                        match back.conn {
                            Connection::Router {
                                router: rr,
                                port: pp,
                            } if rr as usize == r && pp as usize == p => {}
                            _ => {
                                return Err(invalid(format!(
                                "router {r} port {p}: peer {peer}:{peer_port} does not point back"
                            )))
                            }
                        }
                        if back.latency != port.latency || back.class != port.class {
                            return Err(invalid(format!(
                                "router {r} port {p}: latency/class mismatch with peer"
                            )));
                        }
                        if port.class == ChannelClass::Terminal {
                            return Err(invalid(format!(
                                "router {r} port {p}: router connection with terminal class"
                            )));
                        }
                    }
                }
                if port.latency == 0 {
                    return Err(invalid(format!(
                        "router {r} port {p}: latency must be >= 1"
                    )));
                }
            }
        }
        let terminal_ports = terminals
            .into_iter()
            .enumerate()
            .map(|(t, slot)| slot.ok_or_else(|| invalid(format!("terminal {t} not attached"))))
            .collect::<Result<Vec<_>, _>>()?;
        if terminal_ports.is_empty() {
            return Err(invalid("network has no terminals".into()));
        }
        Ok(NetworkSpec {
            routers,
            vcs,
            terminal_ports,
            failed: Vec::new(),
            failed_links: Vec::new(),
        })
    }

    /// Applies a [`FaultPlan`], failing both directions of every cable
    /// it resolves to. Faults compose: applying a second plan adds to
    /// the links already failed.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidFaultPlan`] if the plan is malformed (see
    /// [`FaultPlan::resolve`]); [`SimError::Unreachable`] if the
    /// surviving links leave some pair of terminals disconnected —
    /// degraded networks always deliver, or they are rejected here, so
    /// routing never hangs on an unreachable destination.
    pub fn with_faults(mut self, plan: &FaultPlan) -> Result<Self, SimError> {
        let links = plan.resolve(&self)?;
        if links.is_empty() {
            return Ok(self);
        }
        if self.failed.is_empty() {
            self.failed = self
                .routers
                .iter()
                .map(|r| vec![false; r.ports.len()])
                .collect();
        }
        for &(r, p) in &links {
            self.failed[r][p] = true;
            if let Connection::Router {
                router: peer,
                port: peer_port,
            } = self.routers[r].ports[p].conn
            {
                self.failed[peer as usize][peer_port as usize] = true;
            }
            if !self.failed_links.contains(&(r, p)) {
                self.failed_links.push((r, p));
            }
        }
        self.failed_links.sort_unstable();
        self.check_connected()?;
        Ok(self)
    }

    /// BFS over alive links from the first terminal's router; errors
    /// with the first disconnected terminal pair found.
    fn check_connected(&self) -> Result<(), SimError> {
        let start = self.terminal_router(0);
        let mut seen = vec![false; self.routers.len()];
        seen[start] = true;
        let mut queue = std::collections::VecDeque::from([start]);
        while let Some(r) = queue.pop_front() {
            for (p, port) in self.routers[r].ports.iter().enumerate() {
                if self.is_failed(r, p) {
                    continue;
                }
                if let Connection::Router { router: peer, .. } = port.conn {
                    let peer = peer as usize;
                    if !seen[peer] {
                        seen[peer] = true;
                        queue.push_back(peer);
                    }
                }
            }
        }
        for (t, &(r, _)) in self.terminal_ports.iter().enumerate() {
            if !seen[r as usize] {
                return Err(SimError::Unreachable { src: 0, dest: t });
            }
        }
        Ok(())
    }

    /// Whether the directed channel out of `(router, port)` is failed.
    #[inline]
    pub fn is_failed(&self, router: usize, port: usize) -> bool {
        !self.failed.is_empty() && self.failed[router][port]
    }

    /// Whether any fault plan has been applied.
    #[inline]
    pub fn has_faults(&self) -> bool {
        !self.failed_links.is_empty()
    }

    /// The canonical failed cables (one `(router, port)` endpoint each).
    pub fn failed_links(&self) -> &[(usize, usize)] {
        &self.failed_links
    }

    /// Number of routers.
    pub fn num_routers(&self) -> usize {
        self.routers.len()
    }

    /// Number of terminals.
    pub fn num_terminals(&self) -> usize {
        self.terminal_ports.len()
    }

    /// The `(router, port)` a terminal attaches to.
    ///
    /// # Panics
    ///
    /// Panics if `terminal` is out of range.
    pub fn terminal_port(&self, terminal: usize) -> (usize, usize) {
        let (r, p) = self.terminal_ports[terminal];
        (r as usize, p as usize)
    }

    /// The router a terminal attaches to.
    ///
    /// # Panics
    ///
    /// Panics if `terminal` is out of range.
    pub fn terminal_router(&self, terminal: usize) -> usize {
        self.terminal_ports[terminal].0 as usize
    }

    /// Iterates over all directed router-to-router channels as
    /// `(router, port)` pairs (each physical cable appears twice, once per
    /// direction).
    pub fn network_channels(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.routers.iter().enumerate().flat_map(|(r, spec)| {
            spec.ports
                .iter()
                .enumerate()
                .filter(|(_, p)| matches!(p.conn, Connection::Router { .. }))
                .map(move |(i, _)| (r, i))
        })
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::fault::FaultPlan;

    /// A ring of `n` routers, one terminal each: port 0 terminal,
    /// port 1 clockwise, port 2 counter-clockwise.
    pub(crate) fn ring_spec(n: usize) -> Vec<RouterSpec> {
        (0..n)
            .map(|r| RouterSpec {
                ports: vec![
                    PortSpec {
                        conn: Connection::Terminal { terminal: r as u32 },
                        latency: 1,
                        class: ChannelClass::Terminal,
                    },
                    PortSpec {
                        conn: Connection::Router {
                            router: ((r + 1) % n) as u32,
                            port: 2,
                        },
                        latency: 1,
                        class: ChannelClass::Local,
                    },
                    PortSpec {
                        conn: Connection::Router {
                            router: ((r + n - 1) % n) as u32,
                            port: 1,
                        },
                        latency: 1,
                        class: ChannelClass::Local,
                    },
                ],
            })
            .collect()
    }

    /// A complete graph on `n` routers, one terminal each: port 0
    /// terminal, port `1 + i` to the i-th other router (in index order).
    pub(crate) fn full_spec(n: usize) -> Vec<RouterSpec> {
        let port_to = |r: usize, s: usize| if s < r { 1 + s } else { s };
        (0..n)
            .map(|r| {
                let mut ports = vec![PortSpec {
                    conn: Connection::Terminal { terminal: r as u32 },
                    latency: 1,
                    class: ChannelClass::Terminal,
                }];
                for s in (0..n).filter(|&s| s != r) {
                    ports.push(PortSpec {
                        conn: Connection::Router {
                            router: s as u32,
                            port: port_to(s, r) as u32,
                        },
                        latency: 1,
                        class: ChannelClass::Local,
                    });
                }
                RouterSpec { ports }
            })
            .collect()
    }

    /// Two routers joined by one local channel, one terminal each.
    pub(crate) fn tiny_spec() -> Vec<RouterSpec> {
        let term = |t: u32| PortSpec {
            conn: Connection::Terminal { terminal: t },
            latency: 1,
            class: ChannelClass::Terminal,
        };
        let link = |r: u32, p: u32| PortSpec {
            conn: Connection::Router { router: r, port: p },
            latency: 1,
            class: ChannelClass::Local,
        };
        vec![
            RouterSpec {
                ports: vec![term(0), link(1, 0)],
            },
            RouterSpec {
                ports: vec![link(0, 1), term(1)],
            },
        ]
    }

    #[test]
    fn valid_spec_accepted() {
        let spec = NetworkSpec::validated(tiny_spec(), 3).unwrap();
        assert_eq!(spec.num_routers(), 2);
        assert_eq!(spec.num_terminals(), 2);
        assert_eq!(spec.terminal_port(0), (0, 0));
        assert_eq!(spec.terminal_port(1), (1, 1));
        assert_eq!(spec.network_channels().count(), 2);
    }

    #[test]
    fn asymmetric_wiring_rejected() {
        let mut routers = tiny_spec();
        routers[1].ports[0].conn = Connection::Router { router: 0, port: 0 };
        let err = NetworkSpec::validated(routers, 3).unwrap_err().to_string();
        assert!(err.contains("does not point back"), "{err}");
    }

    #[test]
    fn latency_mismatch_rejected() {
        let mut routers = tiny_spec();
        routers[1].ports[0].latency = 5;
        let err = NetworkSpec::validated(routers, 3).unwrap_err().to_string();
        assert!(err.contains("mismatch"), "{err}");
    }

    #[test]
    fn duplicate_terminal_rejected() {
        let mut routers = tiny_spec();
        routers[1].ports[1].conn = Connection::Terminal { terminal: 0 };
        let err = NetworkSpec::validated(routers, 3).unwrap_err().to_string();
        assert!(err.contains("more than once"), "{err}");
    }

    #[test]
    fn missing_terminal_rejected() {
        let mut routers = tiny_spec();
        routers[1].ports[1].conn = Connection::Terminal { terminal: 2 };
        let err = NetworkSpec::validated(routers, 3).unwrap_err().to_string();
        assert!(err.contains("terminal 1 not attached"), "{err}");
    }

    #[test]
    fn zero_vcs_rejected() {
        let err = NetworkSpec::validated(tiny_spec(), 0)
            .unwrap_err()
            .to_string();
        assert!(err.contains("virtual channel"), "{err}");
    }

    #[test]
    fn zero_latency_rejected() {
        let mut routers = tiny_spec();
        routers[0].ports[0].latency = 0;
        routers[1].ports[1].latency = 0;
        let err = NetworkSpec::validated(routers, 2).unwrap_err().to_string();
        assert!(err.contains("latency"), "{err}");
    }

    #[test]
    fn fault_application_marks_both_directions() {
        let spec = NetworkSpec::validated(ring_spec(4), 2).unwrap();
        assert!(!spec.has_faults());
        let spec = spec
            .with_faults(&FaultPlan::Explicit(vec![(1, 2)]))
            .unwrap();
        assert!(spec.has_faults());
        // (1,2) <-> (0,1): canonical endpoint is (0,1).
        assert_eq!(spec.failed_links(), &[(0, 1)]);
        assert!(spec.is_failed(0, 1));
        assert!(spec.is_failed(1, 2));
        assert!(!spec.is_failed(1, 1));
        assert!(!spec.is_failed(0, 0));
    }

    #[test]
    fn faults_compose_across_applications() {
        // A complete graph survives two separate cable failures.
        let spec = NetworkSpec::validated(full_spec(4), 2)
            .unwrap()
            .with_faults(&FaultPlan::Explicit(vec![(0, 1)]))
            .unwrap()
            .with_faults(&FaultPlan::Explicit(vec![(2, 3)]))
            .unwrap();
        assert_eq!(spec.failed_links(), &[(0, 1), (2, 3)]);
        // A later application that disconnects on top of the earlier
        // faults is still caught.
        let spec2 = NetworkSpec::validated(ring_spec(4), 2)
            .unwrap()
            .with_faults(&FaultPlan::Explicit(vec![(0, 1)]))
            .unwrap();
        let err = spec2
            .with_faults(&FaultPlan::Explicit(vec![(1, 1)]))
            .unwrap_err();
        assert_eq!(err, SimError::Unreachable { src: 0, dest: 1 });
    }

    #[test]
    fn disconnecting_plan_surfaces_unreachable() {
        // Failing both ring links around router 1 isolates terminal 1.
        let spec = NetworkSpec::validated(ring_spec(4), 2).unwrap();
        let err = spec
            .with_faults(&FaultPlan::Explicit(vec![(0, 1), (1, 1)]))
            .unwrap_err();
        assert_eq!(err, SimError::Unreachable { src: 0, dest: 1 });
    }

    #[test]
    fn none_plan_leaves_spec_unchanged() {
        let spec = NetworkSpec::validated(ring_spec(4), 2).unwrap();
        let same = spec.clone().with_faults(&FaultPlan::None).unwrap();
        assert_eq!(spec, same);
        assert!(!same.has_faults());
    }

    #[test]
    fn wrong_class_on_terminal_rejected() {
        let mut routers = tiny_spec();
        routers[0].ports[0].class = ChannelClass::Local;
        let err = NetworkSpec::validated(routers, 2).unwrap_err().to_string();
        assert!(err.contains("terminal connection with class"), "{err}");
    }
}
