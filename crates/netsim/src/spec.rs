//! Structural description of a simulatable network.

use crate::error::SimError;

/// The packaging class of a channel, which determines its latency default
/// and whether the credit-delay mechanism applies to credits crossing it
/// (credits over *global* channels are never delayed, per §4.3.2 of the
/// paper).
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChannelClass {
    /// Terminal (injection/ejection) channel between a node and its router.
    Terminal,
    /// Intra-group (or intra-cabinet) electrical channel.
    Local,
    /// Inter-group optical channel.
    Global,
}

/// What a router port is wired to.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Connection {
    /// The port attaches terminal `terminal`.
    Terminal {
        /// Terminal index in `0..num_terminals`.
        terminal: u32,
    },
    /// The port attaches to `port` of `router` by a paired channel
    /// (one in each direction).
    Router {
        /// Peer router index.
        router: u32,
        /// Peer port index on that router.
        port: u32,
    },
}

/// One port of a router: its wiring, channel class and latency.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortSpec {
    /// Wiring of the port.
    pub conn: Connection,
    /// Channel latency in cycles (applies in both directions).
    pub latency: u32,
    /// Packaging class of the attached channel.
    pub class: ChannelClass,
}

/// A router: an ordered list of ports.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RouterSpec {
    /// The router's ports, in a topology-defined order.
    pub ports: Vec<PortSpec>,
}

/// A complete network description: routers, their wiring, terminals and
/// the virtual-channel count.
///
/// Built by topology adapters (the `dragonfly` crate builds dragonflies
/// and flattened butterflies); consumed by [`crate::Simulation`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkSpec {
    /// All routers.
    pub routers: Vec<RouterSpec>,
    /// Number of virtual channels on every channel.
    pub vcs: usize,
    /// For each terminal `t`, the `(router, port)` it attaches to.
    /// Derived by [`NetworkSpec::validated`].
    terminal_ports: Vec<(u32, u32)>,
}

impl NetworkSpec {
    /// Builds and validates a network description.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidSpec`] describing the first structural
    /// defect found: dangling or asymmetric router-router wiring,
    /// mismatched latency or class across a channel pair, terminals that
    /// are missing, duplicated, or not densely numbered, local ports wired
    /// to a terminal (or vice versa), or a zero VC count. Catching these
    /// at construction means routing never encounters them at run time.
    pub fn validated(routers: Vec<RouterSpec>, vcs: usize) -> Result<Self, SimError> {
        let invalid = |msg: String| SimError::InvalidSpec(msg);
        if vcs == 0 {
            return Err(invalid("virtual channel count must be >= 1".into()));
        }
        let mut terminals: Vec<Option<(u32, u32)>> = Vec::new();
        for (r, router) in routers.iter().enumerate() {
            for (p, port) in router.ports.iter().enumerate() {
                match port.conn {
                    Connection::Terminal { terminal } => {
                        let t = terminal as usize;
                        if port.class != ChannelClass::Terminal {
                            return Err(invalid(format!(
                                "router {r} port {p}: terminal connection with class {:?}",
                                port.class
                            )));
                        }
                        if t >= terminals.len() {
                            terminals.resize(t + 1, None);
                        }
                        if terminals[t].is_some() {
                            return Err(invalid(format!("terminal {t} attached more than once")));
                        }
                        terminals[t] = Some((r as u32, p as u32));
                    }
                    Connection::Router {
                        router: peer,
                        port: peer_port,
                    } => {
                        let peer_spec = routers.get(peer as usize).ok_or_else(|| {
                            invalid(format!("router {r} port {p}: peer {peer} missing"))
                        })?;
                        let back = peer_spec.ports.get(peer_port as usize).ok_or_else(|| {
                            invalid(format!(
                                "router {r} port {p}: peer port {peer_port} missing"
                            ))
                        })?;
                        match back.conn {
                            Connection::Router {
                                router: rr,
                                port: pp,
                            } if rr as usize == r && pp as usize == p => {}
                            _ => {
                                return Err(invalid(format!(
                                "router {r} port {p}: peer {peer}:{peer_port} does not point back"
                            )))
                            }
                        }
                        if back.latency != port.latency || back.class != port.class {
                            return Err(invalid(format!(
                                "router {r} port {p}: latency/class mismatch with peer"
                            )));
                        }
                        if port.class == ChannelClass::Terminal {
                            return Err(invalid(format!(
                                "router {r} port {p}: router connection with terminal class"
                            )));
                        }
                    }
                }
                if port.latency == 0 {
                    return Err(invalid(format!(
                        "router {r} port {p}: latency must be >= 1"
                    )));
                }
            }
        }
        let terminal_ports = terminals
            .into_iter()
            .enumerate()
            .map(|(t, slot)| slot.ok_or_else(|| invalid(format!("terminal {t} not attached"))))
            .collect::<Result<Vec<_>, _>>()?;
        if terminal_ports.is_empty() {
            return Err(invalid("network has no terminals".into()));
        }
        Ok(NetworkSpec {
            routers,
            vcs,
            terminal_ports,
        })
    }

    /// Number of routers.
    pub fn num_routers(&self) -> usize {
        self.routers.len()
    }

    /// Number of terminals.
    pub fn num_terminals(&self) -> usize {
        self.terminal_ports.len()
    }

    /// The `(router, port)` a terminal attaches to.
    ///
    /// # Panics
    ///
    /// Panics if `terminal` is out of range.
    pub fn terminal_port(&self, terminal: usize) -> (usize, usize) {
        let (r, p) = self.terminal_ports[terminal];
        (r as usize, p as usize)
    }

    /// The router a terminal attaches to.
    ///
    /// # Panics
    ///
    /// Panics if `terminal` is out of range.
    pub fn terminal_router(&self, terminal: usize) -> usize {
        self.terminal_ports[terminal].0 as usize
    }

    /// Iterates over all directed router-to-router channels as
    /// `(router, port)` pairs (each physical cable appears twice, once per
    /// direction).
    pub fn network_channels(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.routers.iter().enumerate().flat_map(|(r, spec)| {
            spec.ports
                .iter()
                .enumerate()
                .filter(|(_, p)| matches!(p.conn, Connection::Router { .. }))
                .map(move |(i, _)| (r, i))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two routers joined by one local channel, one terminal each.
    pub(crate) fn tiny_spec() -> Vec<RouterSpec> {
        let term = |t: u32| PortSpec {
            conn: Connection::Terminal { terminal: t },
            latency: 1,
            class: ChannelClass::Terminal,
        };
        let link = |r: u32, p: u32| PortSpec {
            conn: Connection::Router { router: r, port: p },
            latency: 1,
            class: ChannelClass::Local,
        };
        vec![
            RouterSpec {
                ports: vec![term(0), link(1, 0)],
            },
            RouterSpec {
                ports: vec![link(0, 1), term(1)],
            },
        ]
    }

    #[test]
    fn valid_spec_accepted() {
        let spec = NetworkSpec::validated(tiny_spec(), 3).unwrap();
        assert_eq!(spec.num_routers(), 2);
        assert_eq!(spec.num_terminals(), 2);
        assert_eq!(spec.terminal_port(0), (0, 0));
        assert_eq!(spec.terminal_port(1), (1, 1));
        assert_eq!(spec.network_channels().count(), 2);
    }

    #[test]
    fn asymmetric_wiring_rejected() {
        let mut routers = tiny_spec();
        routers[1].ports[0].conn = Connection::Router { router: 0, port: 0 };
        let err = NetworkSpec::validated(routers, 3).unwrap_err().to_string();
        assert!(err.contains("does not point back"), "{err}");
    }

    #[test]
    fn latency_mismatch_rejected() {
        let mut routers = tiny_spec();
        routers[1].ports[0].latency = 5;
        let err = NetworkSpec::validated(routers, 3).unwrap_err().to_string();
        assert!(err.contains("mismatch"), "{err}");
    }

    #[test]
    fn duplicate_terminal_rejected() {
        let mut routers = tiny_spec();
        routers[1].ports[1].conn = Connection::Terminal { terminal: 0 };
        let err = NetworkSpec::validated(routers, 3).unwrap_err().to_string();
        assert!(err.contains("more than once"), "{err}");
    }

    #[test]
    fn missing_terminal_rejected() {
        let mut routers = tiny_spec();
        routers[1].ports[1].conn = Connection::Terminal { terminal: 2 };
        let err = NetworkSpec::validated(routers, 3).unwrap_err().to_string();
        assert!(err.contains("terminal 1 not attached"), "{err}");
    }

    #[test]
    fn zero_vcs_rejected() {
        let err = NetworkSpec::validated(tiny_spec(), 0)
            .unwrap_err()
            .to_string();
        assert!(err.contains("virtual channel"), "{err}");
    }

    #[test]
    fn zero_latency_rejected() {
        let mut routers = tiny_spec();
        routers[0].ports[0].latency = 0;
        routers[1].ports[1].latency = 0;
        let err = NetworkSpec::validated(routers, 2).unwrap_err().to_string();
        assert!(err.contains("latency"), "{err}");
    }

    #[test]
    fn wrong_class_on_terminal_rejected() {
        let mut routers = tiny_spec();
        routers[0].ports[0].class = ChannelClass::Local;
        let err = NetworkSpec::validated(routers, 2).unwrap_err().to_string();
        assert!(err.contains("terminal connection with class"), "{err}");
    }
}
