//! A cycle-accurate, flit-level interconnection-network simulator.
//!
//! This crate is the evaluation substrate of the dragonfly reproduction:
//! input-queued single-cycle routers with virtual channels, credit-based
//! flow control, per-class channel latencies, Bernoulli (or bursty)
//! injection, and the warm-up / labelled-measurement / drain methodology
//! of Dally & Towles that the paper's §4.2 describes. It also implements
//! the paper's *credit round-trip* mechanism (§4.3.2, Figure 17): credit
//! timestamp queues measure per-output congestion and returned credits
//! are delayed to stiffen backpressure, which is what makes the
//! UGAL-L(CR) routing variant possible.
//!
//! The crate is topology-agnostic: a [`NetworkSpec`] describes any wired
//! network, and a [`RoutingAlgorithm`] drives it. The `dragonfly` crate
//! provides the dragonfly topology builder and the MIN / VAL / UGAL
//! routing family on top of these interfaces.
//!
//! # Example
//!
//! See [`Simulation`] for a complete runnable example; the typical
//! shape is:
//!
//! ```text
//! let spec    = ...;                      // NetworkSpec from a topology
//! let algo    = ...;                      // impl RoutingAlgorithm
//! let traffic = UniformRandom::new(spec.num_terminals());
//! let stats   = Simulation::new(&spec, &algo, &traffic, SimConfig::paper_default(0.4))?.run();
//! println!("avg latency {:?}", stats.avg_latency());
//! ```

// Unsafe is denied crate-wide and allowed only on the two items the
// sharded cycle engine needs: the shared router table (`sim::ShardTable`)
// and the raw-pointer internals of `NetView`. Each unsafe block carries
// its field-disjointness argument.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod adaptive;
mod algebra;
mod arena;
mod config;
mod error;
mod fault;
mod flit;
mod health;
mod routing;
mod sim;
mod spec;
mod stats;
pub mod telemetry;

pub use adaptive::{
    CandidatePath, CandidatePaths, CongestionEstimator, CreditCommitted, EwmaOccupancy,
    GlobalOracle, QueueOccupancy, UgalChooser, UgalDecision, VcHybrid, VcOccupancy,
};
pub use algebra::RouteAlgebra;
pub use config::{CreditMode, InjectionKind, SimConfig, TdEstimator, TelemetryConfig, Termination};
pub use error::SimError;
pub use fault::{FaultClass, FaultPlan, FaultTable};
pub use flit::{Flit, RouteClass, RouteInfo};
pub use health::{warmup_convergence, Span, SpanTree, StallReport, WARMUP_DRIFT_LIMIT};
pub use routing::{
    trace_path, DecisionRecord, NetView, PortVc, RoutingAlgorithm, ShortestPathRouting, TraceHop,
};
pub use sim::{SimPerf, Simulation};
pub use spec::{ChannelClass, Connection, NetworkSpec, PortSpec, RouterSpec};
pub use stats::{ChannelLoad, Histogram, LatencySummary, RouteTelemetry, RunStats};
pub use telemetry::{
    ChannelSeries, EstimatorScoreboard, FlitTrace, FlitTracer, LogHistogram, MetricsRegistry,
    TimeSeries, TraceEvent, TraceEventKind,
};
