//! Link-failure injection.
//!
//! A [`FaultPlan`] names a set of router-to-router cables to fail —
//! either explicitly or as a seeded random fraction of a channel class —
//! and [`crate::NetworkSpec::with_faults`] applies it, marking both
//! directions of every selected cable dead. Random draws are *nested*:
//! for a fixed seed, the fault set at fraction `f1 < f2` is a subset of
//! the set at `f2`, so degradation curves over increasing fractions
//! compare monotone fault sets instead of independent draws.
//!
//! [`FaultTable`] is the alive-path complement: per-destination BFS
//! next-hop tables over the surviving links, which topology adapters use
//! to detour packets around dead links.

use crate::error::SimError;
use crate::spec::{ChannelClass, Connection, NetworkSpec};

/// Which channel class a random fault draw selects from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// Inter-group (optical) channels only.
    Global,
    /// Intra-group (electrical) channels only.
    Local,
    /// Any router-to-router channel.
    Any,
}

impl FaultClass {
    fn matches(self, class: ChannelClass) -> bool {
        match self {
            FaultClass::Global => class == ChannelClass::Global,
            FaultClass::Local => class == ChannelClass::Local,
            FaultClass::Any => class != ChannelClass::Terminal,
        }
    }
}

/// A set of cables to fail, resolved against a [`NetworkSpec`].
///
/// Terminal (injection/ejection) channels can never fail; a cable always
/// fails in both directions, preserving the spec's symmetric-pair
/// invariant.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultPlan {
    /// No faults (the identity plan).
    None,
    /// Fail exactly the listed links, each named by one directed
    /// `(router, port)` endpoint (either direction of the cable works).
    Explicit(Vec<(usize, usize)>),
    /// Fail a seeded random `fraction` of the cables in `class`.
    ///
    /// The failed count is `round(fraction * cables_in_class)`; the
    /// selection is a hash order of the canonical cable list, so it is
    /// deterministic in `seed` and nested across fractions.
    Random {
        /// Fraction of matching cables to fail, in `[0, 1]`.
        fraction: f64,
        /// Seed of the hash order (same seed ⇒ nested fault sets).
        seed: u64,
        /// Channel class the draw selects from.
        class: FaultClass,
    },
}

impl FaultPlan {
    /// A seeded random fraction of the global channels.
    pub fn random_global(fraction: f64, seed: u64) -> Self {
        FaultPlan::Random {
            fraction,
            seed,
            class: FaultClass::Global,
        }
    }

    /// A seeded random fraction of the local channels.
    pub fn random_local(fraction: f64, seed: u64) -> Self {
        FaultPlan::Random {
            fraction,
            seed,
            class: FaultClass::Local,
        }
    }

    /// A seeded random fraction of all router-to-router channels.
    pub fn random_any(fraction: f64, seed: u64) -> Self {
        FaultPlan::Random {
            fraction,
            seed,
            class: FaultClass::Any,
        }
    }

    /// Whether the plan fails nothing.
    pub fn is_none(&self) -> bool {
        match self {
            FaultPlan::None => true,
            FaultPlan::Explicit(links) => links.is_empty(),
            FaultPlan::Random { fraction, .. } => *fraction == 0.0,
        }
    }

    /// Resolves the plan against `spec` into the canonical list of
    /// failed cables, each as the lexicographically smaller directed
    /// endpoint `(router, port)`.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidFaultPlan`] if a fraction is outside `[0, 1]`
    /// (or not finite), an explicit link names a port that does not
    /// exist or is a terminal channel, or a positive fraction draws from
    /// a class with no channels.
    pub fn resolve(&self, spec: &NetworkSpec) -> Result<Vec<(usize, usize)>, SimError> {
        let invalid = |msg: String| SimError::InvalidFaultPlan(msg);
        match self {
            FaultPlan::None => Ok(Vec::new()),
            FaultPlan::Explicit(links) => {
                let mut out = Vec::with_capacity(links.len());
                for &(r, p) in links {
                    let port = spec
                        .routers
                        .get(r)
                        .and_then(|router| router.ports.get(p))
                        .ok_or_else(|| invalid(format!("router {r} port {p} does not exist")))?;
                    match port.conn {
                        Connection::Terminal { .. } => {
                            return Err(invalid(format!(
                                "router {r} port {p} is a terminal channel; terminals cannot fail"
                            )))
                        }
                        Connection::Router {
                            router: peer,
                            port: peer_port,
                        } => {
                            let canon = canonical(r, p, peer as usize, peer_port as usize);
                            if !out.contains(&canon) {
                                out.push(canon);
                            }
                        }
                    }
                }
                out.sort_unstable();
                Ok(out)
            }
            FaultPlan::Random {
                fraction,
                seed,
                class,
            } => {
                if !fraction.is_finite() || !(0.0..=1.0).contains(fraction) {
                    return Err(invalid(format!("fraction {fraction} out of range [0, 1]")));
                }
                let mut cables: Vec<(usize, usize)> = Vec::new();
                for (r, p) in spec.network_channels() {
                    let port = &spec.routers[r].ports[p];
                    if !class.matches(port.class) {
                        continue;
                    }
                    if let Connection::Router {
                        router: peer,
                        port: peer_port,
                    } = port.conn
                    {
                        let canon = canonical(r, p, peer as usize, peer_port as usize);
                        if canon == (r, p) {
                            cables.push(canon);
                        }
                    }
                }
                if cables.is_empty() && *fraction > 0.0 {
                    return Err(invalid(format!("no channels of class {class:?} to fail")));
                }
                let count = (fraction * cables.len() as f64).round() as usize;
                // Hash order: stable in the seed, so a larger fraction's
                // fault set strictly contains a smaller one's.
                cables.sort_by_key(|&(r, p)| (splitmix(*seed, (r as u64) << 20 | p as u64), r, p));
                cables.truncate(count);
                cables.sort_unstable();
                Ok(cables)
            }
        }
    }
}

/// The smaller directed endpoint of a cable.
fn canonical(r: usize, p: usize, peer: usize, peer_port: usize) -> (usize, usize) {
    if (r, p) <= (peer, peer_port) {
        (r, p)
    } else {
        (peer, peer_port)
    }
}

/// SplitMix64 over a seed/value pair — the repo's standard deterministic
/// hash for seed-derived orderings.
fn splitmix(seed: u64, v: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(v)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One destination's reverse-BFS column: next-hop port and alive
/// distance for every router, built lazily on first use.
#[derive(Debug, Clone)]
struct FaultCol {
    /// `next[router]` = output port toward the destination; `u16::MAX`
    /// when `router` is the destination or the destination is
    /// unreachable.
    next: Vec<u16>,
    /// `dist[router]` = alive hops to the destination; `u16::MAX` when
    /// unreachable.
    dist: Vec<u16>,
}

/// Per-destination BFS next-hop tables over the alive links of a
/// (possibly faulted) [`NetworkSpec`].
///
/// Topology adapters consult this when faults are present: following
/// `next_port` strictly decreases the alive-graph distance every hop, so
/// a detoured packet can neither loop nor livelock, and its hop count is
/// bounded by the alive diameter.
///
/// Columns are materialised per destination on first touch, so memory is
/// `O(routers × destinations actually routed to)` instead of
/// `O(routers²)`: a fault confined to one region only ever builds the
/// columns for destinations whose traffic crosses it. Distances are
/// stored as `u16` — a network whose alive diameter exceeds 65534 hops
/// is far outside anything the spec layer can build.
#[derive(Debug)]
pub struct FaultTable {
    spec: NetworkSpec,
    cols: Vec<std::sync::OnceLock<Box<FaultCol>>>,
    diameter: u32,
}

impl Clone for FaultTable {
    fn clone(&self) -> Self {
        FaultTable {
            spec: self.spec.clone(),
            cols: self.cols.clone(),
            diameter: self.diameter,
        }
    }
}

/// Builds one destination's reverse-BFS column over the alive links. All
/// links are symmetric pairs, so out-ports double as in-links.
fn build_col(spec: &NetworkSpec, dest: usize) -> FaultCol {
    let n = spec.num_routers();
    let mut next = vec![u16::MAX; n];
    let mut dist = vec![u16::MAX; n];
    dist[dest] = 0;
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(dest);
    while let Some(r) = queue.pop_front() {
        for port in spec.routers[r].ports.iter() {
            let Connection::Router {
                router: peer,
                port: peer_port,
            } = port.conn
            else {
                continue;
            };
            let (peer, peer_port) = (peer as usize, peer_port as usize);
            if spec.is_failed(peer, peer_port) || dist[peer] != u16::MAX {
                continue;
            }
            dist[peer] = dist[r] + 1;
            next[peer] = peer_port as u16;
            queue.push_back(peer);
        }
    }
    FaultCol { next, dist }
}

impl FaultTable {
    /// Prepares lazy next-hop tables over the alive links of `spec`.
    ///
    /// Construction computes only the alive diameter (with `O(routers)`
    /// scratch); per-destination columns are built on first
    /// [`next_port`](Self::next_port) / [`distance`](Self::distance)
    /// touch.
    pub fn new(spec: &NetworkSpec) -> Self {
        let n = spec.num_routers();
        // Alive diameter by reverse BFS from every destination, reusing
        // one scratch column; O(routers × links) time, O(routers) space.
        let mut diameter = 0u32;
        let mut dist = vec![u16::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        for dest in 0..n {
            dist.fill(u16::MAX);
            dist[dest] = 0;
            queue.clear();
            queue.push_back(dest);
            while let Some(r) = queue.pop_front() {
                for port in spec.routers[r].ports.iter() {
                    let Connection::Router {
                        router: peer,
                        port: peer_port,
                    } = port.conn
                    else {
                        continue;
                    };
                    let (peer, peer_port) = (peer as usize, peer_port as usize);
                    if spec.is_failed(peer, peer_port) || dist[peer] != u16::MAX {
                        continue;
                    }
                    dist[peer] = dist[r] + 1;
                    diameter = diameter.max(dist[peer] as u32);
                    queue.push_back(peer);
                }
            }
        }
        let mut cols = Vec::new();
        cols.resize_with(n, std::sync::OnceLock::new);
        FaultTable {
            spec: spec.clone(),
            cols,
            diameter,
        }
    }

    fn col(&self, dest: usize) -> &FaultCol {
        self.cols[dest].get_or_init(|| Box::new(build_col(&self.spec, dest)))
    }

    /// The output port at `router` of a shortest alive path to `dest`,
    /// or `None` if `router == dest` or `dest` is unreachable.
    pub fn next_port(&self, router: usize, dest: usize) -> Option<usize> {
        let p = self.col(dest).next[router];
        (p != u16::MAX).then_some(p as usize)
    }

    /// Alive-graph hop distance, or `None` if unreachable.
    pub fn distance(&self, router: usize, dest: usize) -> Option<u32> {
        let d = self.col(dest).dist[router];
        (d != u16::MAX).then_some(d as u32)
    }

    /// The largest finite router-to-router distance over alive links.
    pub fn diameter(&self) -> u32 {
        self.diameter
    }

    /// How many destination columns have been materialised so far —
    /// observability for the laziness contract (and its tests).
    pub fn built_columns(&self) -> usize {
        self.cols.iter().filter(|c| c.get().is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::tests::ring_spec;

    #[test]
    fn none_plan_resolves_empty() {
        let spec = NetworkSpec::validated(ring_spec(4), 2).unwrap();
        assert!(FaultPlan::None.resolve(&spec).unwrap().is_empty());
        assert!(FaultPlan::None.is_none());
        assert!(FaultPlan::random_global(0.0, 7).is_none());
    }

    #[test]
    fn explicit_canonicalises_and_dedups() {
        let spec = NetworkSpec::validated(ring_spec(4), 2).unwrap();
        // Router 0 port 1 <-> router 1 port 2: both namings, twice.
        let plan = FaultPlan::Explicit(vec![(0, 1), (1, 2), (0, 1)]);
        let links = plan.resolve(&spec).unwrap();
        assert_eq!(links, vec![(0, 1)]);
    }

    #[test]
    fn explicit_rejects_missing_and_terminal_ports() {
        let spec = NetworkSpec::validated(ring_spec(4), 2).unwrap();
        let err = FaultPlan::Explicit(vec![(9, 0)])
            .resolve(&spec)
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidFaultPlan(_)), "{err}");
        let err = FaultPlan::Explicit(vec![(0, 0)])
            .resolve(&spec)
            .unwrap_err();
        assert!(err.to_string().contains("terminal"), "{err}");
    }

    #[test]
    fn random_fraction_out_of_range_rejected() {
        let spec = NetworkSpec::validated(ring_spec(4), 2).unwrap();
        for f in [-0.1, 1.5, f64::NAN] {
            let err = FaultPlan::random_any(f, 1).resolve(&spec).unwrap_err();
            assert!(matches!(err, SimError::InvalidFaultPlan(_)), "{err}");
        }
    }

    #[test]
    fn random_draw_on_empty_class_rejected() {
        // The ring has only local channels.
        let spec = NetworkSpec::validated(ring_spec(4), 2).unwrap();
        let err = FaultPlan::random_global(0.5, 1).resolve(&spec).unwrap_err();
        assert!(err.to_string().contains("no channels"), "{err}");
    }

    #[test]
    fn random_draws_are_nested_across_fractions() {
        let spec = NetworkSpec::validated(ring_spec(8), 2).unwrap();
        let small = FaultPlan::random_any(0.25, 42).resolve(&spec).unwrap();
        let large = FaultPlan::random_any(0.5, 42).resolve(&spec).unwrap();
        assert!(small.len() < large.len());
        for link in &small {
            assert!(large.contains(link), "nested sets: {link:?}");
        }
        // Deterministic in the seed.
        assert_eq!(
            small,
            FaultPlan::random_any(0.25, 42).resolve(&spec).unwrap()
        );
        assert_ne!(
            small,
            FaultPlan::random_any(0.25, 43).resolve(&spec).unwrap()
        );
    }

    #[test]
    fn fault_table_columns_build_lazily() {
        let spec = NetworkSpec::validated(ring_spec(6), 2).unwrap();
        let spec = spec
            .with_faults(&FaultPlan::Explicit(vec![(0, 1)]))
            .unwrap();
        let table = FaultTable::new(&spec);
        assert_eq!(table.built_columns(), 0, "construction builds no columns");
        assert!(table.diameter() > 0, "diameter is still eager");
        table.next_port(0, 3);
        assert_eq!(table.built_columns(), 1);
        table.distance(5, 3);
        assert_eq!(table.built_columns(), 1, "same destination, same column");
        table.distance(5, 2);
        assert_eq!(table.built_columns(), 2);
    }

    #[test]
    fn fault_table_routes_around_a_dead_link() {
        let spec = NetworkSpec::validated(ring_spec(4), 2).unwrap();
        let spec = spec
            .with_faults(&FaultPlan::Explicit(vec![(0, 1)]))
            .unwrap();
        let table = FaultTable::new(&spec);
        // 0 -> 1 must now go the long way round: 3 hops.
        assert_eq!(table.distance(0, 1), Some(3));
        assert_eq!(table.distance(1, 0), Some(3));
        assert_eq!(table.distance(0, 0), Some(0));
        assert_eq!(table.next_port(0, 0), None);
        assert_eq!(table.diameter(), 3);
        // Walking next_port reaches the destination.
        let (mut r, mut hops) = (0usize, 0);
        while r != 1 {
            let p = table.next_port(r, 1).unwrap();
            assert!(!spec.is_failed(r, p));
            let Connection::Router { router, .. } = spec.routers[r].ports[p].conn else {
                panic!("next hop must be a router link");
            };
            r = router as usize;
            hops += 1;
            assert!(hops <= 3);
        }
    }
}
