//! Slab arena pooling every in-flight flit of one shard.
//!
//! The engine's queues (router input stages, per-output queues, channel
//! pipelines, terminal source/injection queues) used to be `VecDeque`s
//! of `Flit` values; every flit paid allocation and copying on each of
//! its hops. The arena replaces all of them with `u32` handles into one
//! per-shard slab: a flit is allocated once at packet generation,
//! relinked (three `u32` writes) per hop, and freed at ejection or when
//! it crosses a shard boundary by value. Freed slots feed an intrusive
//! free list, so steady-state simulation performs zero per-flit heap
//! allocation.
//!
//! The slab is laid out struct-of-arrays with the route-hot fields
//! (destination, route, hop/VC state — what route computation and
//! switching touch every cycle) split from the cold timestamps
//! (packet id, creation/injection cycles — touched once at ejection),
//! so the hot path streams 24-byte entries instead of whole flits.

use crate::flit::{Flit, RouteInfo};

/// Sentinel handle: no entry / end of list.
pub(crate) const NIL: u32 = u32::MAX;

const HEAD: u8 = 1;
const TAIL: u8 = 2;
const LABELED: u8 = 4;

/// Fields read on every hop: route computation, VC selection, switching.
#[derive(Debug, Clone, Copy)]
struct FlitHot {
    dest: u32,
    src: u32,
    route: RouteInfo,
    hops: u16,
    vc: u8,
    flags: u8,
}

/// Fields read once, at ejection (or when tracing).
#[derive(Debug, Clone, Copy)]
struct FlitCold {
    packet: u64,
    created: u64,
    injected: u64,
    tag: u32,
}

/// One shard's flit slab. All vectors are parallel, indexed by handle.
#[derive(Debug, Default)]
pub(crate) struct FlitArena {
    hot: Vec<FlitHot>,
    cold: Vec<FlitCold>,
    /// Intrusive successor link of whatever [`FlitQueue`] (or the free
    /// list) the slot is currently on.
    next: Vec<u32>,
    /// Queue-specific payload: the packed [`crate::PortVc`] of the
    /// computed route for input-stage entries, the origin input slot
    /// for output-queue entries.
    aux: Vec<u32>,
    /// Channel arrival cycle for pipeline entries.
    due: Vec<u64>,
    /// Head of the free list.
    free: u32,
}

impl FlitArena {
    pub fn new() -> Self {
        FlitArena {
            hot: Vec::new(),
            cold: Vec::new(),
            next: Vec::new(),
            aux: Vec::new(),
            due: Vec::new(),
            free: NIL,
        }
    }

    /// Total slots ever allocated. Test hook.
    #[cfg(test)]
    pub fn capacity(&self) -> usize {
        self.hot.len()
    }

    /// Length of the free list; equals [`FlitArena::capacity`] exactly
    /// when no flit is live. Test hook.
    #[cfg(test)]
    pub fn free_count(&self) -> usize {
        let mut n = 0;
        let mut h = self.free;
        while h != NIL {
            n += 1;
            h = self.next[h as usize];
        }
        n
    }

    /// Copies `flit` into a slot (recycling a freed one when available)
    /// and returns its handle.
    pub fn alloc(&mut self, flit: &Flit) -> u32 {
        let hot = FlitHot {
            dest: flit.dest,
            src: flit.src,
            route: flit.route,
            hops: flit.hops,
            vc: flit.vc,
            flags: (u8::from(flit.is_head) * HEAD)
                | (u8::from(flit.is_tail) * TAIL)
                | (u8::from(flit.labeled) * LABELED),
        };
        let cold = FlitCold {
            packet: flit.packet,
            created: flit.created,
            injected: flit.injected,
            tag: flit.tag,
        };
        if self.free != NIL {
            let h = self.free;
            self.free = self.next[h as usize];
            self.hot[h as usize] = hot;
            self.cold[h as usize] = cold;
            self.aux[h as usize] = 0;
            self.due[h as usize] = 0;
            h
        } else {
            let h = self.hot.len() as u32;
            assert!(h < NIL, "flit arena exhausted the u32 handle space");
            self.hot.push(hot);
            self.cold.push(cold);
            self.next.push(NIL);
            self.aux.push(0);
            self.due.push(0);
            h
        }
    }

    /// Returns `h`'s slot to the free list. The handle must be off
    /// every queue.
    pub fn dealloc(&mut self, h: u32) {
        self.next[h as usize] = self.free;
        self.free = h;
    }

    /// Reassembles the full flit value (for ejection, tracing, or
    /// crossing a shard boundary by value).
    pub fn get(&self, h: u32) -> Flit {
        let hot = self.hot[h as usize];
        let cold = self.cold[h as usize];
        Flit {
            dest: hot.dest,
            src: hot.src,
            route: hot.route,
            hops: hot.hops,
            vc: hot.vc,
            is_head: hot.flags & HEAD != 0,
            is_tail: hot.flags & TAIL != 0,
            labeled: hot.flags & LABELED != 0,
            packet: cold.packet,
            created: cold.created,
            injected: cold.injected,
            tag: cold.tag,
        }
    }

    pub fn dest(&self, h: u32) -> u32 {
        self.hot[h as usize].dest
    }

    pub fn src(&self, h: u32) -> u32 {
        self.hot[h as usize].src
    }

    pub fn vc(&self, h: u32) -> u8 {
        self.hot[h as usize].vc
    }

    pub fn set_vc(&mut self, h: u32, vc: u8) {
        self.hot[h as usize].vc = vc;
    }

    pub fn bump_hops(&mut self, h: u32) {
        self.hot[h as usize].hops += 1;
    }

    pub fn set_route(&mut self, h: u32, route: RouteInfo) {
        self.hot[h as usize].route = route;
    }

    pub fn is_head(&self, h: u32) -> bool {
        self.hot[h as usize].flags & HEAD != 0
    }

    pub fn is_tail(&self, h: u32) -> bool {
        self.hot[h as usize].flags & TAIL != 0
    }

    pub fn labeled(&self, h: u32) -> bool {
        self.hot[h as usize].flags & LABELED != 0
    }

    pub fn packet(&self, h: u32) -> u64 {
        self.cold[h as usize].packet
    }

    /// Creation cycle of `h` (the stall watchdog's age source).
    pub fn created(&self, h: u32) -> u64 {
        self.cold[h as usize].created
    }

    pub fn set_injected(&mut self, h: u32, t: u64) {
        self.cold[h as usize].injected = t;
    }

    pub fn due(&self, h: u32) -> u64 {
        self.due[h as usize]
    }

    pub fn set_due(&mut self, h: u32, due: u64) {
        self.due[h as usize] = due;
    }

    pub fn aux(&self, h: u32) -> u32 {
        self.aux[h as usize]
    }

    pub fn set_aux(&mut self, h: u32, aux: u32) {
        self.aux[h as usize] = aux;
    }
}

/// An intrusive FIFO of arena flits: 12 bytes regardless of occupancy,
/// which is what lets every router size its per-(port, VC) queues by
/// radix alone. Links live in the arena's `next` array; the queue only
/// stores its endpoints.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FlitQueue {
    head: u32,
    tail: u32,
    /// Entry count. Read (as a plain load) by [`crate::NetView`] while
    /// other shards route against frozen queue state — the same
    /// protocol the former `VecDeque::len` relied on.
    pub(crate) len: u32,
}

impl Default for FlitQueue {
    fn default() -> Self {
        FlitQueue {
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }
}

impl FlitQueue {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Handle of the oldest entry, if any.
    pub fn front(&self) -> Option<u32> {
        (self.head != NIL).then_some(self.head)
    }

    pub fn push_back(&mut self, arena: &mut FlitArena, h: u32) {
        arena.next[h as usize] = NIL;
        if self.tail == NIL {
            self.head = h;
        } else {
            arena.next[self.tail as usize] = h;
        }
        self.tail = h;
        self.len += 1;
    }

    /// Unlinks and returns the oldest entry. The caller owns the
    /// handle: re-queue it or [`FlitArena::dealloc`] it.
    pub fn pop_front(&mut self, arena: &FlitArena) -> Option<u32> {
        if self.head == NIL {
            return None;
        }
        let h = self.head;
        self.head = arena.next[h as usize];
        if self.head == NIL {
            self.tail = NIL;
        }
        self.len -= 1;
        Some(h)
    }

    /// Walks the queue front to back without unlinking (diagnostic
    /// scans; the queue must not be mutated while iterating).
    pub fn iter<'q>(&self, arena: &'q FlitArena) -> impl Iterator<Item = u32> + 'q {
        let mut h = self.head;
        std::iter::from_fn(move || {
            if h == NIL {
                return None;
            }
            let out = h;
            h = arena.next[h as usize];
            Some(out)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flit(packet: u64) -> Flit {
        Flit {
            dest: 7,
            src: 3,
            route: RouteInfo::minimal(),
            hops: 0,
            vc: 0,
            is_head: true,
            is_tail: false,
            labeled: true,
            tag: 5,
            packet,
            created: 11,
            injected: 0,
        }
    }

    #[test]
    fn round_trips_flits_and_recycles_slots() {
        let mut arena = FlitArena::new();
        let a = arena.alloc(&flit(1));
        let b = arena.alloc(&flit(2));
        assert_eq!(arena.get(a).packet, 1);
        assert_eq!(arena.get(b).packet, 2);
        assert_eq!(arena.get(a), flit(1));
        arena.dealloc(a);
        let c = arena.alloc(&flit(3));
        assert_eq!(c, a, "freed slot is recycled");
        assert_eq!(arena.capacity(), 2, "no growth while the free list feeds");
        arena.bump_hops(c);
        arena.set_vc(c, 2);
        let out = arena.get(c);
        assert_eq!((out.hops, out.vc, out.packet), (1, 2, 3));
    }

    #[test]
    fn queue_is_fifo_across_relinks() {
        let mut arena = FlitArena::new();
        let mut q = FlitQueue::new();
        let hs: Vec<u32> = (0..5).map(|i| arena.alloc(&flit(i))).collect();
        for &h in &hs {
            q.push_back(&mut arena, h);
        }
        assert_eq!(q.len, 5);
        // Move the middle of the queue onto another queue and back.
        let mut q2 = FlitQueue::new();
        assert_eq!(q.pop_front(&arena), Some(hs[0]));
        q2.push_back(&mut arena, hs[0]);
        assert_eq!(q2.front(), Some(hs[0]));
        for expect in 1..5 {
            let h = q.pop_front(&arena).unwrap();
            assert_eq!(arena.get(h).packet, expect);
            q2.push_back(&mut arena, h);
        }
        assert!(q.is_empty());
        assert_eq!(q.pop_front(&arena), None);
        for expect in 0..5 {
            let h = q2.pop_front(&arena).unwrap();
            assert_eq!(arena.get(h).packet, expect);
            arena.dealloc(h);
        }
        assert!(q2.is_empty());
    }
}
