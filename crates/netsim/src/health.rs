//! Run-health primitives: the stall watchdog's report and the
//! engine/phase/shard span tree.
//!
//! The cycle engine is deliberately allowed to run to a hard cap
//! (`warmup + measure + drain_cap`), which means a wedged network — a
//! credit-starved cycle, a routing bug, a hostile configuration — shows
//! up as a run that silently burns the whole cap and then reports
//! suspicious numbers. The watchdog (enabled via
//! [`crate::SimConfig::watchdog_every`]) checks progress on fixed cycle
//! boundaries and, on a zero-progress window with packets still in
//! flight, ends the run with [`crate::SimError::Stalled`] carrying a
//! [`StallReport`] that names the hottest blocked resources.
//!
//! Everything in the report is computed from deterministic engine state
//! on a barrier-aligned cycle, merged across shards in shard order with
//! fixed tie-breaks — so the report is bit-identical at any shard
//! count.
//!
//! The second half of the module turns [`SimPerf`](crate::SimPerf)'s
//! phase accounting into a hierarchical [`SpanTree`]
//! (engine → phase → shard) and renders it as chrome://tracing JSON,
//! the same format as the flit tracer's
//! [`FlitTrace::to_chrome_json`](crate::FlitTrace::to_chrome_json) —
//! load either into `chrome://tracing` or Perfetto.

use std::fmt;

use crate::sim::SimPerf;

/// Relative drift between the last two warmup quarters above which a
/// run is declared unconverged. The comparison uses a symmetric
/// relative difference (`2|a - b| / (a + b)`, range 0..=2), so 0.5
/// means the quarters disagree by more than ~29% around their mean —
/// far outside steady-state noise for any run large enough to measure.
pub const WARMUP_DRIFT_LIMIT: f64 = 0.5;

/// Windowed warmup-convergence diagnostic.
///
/// The engine splits the warmup interval into four equal windows and
/// accumulates, per window, the number of packets ejected and the sum
/// of their latencies. This function compares the third and fourth
/// windows (the half of warmup closest to measurement): if either
/// throughput or mean latency still drifts by more than
/// [`WARMUP_DRIFT_LIMIT`], warmup was too short and the measured phase
/// starts from a transient.
///
/// Returns `(converged, throughput_drift, latency_drift)`. With no
/// ejections in either window (warmup disabled or shorter than the
/// network's flight time) there is nothing to compare: the run is
/// reported converged with both drifts `None`.
pub fn warmup_convergence(
    ejects: &[u64; 4],
    lat_sums: &[u64; 4],
) -> (bool, Option<f64>, Option<f64>) {
    let (e2, e3) = (ejects[2], ejects[3]);
    if e2 + e3 == 0 {
        return (true, None, None);
    }
    let rel = |a: f64, b: f64| {
        if a + b == 0.0 {
            0.0
        } else {
            2.0 * (a - b).abs() / (a + b)
        }
    };
    let tput_drift = rel(e2 as f64, e3 as f64);
    // An empty window has no mean latency; treat it as maximal drift so
    // a half-dead warmup (traffic only just starting) never passes.
    let lat_drift = if e2 == 0 || e3 == 0 {
        2.0
    } else {
        rel(
            lat_sums[2] as f64 / e2 as f64,
            lat_sums[3] as f64 / e3 as f64,
        )
    };
    let converged = tput_drift <= WARMUP_DRIFT_LIMIT && lat_drift <= WARMUP_DRIFT_LIMIT;
    (converged, Some(tput_drift), Some(lat_drift))
}

/// Diagnosis of a zero-progress window, attached to
/// [`crate::SimError::Stalled`].
///
/// All fields are integers derived from engine state at a
/// barrier-aligned cycle, so two runs of the same configuration — at
/// any shard counts — produce byte-identical reports.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallReport {
    /// Cycle at which the watchdog fired (the end of the window).
    pub cycle: u64,
    /// Length of the observed zero-progress window in cycles
    /// (the configured [`crate::SimConfig::watchdog_every`]).
    pub window: u64,
    /// Packets generated but not yet ejected when the watchdog fired.
    pub in_flight: u64,
    /// Router with the most credit-blocked output ports (lowest index
    /// on a tie).
    pub hottest_router: usize,
    /// Number of blocked output ports on that router: ports with flits
    /// queued and zero credits on every VC.
    pub blocked_ports: usize,
    /// Router owning the most backed-up credit-starved channel.
    pub starved_router: usize,
    /// Port index of that channel on its router.
    pub starved_port: usize,
    /// Flits queued behind the starved channel across its VCs.
    pub starved_depth: u64,
    /// Age in cycles of the oldest packet still in flight.
    pub oldest_age: u64,
}

impl fmt::Display for StallReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "no progress for {} cycles ending at cycle {}: {} packets in flight; \
             hottest router {} has {} credit-blocked output ports; \
             most starved channel is router {} port {} ({} flits queued, zero credits); \
             oldest in-flight packet is {} cycles old",
            self.window,
            self.cycle,
            self.in_flight,
            self.hottest_router,
            self.blocked_ports,
            self.starved_router,
            self.starved_port,
            self.starved_depth,
            self.oldest_age,
        )
    }
}

/// One node of the engine/phase/shard span tree: a named interval on a
/// synthetic timeline, with child spans nested inside it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Span label ("engine", a phase name, or `shard N`).
    pub name: String,
    /// Start of the interval in microseconds on the synthetic timeline.
    pub start_us: u64,
    /// Duration of the interval in microseconds.
    pub dur_us: u64,
    /// Track the span renders on (chrome trace `tid`): 0 for the
    /// engine and phase rows, `shard + 1` for per-shard rows.
    pub track: u64,
    /// Spans nested inside this one.
    pub children: Vec<Span>,
}

/// A hierarchical view of where a run's wall-clock time went:
/// one engine-wide span, a child span per engine phase (placed
/// sequentially, each sized to the slowest shard), and under each phase
/// a span per shard showing that shard's own time in the phase.
///
/// The timeline is synthetic — phases did not literally run
/// back-to-back once each; the tree aggregates per-phase totals over
/// all cycles — but the proportions are real and the rendering makes
/// barrier imbalance between shards directly visible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanTree {
    /// The engine-wide root span.
    pub root: Span,
}

impl SpanTree {
    /// Builds the engine → phase → shard tree from a run's
    /// [`SimPerf`]. Phase widths use the slowest shard's time (the
    /// barrier-visible cost); per-shard children show each shard's own
    /// time inside the phase window.
    pub fn from_perf(perf: &SimPerf) -> Self {
        let mut phases = Vec::with_capacity(SimPerf::PHASE_NAMES.len());
        let mut cursor = 0u64;
        for (i, name) in SimPerf::PHASE_NAMES.iter().enumerate() {
            let width = perf.phases[i].as_micros() as u64;
            let mut shards = Vec::with_capacity(perf.shard_phases.len());
            for (s, sp) in perf.shard_phases.iter().enumerate() {
                shards.push(Span {
                    name: format!("shard {s}"),
                    start_us: cursor,
                    dur_us: sp[i].as_micros() as u64,
                    track: s as u64 + 1,
                    children: Vec::new(),
                });
            }
            phases.push(Span {
                name: (*name).to_string(),
                start_us: cursor,
                dur_us: width,
                track: 0,
                children: shards,
            });
            cursor += width;
        }
        SpanTree {
            root: Span {
                name: "engine".to_string(),
                start_us: 0,
                dur_us: cursor,
                track: 0,
                children: phases,
            },
        }
    }

    /// Renders the tree as chrome://tracing JSON (complete "X" events,
    /// microsecond timestamps), the same document shape as the flit
    /// tracer. Track 0 holds the engine and phase rows; track `s + 1`
    /// holds shard `s`.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n");
        let mut first = true;
        let mut stack = vec![&self.root];
        while let Some(span) = stack.pop() {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\": \"{}\", \"ph\": \"X\", \"ts\": {}, \"dur\": {}, \
                 \"pid\": 0, \"tid\": {}}}",
                span.name, span.start_us, span.dur_us, span.track
            ));
            // Children pushed in reverse so they emit in declaration
            // order — the output is deterministic either way, but this
            // keeps the document readable.
            for child in span.children.iter().rev() {
                stack.push(child);
            }
        }
        out.push_str("\n]}\n");
        out
    }

    /// Total number of spans in the tree (root included).
    pub fn len(&self) -> usize {
        let mut n = 0;
        let mut stack = vec![&self.root];
        while let Some(span) = stack.pop() {
            n += 1;
            stack.extend(span.children.iter());
        }
        n
    }

    /// Whether the tree is empty — never true, since the engine root
    /// always exists; provided to pair with [`SpanTree::len`].
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn sample_report() -> StallReport {
        StallReport {
            cycle: 4096,
            window: 512,
            in_flight: 33,
            hottest_router: 2,
            blocked_ports: 3,
            starved_router: 2,
            starved_port: 1,
            starved_depth: 16,
            oldest_age: 900,
        }
    }

    #[test]
    fn report_display_names_the_channel() {
        let s = sample_report().to_string();
        assert!(s.contains("router 2 port 1"), "starved channel named: {s}");
        assert!(s.contains("512 cycles"), "window named: {s}");
        assert!(s.contains("33 packets in flight"), "population named: {s}");
    }

    fn sample_perf() -> SimPerf {
        let mk = |ms: [u64; 5]| ms.map(Duration::from_millis);
        SimPerf {
            cycles: 1000,
            wall: Duration::from_millis(40),
            phases: mk([5, 10, 8, 4, 3]),
            flit_hops: 123,
            shards: 2,
            shard_phases: vec![mk([5, 9, 8, 4, 3]), mk([4, 10, 7, 2, 3])],
        }
    }

    #[test]
    fn span_tree_shape_and_timeline() {
        let tree = SpanTree::from_perf(&sample_perf());
        assert_eq!(tree.root.name, "engine");
        assert_eq!(tree.root.children.len(), 5);
        // 1 engine + 5 phases + 5 * 2 shards.
        assert_eq!(tree.len(), 16);
        assert!(!tree.is_empty());
        // Phases tile the engine span back to back.
        let mut cursor = 0;
        for phase in &tree.root.children {
            assert_eq!(phase.start_us, cursor);
            cursor += phase.dur_us;
            for (s, shard) in phase.children.iter().enumerate() {
                assert_eq!(shard.start_us, phase.start_us);
                assert!(shard.dur_us <= phase.dur_us, "shard within phase");
                assert_eq!(shard.track, s as u64 + 1);
            }
        }
        assert_eq!(tree.root.dur_us, cursor);
        assert_eq!(
            tree.root.dur_us,
            Duration::from_millis(30).as_micros() as u64
        );
    }

    #[test]
    fn convergence_empty_windows_are_vacuously_converged() {
        assert_eq!(warmup_convergence(&[0; 4], &[0; 4]), (true, None, None));
        // Early windows may be empty (pipeline fill); only the last two count.
        let (ok, t, l) = warmup_convergence(&[0, 0, 100, 100], &[0, 0, 1000, 1000]);
        assert!(ok);
        assert_eq!(t, Some(0.0));
        assert_eq!(l, Some(0.0));
    }

    #[test]
    fn convergence_flags_drifting_warmup() {
        // Throughput still ramping: 40 -> 100 ejects across the half.
        let (ok, t, _) = warmup_convergence(&[0, 10, 40, 100], &[0, 50, 200, 500]);
        assert!(!ok);
        assert!(t.unwrap() > WARMUP_DRIFT_LIMIT);
        // Latency still climbing steeply at stable throughput.
        let (ok, t, l) = warmup_convergence(&[50, 50, 50, 50], &[100, 200, 500, 2000]);
        assert!(!ok);
        assert!(t.unwrap() <= WARMUP_DRIFT_LIMIT);
        assert!(l.unwrap() > WARMUP_DRIFT_LIMIT);
        // One-sided: traffic only arrived in the final window.
        let (ok, _, l) = warmup_convergence(&[0, 0, 0, 30], &[0, 0, 0, 90]);
        assert!(!ok);
        assert_eq!(l, Some(2.0));
    }

    #[test]
    fn chrome_json_is_well_formed() {
        let json = SpanTree::from_perf(&sample_perf()).to_chrome_json();
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert_eq!(json.matches("\"ph\": \"X\"").count(), 16);
        assert!(json.contains("\"name\": \"engine\""));
        assert!(json.contains("\"name\": \"switch\""));
        assert!(json.contains("\"name\": \"shard 1\""));
        // Balanced braces — cheap structural sanity without a parser.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
