//! The cycle-driven simulation engine.
//!
//! The router model follows the paper's Figure 13: a single-cycle router
//! with *per-output queues* (`q0`…`q3` in the figure) and enough internal
//! speedup that the switch itself is never the bottleneck. Concretely,
//! each router has a small credited input stage per (channel, VC) and
//! bounded per-(output, VC) queues; flits move from the input stage into
//! their output queue with unlimited speedup and each output transmits
//! one flit per cycle. Congestion therefore backs up exactly the way the
//! paper describes: an overloaded global channel fills its output queue,
//! which stalls the switching stage, which fills the input buffers and
//! exhausts the upstream credits, which fills the upstream router's
//! output queue — the `q` values that adaptive routing inspects.
//!
//! Each cycle proceeds in five phases:
//!
//! 1. **Credit arrivals** — due credits increment upstream counters; in
//!    round-trip mode the credit-timestamp queue is popped and the
//!    per-output `td` register updated.
//! 2. **Flit arrivals** — flits finishing their channel traversal are
//!    route-computed and enter the input stage.
//! 3. **Switching** — flits move from the input stage into their target
//!    output queue while it has space; the freed input slot's credit is
//!    returned upstream, delayed by the credit round-trip mechanism when
//!    enabled.
//! 4. **Transmission** — every output port sends one flit (round-robin
//!    over its VC queues, subject to downstream credits); terminal ports
//!    eject.
//! 5. **Injection** — every terminal runs its injection process, routes
//!    the packet at the head of its source queue (the adaptive decision
//!    of the UGAL family happens here, at the source router, seeing the
//!    settled post-transmission queues), and sends one flit onto its
//!    injection channel if a credit is available.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use dfly_traffic::{rng_for, Bernoulli, Delivery, OnOff, OpenLoop, TrafficPattern, Workload};
use rand::rngs::SmallRng;

use crate::arena::{FlitArena, FlitQueue};
use crate::config::{CreditMode, InjectionKind, SimConfig, TdEstimator, Termination};
use crate::error::SimError;
use crate::flit::{Flit, RouteClass, RouteInfo};
use crate::health::{warmup_convergence, StallReport};
use crate::routing::{DecisionRecord, NetView, PortVc, RoutingAlgorithm};
use crate::spec::{ChannelClass, Connection, NetworkSpec};
use crate::stats::{ChannelLoad, Histogram, LatencySummary, RouteTelemetry, RunStats};
use crate::telemetry::{
    ChannelSeries, EstimatorScoreboard, FlitTracer, LogHistogram, TimeSeries, TraceEventKind,
};

/// Live state of one router (visible crate-wide so [`NetView`] can read
/// the output-queue depths).
///
/// Every structure here is sized by the router's radix (ports × VCs),
/// never by the node count: the queues are 12-byte intrusive handle
/// lists into the owning shard's [`FlitArena`], so a million-terminal
/// network costs O(routers × radix) memory regardless of how many flits
/// are in flight.
#[derive(Debug)]
pub(crate) struct RouterCore {
    /// Input stage: arriving flits, flattened `[in_port * vcs + vc]`,
    /// capacity `buffer_depth` each (enforced by upstream credits).
    /// Each entry's arena `aux` word packs the [`PortVc`] its route
    /// computation produced.
    inputs: Vec<FlitQueue>,
    /// Total flits in the input stage (fast idle check).
    in_count: u32,
    /// Flits in the input stage per input port (fast scan).
    in_port_count: Vec<u16>,
    /// Per-output queues, flattened `[out_port * vcs + out_vc]`, capacity
    /// `buffer_depth` each — the `q` values of the paper's Figure 13.
    /// Each entry's arena `aux` word holds the input slot the flit
    /// arrived through, whose credit is returned when the flit is
    /// transmitted.
    pub(crate) out_q: Vec<FlitQueue>,
    /// Total flits in output queues (fast idle check).
    out_count: u32,
    /// Flits in the output queues per output port (fast scan; also the
    /// O(1) aggregate behind [`NetView::occupancy`]).
    pub(crate) out_port_count: Vec<u16>,
    /// Credits available toward the downstream input stage of each
    /// output, flattened `[out_port * vcs + vc]`. Meaningless for
    /// terminal ports.
    pub(crate) credits: Vec<u32>,
    /// Credits consumed toward downstream and not yet returned, per
    /// output port (always zero for terminal ports) — the aggregate
    /// [`NetView::committed`] reads in O(1).
    pub(crate) outstanding: Vec<u32>,
    /// Per-output round-robin pointer over VC queues.
    rr: Vec<u8>,
    /// Per-output credit timestamp queue. This and the three fields
    /// below exist only in round-trip credit mode; conventional runs
    /// leave them empty.
    ctq: Vec<VecDeque<u64>>,
    /// Per-output credit round-trip excess `td = tcrt − tcrt0`.
    td: Vec<u64>,
    /// Flits sent per output (for CTQ sampling).
    sent_seq: Vec<u32>,
    /// Credits received per output (for CTQ sampling).
    credit_seq: Vec<u32>,
}

/// Live state of one terminal.
struct TerminalCore {
    /// Unbounded source queue of generated flits (arena handles).
    source: FlitQueue,
    /// Route of the packet currently leaving the source queue.
    active_route: Option<RouteInfo>,
    /// Credits toward the router's injection input buffer, per VC.
    credits: Vec<u32>,
    /// Flits in flight on the injection channel; each entry's arena
    /// `due` word holds its arrival cycle.
    pipe: FlitQueue,
    /// Per-terminal RNG stream.
    rng: SmallRng,
}

/// Builds the open-loop workload the classic constructor drives a shard
/// with: the configured injection process cloned per terminal plus the
/// traffic pattern, draw-order-identical to the pre-workload engine.
fn open_loop_workload<'a>(
    kind: InjectionKind,
    range: std::ops::Range<usize>,
    pattern: &'a dyn TrafficPattern,
) -> Box<dyn Workload + Send + 'a> {
    match kind {
        InjectionKind::Bernoulli { rate } => {
            Box::new(OpenLoop::new(&Bernoulli::new(rate), range, pattern))
        }
        InjectionKind::OnOff { rate, burst_len } => Box::new(OpenLoop::new(
            &OnOff::with_rate(rate, burst_len),
            range,
            pattern,
        )),
        InjectionKind::MarkovOnOff {
            rate,
            burst_len,
            duty,
        } => Box::new(OpenLoop::new(
            &OnOff::with_rate_and_duty(rate, burst_len, duty)
                .expect("feasibility is checked by SimConfig::validate"),
            range,
            pattern,
        )),
    }
}

/// One packet generated in phase 1 (a workload [`MessageIntent`]
/// anchored to its source terminal), consumed by phase 5 under its
/// globally ordered packet id.
///
/// [`MessageIntent`]: dfly_traffic::MessageIntent
#[derive(Debug, Clone, Copy)]
struct StagedGen {
    term: u32,
    dest: u32,
    tag: u32,
    /// Whether work-complete termination waits on this packet (and hence
    /// whether it is labelled under that mode).
    tracked: bool,
}

/// Where a pending credit return lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CreditTarget {
    Router { router: u32, port: u32, vc: u8 },
    Terminal { term: u32, vc: u8 },
}

/// Calendar queue of pending credit returns: a power-of-two ring of
/// per-cycle FIFO buckets indexed by delivery cycle.
///
/// Replaces the engine's former global `BinaryHeap`: push and delivery
/// are O(1) per credit with no comparisons, and because every bucket is
/// drained in insertion order the delivery sequence is exactly the
/// heap's `(time, insertion seq)` order — results are bit-identical.
#[derive(Debug)]
struct CreditRing {
    /// `buckets[time & mask]` holds the credits due at `time`. Every
    /// pending time lies in `[now, now + buckets.len())`, so the
    /// bucket index maps back to an unambiguous absolute time.
    buckets: Vec<Vec<CreditTarget>>,
    mask: u64,
    /// Total credits pending across all buckets.
    pending: usize,
}

impl CreditRing {
    /// A ring covering delivery delays up to `horizon` cycles without
    /// growing.
    fn with_horizon(horizon: u64) -> Self {
        let len = (horizon + 1).max(4).next_power_of_two();
        CreditRing {
            buckets: (0..len).map(|_| Vec::new()).collect(),
            mask: len - 1,
            pending: 0,
        }
    }

    /// Queues `target` for delivery at `time`, where `time >= now`.
    /// Channel latencies are >= 1, so locally generated credits land
    /// strictly in the future; credits drained from a cross-shard
    /// mailbox at the start of cycle `now` may be due exactly at `now`,
    /// whose bucket has not been taken yet.
    fn push(&mut self, now: u64, time: u64, target: CreditTarget) {
        debug_assert!(time >= now);
        if time - now > self.mask {
            self.grow(now, time);
        }
        self.buckets[(time & self.mask) as usize].push(target);
        self.pending += 1;
    }

    /// Doubles the ring until `time` fits. Each occupied old bucket `b`
    /// holds the unique pending time `t ≡ b (mod old_len)` within
    /// `[now, now + old_len)`, so its contents move wholesale (FIFO
    /// order intact) to `t`'s slot in the larger ring.
    #[cold]
    fn grow(&mut self, now: u64, time: u64) {
        let old_len = self.mask + 1;
        let mut new_len = old_len;
        while time - now > new_len - 1 {
            new_len <<= 1;
        }
        // Extend in place, keeping every existing bucket allocation.
        // `new_len` is a multiple of `old_len`, so bucket `b`'s new
        // index is congruent to `b` mod `old_len`: either `b` itself or
        // a slot at or past `old_len`, which started empty — each move
        // is a plain swap that cannot displace another occupied bucket,
        // and per-bucket FIFO order is untouched.
        self.buckets.resize_with(new_len as usize, Vec::new);
        for b in 0..old_len as usize {
            if self.buckets[b].is_empty() {
                continue;
            }
            let t = now + ((b as u64).wrapping_sub(now) & (old_len - 1));
            let ni = (t & (new_len - 1)) as usize;
            if ni != b {
                self.buckets.swap(b, ni);
            }
        }
        self.mask = new_len - 1;
    }

    /// Removes and returns the bucket due at `now`; hand it back to
    /// [`CreditRing::restore`] after draining so its allocation is
    /// recycled.
    fn take_due(&mut self, now: u64) -> Vec<CreditTarget> {
        let due = std::mem::take(&mut self.buckets[(now & self.mask) as usize]);
        self.pending -= due.len();
        due
    }

    fn restore(&mut self, now: u64, mut bucket: Vec<CreditTarget>) {
        bucket.clear();
        self.buckets[(now & self.mask) as usize] = bucket;
    }
}

/// Wall-clock performance counters for one simulation run, reported by
/// [`Simulation::run_instrumented`].
#[derive(Debug, Clone, Default)]
pub struct SimPerf {
    /// Simulated cycles executed.
    pub cycles: u64,
    /// Total wall time of the run loop.
    pub wall: Duration,
    /// Wall time per phase, in [`SimPerf::PHASE_NAMES`] order. On a
    /// sharded run each entry is the *maximum* compute time any shard
    /// spent in that phase, so `wall >= phases.iter().sum()` stays true:
    /// every phase ends at a barrier, hence each phase's wall-clock
    /// segment is at least the slowest shard's compute time in it.
    pub phases: [Duration; 5],
    /// Network channel traversals (flit-hops) executed.
    pub flit_hops: u64,
    /// Number of router shards (worker threads) the run executed on.
    pub shards: usize,
    /// Per-shard compute time per phase, indexed `[shard][phase]` in
    /// [`SimPerf::PHASE_NAMES`] order — the raw table behind the
    /// engine → phase → shard span tree ([`crate::SpanTree`]).
    /// `phases` is the column-wise maximum of this table.
    pub shard_phases: Vec<[Duration; 5]>,
}

impl SimPerf {
    /// Names of the five per-cycle phases, in `phases` order.
    pub const PHASE_NAMES: [&'static str; 5] =
        ["credits", "arrivals", "switch", "transmit", "inject"];

    /// Simulated cycles per wall-clock second.
    pub fn cycles_per_sec(&self) -> f64 {
        self.cycles as f64 / self.wall.as_secs_f64().max(1e-12)
    }

    /// Flit-hops per wall-clock second (the engine's useful-work rate).
    pub fn flit_hops_per_sec(&self) -> f64 {
        self.flit_hops as f64 / self.wall.as_secs_f64().max(1e-12)
    }
}

/// Appends the global index `idx` to an active worklist unless its
/// membership flag is already set. Flag arrays are sized to the shard's
/// own range and indexed relative to `base` (the range's first global
/// index), so their memory is O(shard) rather than O(network).
#[inline]
fn activate(list: &mut Vec<u32>, flags: &mut [bool], idx: usize, base: usize) {
    if !flags[idx - base] {
        flags[idx - base] = true;
        list.push(idx as u32);
    }
}

/// Packs a computed route into a flit's arena `aux` word while it waits
/// in the input stage.
#[inline]
fn pack_pv(pv: PortVc) -> u32 {
    (u32::from(pv.port) << 8) | u32::from(pv.vc)
}

#[inline]
fn unpack_pv(aux: u32) -> PortVc {
    PortVc {
        port: (aux >> 8) as u16,
        vc: (aux & 0xff) as u8,
    }
}

// ---------------------------------------------------------------------
// Sharded cycle engine infrastructure
// ---------------------------------------------------------------------
//
// Routers are partitioned into contiguous shards; every intra-shard
// channel stays local to its worker thread and the >= 1-cycle pipeline
// latency of inter-shard channels is the synchronisation slack: a flit
// (or credit) transmitted at cycle `t` cannot be observed before cycle
// `t + 1`, so cross-shard traffic is staged into per-(source, target)
// mailboxes during phase 4 and drained by the owning shard at the start
// of the next cycle. Five barriers per cycle — one per engine phase —
// keep every shard in the same phase at all times, which is what makes
// the split sound (see `ShardTable` for the aliasing protocol) and the
// results bit-identical at any shard count.

/// Interior-mutable router table shared by the shard workers.
///
/// Aliasing protocol, enforced by the per-cycle barriers:
///
/// * Phases 1, 3 and 4 are shard-exclusive: a worker takes `&mut
///   RouterCore` only for routers inside its own contiguous range
///   (foreign credits and flits are staged through the exchange, never
///   applied directly).
/// * Phase 2 is split-borrow: a worker writes only the *input-side*
///   fields (`inputs`, `in_count`, `in_port_count`) of its own routers
///   through raw field projections, while any worker may concurrently
///   read the *output-side* fields through [`NetView`]. The two field
///   sets are disjoint and no whole-struct reference is ever formed.
/// * Phase 5 only reads router state.
#[allow(unsafe_code)]
mod shard_table {
    use std::cell::UnsafeCell;

    #[derive(Debug)]
    pub(crate) struct ShardTable<T> {
        cells: Vec<UnsafeCell<T>>,
    }

    // SAFETY: concurrent access is coordinated by the barrier protocol
    // documented on the parent module; workers never form conflicting
    // references to the same field of the same element.
    unsafe impl<T: Send> Sync for ShardTable<T> {}

    impl<T> ShardTable<T> {
        pub fn new(items: Vec<T>) -> Self {
            ShardTable {
                cells: items.into_iter().map(UnsafeCell::new).collect(),
            }
        }

        pub fn len(&self) -> usize {
            self.cells.len()
        }

        /// Raw pointer to element `i`, for field-granular access.
        pub fn ptr(&self, i: usize) -> *mut T {
            self.cells[i].get()
        }

        /// Base pointer over the whole table (`UnsafeCell<T>` is
        /// `repr(transparent)` over `T`).
        pub fn base(&self) -> *const T {
            self.cells.as_ptr().cast()
        }

        /// Exclusive reference to element `i`.
        ///
        /// # Safety
        ///
        /// The caller must hold shard-exclusive access to `i`: no other
        /// thread may read or write any part of the element for the
        /// lifetime of the reference.
        #[allow(clippy::mut_from_ref)]
        pub unsafe fn get_mut(&self, i: usize) -> &mut T {
            &mut *self.cells[i].get()
        }

        /// Shared reference to element `i`.
        ///
        /// # Safety
        ///
        /// No thread may mutate the element for the lifetime of the
        /// reference.
        pub unsafe fn get_ref(&self, i: usize) -> &T {
            &*self.cells[i].get()
        }

        /// Exclusive view of the whole table; safe because `&mut self`
        /// rules out any concurrent access.
        #[cfg(test)]
        pub fn slice_mut(&mut self) -> &mut [T] {
            let len = self.cells.len();
            let base = self.cells.as_mut_ptr().cast::<T>();
            // SAFETY: `&mut self` is exclusive and the layout matches.
            unsafe { std::slice::from_raw_parts_mut(base, len) }
        }
    }
}
use shard_table::ShardTable;

/// Sense-reversing spin barrier; `wait` is a no-op for a single shard,
/// so the one-shard engine pays (almost) nothing for the rendezvous
/// points.
#[derive(Debug)]
struct SpinBarrier {
    n: usize,
    count: AtomicUsize,
    generation: AtomicUsize,
}

impl SpinBarrier {
    fn new(n: usize) -> Self {
        SpinBarrier {
            n,
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    fn wait(&self) {
        if self.n <= 1 {
            return;
        }
        let generation = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            self.count.store(0, Ordering::Relaxed);
            self.generation
                .store(generation.wrapping_add(1), Ordering::Release);
        } else {
            // Spin briefly for the dedicated-core case, then yield so
            // oversubscribed shards (more shards than cores) hand the
            // core to whoever still has phase work instead of burning
            // whole scheduler quanta.
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == generation {
                if spins < 1024 {
                    std::hint::spin_loop();
                    spins += 1;
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// Cross-shard mailboxes and replicated-counter publication slots.
///
/// Mailboxes are indexed `[source_shard * shards + target_shard]` and
/// drained in fixed source order, so delivery order is deterministic —
/// and because each channel pipeline has exactly one source port, the
/// per-pipe FIFO order matches the serial engine exactly.
#[derive(Debug)]
struct Exchange {
    shards: usize,
    /// Staged cross-shard flits: `(destination flat port, arrival, flit)`.
    flits: Vec<Mutex<Vec<(u32, u64, Flit)>>>,
    /// Staged cross-shard credit returns: `(delivery time, target)`.
    credits: Vec<Mutex<Vec<(u64, CreditTarget)>>>,
    /// Staged cross-shard delivery notifications bound for a foreign
    /// terminal's workload: `(arrival, terminal, delivery)`. Follows the
    /// flit/credit mailbox protocol exactly (staged in phase 4, drained
    /// in fixed source order in phase 1), which is what keeps closed-loop
    /// runs bit-identical at any shard count.
    notes: Vec<Mutex<Vec<(u64, u32, Delivery)>>>,
    /// Packets generated by each shard this cycle; published in phase 1,
    /// read in phase 5 to derive the packet-id prefix sums (three
    /// barriers apart, so the plain store/load pair is race-free).
    gen_counts: Vec<AtomicU64>,
    /// Cumulative labelled packets generated per shard, published at the
    /// end of phase 5 so every shard evaluates the identical
    /// end-of-cycle termination condition.
    gen_labeled: Vec<AtomicU64>,
    /// Cumulative labelled packets ejected per shard (same protocol).
    eject_labeled: Vec<AtomicU64>,
    /// Whether each shard's workload reports [`Workload::all_done`]
    /// (published at the end of phase 5, like the labelled counters, so
    /// every shard evaluates the identical work-complete termination
    /// condition).
    work_done: Vec<AtomicU64>,
    /// Cumulative network flit-hops per shard, published at the end of
    /// phase 5 on watchdog checkpoint cycles only (zero cost when the
    /// watchdog is off). Read by every shard after the phase-5 barrier,
    /// like the labelled counters.
    wd_hops: Vec<AtomicU64>,
    /// Cumulative ejected packets (tail flits, labelled or not) per
    /// shard, same protocol as `wd_hops`.
    wd_ejects: Vec<AtomicU64>,
    /// Stall-attribution slots, one per shard. Written only on the
    /// stall path: every shard detects the stall on the same checkpoint
    /// cycle (the inputs are the replicated counters above), scans its
    /// own routers, writes its slot, rendezvouses at the barrier, then
    /// merges every slot in shard order — so the final report is
    /// bit-identical at any shard count.
    stall_slots: Mutex<Vec<Option<StallScan>>>,
    barrier: SpinBarrier,
}

/// One shard's local stall attribution, merged across shards in shard
/// order with fixed tie-breaks (largest count/depth wins, ties go to
/// the lowest router then port).
#[derive(Debug, Clone, Copy, Default)]
struct StallScan {
    /// `(blocked output ports, router)` of this shard's hottest router.
    /// A port is blocked when it has queued flits and no VC that is both
    /// non-empty and credited.
    blocked: Option<(usize, usize)>,
    /// `(queued flits, router, port)` of this shard's most backed-up
    /// blocked channel.
    starved: Option<(u64, usize, usize)>,
    /// Earliest creation cycle among this shard's in-flight flits.
    oldest_created: Option<u64>,
}

impl Exchange {
    fn new(shards: usize) -> Self {
        Exchange {
            shards,
            flits: (0..shards * shards)
                .map(|_| Mutex::new(Vec::new()))
                .collect(),
            credits: (0..shards * shards)
                .map(|_| Mutex::new(Vec::new()))
                .collect(),
            notes: (0..shards * shards)
                .map(|_| Mutex::new(Vec::new()))
                .collect(),
            gen_counts: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            gen_labeled: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            eject_labeled: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            work_done: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            wd_hops: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            wd_ejects: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            stall_slots: Mutex::new(vec![None; shards]),
            barrier: SpinBarrier::new(shards),
        }
    }

    /// Labelled packets still in flight, summed over every shard's
    /// published counters (identical on all shards after the phase-5
    /// barrier).
    fn labeled_outstanding(&self) -> u64 {
        let generated: u64 = self
            .gen_labeled
            .iter()
            .map(|c| c.load(Ordering::Acquire))
            .sum();
        let ejected: u64 = self
            .eject_labeled
            .iter()
            .map(|c| c.load(Ordering::Acquire))
            .sum();
        generated - ejected
    }

    /// Whether every shard's workload has reported completion (identical
    /// on all shards after the phase-5 barrier).
    fn all_work_done(&self) -> bool {
        self.work_done
            .iter()
            .all(|c| c.load(Ordering::Acquire) != 0)
    }
}

/// Contiguous slice of the network owned by one shard: routers
/// `[r0, r1)` and terminals `[t0, t1)`.
#[derive(Debug, Clone, Copy)]
struct ShardRange {
    r0: usize,
    r1: usize,
    t0: usize,
    t1: usize,
}

/// Resolves the configured shard count: `0` means auto — `DFLY_THREADS`
/// if set (shared with the sweep-level parallel layer), otherwise the
/// hardware thread count — and everything is clamped to the router
/// count.
fn resolve_shards(cfg: &SimConfig, num_routers: usize) -> usize {
    let want = if cfg.shards == 0 {
        std::env::var("DFLY_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    } else {
        cfg.shards
    };
    want.clamp(1, num_routers.max(1))
}

/// Cuts the routers into `shards` contiguous ranges balanced by flat
/// port count (the best static proxy for per-cycle work), then derives
/// the matching terminal ranges. Falls back to a single shard when the
/// terminal numbering is not monotone in router order — partitioning
/// such a network would break the global packet-id order that keeps
/// sharded runs bit-identical.
fn plan_shards(
    spec: &NetworkSpec,
    port_base: &[u32],
    total_flats: usize,
    shards: usize,
) -> Vec<ShardRange> {
    let num_routers = spec.num_routers();
    let num_terminals = spec.num_terminals();
    let single = vec![ShardRange {
        r0: 0,
        r1: num_routers,
        t0: 0,
        t1: num_terminals,
    }];
    if shards <= 1 {
        return single;
    }
    let mut cuts = Vec::with_capacity(shards + 1);
    cuts.push(0usize);
    for k in 1..shards {
        let target = (total_flats * k / shards) as u32;
        let split = port_base.partition_point(|&b| b < target);
        let prev = *cuts.last().unwrap();
        cuts.push(split.clamp(prev + 1, num_routers - (shards - k)));
    }
    cuts.push(num_routers);
    let shard_of = |r: usize| cuts.partition_point(|&c| c <= r) - 1;
    let mut terminal_start = vec![0usize; shards + 1];
    terminal_start[shards] = num_terminals;
    let mut current = 0usize;
    for t in 0..num_terminals {
        let s = shard_of(spec.terminal_router(t));
        if s < current {
            return single; // terminals not monotone in router order
        }
        while current < s {
            current += 1;
            terminal_start[current] = t;
        }
    }
    while current < shards - 1 {
        current += 1;
        terminal_start[current] = num_terminals;
    }
    (0..shards)
        .map(|s| ShardRange {
            r0: cuts[s],
            r1: cuts[s + 1],
            t0: terminal_start[s],
            t1: terminal_start[s + 1],
        })
        .collect()
}

/// Per-run state shared (immutably, plus the coordinated `ShardTable`
/// and `Exchange` interior mutability) by every shard worker.
struct EngineShared<'a> {
    spec: &'a NetworkSpec,
    cfg: SimConfig,
    routing: &'a dyn RoutingAlgorithm,
    routers: ShardTable<RouterCore>,
    /// First flat-port index of each router.
    port_base: Vec<u32>,
    /// Destination flat port of each source flat port's channel;
    /// `u32::MAX` marks terminal ports. Channel pipelines are owned by
    /// their *destination* shard, which is what keeps every pipe a
    /// plain, lock-free `VecDeque`.
    dst_flat: Vec<u32>,
    /// Router owning each flat port.
    flat_router: Vec<u32>,
    /// Shard owning each router.
    router_shard: Vec<u32>,
    /// Shard owning each terminal (delivery notes for a foreign source
    /// terminal route through its owner's mailbox).
    term_shard: Vec<u32>,
    /// Whether the workload asked for delivery notifications
    /// ([`Workload::wants_delivery`], uniform across shards). `false`
    /// skips every note-plumbing branch, keeping the open-loop hot path
    /// untouched.
    wants_delivery: bool,
    /// Zero-load credit round trip per flat port.
    tcrt0: Vec<u64>,
    /// Network (non-terminal) output ports per router.
    net_ports: Vec<Vec<u16>>,
    win_start: u64,
    win_end: u64,
    exch: Exchange,
}

/// Mutable state owned by one shard worker.
///
/// Every per-channel / per-terminal / per-router vector here covers only
/// this shard's own contiguous range (offset by `flat0`, `range.t0` or
/// `range.r0` respectively); the worklists keep global indices. Total
/// engine memory is therefore O(network) once, not O(network × shards).
struct ShardState<'a> {
    id: usize,
    range: ShardRange,
    /// This shard's slice of the workload: offered in phase 1 for every
    /// owned terminal, notified of deliveries, and polled for completion
    /// under work-complete termination. Shard instances coordinate only
    /// through simulated messages.
    workload: Box<dyn Workload + Send + 'a>,
    /// Slab holding every flit currently inside this shard; all queues
    /// below (and in this shard's `RouterCore`s) store handles into it.
    arena: FlitArena,
    /// First flat port owned by this shard (`port_base[range.r0]`);
    /// index offset for `pipes`, `pipe_active` and `sent_in_window`.
    flat0: usize,
    /// Terminals `range.t0..range.t1` (index offset by `range.t0`).
    terminals: Vec<TerminalCore>,
    /// In-flight flits per directed network channel owned by this shard,
    /// indexed by the channel's *destination* flat port minus `flat0`
    /// (channels are owned by their destination router's shard). Each
    /// entry's arena `due` word holds its arrival cycle.
    pipes: Vec<FlitQueue>,
    active_pipes: Vec<u32>,
    pipe_active: Vec<bool>,
    active_terms: Vec<u32>,
    term_active: Vec<bool>,
    active_routers: Vec<u32>,
    router_active: Vec<bool>,
    credit_ring: CreditRing,
    /// `(router, input slot, flit handle)` staged by phase 2.
    arrivals: Vec<(u32, u32, u32)>,
    arrival_routes: Vec<PortVc>,
    /// The packets generated this cycle in phase 1, in terminal order;
    /// consumed by phase 5.
    staged_gen: Vec<StagedGen>,
    /// Outgoing cross-shard flits, buffered per target shard and
    /// flushed into the exchange once per cycle.
    out_flits: Vec<Vec<(u32, u64, Flit)>>,
    /// Outgoing cross-shard credit returns, same protocol.
    out_credits: Vec<Vec<(u64, CreditTarget)>>,
    /// Delivery notifications awaiting their arrival cycle, for
    /// terminals owned by this shard: `(arrival, terminal, delivery)`.
    /// Unsorted; due entries are extracted and canonically ordered each
    /// cycle in phase 1.
    pending_notes: Vec<(u64, u32, Delivery)>,
    /// Scratch buffer for the due notes of the current cycle.
    note_scratch: Vec<(u64, u32, Delivery)>,
    /// Outgoing cross-shard delivery notifications, per target shard.
    out_notes: Vec<Vec<(u64, u32, Delivery)>>,
    /// Cycle the workload completed at, under work-complete termination.
    completion: Option<u64>,
    flit_hops: u64,
    cycle: u64,
    /// Replicated global packet counter; every shard advances it by the
    /// same published total each cycle.
    next_packet: u64,
    /// Cumulative labelled packets generated by this shard's terminals.
    gen_labeled: u64,
    /// Cumulative labelled packets ejected at this shard's routers.
    eject_labeled: u64,
    /// Cumulative packets (tail flits, labelled or not) ejected at this
    /// shard's routers — the watchdog's progress/population counter.
    eject_total: u64,
    /// Global hop total at the previous watchdog checkpoint.
    wd_prev_hops: u64,
    /// Global ejected-packet total at the previous watchdog checkpoint.
    wd_prev_ejects: u64,
    /// Global in-flight packet count at the previous watchdog
    /// checkpoint (replicated — every shard computes the same value
    /// from the published counters).
    wd_prev_in_flight: u64,
    /// The stall report that ended this shard's run, if any (identical
    /// on every shard).
    stalled: Option<StallReport>,
    /// Packet ejections during each quarter of the warmup period
    /// (warmup-convergence diagnostics; merged by summation).
    warmup_ejects: [u64; 4],
    /// Summed packet latencies per warmup quarter, same protocol.
    warmup_lat: [u64; 4],
    injected_in_window: u64,
    ejected_in_window: u64,
    /// Flits sent per owned flat port during the measurement window
    /// (index offset by `flat0`); empty in scale mode, which drops the
    /// per-channel load report.
    sent_in_window: Vec<u64>,
    latency: LatencySummary,
    minimal_latency: LatencySummary,
    non_minimal_latency: LatencySummary,
    hops: LatencySummary,
    histogram: Histogram,
    minimal_histogram: Histogram,
    telemetry: RouteTelemetry,
    latency_log: LogHistogram,
    scoreboard: EstimatorScoreboard,
    sampler: Option<ChannelSampler>,
    tracer: Option<FlitTracer>,
    /// Per-phase compute time (excluding barrier waits).
    phases: [Duration; 5],
}

/// A cycle-accurate simulation of one network under one routing algorithm
/// and traffic pattern.
///
/// The engine shards routers across worker threads (see
/// [`SimConfig::shards`]); results are bit-identical at every shard
/// count, so the default of one shard is purely a performance choice.
///
/// # Example
///
/// Simulating a three-router line at light load:
///
/// ```
/// use dfly_netsim::{
///     ChannelClass, Connection, NetworkSpec, PortSpec, RouterSpec, ShortestPathRouting,
///     SimConfig, Simulation,
/// };
/// use dfly_traffic::UniformRandom;
///
/// # fn main() -> Result<(), dfly_netsim::SimError> {
/// let term = |t: u32| PortSpec {
///     conn: Connection::Terminal { terminal: t },
///     latency: 1,
///     class: ChannelClass::Terminal,
/// };
/// let link = |r: u32, p: u32| PortSpec {
///     conn: Connection::Router { router: r, port: p },
///     latency: 1,
///     class: ChannelClass::Local,
/// };
/// let spec = NetworkSpec::validated(
///     vec![
///         RouterSpec { ports: vec![term(0), link(1, 0)] },
///         RouterSpec { ports: vec![link(0, 1), link(2, 0), term(1)] },
///         RouterSpec { ports: vec![link(1, 1), term(2)] },
///     ],
///     2,
/// )?;
/// let routing = ShortestPathRouting::new(&spec);
/// let pattern = UniformRandom::new(3);
/// let mut sim = Simulation::new(&spec, &routing, &pattern, SimConfig::paper_default(0.1))?;
/// let stats = sim.run();
/// assert!(stats.drained);
/// assert!(stats.avg_latency().unwrap() >= 2.0);
/// # Ok(())
/// # }
/// ```
pub struct Simulation<'a> {
    eng: EngineShared<'a>,
    shards: Vec<ShardState<'a>>,
    cycle: u64,
    /// Stall diagnosis from the last `drive`, if the watchdog fired.
    /// Identical on every shard, so shard 0's copy is canonical.
    stalled: Option<StallReport>,
}

/// Working state of the per-channel time-series sampler (per shard:
/// each shard samples only its own routers' channels, and the merged
/// series concatenates the shard series in shard order — which is
/// exactly global `(router, port)` order because shards are contiguous).
struct ChannelSampler {
    /// Sampling cadence in cycles (> 0).
    every: u64,
    /// Flat port index of each sampled channel, parallel to
    /// `series.channels`.
    flats: Vec<u32>,
    /// Lifetime flits transmitted per owned flat port (only maintained
    /// while the sampler exists; index offset by the shard's `flat0`).
    sent_total: Vec<u64>,
    /// `sent_total` snapshot at the previous sample tick, per sampled
    /// channel.
    prev_sent: Vec<u64>,
    /// The series under construction.
    series: TimeSeries,
}
impl<'a> EngineShared<'a> {
    fn in_window(&self, t: u64) -> bool {
        t >= self.win_start && t < self.win_end
    }

    /// Phase 1 — drain the cross-shard mailboxes (flits and credits
    /// staged by other shards last cycle; their >= 1-cycle channel
    /// latency guarantees nothing is late), deliver due credits, and
    /// run the *generation* half of injection: the per-terminal RNG
    /// draws that decide which terminals fire this cycle, published as
    /// a per-shard count so phase 5 can assign globally ordered packet
    /// ids. Per-terminal draw order (injection process, then
    /// destination) matches the serial engine exactly.
    #[allow(unsafe_code)]
    fn seg_credits(&self, st: &mut ShardState<'a>, t: u64) {
        let shards = self.exch.shards;
        if shards > 1 {
            for src in 0..shards {
                let mut inbox = self.exch.flits[src * shards + st.id]
                    .lock()
                    .expect("flit mailbox poisoned");
                for (df, arrival, flit) in inbox.drain(..) {
                    let df = df as usize;
                    let h = st.arena.alloc(&flit);
                    st.arena.set_due(h, arrival);
                    st.pipes[df - st.flat0].push_back(&mut st.arena, h);
                    activate(&mut st.active_pipes, &mut st.pipe_active, df, st.flat0);
                }
            }
            for src in 0..shards {
                let mut inbox = self.exch.credits[src * shards + st.id]
                    .lock()
                    .expect("credit mailbox poisoned");
                for (time, target) in inbox.drain(..) {
                    st.credit_ring.push(t, time, target);
                }
            }
        }
        if st.credit_ring.pending > 0 {
            let vcs = self.spec.vcs;
            let due = st.credit_ring.take_due(t);
            for &target in &due {
                match target {
                    CreditTarget::Router { router, port, vc } => {
                        let router = router as usize;
                        debug_assert!((st.range.r0..st.range.r1).contains(&router));
                        // SAFETY: phase 1 is shard-exclusive and foreign
                        // credits are staged, so `router` is owned here.
                        let core = unsafe { self.routers.get_mut(router) };
                        let slot = port as usize * vcs + vc as usize;
                        core.credits[slot] += 1;
                        core.outstanding[port as usize] -= 1;
                        debug_assert!(core.credits[slot] <= self.cfg.buffer_depth as u32);
                        if let CreditMode::RoundTrip { sample, estimator } = self.cfg.credit_mode {
                            let p = port as usize;
                            if core.credit_seq[p].is_multiple_of(sample) {
                                let ts = core.ctq[p]
                                    .pop_front()
                                    .expect("credit arrived with empty timestamp queue");
                                let flat = self.port_base[router] as usize + p;
                                let sample_td = (t - ts).saturating_sub(self.tcrt0[flat]);
                                core.td[p] = match estimator {
                                    TdEstimator::LastSample => sample_td,
                                    TdEstimator::Ewma { shift } => {
                                        let old = core.td[p];
                                        old - (old >> shift) + (sample_td >> shift)
                                    }
                                };
                            }
                            core.credit_seq[p] = core.credit_seq[p].wrapping_add(1);
                        }
                    }
                    CreditTarget::Terminal { term, vc } => {
                        let tc = &mut st.terminals[term as usize - st.range.t0];
                        tc.credits[vc as usize] += 1;
                        debug_assert!(tc.credits[vc as usize] <= self.cfg.buffer_depth as u32);
                    }
                }
            }
            st.credit_ring.restore(t, due);
        }
        // Apply delivery notifications due this cycle before any offer,
        // so a message ejected with arrival `t` can unblock its
        // recipient's (or sender's) next send at `t`. Cross-shard notes
        // are drained in fixed source order, and the due set is sorted
        // by the canonical `(packet, terminal)` key, so the workload
        // observes the identical call sequence at any shard count.
        if self.wants_delivery {
            if shards > 1 {
                for src in 0..shards {
                    let mut inbox = self.exch.notes[src * shards + st.id]
                        .lock()
                        .expect("note mailbox poisoned");
                    st.pending_notes.append(&mut inbox);
                }
            }
            if !st.pending_notes.is_empty() {
                let mut i = 0;
                while i < st.pending_notes.len() {
                    if st.pending_notes[i].0 <= t {
                        st.note_scratch.push(st.pending_notes.swap_remove(i));
                    } else {
                        i += 1;
                    }
                }
                st.note_scratch.sort_unstable_by_key(|e| (e.2.packet, e.1));
                for idx in 0..st.note_scratch.len() {
                    let (_, term, d) = st.note_scratch[idx];
                    st.workload.delivered(term as usize, &d, t);
                }
                st.note_scratch.clear();
            }
        }
        st.staged_gen.clear();
        for term in st.range.t0..st.range.t1 {
            let tl = term - st.range.t0;
            if let Some(intent) = st.workload.offer(term, t, &mut st.terminals[tl].rng) {
                st.staged_gen.push(StagedGen {
                    term: term as u32,
                    dest: intent.dest as u32,
                    tag: intent.tag,
                    tracked: intent.tracked,
                });
            }
        }
        self.exch.gen_counts[st.id].store(st.staged_gen.len() as u64, Ordering::Release);
    }

    /// Phase 2 — stage flits finishing their channel traversal, compute
    /// their routes against the frozen pre-arrival state, then buffer
    /// them in the input stage. Writes touch only input-side router
    /// fields through field projections; concurrent shards read only
    /// output-side fields through [`NetView`], so route decisions see
    /// the same frozen state at every shard count.
    #[allow(unsafe_code)]
    fn seg_arrivals(&self, st: &mut ShardState<'a>, t: u64) {
        let vcs = self.spec.vcs;
        st.arrivals.clear();
        // Only channels with flits in flight are visited; a pipe leaves
        // the worklist the moment it empties. Worklist order does not
        // affect results: arrivals to the same input slot always come
        // from the same (FIFO) pipe, and route computation below is a
        // pure function of the frozen pre-arrival view.
        let mut i = 0;
        while i < st.active_pipes.len() {
            let df = st.active_pipes[i] as usize;
            let pl = df - st.flat0;
            while let Some(h) = st.pipes[pl].front() {
                if st.arena.due(h) > t {
                    break;
                }
                st.pipes[pl].pop_front(&st.arena);
                let dr = self.flat_router[df];
                let dp = df as u32 - self.port_base[dr as usize];
                let slot = dp * vcs as u32 + st.arena.vc(h) as u32;
                st.arrivals.push((dr, slot, h));
            }
            if st.pipes[pl].is_empty() {
                st.pipe_active[pl] = false;
                st.active_pipes.swap_remove(i);
            } else {
                i += 1;
            }
        }
        let mut i = 0;
        while i < st.active_terms.len() {
            let term = st.active_terms[i] as usize;
            let tl = term - st.range.t0;
            while let Some(h) = st.terminals[tl].pipe.front() {
                if st.arena.due(h) > t {
                    break;
                }
                st.terminals[tl].pipe.pop_front(&st.arena);
                let (r, p) = self.spec.terminal_port(term);
                let slot = (p * vcs) as u32 + st.arena.vc(h) as u32;
                st.arrivals.push((r as u32, slot, h));
            }
            if st.terminals[tl].pipe.is_empty() {
                st.term_active[tl] = false;
                st.active_terms.swap_remove(i);
            } else {
                i += 1;
            }
        }
        st.arrival_routes.clear();
        {
            // SAFETY: no shard mutates output-side router fields during
            // phase 2, which is all the view reads.
            let view = unsafe {
                NetView::from_raw(
                    self.spec,
                    self.routers.base(),
                    self.routers.len(),
                    self.cfg.buffer_depth,
                    t,
                )
            };
            for &(r, _, h) in &st.arrivals {
                let flit = st.arena.get(h);
                st.arrival_routes
                    .push(self.routing.route(&view, r as usize, &flit));
            }
        }
        for (&(r, slot, h), &pv) in st.arrivals.iter().zip(&st.arrival_routes) {
            let r = r as usize;
            let slot = slot as usize;
            debug_assert!((st.range.r0..st.range.r1).contains(&r));
            st.arena.set_aux(h, pack_pv(pv));
            // SAFETY: `r` is owned by this shard (pipes are indexed by
            // destination) and only input-side fields are referenced —
            // never the whole struct — so concurrent readers of
            // output-side fields on other shards are not invalidated.
            let core = self.routers.ptr(r);
            unsafe {
                let inputs = &mut (*core).inputs;
                inputs[slot].push_back(&mut st.arena, h);
                debug_assert!(inputs[slot].len as usize <= self.cfg.buffer_depth);
                (*core).in_count += 1;
                (&mut (*core).in_port_count)[slot / vcs] += 1;
            }
            activate(
                &mut st.active_routers,
                &mut st.router_active,
                r,
                st.range.r0,
            );
        }
    }

    /// Phase 3 — move flits from the input stage into their output
    /// queues (unbounded internal speedup). The input slot index
    /// travels with the flit; its credit is returned when the flit
    /// leaves the router, so the credit round trip measures queueing
    /// *inside* this router — exactly the congestion signal of the
    /// paper's Figure 15.
    #[allow(unsafe_code)]
    fn seg_switch(&self, st: &mut ShardState<'a>, t: u64) {
        let vcs = self.spec.vcs;
        let depth = self.cfg.buffer_depth;
        // Per-router state is disjoint, so worklist order is irrelevant.
        for idx in 0..st.active_routers.len() {
            let r = st.active_routers[idx] as usize;
            // SAFETY: phase 3 is shard-exclusive over this shard's
            // routers, and the worklist only ever holds own routers.
            let core = unsafe { self.routers.get_mut(r) };
            if core.in_count == 0 {
                continue;
            }
            let ports = core.in_port_count.len();
            // Rotate the starting input each cycle for long-run fairness
            // when an output queue is nearly full.
            let start = (t as usize) % ports;
            for i in 0..ports {
                let port = (start + i) % ports;
                if core.in_port_count[port] == 0 {
                    continue;
                }
                for vc in 0..vcs {
                    let slot = port * vcs + vc;
                    while let Some(h) = core.inputs[slot].front() {
                        let pv = unpack_pv(st.arena.aux(h));
                        let oslot = pv.port as usize * vcs + pv.vc as usize;
                        if core.out_q[oslot].len as usize >= depth {
                            break; // output queue full: input backs up
                        }
                        core.inputs[slot].pop_front(&st.arena);
                        core.in_count -= 1;
                        core.in_port_count[port] -= 1;
                        // The aux word switches meaning here: route in,
                        // origin input slot out (for the credit return).
                        st.arena.set_aux(h, slot as u32);
                        core.out_q[oslot].push_back(&mut st.arena, h);
                        core.out_count += 1;
                        core.out_port_count[pv.port as usize] += 1;
                    }
                }
            }
        }
    }

    /// Phase 4 — every output port transmits one flit, round-robin over
    /// its VC queues, subject to downstream credits; terminal outputs
    /// eject. Flits and credits bound for another shard are staged into
    /// the exchange and flushed once at the end of the phase.
    #[allow(unsafe_code)]
    fn seg_transmit(&self, st: &mut ShardState<'a>, t: u64) {
        let vcs = self.spec.vcs;
        let in_window = self.in_window(t);
        let round_trip = matches!(self.cfg.credit_mode, CreditMode::RoundTrip { .. });
        // Iterate the active worklist; routers that end the phase fully
        // idle (no buffered flits anywhere) retire from it. Cross-router
        // order is irrelevant: each iteration touches only its own
        // router's state, its own outbound pipes, and commutative
        // accumulators, and every credit lands on a distinct target.
        let mut i = 0;
        while i < st.active_routers.len() {
            let r = st.active_routers[i] as usize;
            // SAFETY: phase 4 is shard-exclusive over this shard's
            // routers.
            let core = unsafe { self.routers.get_mut(r) };
            if core.out_count == 0 {
                if core.in_count == 0 {
                    st.router_active[r - st.range.r0] = false;
                    st.active_routers.swap_remove(i);
                } else {
                    i += 1;
                }
                continue;
            }
            // Round-trip delay baseline for this router this cycle.
            let min_td = if round_trip {
                self.net_ports[r]
                    .iter()
                    .map(|&p| core.td[p as usize])
                    .min()
                    .unwrap_or(0)
            } else {
                0
            };
            let ports = self.spec.routers[r].ports.len();
            for out in 0..ports {
                if core.out_port_count[out] == 0 {
                    continue;
                }
                let out_spec = self.spec.routers[r].ports[out];
                let is_terminal = matches!(out_spec.conn, Connection::Terminal { .. });
                // Pick the first eligible VC at or after the round-robin
                // pointer.
                let rr = core.rr[out] as usize;
                let mut chosen = None;
                for k in 0..vcs {
                    let vc = (rr + k) % vcs;
                    let oslot = out * vcs + vc;
                    if core.out_q[oslot].is_empty() {
                        continue;
                    }
                    if is_terminal || core.credits[oslot] > 0 {
                        chosen = Some(vc);
                        break;
                    }
                }
                let Some(vc) = chosen else {
                    continue;
                };
                core.rr[out] = ((vc + 1) % vcs) as u8;
                let oslot = out * vcs + vc;
                let h = core.out_q[oslot].pop_front(&st.arena).unwrap();
                let in_slot = st.arena.aux(h);
                core.out_count -= 1;
                core.out_port_count[out] -= 1;
                // Return the credit for the input slot the flit arrived
                // through, now that the flit has left the router. The
                // round-trip mechanism delays it by td(O) − min td(o)
                // (never across global channels). Credits for a foreign
                // upstream router are staged; terminals always share
                // their router's shard.
                let in_port = in_slot as usize / vcs;
                let in_vc = (in_slot as usize % vcs) as u8;
                let in_spec = self.spec.routers[r].ports[in_port];
                let delay = if round_trip && in_spec.class != ChannelClass::Global {
                    core.td[out].saturating_sub(min_td)
                } else {
                    0
                };
                let time = t + in_spec.latency as u64 + delay;
                match in_spec.conn {
                    Connection::Terminal { terminal } => {
                        st.credit_ring.push(
                            t,
                            time,
                            CreditTarget::Terminal {
                                term: terminal,
                                vc: in_vc,
                            },
                        );
                    }
                    Connection::Router { router, port } => {
                        let target = CreditTarget::Router {
                            router,
                            port,
                            vc: in_vc,
                        };
                        let owner = self.router_shard[router as usize] as usize;
                        if owner == st.id {
                            st.credit_ring.push(t, time, target);
                        } else {
                            st.out_credits[owner].push((time, target));
                        }
                    }
                }
                if is_terminal {
                    let arrival = t + out_spec.latency as u64;
                    let flit = st.arena.get(h);
                    st.arena.dealloc(h);
                    self.eject(st, flit, arrival);
                } else {
                    st.arena.bump_hops(h);
                    st.arena.set_vc(h, vc as u8);
                    debug_assert!(core.credits[oslot] > 0);
                    core.credits[oslot] -= 1;
                    core.outstanding[out] += 1;
                    let flat = self.port_base[r] as usize + out;
                    if let CreditMode::RoundTrip { sample, .. } = self.cfg.credit_mode {
                        if core.sent_seq[out].is_multiple_of(sample) {
                            core.ctq[out].push_back(t);
                        }
                        core.sent_seq[out] = core.sent_seq[out].wrapping_add(1);
                    }
                    // Telemetry hooks: both are `None` checks when
                    // telemetry is disabled, keeping the hot path flat.
                    let flat0 = st.flat0;
                    if let Some(s) = st.sampler.as_mut() {
                        s.sent_total[flat - flat0] += 1;
                    }
                    if st.arena.is_head(h) && st.arena.labeled(h) {
                        let packet = st.arena.packet(h);
                        if let Some(tr) = st.tracer.as_mut() {
                            if tr.selected(packet) {
                                tr.push(
                                    t,
                                    packet,
                                    TraceEventKind::Hop {
                                        router: r as u32,
                                        port: out as u16,
                                        vc: vc as u8,
                                    },
                                );
                            }
                        }
                    }
                    let df = self.dst_flat[flat] as usize;
                    let arrival = t + out_spec.latency as u64;
                    let owner = self.router_shard[self.flat_router[df] as usize] as usize;
                    if owner == st.id {
                        st.arena.set_due(h, arrival);
                        st.pipes[df - flat0].push_back(&mut st.arena, h);
                        activate(&mut st.active_pipes, &mut st.pipe_active, df, flat0);
                    } else {
                        // Cross-shard hop: materialise the flit for the
                        // mailbox and recycle this shard's slot — the
                        // owning shard re-allocates in its own arena.
                        st.out_flits[owner].push((df as u32, arrival, st.arena.get(h)));
                        st.arena.dealloc(h);
                    }
                    st.flit_hops += 1;
                    if in_window && !st.sent_in_window.is_empty() {
                        st.sent_in_window[flat - flat0] += 1;
                    }
                }
            }
            if core.in_count == 0 && core.out_count == 0 {
                st.router_active[r - st.range.r0] = false;
                st.active_routers.swap_remove(i);
            } else {
                i += 1;
            }
        }
        if self.exch.shards > 1 {
            for dst in 0..self.exch.shards {
                if dst == st.id {
                    continue;
                }
                if !st.out_flits[dst].is_empty() {
                    self.exch.flits[st.id * self.exch.shards + dst]
                        .lock()
                        .expect("flit mailbox poisoned")
                        .append(&mut st.out_flits[dst]);
                }
                if !st.out_credits[dst].is_empty() {
                    self.exch.credits[st.id * self.exch.shards + dst]
                        .lock()
                        .expect("credit mailbox poisoned")
                        .append(&mut st.out_credits[dst]);
                }
                if !st.out_notes[dst].is_empty() {
                    self.exch.notes[st.id * self.exch.shards + dst]
                        .lock()
                        .expect("note mailbox poisoned")
                        .append(&mut st.out_notes[dst]);
                }
            }
        }
    }

    /// Records an ejected flit into the owning shard's statistics and,
    /// when the workload listens, stages its delivery notifications.
    fn eject(&self, st: &mut ShardState<'a>, flit: Flit, arrival: u64) {
        if arrival >= self.win_start && arrival < self.win_end {
            st.ejected_in_window += 1;
        }
        if flit.is_tail {
            st.eject_total += 1;
            // Warmup-convergence windows: every packet ejected during
            // the warmup period lands in one of four equal windows,
            // whose throughput/latency drift `stats_with` reports.
            if arrival < self.win_start && self.win_start >= 4 {
                let w = (arrival * 4 / self.win_start) as usize;
                st.warmup_ejects[w] += 1;
                st.warmup_lat[w] += arrival - flit.created;
            }
        }
        // A message is delivered when its tail flit ejects: notify the
        // destination terminal (always local — ejection happens at its
        // own router's shard) and the source terminal (via the exchange
        // when foreign), both effective at the ejection channel's
        // arrival cycle.
        if self.wants_delivery && flit.is_tail {
            let d = Delivery {
                src: flit.src as usize,
                dest: flit.dest as usize,
                tag: flit.tag,
                packet: flit.packet,
                created: flit.created,
            };
            debug_assert_eq!(self.term_shard[flit.dest as usize] as usize, st.id);
            st.pending_notes.push((arrival, flit.dest, d));
            let src_owner = self.term_shard[flit.src as usize] as usize;
            if src_owner == st.id {
                st.pending_notes.push((arrival, flit.src, d));
            } else {
                st.out_notes[src_owner].push((arrival, flit.src, d));
            }
        }
        if !(flit.is_tail && flit.labeled) {
            return;
        }
        st.eject_labeled += 1;
        let latency = arrival - flit.created;
        st.latency.record(latency);
        st.hops.record(flit.hops as u64);
        st.histogram.record(latency);
        st.latency_log.record(latency);
        if let Some(tr) = st.tracer.as_mut() {
            if tr.selected(flit.packet) {
                tr.push(arrival, flit.packet, TraceEventKind::Eject { latency });
            }
        }
        match flit.route.class {
            RouteClass::Minimal => {
                st.minimal_latency.record(latency);
                st.minimal_histogram.record(latency);
            }
            RouteClass::NonMinimal => st.non_minimal_latency.record(latency),
        }
    }

    /// Phase 5 — the injection half: derive this shard's packet-id base
    /// from the published per-shard generation counts (shards hold
    /// contiguous terminal ranges, so prefix sums reproduce the serial
    /// engine's global packet order exactly), enqueue the flits staged
    /// in phase 1, and inject head-of-queue flits against the frozen
    /// router state.
    #[allow(unsafe_code)]
    fn seg_inject(&self, st: &mut ShardState<'a>, t: u64) {
        let packet_len = self.cfg.packet_len;
        let in_win = self.in_window(t);
        // Fixed-window runs label the packets created inside the
        // measurement window (the classic methodology); work-complete
        // runs label every tracked packet, so termination waits on
        // exactly the packets the workload cares about.
        let fixed_window = matches!(self.cfg.termination, Termination::FixedWindow);
        let shards = self.exch.shards;
        let mut base = st.next_packet;
        let mut total = 0u64;
        for s in 0..shards {
            let count = self.exch.gen_counts[s].load(Ordering::Acquire);
            if s < st.id {
                base += count;
            }
            total += count;
        }
        // Router state is frozen during this phase, so one view serves
        // every adaptive decision this cycle.
        // SAFETY: no shard mutates router state during phase 5.
        let view = unsafe {
            NetView::from_raw(
                self.spec,
                self.routers.base(),
                self.routers.len(),
                self.cfg.buffer_depth,
                t,
            )
        };
        let mut staged = 0usize;
        for term in st.range.t0..st.range.t1 {
            let tl = term - st.range.t0;
            // Enqueue the packet generated for this terminal in phase 1
            // (if any) under its globally ordered id.
            if staged < st.staged_gen.len() && st.staged_gen[staged].term == term as u32 {
                let item = st.staged_gen[staged];
                let packet = base + staged as u64;
                staged += 1;
                let labeled = if fixed_window {
                    in_win && item.tracked
                } else {
                    item.tracked
                };
                for i in 0..packet_len {
                    let h = st.arena.alloc(&Flit {
                        packet,
                        src: term as u32,
                        dest: item.dest,
                        route: RouteInfo::minimal(),
                        created: t,
                        injected: 0,
                        hops: 0,
                        vc: 0,
                        is_head: i == 0,
                        is_tail: i + 1 == packet_len,
                        labeled,
                        tag: item.tag,
                    });
                    st.terminals[tl].source.push_back(&mut st.arena, h);
                }
                if labeled {
                    st.gen_labeled += 1;
                }
            }
            // Injection of the head-of-queue flit (one per cycle).
            let Some(h) = st.terminals[tl].source.front() else {
                continue;
            };
            let (route, decision) = if st.arena.is_head(h) {
                // (Re-)evaluate the adaptive decision while the head flit
                // waits at the source: the packet has not entered the
                // network yet, so the freshest local state applies.
                let dest = st.arena.dest(h) as usize;
                let tc = &mut st.terminals[tl];
                let (route, decision) = self.routing.inject_traced(&view, term, dest, &mut tc.rng);
                tc.active_route = Some(route);
                (route, decision)
            } else {
                let route = st.terminals[tl]
                    .active_route
                    .expect("body flit with no active route");
                (route, DecisionRecord::default())
            };
            let vc = route.injection_vc as usize;
            if st.terminals[tl].credits[vc] == 0 {
                continue;
            }
            let h = st.terminals[tl].source.pop_front(&st.arena).unwrap();
            st.arena.set_route(h, route);
            st.arena.set_vc(h, vc as u8);
            st.arena.set_injected(h, t);
            st.terminals[tl].credits[vc] -= 1;
            let (r, p) = self.spec.terminal_port(term);
            let latency = self.spec.routers[r].ports[p].latency as u64;
            st.arena.set_due(h, t + latency);
            st.terminals[tl].pipe.push_back(&mut st.arena, h);
            if st.arena.is_tail(h) {
                st.terminals[tl].active_route = None;
            }
            // Telemetry commits only when the head flit actually enters
            // the injection channel: the per-cycle re-evaluations above
            // are provisional while the flit waits for a credit.
            if st.arena.is_head(h) && st.arena.labeled(h) {
                match route.class {
                    RouteClass::Minimal => st.telemetry.minimal_takes += 1,
                    RouteClass::NonMinimal => st.telemetry.non_minimal_takes += 1,
                }
                if decision.adaptive {
                    st.telemetry.adaptive_decisions += 1;
                    if decision.estimator_disagreed {
                        st.telemetry.estimator_disagreements += 1;
                    }
                    // Estimator-accuracy scoreboard: the committed
                    // decision's estimator reading vs the oracle's.
                    st.scoreboard.record(
                        decision.q_chosen,
                        decision.oracle_chosen,
                        decision.oracle_disagreed,
                        decision.oracle_scored,
                    );
                }
                if decision.fault_avoided {
                    st.telemetry.fault_avoided_decisions += 1;
                }
                st.telemetry.dropped_candidates += decision.dropped_candidates as u64;
                st.telemetry.oracle_probe_fallbacks += decision.probe_fallbacks as u64;
                let packet = st.arena.packet(h);
                let (src, dest) = (st.arena.src(h), st.arena.dest(h));
                if let Some(tr) = st.tracer.as_mut() {
                    if tr.selected(packet) {
                        tr.push(
                            t,
                            packet,
                            TraceEventKind::Inject {
                                src,
                                dest,
                                minimal: route.class == RouteClass::Minimal,
                                q_chosen: decision.q_chosen,
                                oracle: decision.oracle_chosen,
                            },
                        );
                    }
                }
            }
            activate(&mut st.active_terms, &mut st.term_active, term, st.range.t0);
            if in_win {
                st.injected_in_window += 1;
            }
        }
        debug_assert_eq!(staged, st.staged_gen.len());
        st.next_packet += total;
        self.sample_tick(st, t);
        if !fixed_window {
            self.exch.work_done[st.id].store(u64::from(st.workload.all_done()), Ordering::Release);
        }
        self.exch.gen_labeled[st.id].store(st.gen_labeled, Ordering::Release);
        self.exch.eject_labeled[st.id].store(st.eject_labeled, Ordering::Release);
        // Watchdog counters publish only on checkpoint cycles (the
        // boundary is derived from `t`, so every shard agrees), keeping
        // the disabled path free of extra stores.
        let wd = self.cfg.watchdog_every;
        if wd > 0 && (t + 1).is_multiple_of(wd) {
            self.exch.wd_hops[st.id].store(st.flit_hops, Ordering::Release);
            self.exch.wd_ejects[st.id].store(st.eject_total, Ordering::Release);
        }
    }

    /// Appends one sample column to this shard's channel time series if
    /// `t` is on the sampling cadence. Reads the settled end-of-cycle
    /// state (after transmission and injection).
    #[allow(unsafe_code)]
    fn sample_tick(&self, st: &mut ShardState<'a>, t: u64) {
        let flat0 = st.flat0;
        let Some(s) = st.sampler.as_mut() else {
            return;
        };
        if !t.is_multiple_of(s.every) {
            return;
        }
        s.series.ticks.push(t);
        let vcs = self.spec.vcs;
        for (i, ch) in s.series.channels.iter_mut().enumerate() {
            // SAFETY: routers are read-only at this point of phase 5.
            let core = unsafe { self.routers.get_ref(ch.router as usize) };
            let p = ch.port as usize;
            ch.occupancy.push(core.out_port_count[p]);
            let mut credits = 0u32;
            for vc in 0..vcs {
                let slot = p * vcs + vc;
                ch.vc_occupancy.push(core.out_q[slot].len as u16);
                credits += core.credits[slot];
            }
            ch.credits.push(credits as u16);
            let sent = s.sent_total[s.flats[i] as usize - flat0];
            ch.sent.push((sent - s.prev_sent[i]) as u32);
            s.prev_sent[i] = sent;
        }
    }

    /// One shard worker's warm-up/measure/drain loop: five phase
    /// segments per cycle, each ending at the barrier, then the
    /// termination condition every shard evaluates identically from the
    /// published counters.
    fn worker_drive(&self, st: &mut ShardState<'a>, timed: bool) {
        let hard_cap = self.win_end + self.cfg.drain_cap;
        while st.cycle < hard_cap {
            let t = st.cycle;
            if timed {
                let clock = Instant::now();
                self.seg_credits(st, t);
                st.phases[0] += clock.elapsed();
                self.exch.barrier.wait();
                let clock = Instant::now();
                self.seg_arrivals(st, t);
                st.phases[1] += clock.elapsed();
                self.exch.barrier.wait();
                let clock = Instant::now();
                self.seg_switch(st, t);
                st.phases[2] += clock.elapsed();
                self.exch.barrier.wait();
                let clock = Instant::now();
                self.seg_transmit(st, t);
                st.phases[3] += clock.elapsed();
                self.exch.barrier.wait();
                let clock = Instant::now();
                self.seg_inject(st, t);
                st.phases[4] += clock.elapsed();
                self.exch.barrier.wait();
            } else {
                self.seg_credits(st, t);
                self.exch.barrier.wait();
                self.seg_arrivals(st, t);
                self.exch.barrier.wait();
                self.seg_switch(st, t);
                self.exch.barrier.wait();
                self.seg_transmit(st, t);
                self.exch.barrier.wait();
                self.seg_inject(st, t);
                self.exch.barrier.wait();
            }
            st.cycle = t + 1;
            match self.cfg.termination {
                Termination::FixedWindow => {
                    if st.cycle >= self.win_end && self.exch.labeled_outstanding() == 0 {
                        break;
                    }
                }
                Termination::WorkComplete => {
                    // Every shard reads the same published flags after the
                    // phase-5 barrier, so they all break at the same cycle.
                    if self.exch.all_work_done() && self.exch.labeled_outstanding() == 0 {
                        st.completion = Some(st.cycle);
                        break;
                    }
                }
            }
            if self.cfg.watchdog_every > 0 {
                if let Some(report) = self.watchdog_check(st) {
                    st.stalled = Some(report);
                    break;
                }
            }
        }
    }

    /// Watchdog checkpoint: on cadence boundaries, compare the global
    /// progress counters published at the end of phase 5 against their
    /// values at the previous checkpoint. Zero progress (no hop, no
    /// ejection) across the whole window with packets in flight at its
    /// start means the network is wedged: every shard detects it on the
    /// same cycle (the inputs are replicated), scans its own routers for
    /// attribution, and merges all scans in shard order into one
    /// bit-identical [`StallReport`].
    fn watchdog_check(&self, st: &mut ShardState<'a>) -> Option<StallReport> {
        let wd = self.cfg.watchdog_every;
        if !st.cycle.is_multiple_of(wd) {
            return None;
        }
        let hops: u64 = self
            .exch
            .wd_hops
            .iter()
            .map(|c| c.load(Ordering::Acquire))
            .sum();
        let ejects: u64 = self
            .exch
            .wd_ejects
            .iter()
            .map(|c| c.load(Ordering::Acquire))
            .sum();
        // `next_packet` is the replicated global generation counter, so
        // the in-flight population is identical on every shard. The
        // first checkpoint can never stall (the previous in-flight
        // snapshot starts at zero), which keeps a run that simply has
        // no traffic yet from tripping the detector.
        let stalled =
            hops == st.wd_prev_hops && ejects == st.wd_prev_ejects && st.wd_prev_in_flight > 0;
        st.wd_prev_hops = hops;
        st.wd_prev_ejects = ejects;
        st.wd_prev_in_flight = st.next_packet - ejects;
        if !stalled {
            return None;
        }
        let scan = self.stall_scan(st);
        self.exch.stall_slots.lock().expect("stall slots poisoned")[st.id] = Some(scan);
        // Rendezvous so every shard's scan is written before any shard
        // merges; the barrier is safe because the stall verdict above is
        // computed from identical inputs on every shard.
        self.exch.barrier.wait();
        let slots = self.exch.stall_slots.lock().expect("stall slots poisoned");
        let mut blocked: Option<(usize, usize)> = None;
        let mut starved: Option<(u64, usize, usize)> = None;
        let mut oldest: Option<u64> = None;
        for scan in slots.iter().flatten() {
            if let Some((count, router)) = scan.blocked {
                if blocked.is_none_or(|(c, r)| count > c || (count == c && router < r)) {
                    blocked = Some((count, router));
                }
            }
            if let Some((depth, router, port)) = scan.starved {
                if starved
                    .is_none_or(|(d, r, p)| depth > d || (depth == d && (router, port) < (r, p)))
                {
                    starved = Some((depth, router, port));
                }
            }
            if let Some(created) = scan.oldest_created {
                if oldest.is_none_or(|c| created < c) {
                    oldest = Some(created);
                }
            }
        }
        let (blocked_ports, hottest_router) = blocked.unwrap_or((0, 0));
        let (starved_depth, starved_router, starved_port) = starved.unwrap_or((0, 0, 0));
        Some(StallReport {
            cycle: st.cycle,
            window: wd,
            in_flight: st.next_packet - ejects,
            hottest_router,
            blocked_ports,
            starved_router,
            starved_port,
            starved_depth,
            oldest_age: oldest.map_or(0, |created| st.cycle - created),
        })
    }

    /// Scans this shard's own routers, pipes and terminals for stall
    /// attribution. Runs after the phase-5 barrier with every shard
    /// parked in the watchdog, so reading own-router state is safe.
    #[allow(unsafe_code)]
    fn stall_scan(&self, st: &ShardState<'a>) -> StallScan {
        let vcs = self.spec.vcs;
        let mut scan = StallScan::default();
        let oldest = |arena: &FlitArena, q: &FlitQueue, scan: &mut StallScan| {
            for h in q.iter(arena) {
                let created = arena.created(h);
                if scan.oldest_created.is_none_or(|c| created < c) {
                    scan.oldest_created = Some(created);
                }
            }
        };
        for r in st.range.r0..st.range.r1 {
            // SAFETY: every shard is parked in the watchdog rendezvous
            // between cycles and reads only its own routers.
            let core = unsafe { self.routers.get_ref(r) };
            let ports = self.spec.routers[r].ports.len();
            let mut blocked_here = 0usize;
            for p in 0..ports {
                // Terminal ports always transmit (ejection needs no
                // credit), so they cannot block.
                if matches!(
                    self.spec.routers[r].ports[p].conn,
                    Connection::Terminal { .. }
                ) {
                    continue;
                }
                if core.out_port_count[p] == 0 {
                    continue;
                }
                let sendable = (0..vcs).any(|vc| {
                    let slot = p * vcs + vc;
                    !core.out_q[slot].is_empty() && core.credits[slot] > 0
                });
                if sendable {
                    continue;
                }
                blocked_here += 1;
                let depth = core.out_port_count[p] as u64;
                if scan
                    .starved
                    .is_none_or(|(d, br, bp)| depth > d || (depth == d && (r, p) < (br, bp)))
                {
                    scan.starved = Some((depth, r, p));
                }
            }
            if blocked_here > 0
                && scan
                    .blocked
                    .is_none_or(|(c, br)| blocked_here > c || (blocked_here == c && r < br))
            {
                scan.blocked = Some((blocked_here, r));
            }
            for q in core.inputs.iter().chain(core.out_q.iter()) {
                oldest(&st.arena, q, &mut scan);
            }
        }
        for q in &st.pipes {
            oldest(&st.arena, q, &mut scan);
        }
        for tc in &st.terminals {
            oldest(&st.arena, &tc.source, &mut scan);
            oldest(&st.arena, &tc.pipe, &mut scan);
        }
        scan
    }
}
impl<'a> Simulation<'a> {
    /// Builds a simulation over `spec` driven by `routing` and `pattern`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the configuration is invalid or the
    /// pattern's terminal count does not match the network's.
    pub fn new(
        spec: &'a NetworkSpec,
        routing: &'a dyn RoutingAlgorithm,
        pattern: &'a dyn TrafficPattern,
        cfg: SimConfig,
    ) -> Result<Self, SimError> {
        if pattern.num_terminals() != spec.num_terminals() {
            return Err(SimError::InvalidConfig(format!(
                "pattern covers {} terminals but network has {}",
                pattern.num_terminals(),
                spec.num_terminals()
            )));
        }
        let kind = cfg.injection;
        Self::with_workload(spec, routing, cfg, move |range| {
            open_loop_workload(kind, range, pattern)
        })
    }

    /// Builds a simulation whose traffic is driven by a [`Workload`]
    /// instead of the configured open-loop injection process.
    ///
    /// `factory` is called once per shard with that shard's contiguous
    /// terminal range and must return the workload slice responsible for
    /// those terminals. Slices coordinate only through simulated
    /// messages (delivery notifications), so the factory must hand each
    /// shard the same deterministic state regardless of how the network
    /// is sharded — every provided [`Workload`] implementor keeps its
    /// per-member state keyed by terminal, which satisfies this
    /// automatically. [`Workload::wants_delivery`] must agree across
    /// shards (it is sampled from the first slice).
    ///
    /// Combine with [`Termination::WorkComplete`] (see
    /// [`SimConfig::with_termination`]) to end the run when every slice
    /// reports [`Workload::all_done`] and the tracked packets have
    /// drained; [`RunStats::completion`] then reports the cycle.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the configuration is invalid.
    pub fn with_workload<F>(
        spec: &'a NetworkSpec,
        routing: &'a dyn RoutingAlgorithm,
        cfg: SimConfig,
        factory: F,
    ) -> Result<Self, SimError>
    where
        F: Fn(std::ops::Range<usize>) -> Box<dyn Workload + Send + 'a>,
    {
        cfg.validate()?;
        let vcs = spec.vcs;
        let round_trip = matches!(cfg.credit_mode, CreditMode::RoundTrip { .. });
        let mut routers = Vec::with_capacity(spec.num_routers());
        let mut port_base = Vec::with_capacity(spec.num_routers());
        let mut pipe_dest = Vec::new();
        let mut flat_router = Vec::new();
        let mut tcrt0 = Vec::new();
        let mut net_ports = Vec::with_capacity(spec.num_routers());
        let mut flat = 0u32;
        for (r, router) in spec.routers.iter().enumerate() {
            let ports = router.ports.len();
            port_base.push(flat);
            flat += ports as u32;
            routers.push(RouterCore {
                inputs: vec![FlitQueue::new(); ports * vcs],
                in_count: 0,
                in_port_count: vec![0; ports],
                out_q: vec![FlitQueue::new(); ports * vcs],
                out_count: 0,
                out_port_count: vec![0; ports],
                credits: vec![cfg.buffer_depth as u32; ports * vcs],
                outstanding: vec![0; ports],
                rr: vec![0; ports],
                ctq: if round_trip {
                    vec![VecDeque::new(); ports]
                } else {
                    Vec::new()
                },
                td: if round_trip {
                    vec![0; ports]
                } else {
                    Vec::new()
                },
                sent_seq: if round_trip {
                    vec![0; ports]
                } else {
                    Vec::new()
                },
                credit_seq: if round_trip {
                    vec![0; ports]
                } else {
                    Vec::new()
                },
            });
            let mut nps = Vec::new();
            for (p, port) in router.ports.iter().enumerate() {
                flat_router.push(r as u32);
                tcrt0.push(2 * port.latency as u64);
                match port.conn {
                    Connection::Router {
                        router: rr,
                        port: rp,
                    } => {
                        pipe_dest.push((rr, rp));
                        nps.push(p as u16);
                    }
                    Connection::Terminal { .. } => pipe_dest.push((u32::MAX, u32::MAX)),
                }
            }
            net_ports.push(nps);
        }
        let total_flats = flat as usize;
        let dst_flat: Vec<u32> = pipe_dest
            .iter()
            .map(|&(r, p)| {
                if r == u32::MAX {
                    u32::MAX
                } else {
                    port_base[r as usize] + p
                }
            })
            .collect();
        let plan = plan_shards(
            spec,
            &port_base,
            total_flats,
            resolve_shards(&cfg, spec.num_routers()),
        );
        let shard_count = plan.len();
        let mut router_shard = vec![0u32; spec.num_routers()];
        for (s, range) in plan.iter().enumerate() {
            for owned in router_shard.iter_mut().take(range.r1).skip(range.r0) {
                *owned = s as u32;
            }
        }
        let mut term_shard = vec![0u32; spec.num_terminals()];
        for (s, range) in plan.iter().enumerate() {
            for owner in term_shard.iter_mut().take(range.t1).skip(range.t0) {
                *owner = s as u32;
            }
        }
        let win_start = cfg.warmup;
        let win_end = cfg.warmup + cfg.measure;
        let horizon = tcrt0.iter().copied().max().unwrap_or(2) + 2;
        let num_routers = spec.num_routers();
        let shards = plan
            .iter()
            .enumerate()
            .map(|(id, &range)| {
                let flat0 = port_base[range.r0] as usize;
                let flat1 = if range.r1 == num_routers {
                    total_flats
                } else {
                    port_base[range.r1] as usize
                };
                let terminals = (range.t0..range.t1)
                    .map(|t| TerminalCore {
                        source: FlitQueue::new(),
                        active_route: None,
                        credits: vec![cfg.buffer_depth as u32; vcs],
                        pipe: FlitQueue::new(),
                        rng: rng_for(cfg.seed, t as u64),
                    })
                    .collect();
                let sampler = (cfg.telemetry.sample_every > 0).then(|| {
                    let mut flats = Vec::new();
                    let mut channels = Vec::new();
                    for (r, p) in spec.network_channels() {
                        if r < range.r0 || r >= range.r1 {
                            continue;
                        }
                        flats.push(port_base[r] + p as u32);
                        channels.push(ChannelSeries {
                            router: r as u32,
                            port: p as u16,
                            class: spec.routers[r].ports[p].class,
                            occupancy: Vec::new(),
                            vc_occupancy: Vec::new(),
                            credits: Vec::new(),
                            sent: Vec::new(),
                        });
                    }
                    ChannelSampler {
                        every: cfg.telemetry.sample_every,
                        prev_sent: vec![0; flats.len()],
                        flats,
                        sent_total: vec![0; flat1 - flat0],
                        series: TimeSeries {
                            every: cfg.telemetry.sample_every,
                            vcs: vcs as u8,
                            ticks: Vec::new(),
                            channels,
                        },
                    }
                });
                let tracer = (cfg.telemetry.trace_rate > 0.0)
                    .then(|| FlitTracer::new(cfg.telemetry.trace_rate, cfg.telemetry.trace_seed));
                ShardState {
                    id,
                    range,
                    workload: factory(range.t0..range.t1),
                    arena: FlitArena::new(),
                    flat0,
                    terminals,
                    pipes: vec![FlitQueue::new(); flat1 - flat0],
                    active_pipes: Vec::new(),
                    pipe_active: vec![false; flat1 - flat0],
                    active_terms: Vec::new(),
                    term_active: vec![false; range.t1 - range.t0],
                    active_routers: Vec::new(),
                    router_active: vec![false; range.r1 - range.r0],
                    credit_ring: CreditRing::with_horizon(horizon),
                    arrivals: Vec::new(),
                    arrival_routes: Vec::new(),
                    staged_gen: Vec::new(),
                    out_flits: vec![Vec::new(); shard_count],
                    out_credits: vec![Vec::new(); shard_count],
                    pending_notes: Vec::new(),
                    note_scratch: Vec::new(),
                    out_notes: vec![Vec::new(); shard_count],
                    completion: None,
                    flit_hops: 0,
                    cycle: 0,
                    next_packet: 0,
                    gen_labeled: 0,
                    eject_labeled: 0,
                    eject_total: 0,
                    wd_prev_hops: 0,
                    wd_prev_ejects: 0,
                    wd_prev_in_flight: 0,
                    stalled: None,
                    warmup_ejects: [0; 4],
                    warmup_lat: [0; 4],
                    injected_in_window: 0,
                    ejected_in_window: 0,
                    sent_in_window: if cfg.scale_mode {
                        Vec::new()
                    } else {
                        vec![0; flat1 - flat0]
                    },
                    latency: LatencySummary::default(),
                    minimal_latency: LatencySummary::default(),
                    non_minimal_latency: LatencySummary::default(),
                    hops: LatencySummary::default(),
                    histogram: Histogram::new(4096, 1),
                    minimal_histogram: Histogram::new(4096, 1),
                    telemetry: RouteTelemetry::default(),
                    latency_log: LogHistogram::new(),
                    scoreboard: EstimatorScoreboard::new(),
                    sampler,
                    tracer,
                    phases: [Duration::ZERO; 5],
                }
            })
            .collect::<Vec<_>>();
        let wants_delivery = shards[0].workload.wants_delivery();
        Ok(Simulation {
            eng: EngineShared {
                spec,
                cfg,
                routing,
                routers: ShardTable::new(routers),
                port_base,
                dst_flat,
                flat_router,
                router_shard,
                term_shard,
                wants_delivery,
                tcrt0,
                net_ports,
                win_start,
                win_end,
                exch: Exchange::new(shard_count),
            },
            shards,
            cycle: 0,
            stalled: None,
        })
    }

    /// The network being simulated.
    pub fn spec(&self) -> &'a NetworkSpec {
        self.eng.spec
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Number of router shards the engine resolved to (after clamping
    /// and the terminal-monotonicity fallback).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Runs warm-up, measurement and drain, returning the statistics.
    ///
    /// The run ends when every labelled packet has been delivered, or
    /// when the drain cap is exceeded (the network is saturated at this
    /// load); [`RunStats::drained`] records which. If the stall
    /// watchdog fires the run also ends (with `drained == false`);
    /// [`Simulation::stall_report`] holds the diagnosis. Use
    /// [`Simulation::try_run`] to surface a stall as a typed error.
    pub fn run(&mut self) -> RunStats {
        self.drive(false);
        self.collect()
    }

    /// Like [`Simulation::run`], but a watchdog stall ends the run with
    /// [`SimError::Stalled`] instead of undrained statistics.
    pub fn try_run(&mut self) -> Result<RunStats, SimError> {
        self.drive(false);
        match self.stalled {
            Some(report) => Err(SimError::Stalled(report)),
            None => Ok(self.collect()),
        }
    }

    /// Runs to completion like [`Simulation::run`], consuming the
    /// simulation so the final histograms move into the returned stats
    /// instead of being cloned.
    pub fn finish(mut self) -> RunStats {
        self.drive(false);
        self.collect_owned()
    }

    /// Like [`Simulation::finish`], but a watchdog stall ends the run
    /// with [`SimError::Stalled`] instead of undrained statistics.
    pub fn try_finish(mut self) -> Result<RunStats, SimError> {
        self.drive(false);
        match self.stalled {
            Some(report) => Err(SimError::Stalled(report)),
            None => Ok(self.collect_owned()),
        }
    }

    /// The stall watchdog's diagnosis from the last run, if it fired.
    pub fn stall_report(&self) -> Option<StallReport> {
        self.stalled
    }

    /// Runs to completion, consuming the simulation, and additionally
    /// reports wall-clock performance counters (per-phase wall time,
    /// cycles/sec, flit-hops/sec, shard count).
    pub fn run_instrumented(mut self) -> (RunStats, SimPerf) {
        let start = Instant::now();
        self.drive(true);
        let mut perf = SimPerf {
            cycles: self.cycle,
            wall: start.elapsed(),
            shards: self.shards.len(),
            ..SimPerf::default()
        };
        for st in &self.shards {
            perf.flit_hops += st.flit_hops;
            perf.shard_phases.push(st.phases);
            for (p, d) in st.phases.iter().enumerate() {
                if *d > perf.phases[p] {
                    perf.phases[p] = *d;
                }
            }
        }
        (self.collect_owned(), perf)
    }

    /// The warm-up/measure/drain loop shared by the `run` variants: one
    /// worker per shard (shard 0 runs on the calling thread), or a
    /// plain inline loop when there is a single shard.
    fn drive(&mut self, timed: bool) {
        let eng = &self.eng;
        if self.shards.len() == 1 {
            eng.worker_drive(&mut self.shards[0], timed);
        } else {
            std::thread::scope(|scope| {
                let mut workers = self.shards.iter_mut();
                let first = workers.next().expect("at least one shard");
                for st in workers {
                    scope.spawn(move || eng.worker_drive(st, timed));
                }
                eng.worker_drive(first, timed);
            });
        }
        self.cycle = self.shards[0].cycle;
        self.stalled = self.shards[0].stalled;
    }

    /// Advances the simulation by one cycle, accumulating per-phase wall
    /// time into `timers` (diagnostic; summed across shards, since the
    /// single-stepping path runs every shard's segment inline).
    #[doc(hidden)]
    pub fn step_timed(&mut self, timers: &mut [Duration; 5]) {
        let t = self.cycle;
        let clock = Instant::now();
        for st in self.shards.iter_mut() {
            self.eng.seg_credits(st, t);
        }
        timers[0] += clock.elapsed();
        let clock = Instant::now();
        for st in self.shards.iter_mut() {
            self.eng.seg_arrivals(st, t);
        }
        timers[1] += clock.elapsed();
        let clock = Instant::now();
        for st in self.shards.iter_mut() {
            self.eng.seg_switch(st, t);
        }
        timers[2] += clock.elapsed();
        let clock = Instant::now();
        for st in self.shards.iter_mut() {
            self.eng.seg_transmit(st, t);
        }
        timers[3] += clock.elapsed();
        let clock = Instant::now();
        for st in self.shards.iter_mut() {
            self.eng.seg_inject(st, t);
        }
        timers[4] += clock.elapsed();
        for st in self.shards.iter_mut() {
            st.cycle = t + 1;
        }
        self.cycle = t + 1;
    }

    /// Advances the simulation by one cycle. Shard segments run inline
    /// in shard order — bit-identical to the threaded path, because
    /// between two barriers the shards touch disjoint state.
    pub fn step(&mut self) {
        let t = self.cycle;
        for st in self.shards.iter_mut() {
            self.eng.seg_credits(st, t);
        }
        for st in self.shards.iter_mut() {
            self.eng.seg_arrivals(st, t);
        }
        for st in self.shards.iter_mut() {
            self.eng.seg_switch(st, t);
        }
        for st in self.shards.iter_mut() {
            self.eng.seg_transmit(st, t);
        }
        for st in self.shards.iter_mut() {
            self.eng.seg_inject(st, t);
        }
        for st in self.shards.iter_mut() {
            st.cycle = t + 1;
        }
        self.cycle = t + 1;
    }

    /// Concatenates per-shard channel series in shard order (= global
    /// `(router, port)` order, since shards are contiguous).
    fn merge_series(mut parts: Vec<TimeSeries>) -> Option<TimeSeries> {
        if parts.is_empty() {
            return None;
        }
        let mut merged = parts.remove(0);
        for part in parts {
            debug_assert_eq!(merged.ticks, part.ticks);
            merged.channels.extend(part.channels);
        }
        Some(merged)
    }

    /// Concatenates per-shard traces and normalises to the canonical
    /// `(cycle, packet)` order — unique, because a packet has at most
    /// one traced event per cycle.
    fn merge_trace(parts: Vec<crate::telemetry::FlitTrace>) -> Option<crate::telemetry::FlitTrace> {
        let mut parts = parts.into_iter();
        let mut merged = parts.next()?;
        for part in parts {
            merged.events.extend(part.events);
        }
        merged.events.sort_unstable_by_key(|e| (e.cycle, e.packet));
        Some(merged)
    }

    /// Builds the final statistics snapshot (cloning the histograms, so
    /// the simulation stays usable).
    fn collect(&self) -> RunStats {
        let mut histogram = self.shards[0].histogram.clone();
        let mut minimal_histogram = self.shards[0].minimal_histogram.clone();
        let mut latency_log = self.shards[0].latency_log.clone();
        for st in &self.shards[1..] {
            histogram.merge(&st.histogram);
            minimal_histogram.merge(&st.minimal_histogram);
            latency_log.merge(&st.latency_log);
        }
        let series = Self::merge_series(
            self.shards
                .iter()
                .filter_map(|st| st.sampler.as_ref().map(|s| s.series.clone()))
                .collect(),
        );
        let trace = Self::merge_trace(
            self.shards
                .iter()
                .filter_map(|st| st.tracer.as_ref().map(FlitTracer::snapshot))
                .collect(),
        );
        self.stats_with(histogram, minimal_histogram, latency_log, series, trace)
    }

    /// Builds the final statistics snapshot, consuming the simulation so
    /// the histograms (and telemetry buffers) move instead of being
    /// cloned.
    fn collect_owned(mut self) -> RunStats {
        let mut histogram = std::mem::replace(&mut self.shards[0].histogram, Histogram::new(1, 1));
        let mut minimal_histogram =
            std::mem::replace(&mut self.shards[0].minimal_histogram, Histogram::new(1, 1));
        let mut latency_log = std::mem::take(&mut self.shards[0].latency_log);
        for st in &self.shards[1..] {
            histogram.merge(&st.histogram);
            minimal_histogram.merge(&st.minimal_histogram);
            latency_log.merge(&st.latency_log);
        }
        let series = Self::merge_series(
            self.shards
                .iter_mut()
                .filter_map(|st| st.sampler.take().map(|s| s.series))
                .collect(),
        );
        let trace = Self::merge_trace(
            self.shards
                .iter_mut()
                .filter_map(|st| st.tracer.take().map(FlitTracer::finish))
                .collect(),
        );
        self.stats_with(histogram, minimal_histogram, latency_log, series, trace)
    }

    fn stats_with(
        &self,
        histogram: Histogram,
        minimal_histogram: Histogram,
        latency_log: LogHistogram,
        series: Option<TimeSeries>,
        trace: Option<crate::telemetry::FlitTrace>,
    ) -> RunStats {
        let cfg = &self.eng.cfg;
        let spec = self.eng.spec;
        let denom = (spec.num_terminals() as u64 * cfg.measure) as f64;
        let mut latency = LatencySummary::default();
        let mut minimal_latency = LatencySummary::default();
        let mut non_minimal_latency = LatencySummary::default();
        let mut hops = LatencySummary::default();
        let mut telemetry = RouteTelemetry::default();
        let mut scoreboard = EstimatorScoreboard::new();
        let mut injected = 0u64;
        let mut ejected = 0u64;
        let mut generated_labeled = 0u64;
        let mut ejected_labeled = 0u64;
        let mut warmup_ejects = [0u64; 4];
        let mut warmup_lat = [0u64; 4];
        for st in &self.shards {
            for w in 0..4 {
                warmup_ejects[w] += st.warmup_ejects[w];
                warmup_lat[w] += st.warmup_lat[w];
            }
            latency.merge(&st.latency);
            minimal_latency.merge(&st.minimal_latency);
            non_minimal_latency.merge(&st.non_minimal_latency);
            hops.merge(&st.hops);
            telemetry.minimal_takes += st.telemetry.minimal_takes;
            telemetry.non_minimal_takes += st.telemetry.non_minimal_takes;
            telemetry.adaptive_decisions += st.telemetry.adaptive_decisions;
            telemetry.estimator_disagreements += st.telemetry.estimator_disagreements;
            telemetry.fault_avoided_decisions += st.telemetry.fault_avoided_decisions;
            telemetry.dropped_candidates += st.telemetry.dropped_candidates;
            telemetry.oracle_probe_fallbacks += st.telemetry.oracle_probe_fallbacks;
            scoreboard.merge(&st.scoreboard);
            injected += st.injected_in_window;
            ejected += st.ejected_in_window;
            generated_labeled += st.gen_labeled;
            ejected_labeled += st.eject_labeled;
        }
        // Each channel is counted only by its source router's owning
        // shard, so a single read there replaces the former all-shards
        // sum. Scale mode drops the report entirely.
        let channel_loads = if cfg.scale_mode {
            Vec::new()
        } else {
            spec.network_channels()
                .map(|(r, p)| {
                    let flat = self.eng.port_base[r] as usize + p;
                    let st = &self.shards[self.eng.router_shard[r] as usize];
                    let flits = st.sent_in_window[flat - st.flat0];
                    ChannelLoad {
                        router: r,
                        port: p,
                        class: spec.routers[r].ports[p].class,
                        flits,
                        utilization: flits as f64 / cfg.measure as f64,
                    }
                })
                .collect()
        };
        let (converged, warmup_throughput_drift, warmup_latency_drift) =
            warmup_convergence(&warmup_ejects, &warmup_lat);
        RunStats {
            cycles: self.cycle,
            offered_load: cfg.injection.rate() * cfg.packet_len as f64,
            injected_rate: injected as f64 / denom,
            accepted_rate: ejected as f64 / denom,
            drained: generated_labeled == ejected_labeled,
            latency,
            minimal_latency,
            non_minimal_latency,
            hops,
            histogram,
            minimal_histogram,
            channel_loads,
            routing: telemetry,
            latency_log,
            scoreboard,
            series,
            trace,
            completion: self.shards[0].completion,
            converged,
            warmup_throughput_drift,
            warmup_latency_drift,
        }
    }

    /// Frozen read-only view over the router state (test hook).
    #[cfg(test)]
    #[allow(unsafe_code)]
    fn view(&self) -> NetView<'_> {
        // SAFETY: `&self` with no running workers means no concurrent
        // mutation.
        unsafe {
            NetView::from_raw(
                self.eng.spec,
                self.eng.routers.base(),
                self.eng.routers.len(),
                self.eng.cfg.buffer_depth,
                self.cycle,
            )
        }
    }

    /// Exclusive access to every router core (test hook).
    #[cfg(test)]
    fn router_cores(&mut self) -> &mut [RouterCore] {
        self.eng.routers.slice_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::health::WARMUP_DRIFT_LIMIT;
    use crate::routing::ShortestPathRouting;
    use crate::spec::{PortSpec, RouterSpec};
    use dfly_traffic::{Shift, UniformRandom};

    fn term(t: u32) -> PortSpec {
        PortSpec {
            conn: Connection::Terminal { terminal: t },
            latency: 1,
            class: ChannelClass::Terminal,
        }
    }

    fn link(r: u32, p: u32) -> PortSpec {
        PortSpec {
            conn: Connection::Router { router: r, port: p },
            latency: 1,
            class: ChannelClass::Local,
        }
    }

    /// T0-R0 — R1 — R2-T1 line with T2 on R1.
    fn line_spec() -> NetworkSpec {
        NetworkSpec::validated(
            vec![
                RouterSpec {
                    ports: vec![term(0), link(1, 0)],
                },
                RouterSpec {
                    ports: vec![link(0, 1), link(2, 0), term(2)],
                },
                RouterSpec {
                    ports: vec![link(1, 1), term(1)],
                },
            ],
            2,
        )
        .unwrap()
    }

    fn run_line(cfg: SimConfig, pattern: &dyn TrafficPattern) -> RunStats {
        let spec = line_spec();
        let routing = ShortestPathRouting::new(&spec);
        let stats = Simulation::new(&spec, &routing, pattern, cfg)
            .unwrap()
            .run();
        stats
    }

    /// T0-R0 — R1-T1 — R2-T2 line with terminal ids monotone in router
    /// order, so `plan_shards` can actually split it.
    fn monotone_line_spec() -> NetworkSpec {
        NetworkSpec::validated(
            vec![
                RouterSpec {
                    ports: vec![term(0), link(1, 0)],
                },
                RouterSpec {
                    ports: vec![link(0, 1), link(2, 0), term(1)],
                },
                RouterSpec {
                    ports: vec![link(1, 1), term(2)],
                },
            ],
            2,
        )
        .unwrap()
    }

    #[test]
    fn sharded_run_matches_single_shard() {
        // Full telemetry on, so the comparison also covers per-shard
        // series and trace merging.
        let run = |shards: usize| {
            let spec = monotone_line_spec();
            let routing = ShortestPathRouting::new(&spec);
            let pattern = UniformRandom::new(3);
            let mut cfg = SimConfig::paper_default(0.3);
            cfg.warmup = 200;
            cfg.measure = 2_000;
            cfg.seed = 9;
            cfg.shards = shards;
            cfg.telemetry = crate::config::TelemetryConfig {
                sample_every: 8,
                trace_rate: 1.0,
                trace_seed: 5,
            };
            let sim = Simulation::new(&spec, &routing, &pattern, cfg).unwrap();
            assert_eq!(sim.shard_count(), shards.min(3));
            sim.finish()
        };
        let one = run(1);
        assert!(one.drained);
        for shards in [2, 3] {
            assert_eq!(run(shards), one, "{shards}-shard run diverged");
        }
    }

    #[test]
    fn non_monotone_terminals_fall_back_to_one_shard() {
        // `line_spec` numbers its terminals out of router order, which
        // would break the global packet-id order if split; the planner
        // must refuse and run single-sharded.
        let spec = line_spec();
        let routing = ShortestPathRouting::new(&spec);
        let pattern = UniformRandom::new(3);
        let cfg = SimConfig::paper_default(0.2).with_shards(3);
        let sim = Simulation::new(&spec, &routing, &pattern, cfg).unwrap();
        assert_eq!(sim.shard_count(), 1);
    }

    #[test]
    fn zero_load_latency_matches_hops() {
        // T0 -> T1 crosses: injection (1) + two links (2) + ejection (1).
        let mut cfg = SimConfig::paper_default(0.005);
        cfg.warmup = 100;
        cfg.measure = 2_000;
        cfg.seed = 3;
        let pattern = Shift::new(3, 1); // 0->1, 1->2, 2->0
        let stats = run_line(cfg, &pattern);
        assert!(stats.drained);
        assert!(stats.latency.count > 0);
        // 0->1: 4 cycles; 1->2 and 2->0: 3 cycles (one link). At
        // near-zero load the average sits between 3 and 4.
        let avg = stats.avg_latency().unwrap();
        assert!((3.0..=4.2).contains(&avg), "avg {avg}");
        assert_eq!(stats.latency.min, 3);
    }

    #[test]
    fn low_load_throughput_matches_offered() {
        let mut cfg = SimConfig::paper_default(0.2);
        cfg.warmup = 500;
        cfg.measure = 5_000;
        let pattern = UniformRandom::new(3);
        let stats = run_line(cfg, &pattern);
        assert!(stats.drained);
        assert!(
            (stats.accepted_rate - 0.2).abs() < 0.02,
            "accepted {}",
            stats.accepted_rate
        );
        assert!(
            (stats.injected_rate - 0.2).abs() < 0.02,
            "injected {}",
            stats.injected_rate
        );
    }

    #[test]
    fn credit_ring_delivers_in_push_order_and_grows() {
        let tgt = |vc: u8| CreditTarget::Terminal { term: 0, vc };
        let mut ring = CreditRing::with_horizon(2);
        assert_eq!(ring.mask, 3);
        // Same delivery cycle: FIFO. Far future: forces growth with
        // pending events that must re-slot to their absolute times.
        ring.push(0, 2, tgt(0));
        ring.push(0, 2, tgt(1));
        ring.push(0, 1, tgt(2));
        ring.push(0, 37, tgt(3));
        assert!(ring.mask >= 63);
        assert_eq!(ring.pending, 4);
        let due = ring.take_due(1);
        assert_eq!(due, vec![tgt(2)]);
        ring.restore(1, due);
        let due = ring.take_due(2);
        assert_eq!(due, vec![tgt(0), tgt(1)]);
        ring.restore(2, due);
        assert_eq!(ring.take_due(37), vec![tgt(3)]);
        assert_eq!(ring.pending, 0);
    }

    #[test]
    fn finish_and_instrumented_match_run() {
        let spec = line_spec();
        let routing = ShortestPathRouting::new(&spec);
        let pattern = UniformRandom::new(3);
        let cfg = SimConfig::paper_default(0.3).with_seed(11);
        let by_run = Simulation::new(&spec, &routing, &pattern, cfg.clone())
            .unwrap()
            .run();
        let by_finish = Simulation::new(&spec, &routing, &pattern, cfg.clone())
            .unwrap()
            .finish();
        assert_eq!(by_run, by_finish);
        let (by_inst, perf) = Simulation::new(&spec, &routing, &pattern, cfg)
            .unwrap()
            .run_instrumented();
        assert_eq!(by_run, by_inst);
        assert_eq!(perf.cycles, by_run.cycles);
        assert!(perf.flit_hops > 0);
        assert!(perf.cycles_per_sec() > 0.0);
        assert!(perf.flit_hops_per_sec() > 0.0);
        let phase_sum: std::time::Duration = perf.phases.iter().sum();
        assert!(perf.wall >= phase_sum);
    }

    #[test]
    fn worklists_empty_once_drained() {
        let mut cfg = SimConfig::paper_default(0.4);
        cfg.warmup = 200;
        cfg.measure = 1_000;
        let spec = line_spec();
        let routing = ShortestPathRouting::new(&spec);
        let pattern = UniformRandom::new(3);
        let mut sim = Simulation::new(&spec, &routing, &pattern, cfg).unwrap();
        sim.run();
        for st in &mut sim.shards {
            st.workload = Box::new(dfly_traffic::Idle);
        }
        for _ in 0..2_000 {
            sim.step();
        }
        for st in &sim.shards {
            assert!(st.active_pipes.is_empty());
            assert!(st.active_terms.is_empty());
            assert!(st.active_routers.is_empty());
            assert_eq!(st.credit_ring.pending, 0);
            assert!(!st.pipe_active.iter().any(|&b| b));
            assert!(!st.router_active.iter().any(|&b| b));
            // Every arena slot returned to the free list: no handle
            // leaked off the queues.
            assert_eq!(st.arena.free_count(), st.arena.capacity());
        }
        for core in sim.router_cores() {
            assert!(core.outstanding.iter().all(|&o| o == 0));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let pattern = UniformRandom::new(3);
        let a = run_line(SimConfig::paper_default(0.3).with_seed(7), &pattern);
        let b = run_line(SimConfig::paper_default(0.3).with_seed(7), &pattern);
        assert_eq!(a, b);
        let c = run_line(SimConfig::paper_default(0.3).with_seed(8), &pattern);
        assert_ne!(a.latency, c.latency);
    }

    #[test]
    fn credits_conserved_after_drain() {
        let mut cfg = SimConfig::paper_default(0.4);
        cfg.warmup = 200;
        cfg.measure = 1_000;
        let spec = line_spec();
        let routing = ShortestPathRouting::new(&spec);
        let pattern = UniformRandom::new(3);
        let mut sim = Simulation::new(&spec, &routing, &pattern, cfg).unwrap();
        sim.run();
        // Stop injecting and run plenty of extra cycles.
        for st in &mut sim.shards {
            st.workload = Box::new(dfly_traffic::Idle);
        }
        for _ in 0..2_000 {
            sim.step();
        }
        let sp = sim.spec();
        for (r, core) in sim.router_cores().iter().enumerate() {
            assert_eq!(core.in_count, 0, "router {r} input stage not empty");
            assert_eq!(core.out_count, 0, "router {r} output queues not empty");
            assert!(core.ctq.is_empty(), "conventional mode allocated a CTQ");
            for (slot, &c) in core.credits.iter().enumerate() {
                let port = slot / sp.vcs;
                if matches!(sp.routers[r].ports[port].conn, Connection::Router { .. }) {
                    assert_eq!(c, 16, "router {r} slot {slot} credits {c}");
                }
            }
        }
        for st in &sim.shards {
            for (tl, tc) in st.terminals.iter().enumerate() {
                let t = st.range.t0 + tl;
                assert!(tc.source.is_empty(), "terminal {t} source not empty");
                for &c in &tc.credits {
                    assert_eq!(c, 16, "terminal {t} credits");
                }
            }
        }
    }

    #[test]
    fn saturated_run_reports_undrained() {
        // A single shared link at offered load ~1.0 from two senders on
        // the same router cannot drain.
        let spec = NetworkSpec::validated(
            vec![
                RouterSpec {
                    ports: vec![term(0), term(1), link(1, 0)],
                },
                RouterSpec {
                    ports: vec![link(0, 2), term(2)],
                },
            ],
            2,
        )
        .unwrap();
        let routing = ShortestPathRouting::new(&spec);
        // Everyone sends to terminal 2 on the far router.
        #[derive(Debug)]
        struct ToTwo;
        impl TrafficPattern for ToTwo {
            fn name(&self) -> &'static str {
                "to-two"
            }
            fn num_terminals(&self) -> usize {
                3
            }
            fn destination(&self, source: usize, _rng: &mut SmallRng) -> usize {
                if source == 2 {
                    0
                } else {
                    2
                }
            }
        }
        // Labelled backlog grows at ~0.8 flits/cycle over the window, so
        // a drain cap shorter than the backlog cannot complete.
        let mut cfg = SimConfig::paper_default(0.9);
        cfg.warmup = 200;
        cfg.measure = 5_000;
        cfg.drain_cap = 2_000;
        let stats = Simulation::new(&spec, &routing, &ToTwo, cfg).unwrap().run();
        assert!(!stats.drained, "two 0.9 sources through one link");
        // Hitting drain_cap means the sampled packets are the ones that
        // escaped the backlog: their mean is biased low, so the
        // aggregate accessor must refuse to report it — even though the
        // partial population itself is non-empty.
        assert!(stats.latency.count > 0, "some labelled packets escaped");
        assert_eq!(
            stats.avg_latency(),
            None,
            "undrained run must not report a biased mean"
        );
        // Terminals 0 and 1 share the link (~0.5 each) while terminal 2's
        // reverse path is free (0.9): average ~0.63, well below offered.
        assert!(
            stats.injected_rate < 0.7,
            "injected {}",
            stats.injected_rate
        );
        // The shared link runs at full utilisation.
        let load = stats
            .channel_loads
            .iter()
            .find(|c| c.router == 0 && c.port == 2)
            .unwrap();
        assert!(load.utilization > 0.95, "utilization {}", load.utilization);
    }

    #[test]
    fn output_queue_backlog_visible_to_netview() {
        // Freeze a congested instant and check NetView sees the backlog.
        let spec = NetworkSpec::validated(
            vec![
                RouterSpec {
                    ports: vec![term(0), term(1), link(1, 0)],
                },
                RouterSpec {
                    ports: vec![link(0, 2), term(2)],
                },
            ],
            2,
        )
        .unwrap();
        let routing = ShortestPathRouting::new(&spec);
        #[derive(Debug)]
        struct ToTwo;
        impl TrafficPattern for ToTwo {
            fn name(&self) -> &'static str {
                "to-two"
            }
            fn num_terminals(&self) -> usize {
                3
            }
            fn destination(&self, source: usize, _rng: &mut SmallRng) -> usize {
                if source == 2 {
                    0
                } else {
                    2
                }
            }
        }
        let mut cfg = SimConfig::paper_default(1.0);
        cfg.warmup = 10;
        cfg.measure = 10;
        cfg.drain_cap = 0;
        let mut sim = Simulation::new(&spec, &routing, &ToTwo, cfg).unwrap();
        for _ in 0..500 {
            sim.step();
        }
        let view = sim.view();
        // Router 0's output port 2 (the link) backs up with flits from
        // both terminals; only 1/cycle leaves.
        assert!(view.occupancy(0, 2) >= 8, "occ {}", view.occupancy(0, 2));
        // Its ejection ports carry no backlog.
        assert_eq!(view.occupancy(1, 1), 0);
    }

    #[test]
    fn round_trip_mode_keeps_ctq_balanced() {
        let spec = line_spec();
        let routing = ShortestPathRouting::new(&spec);
        let pattern = UniformRandom::new(3);
        let mut cfg = SimConfig::paper_default(0.6);
        cfg.warmup = 100;
        cfg.measure = 1_000;
        cfg.credit_mode = CreditMode::round_trip();
        let mut sim = Simulation::new(&spec, &routing, &pattern, cfg).unwrap();
        sim.run();
        let vcs = sim.spec().vcs;
        for core in sim.router_cores() {
            for (p, q) in core.ctq.iter().enumerate() {
                assert!(
                    q.len() <= 16 * vcs,
                    "ctq at port {p} grew past outstanding credits"
                );
            }
        }
    }

    #[test]
    fn multi_flit_packets_arrive_whole() {
        let mut cfg = SimConfig::paper_default(0.05);
        cfg.packet_len = 4;
        cfg.warmup = 100;
        cfg.measure = 2_000;
        let pattern = UniformRandom::new(3);
        let stats = run_line(cfg, &pattern);
        assert!(stats.drained);
        // Offered load in flits is 4x the packet rate.
        assert!((stats.offered_load - 0.2).abs() < 1e-12);
        assert!(stats.accepted_rate > 0.15);
        // A 4-flit packet takes at least 3 extra cycles of serialisation.
        assert!(stats.latency.min >= 6);
    }

    #[test]
    fn scale_mode_only_drops_channel_loads() {
        let pattern = UniformRandom::new(3);
        let base = run_line(SimConfig::paper_default(0.3).with_seed(5), &pattern);
        let scaled = run_line(
            SimConfig::paper_default(0.3)
                .with_seed(5)
                .with_scale_mode(true),
            &pattern,
        );
        assert!(!base.channel_loads.is_empty());
        assert!(scaled.channel_loads.is_empty());
        let mut base = base;
        base.channel_loads.clear();
        assert_eq!(base, scaled, "scale mode changed more than channel loads");
    }

    #[test]
    fn barrier_workload_completes_identically_at_any_shard_count() {
        use dfly_traffic::Barrier;
        let run = |shards: usize| {
            let spec = monotone_line_spec();
            let routing = ShortestPathRouting::new(&spec);
            let cfg = SimConfig::paper_default(0.0)
                .with_seed(13)
                .with_shards(shards)
                .with_termination(Termination::WorkComplete);
            let stats = Simulation::with_workload(&spec, &routing, cfg, |_range| {
                Box::new(Barrier::new(vec![0, 1, 2], 3))
            })
            .unwrap()
            .run();
            stats
        };
        let one = run(1);
        assert!(one.drained, "barrier run must drain");
        let done = one.completion.expect("work-complete run reports its cycle");
        assert!(done > 0 && done < one.cycles + 1);
        // 3 iterations x (2 arrives + 2 releases) payload packets.
        assert_eq!(one.latency.count, 12);
        for shards in [2, 3] {
            assert_eq!(run(shards), one, "{shards}-shard closed loop diverged");
        }
    }

    #[test]
    fn fixed_window_runs_report_no_completion() {
        let pattern = UniformRandom::new(3);
        let stats = run_line(SimConfig::paper_default(0.2).with_seed(3), &pattern);
        assert_eq!(stats.completion, None);
    }

    #[test]
    fn mismatched_pattern_rejected() {
        let spec = line_spec();
        let routing = ShortestPathRouting::new(&spec);
        let pattern = UniformRandom::new(5);
        let err = Simulation::new(&spec, &routing, &pattern, SimConfig::paper_default(0.1));
        assert!(err.is_err());
    }

    /// 4-router unidirectional ring, one terminal each (monotone, so
    /// the planner can split it 1/2/4 ways). Port 1 is the forward
    /// link, port 2 the inbound end of the previous router's forward
    /// link.
    fn ring_spec() -> NetworkSpec {
        NetworkSpec::validated(
            (0..4u32)
                .map(|r| RouterSpec {
                    ports: vec![term(r), link((r + 1) % 4, 2), link((r + 3) % 4, 1)],
                })
                .collect(),
            2,
        )
        .unwrap()
    }

    /// Hostile routing that forwards every flit around the ring forever
    /// and never ejects: with no escape path and a single VC in use,
    /// the ring's cyclic channel dependency deadlocks as soon as the
    /// buffers fill.
    struct Spin;
    impl RoutingAlgorithm for Spin {
        fn name(&self) -> String {
            "spin".into()
        }
        fn inject(
            &self,
            _view: &NetView<'_>,
            _src_term: usize,
            _dest_term: usize,
            _rng: &mut SmallRng,
        ) -> RouteInfo {
            RouteInfo::minimal()
        }
        fn route(&self, _view: &NetView<'_>, _router: usize, _flit: &Flit) -> PortVc {
            PortVc::new(1, 0)
        }
    }

    #[test]
    fn watchdog_reports_identical_stall_at_any_shard_count() {
        let run = |shards: usize| {
            let spec = ring_spec();
            let pattern = UniformRandom::new(4);
            let mut cfg = SimConfig::paper_default(1.0)
                .with_seed(7)
                .with_shards(shards)
                .with_watchdog(256);
            cfg.warmup = 100;
            cfg.measure = 10_000;
            cfg.drain_cap = 100_000;
            let mut sim = Simulation::new(&spec, &Spin, &pattern, cfg).unwrap();
            assert_eq!(sim.shard_count(), shards.min(4));
            let err = sim.try_run().expect_err("wedged ring must stall");
            assert_eq!(sim.stall_report(), Some(force_report(&err)));
            err
        };
        fn force_report(err: &SimError) -> StallReport {
            match err {
                SimError::Stalled(report) => *report,
                other => panic!("expected Stalled, got {other}"),
            }
        }
        let one = force_report(&run(1));
        assert_eq!(one.window, 256);
        assert!(one.cycle.is_multiple_of(256));
        assert!(one.in_flight > 0, "stall requires packets in flight");
        assert!(one.blocked_ports >= 1);
        // Every router's only loaded output is its forward link; the
        // ring is symmetric, so the tie-breaks pick router 0 port 1.
        assert_eq!((one.starved_router, one.starved_port), (0, 1));
        assert!(one.starved_depth > 0);
        assert!(one.oldest_age >= 256, "the wedge outlasted the window");
        let msg = SimError::Stalled(one).to_string();
        assert!(msg.contains("router 0 port 1"), "names the channel: {msg}");
        for shards in [2, 4] {
            assert_eq!(
                force_report(&run(shards)),
                one,
                "{shards}-shard stall report diverged"
            );
        }
    }

    #[test]
    fn healthy_runs_pass_the_watchdog_and_report_convergence() {
        let pattern = UniformRandom::new(3);
        let mut cfg = SimConfig::paper_default(0.3).with_seed(5).with_watchdog(64);
        cfg.warmup = 400;
        cfg.measure = 2_000;
        let spec = monotone_line_spec();
        let routing = ShortestPathRouting::new(&spec);
        let stats = Simulation::new(&spec, &routing, &pattern, cfg)
            .unwrap()
            .try_run()
            .expect("healthy run must not stall");
        assert!(stats.drained);
        assert!(stats.converged, "steady warmup converges: {stats:?}");
        assert!(stats.warmup_throughput_drift.unwrap() <= WARMUP_DRIFT_LIMIT);
        assert!(stats.warmup_latency_drift.unwrap() <= WARMUP_DRIFT_LIMIT);
        // The watchdog leaves the statistics untouched: identical run
        // with it disabled (the default) agrees exactly.
        let mut quiet_cfg = SimConfig::paper_default(0.3).with_seed(5);
        quiet_cfg.warmup = 400;
        quiet_cfg.measure = 2_000;
        let quiet = Simulation::new(&spec, &routing, &pattern, quiet_cfg)
            .unwrap()
            .run();
        assert_eq!(stats, quiet, "watchdog perturbed the run");
    }

    #[test]
    fn too_short_warmup_is_vacuously_converged() {
        let pattern = UniformRandom::new(3);
        let mut cfg = SimConfig::paper_default(0.2).with_seed(4);
        cfg.warmup = 0;
        cfg.measure = 500;
        let stats = run_line(cfg, &pattern);
        assert!(stats.converged);
        assert_eq!(stats.warmup_throughput_drift, None);
        assert_eq!(stats.warmup_latency_drift, None);
    }
}
