//! The cycle-driven simulation engine.
//!
//! The router model follows the paper's Figure 13: a single-cycle router
//! with *per-output queues* (`q0`…`q3` in the figure) and enough internal
//! speedup that the switch itself is never the bottleneck. Concretely,
//! each router has a small credited input stage per (channel, VC) and
//! bounded per-(output, VC) queues; flits move from the input stage into
//! their output queue with unlimited speedup and each output transmits
//! one flit per cycle. Congestion therefore backs up exactly the way the
//! paper describes: an overloaded global channel fills its output queue,
//! which stalls the switching stage, which fills the input buffers and
//! exhausts the upstream credits, which fills the upstream router's
//! output queue — the `q` values that adaptive routing inspects.
//!
//! Each cycle proceeds in five phases:
//!
//! 1. **Credit arrivals** — due credits increment upstream counters; in
//!    round-trip mode the credit-timestamp queue is popped and the
//!    per-output `td` register updated.
//! 2. **Flit arrivals** — flits finishing their channel traversal are
//!    route-computed and enter the input stage.
//! 3. **Switching** — flits move from the input stage into their target
//!    output queue while it has space; the freed input slot's credit is
//!    returned upstream, delayed by the credit round-trip mechanism when
//!    enabled.
//! 4. **Transmission** — every output port sends one flit (round-robin
//!    over its VC queues, subject to downstream credits); terminal ports
//!    eject.
//! 5. **Injection** — every terminal runs its injection process, routes
//!    the packet at the head of its source queue (the adaptive decision
//!    of the UGAL family happens here, at the source router, seeing the
//!    settled post-transmission queues), and sends one flit onto its
//!    injection channel if a credit is available.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use dfly_traffic::{rng_for, Bernoulli, InjectionProcess, OnOff, TrafficPattern};
use rand::rngs::SmallRng;

use crate::config::{CreditMode, InjectionKind, SimConfig, TdEstimator};
use crate::error::SimError;
use crate::flit::{Flit, RouteClass, RouteInfo};
use crate::routing::{DecisionRecord, NetView, PortVc, RoutingAlgorithm};
use crate::spec::{ChannelClass, Connection, NetworkSpec};
use crate::stats::{ChannelLoad, Histogram, LatencySummary, RouteTelemetry, RunStats};
use crate::telemetry::{
    ChannelSeries, EstimatorScoreboard, FlitTracer, LogHistogram, TimeSeries, TraceEventKind,
};

/// Live state of one router (visible crate-wide so [`NetView`] can read
/// the output-queue depths).
#[derive(Debug)]
pub(crate) struct RouterCore {
    /// Input stage: arriving flits with their precomputed route,
    /// flattened `[in_port * vcs + vc]`, capacity `buffer_depth` each
    /// (enforced by upstream credits).
    inputs: Vec<VecDeque<(Flit, PortVc)>>,
    /// Total flits in the input stage (fast idle check).
    in_count: u32,
    /// Flits in the input stage per input port (fast scan).
    in_port_count: Vec<u16>,
    /// Per-output queues, flattened `[out_port * vcs + out_vc]`, capacity
    /// `buffer_depth` each — the `q` values of the paper's Figure 13.
    /// Entries carry the input slot the flit arrived through, whose
    /// credit is returned when the flit is transmitted.
    pub(crate) out_q: Vec<VecDeque<(Flit, u16)>>,
    /// Total flits in output queues (fast idle check).
    out_count: u32,
    /// Flits in the output queues per output port (fast scan; also the
    /// O(1) aggregate behind [`NetView::occupancy`]).
    pub(crate) out_port_count: Vec<u16>,
    /// Credits available toward the downstream input stage of each
    /// output, flattened `[out_port * vcs + vc]`. Meaningless for
    /// terminal ports.
    pub(crate) credits: Vec<u32>,
    /// Credits consumed toward downstream and not yet returned, per
    /// output port (always zero for terminal ports) — the aggregate
    /// [`NetView::committed`] reads in O(1).
    pub(crate) outstanding: Vec<u32>,
    /// Per-output round-robin pointer over VC queues.
    rr: Vec<u8>,
    /// Per-output credit timestamp queue (round-trip mode).
    ctq: Vec<VecDeque<u64>>,
    /// Per-output credit round-trip excess `td = tcrt − tcrt0`.
    td: Vec<u64>,
    /// Flits sent per output (for CTQ sampling).
    sent_seq: Vec<u32>,
    /// Credits received per output (for CTQ sampling).
    credit_seq: Vec<u32>,
}

/// Live state of one terminal.
struct TerminalCore {
    /// Unbounded source queue of generated flits.
    source: VecDeque<Flit>,
    /// Route of the packet currently leaving the source queue.
    active_route: Option<RouteInfo>,
    /// Credits toward the router's injection input buffer, per VC.
    credits: Vec<u32>,
    /// Flits in flight on the injection channel: `(arrival, flit)`.
    pipe: VecDeque<(u64, Flit)>,
    /// Injection process.
    inj: Injector,
    /// Per-terminal RNG stream.
    rng: SmallRng,
}

#[derive(Debug, Clone)]
enum Injector {
    Bernoulli(Bernoulli),
    OnOff(OnOff),
}

impl Injector {
    fn new(kind: InjectionKind) -> Self {
        match kind {
            InjectionKind::Bernoulli { rate } => Injector::Bernoulli(Bernoulli::new(rate)),
            InjectionKind::OnOff { rate, burst_len } => {
                Injector::OnOff(OnOff::with_rate(rate, burst_len))
            }
            InjectionKind::MarkovOnOff {
                rate,
                burst_len,
                duty,
            } => Injector::OnOff(OnOff::with_rate_and_duty(rate, burst_len, duty)),
        }
    }

    fn inject(&mut self, rng: &mut SmallRng) -> bool {
        match self {
            Injector::Bernoulli(p) => p.inject(rng),
            Injector::OnOff(p) => p.inject(rng),
        }
    }
}

/// Where a pending credit return lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CreditTarget {
    Router { router: u32, port: u32, vc: u8 },
    Terminal { term: u32, vc: u8 },
}

/// Calendar queue of pending credit returns: a power-of-two ring of
/// per-cycle FIFO buckets indexed by delivery cycle.
///
/// Replaces the engine's former global `BinaryHeap`: push and delivery
/// are O(1) per credit with no comparisons, and because every bucket is
/// drained in insertion order the delivery sequence is exactly the
/// heap's `(time, insertion seq)` order — results are bit-identical.
#[derive(Debug)]
struct CreditRing {
    /// `buckets[time & mask]` holds the credits due at `time`. Every
    /// pending time lies in `[now, now + buckets.len())`, so the
    /// bucket index maps back to an unambiguous absolute time.
    buckets: Vec<Vec<CreditTarget>>,
    mask: u64,
    /// Total credits pending across all buckets.
    pending: usize,
}

impl CreditRing {
    /// A ring covering delivery delays up to `horizon` cycles without
    /// growing.
    fn with_horizon(horizon: u64) -> Self {
        let len = (horizon + 1).max(4).next_power_of_two();
        CreditRing {
            buckets: (0..len).map(|_| Vec::new()).collect(),
            mask: len - 1,
            pending: 0,
        }
    }

    /// Queues `target` for delivery at `time`, where `time > now`
    /// (channel latencies are >= 1, so credits never land in the
    /// current cycle's already-drained bucket).
    fn push(&mut self, now: u64, time: u64, target: CreditTarget) {
        debug_assert!(time > now);
        if time - now > self.mask {
            self.grow(now, time);
        }
        self.buckets[(time & self.mask) as usize].push(target);
        self.pending += 1;
    }

    /// Doubles the ring until `time` fits. Each occupied old bucket `b`
    /// holds the unique pending time `t ≡ b (mod old_len)` within
    /// `[now, now + old_len)`, so its contents move wholesale (FIFO
    /// order intact) to `t`'s slot in the larger ring.
    #[cold]
    fn grow(&mut self, now: u64, time: u64) {
        let old_len = self.mask + 1;
        let mut new_len = old_len;
        while time - now > new_len - 1 {
            new_len <<= 1;
        }
        let mut buckets: Vec<Vec<CreditTarget>> = (0..new_len).map(|_| Vec::new()).collect();
        for (b, v) in self.buckets.drain(..).enumerate() {
            if v.is_empty() {
                continue;
            }
            let t = now + ((b as u64).wrapping_sub(now) & (old_len - 1));
            buckets[(t & (new_len - 1)) as usize] = v;
        }
        self.buckets = buckets;
        self.mask = new_len - 1;
    }

    /// Removes and returns the bucket due at `now`; hand it back to
    /// [`CreditRing::restore`] after draining so its allocation is
    /// recycled.
    fn take_due(&mut self, now: u64) -> Vec<CreditTarget> {
        let due = std::mem::take(&mut self.buckets[(now & self.mask) as usize]);
        self.pending -= due.len();
        due
    }

    fn restore(&mut self, now: u64, mut bucket: Vec<CreditTarget>) {
        bucket.clear();
        self.buckets[(now & self.mask) as usize] = bucket;
    }
}

/// Wall-clock performance counters for one simulation run, reported by
/// [`Simulation::run_instrumented`].
#[derive(Debug, Clone, Default)]
pub struct SimPerf {
    /// Simulated cycles executed.
    pub cycles: u64,
    /// Total wall time of the run loop.
    pub wall: Duration,
    /// Wall time per phase, in [`SimPerf::PHASE_NAMES`] order.
    pub phases: [Duration; 5],
    /// Network channel traversals (flit-hops) executed.
    pub flit_hops: u64,
}

impl SimPerf {
    /// Names of the five per-cycle phases, in `phases` order.
    pub const PHASE_NAMES: [&'static str; 5] =
        ["credits", "arrivals", "switch", "transmit", "inject"];

    /// Simulated cycles per wall-clock second.
    pub fn cycles_per_sec(&self) -> f64 {
        self.cycles as f64 / self.wall.as_secs_f64().max(1e-12)
    }

    /// Flit-hops per wall-clock second (the engine's useful-work rate).
    pub fn flit_hops_per_sec(&self) -> f64 {
        self.flit_hops as f64 / self.wall.as_secs_f64().max(1e-12)
    }
}

/// Appends `idx` to an active worklist unless its membership flag is
/// already set.
#[inline]
fn activate(list: &mut Vec<u32>, flags: &mut [bool], idx: usize) {
    if !flags[idx] {
        flags[idx] = true;
        list.push(idx as u32);
    }
}

/// A cycle-accurate simulation of one network under one routing algorithm
/// and traffic pattern.
///
/// # Example
///
/// Simulating a three-router line at light load:
///
/// ```
/// use dfly_netsim::{
///     ChannelClass, Connection, NetworkSpec, PortSpec, RouterSpec, ShortestPathRouting,
///     SimConfig, Simulation,
/// };
/// use dfly_traffic::UniformRandom;
///
/// # fn main() -> Result<(), dfly_netsim::SimError> {
/// let term = |t: u32| PortSpec {
///     conn: Connection::Terminal { terminal: t },
///     latency: 1,
///     class: ChannelClass::Terminal,
/// };
/// let link = |r: u32, p: u32| PortSpec {
///     conn: Connection::Router { router: r, port: p },
///     latency: 1,
///     class: ChannelClass::Local,
/// };
/// let spec = NetworkSpec::validated(
///     vec![
///         RouterSpec { ports: vec![term(0), link(1, 0)] },
///         RouterSpec { ports: vec![link(0, 1), link(2, 0), term(1)] },
///         RouterSpec { ports: vec![link(1, 1), term(2)] },
///     ],
///     2,
/// )?;
/// let routing = ShortestPathRouting::new(&spec);
/// let pattern = UniformRandom::new(3);
/// let mut sim = Simulation::new(&spec, &routing, &pattern, SimConfig::paper_default(0.1))?;
/// let stats = sim.run();
/// assert!(stats.drained);
/// assert!(stats.avg_latency().unwrap() >= 2.0);
/// # Ok(())
/// # }
/// ```
pub struct Simulation<'a> {
    spec: &'a NetworkSpec,
    cfg: SimConfig,
    routing: &'a dyn RoutingAlgorithm,
    pattern: &'a dyn TrafficPattern,

    routers: Vec<RouterCore>,
    terminals: Vec<TerminalCore>,
    /// In-flight flits per directed network channel, `[flat port]`.
    pipes: Vec<VecDeque<(u64, Flit)>>,
    /// Worklist of non-empty pipes (so phase 2 touches only channels
    /// with flits in flight), plus membership flags.
    active_pipes: Vec<u32>,
    pipe_active: Vec<bool>,
    /// Worklist of terminals with flits on their injection channel.
    active_terms: Vec<u32>,
    term_active: Vec<bool>,
    /// Worklist of routers holding any flit (input stage or output
    /// queues); phases 3–4 iterate this instead of every router.
    active_routers: Vec<u32>,
    router_active: Vec<bool>,
    /// First flat-port index of each router.
    port_base: Vec<u32>,
    /// Destination `(router, port)` of each flat port's channel;
    /// `u32::MAX` marks terminal ports.
    pipe_dest: Vec<(u32, u32)>,
    /// Zero-load credit round trip per flat port.
    tcrt0: Vec<u64>,
    /// Network (non-terminal) output ports per router.
    net_ports: Vec<Vec<u16>>,
    credit_ring: CreditRing,
    /// Arrival staging scratch: `(router, in_slot, flit)`.
    arrivals: Vec<(u32, u32, Flit)>,
    /// Routes of the staged arrivals.
    arrival_routes: Vec<PortVc>,
    /// Network channel traversals executed (perf counter).
    flit_hops: u64,

    cycle: u64,
    next_packet: u64,
    win_start: u64,
    win_end: u64,
    labeled_outstanding: u64,
    injected_in_window: u64,
    ejected_in_window: u64,
    sent_in_window: Vec<u64>,
    latency: LatencySummary,
    minimal_latency: LatencySummary,
    non_minimal_latency: LatencySummary,
    hops: LatencySummary,
    histogram: Histogram,
    minimal_histogram: Histogram,
    telemetry: RouteTelemetry,
    /// Log-bucketed latency distribution (always on; one O(1) insert
    /// per labelled ejected packet).
    latency_log: LogHistogram,
    /// Estimator-accuracy scoreboard (always on; one O(1) update per
    /// labelled adaptive injection).
    scoreboard: EstimatorScoreboard,
    /// Channel time-series sampler; `None` unless
    /// `cfg.telemetry.sample_every > 0`, so the per-flit hot path pays
    /// one predictable branch when sampling is off.
    sampler: Option<ChannelSampler>,
    /// Sampling flit tracer; `None` unless `cfg.telemetry.trace_rate
    /// > 0`, same single-branch disabled cost.
    tracer: Option<FlitTracer>,
}

/// Working state of the per-channel time-series sampler.
struct ChannelSampler {
    /// Sampling cadence in cycles (> 0).
    every: u64,
    /// Flat port index of each sampled channel, parallel to
    /// `series.channels`.
    flats: Vec<u32>,
    /// Lifetime flits transmitted per flat port (only maintained while
    /// the sampler exists).
    sent_total: Vec<u64>,
    /// `sent_total` snapshot at the previous sample tick, per sampled
    /// channel.
    prev_sent: Vec<u64>,
    /// The series under construction.
    series: TimeSeries,
}

impl<'a> Simulation<'a> {
    /// Builds a simulation over `spec` driven by `routing` and `pattern`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the configuration is invalid or the
    /// pattern's terminal count does not match the network's.
    pub fn new(
        spec: &'a NetworkSpec,
        routing: &'a dyn RoutingAlgorithm,
        pattern: &'a dyn TrafficPattern,
        cfg: SimConfig,
    ) -> Result<Self, SimError> {
        cfg.validate()?;
        if pattern.num_terminals() != spec.num_terminals() {
            return Err(SimError::InvalidConfig(format!(
                "pattern covers {} terminals but network has {}",
                pattern.num_terminals(),
                spec.num_terminals()
            )));
        }
        let vcs = spec.vcs;
        let mut routers = Vec::with_capacity(spec.num_routers());
        let mut port_base = Vec::with_capacity(spec.num_routers());
        let mut pipe_dest = Vec::new();
        let mut tcrt0 = Vec::new();
        let mut net_ports = Vec::with_capacity(spec.num_routers());
        let mut flat = 0u32;
        for router in &spec.routers {
            let ports = router.ports.len();
            port_base.push(flat);
            flat += ports as u32;
            routers.push(RouterCore {
                inputs: vec![VecDeque::new(); ports * vcs],
                in_count: 0,
                in_port_count: vec![0; ports],
                out_q: vec![VecDeque::new(); ports * vcs],
                out_count: 0,
                out_port_count: vec![0; ports],
                credits: vec![cfg.buffer_depth as u32; ports * vcs],
                outstanding: vec![0; ports],
                rr: vec![0; ports],
                ctq: vec![VecDeque::new(); ports],
                td: vec![0; ports],
                sent_seq: vec![0; ports],
                credit_seq: vec![0; ports],
            });
            let mut nps = Vec::new();
            for (p, port) in router.ports.iter().enumerate() {
                tcrt0.push(2 * port.latency as u64);
                match port.conn {
                    Connection::Router {
                        router: rr,
                        port: rp,
                    } => {
                        pipe_dest.push((rr, rp));
                        nps.push(p as u16);
                    }
                    Connection::Terminal { .. } => pipe_dest.push((u32::MAX, u32::MAX)),
                }
            }
            net_ports.push(nps);
        }
        let terminals = (0..spec.num_terminals())
            .map(|t| TerminalCore {
                source: VecDeque::new(),
                active_route: None,
                credits: vec![cfg.buffer_depth as u32; vcs],
                pipe: VecDeque::new(),
                inj: Injector::new(cfg.injection),
                rng: rng_for(cfg.seed, t as u64),
            })
            .collect();
        let win_start = cfg.warmup;
        let win_end = cfg.warmup + cfg.measure;
        let horizon = tcrt0.iter().copied().max().unwrap_or(2) + 2;
        let num_routers = spec.num_routers();
        let sampler = (cfg.telemetry.sample_every > 0).then(|| {
            let mut flats = Vec::new();
            let mut channels = Vec::new();
            for (r, p) in spec.network_channels() {
                flats.push(port_base[r] + p as u32);
                channels.push(ChannelSeries {
                    router: r as u32,
                    port: p as u16,
                    class: spec.routers[r].ports[p].class,
                    occupancy: Vec::new(),
                    vc_occupancy: Vec::new(),
                    credits: Vec::new(),
                    sent: Vec::new(),
                });
            }
            ChannelSampler {
                every: cfg.telemetry.sample_every,
                prev_sent: vec![0; flats.len()],
                flats,
                sent_total: vec![0; flat as usize],
                series: TimeSeries {
                    every: cfg.telemetry.sample_every,
                    vcs: vcs as u8,
                    ticks: Vec::new(),
                    channels,
                },
            }
        });
        let tracer = (cfg.telemetry.trace_rate > 0.0)
            .then(|| FlitTracer::new(cfg.telemetry.trace_rate, cfg.telemetry.trace_seed));
        Ok(Simulation {
            spec,
            routing,
            pattern,
            routers,
            terminals,
            pipes: vec![VecDeque::new(); flat as usize],
            active_pipes: Vec::with_capacity(flat as usize),
            pipe_active: vec![false; flat as usize],
            active_terms: Vec::with_capacity(spec.num_terminals()),
            term_active: vec![false; spec.num_terminals()],
            active_routers: Vec::with_capacity(num_routers),
            router_active: vec![false; num_routers],
            port_base,
            pipe_dest,
            tcrt0,
            net_ports,
            credit_ring: CreditRing::with_horizon(horizon),
            arrivals: Vec::new(),
            arrival_routes: Vec::new(),
            flit_hops: 0,
            cycle: 0,
            next_packet: 0,
            win_start,
            win_end,
            labeled_outstanding: 0,
            injected_in_window: 0,
            ejected_in_window: 0,
            sent_in_window: vec![0; flat as usize],
            latency: LatencySummary::default(),
            minimal_latency: LatencySummary::default(),
            non_minimal_latency: LatencySummary::default(),
            hops: LatencySummary::default(),
            histogram: Histogram::new(4096, 1),
            minimal_histogram: Histogram::new(4096, 1),
            telemetry: RouteTelemetry::default(),
            latency_log: LogHistogram::new(),
            scoreboard: EstimatorScoreboard::new(),
            sampler,
            tracer,
            cfg,
        })
    }

    /// The network being simulated.
    pub fn spec(&self) -> &NetworkSpec {
        self.spec
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Runs warm-up, measurement and drain, returning the statistics.
    ///
    /// The run ends when every labelled packet has been delivered, or
    /// when the drain cap is exceeded (the network is saturated at this
    /// load); [`RunStats::drained`] records which.
    pub fn run(&mut self) -> RunStats {
        self.drive();
        self.collect()
    }

    /// Runs to completion like [`Simulation::run`], consuming the
    /// simulation so the final histograms move into the returned stats
    /// instead of being cloned.
    pub fn finish(mut self) -> RunStats {
        self.drive();
        self.collect_owned()
    }

    /// Runs to completion, consuming the simulation, and additionally
    /// reports wall-clock performance counters (per-phase wall time,
    /// cycles/sec, flit-hops/sec).
    pub fn run_instrumented(mut self) -> (RunStats, SimPerf) {
        let mut perf = SimPerf::default();
        let start = Instant::now();
        let hard_cap = self.win_end + self.cfg.drain_cap;
        while self.cycle < hard_cap {
            self.step_timed(&mut perf.phases);
            if self.cycle >= self.win_end && self.labeled_outstanding == 0 {
                break;
            }
        }
        perf.wall = start.elapsed();
        perf.cycles = self.cycle;
        perf.flit_hops = self.flit_hops;
        (self.collect_owned(), perf)
    }

    /// The warm-up/measure/drain loop shared by the `run` variants.
    fn drive(&mut self) {
        let hard_cap = self.win_end + self.cfg.drain_cap;
        while self.cycle < hard_cap {
            self.step();
            if self.cycle >= self.win_end && self.labeled_outstanding == 0 {
                break;
            }
        }
    }

    /// Advances the simulation by one cycle, accumulating per-phase wall
    /// time into `timers` (diagnostic).
    #[doc(hidden)]
    pub fn step_timed(&mut self, timers: &mut [Duration; 5]) {
        let t = self.cycle;
        let clock = Instant::now();
        self.deliver_credits(t);
        timers[0] += clock.elapsed();
        let clock = Instant::now();
        self.deliver_flits(t);
        timers[1] += clock.elapsed();
        let clock = Instant::now();
        self.switch(t);
        timers[2] += clock.elapsed();
        let clock = Instant::now();
        self.transmit(t);
        timers[3] += clock.elapsed();
        let clock = Instant::now();
        self.inject(t);
        timers[4] += clock.elapsed();
        if self.sampler.is_some() {
            self.sample_tick(t);
        }
        self.cycle = t + 1;
    }

    /// Advances the simulation by one cycle.
    pub fn step(&mut self) {
        let t = self.cycle;
        self.deliver_credits(t);
        self.deliver_flits(t);
        self.switch(t);
        self.transmit(t);
        self.inject(t);
        if self.sampler.is_some() {
            self.sample_tick(t);
        }
        self.cycle = t + 1;
    }

    /// Appends one sample column to the channel time series if `t` is
    /// on the sampling cadence. Reads the settled end-of-cycle state
    /// (after transmission and injection).
    fn sample_tick(&mut self, t: u64) {
        let Some(s) = self.sampler.as_mut() else {
            return;
        };
        if !t.is_multiple_of(s.every) {
            return;
        }
        s.series.ticks.push(t);
        let vcs = self.spec.vcs;
        for (i, ch) in s.series.channels.iter_mut().enumerate() {
            let core = &self.routers[ch.router as usize];
            let p = ch.port as usize;
            ch.occupancy.push(core.out_port_count[p]);
            let mut credits = 0u32;
            for vc in 0..vcs {
                let slot = p * vcs + vc;
                ch.vc_occupancy.push(core.out_q[slot].len() as u16);
                credits += core.credits[slot];
            }
            ch.credits.push(credits as u16);
            let sent = s.sent_total[s.flats[i] as usize];
            ch.sent.push((sent - s.prev_sent[i]) as u32);
            s.prev_sent[i] = sent;
        }
    }

    fn in_window(&self, t: u64) -> bool {
        t >= self.win_start && t < self.win_end
    }

    /// Phase 1: apply credits whose return (plus any round-trip delay)
    /// completes this cycle.
    fn deliver_credits(&mut self, t: u64) {
        if self.credit_ring.pending == 0 {
            return;
        }
        let due = self.credit_ring.take_due(t);
        for &target in &due {
            match target {
                CreditTarget::Router { router, port, vc } => {
                    let core = &mut self.routers[router as usize];
                    let slot = port as usize * self.spec.vcs + vc as usize;
                    core.credits[slot] += 1;
                    core.outstanding[port as usize] -= 1;
                    debug_assert!(core.credits[slot] <= self.cfg.buffer_depth as u32);
                    if let CreditMode::RoundTrip { sample, estimator } = self.cfg.credit_mode {
                        let p = port as usize;
                        if core.credit_seq[p].is_multiple_of(sample) {
                            let ts = core.ctq[p]
                                .pop_front()
                                .expect("credit arrived with empty timestamp queue");
                            let flat = self.port_base[router as usize] as usize + p;
                            let sample_td = (t - ts).saturating_sub(self.tcrt0[flat]);
                            core.td[p] = match estimator {
                                TdEstimator::LastSample => sample_td,
                                TdEstimator::Ewma { shift } => {
                                    let old = core.td[p];
                                    old - (old >> shift) + (sample_td >> shift)
                                }
                            };
                        }
                        core.credit_seq[p] = core.credit_seq[p].wrapping_add(1);
                    }
                }
                CreditTarget::Terminal { term, vc } => {
                    let tc = &mut self.terminals[term as usize];
                    tc.credits[vc as usize] += 1;
                    debug_assert!(tc.credits[vc as usize] <= self.cfg.buffer_depth as u32);
                }
            }
        }
        self.credit_ring.restore(t, due);
    }

    /// Phase 2: stage flits finishing their channel traversal, compute
    /// their routes against the pre-arrival state, then buffer them in
    /// the input stage.
    fn deliver_flits(&mut self, t: u64) {
        self.arrivals.clear();
        // Only channels with flits in flight are visited; a pipe leaves
        // the worklist the moment it empties. Worklist order does not
        // affect results: arrivals to the same input slot always come
        // from the same (FIFO) pipe, and route computation below is a
        // pure function of the frozen pre-arrival view.
        let mut i = 0;
        while i < self.active_pipes.len() {
            let fp = self.active_pipes[i] as usize;
            while let Some(&(arrival, flit)) = self.pipes[fp].front() {
                if arrival > t {
                    break;
                }
                self.pipes[fp].pop_front();
                let (dr, dp) = self.pipe_dest[fp];
                let slot = dp * self.spec.vcs as u32 + flit.vc as u32;
                self.arrivals.push((dr, slot, flit));
            }
            if self.pipes[fp].is_empty() {
                self.pipe_active[fp] = false;
                self.active_pipes.swap_remove(i);
            } else {
                i += 1;
            }
        }
        let mut i = 0;
        while i < self.active_terms.len() {
            let term = self.active_terms[i] as usize;
            while let Some(&(arrival, flit)) = self.terminals[term].pipe.front() {
                if arrival > t {
                    break;
                }
                self.terminals[term].pipe.pop_front();
                let (r, p) = self.spec.terminal_port(term);
                let slot = (p * self.spec.vcs) as u32 + flit.vc as u32;
                self.arrivals.push((r as u32, slot, flit));
            }
            if self.terminals[term].pipe.is_empty() {
                self.term_active[term] = false;
                self.active_terms.swap_remove(i);
            } else {
                i += 1;
            }
        }
        self.arrival_routes.clear();
        {
            let view = NetView::new(self.spec, &self.routers, self.cfg.buffer_depth, t);
            for &(r, _, ref flit) in &self.arrivals {
                self.arrival_routes
                    .push(self.routing.route(&view, r as usize, flit));
            }
        }
        for (&(r, slot, flit), &pv) in self.arrivals.iter().zip(&self.arrival_routes) {
            let core = &mut self.routers[r as usize];
            core.inputs[slot as usize].push_back((flit, pv));
            core.in_count += 1;
            core.in_port_count[slot as usize / self.spec.vcs] += 1;
            debug_assert!(core.inputs[slot as usize].len() <= self.cfg.buffer_depth);
            activate(
                &mut self.active_routers,
                &mut self.router_active,
                r as usize,
            );
        }
    }

    /// Phase 3: move flits from the input stage into their output queues
    /// (unbounded internal speedup). The input slot index travels with
    /// the flit; its credit is returned when the flit leaves the router,
    /// so the credit round trip measures queueing *inside* this router —
    /// exactly the congestion signal of the paper's Figure 15.
    fn switch(&mut self, t: u64) {
        let vcs = self.spec.vcs;
        let depth = self.cfg.buffer_depth;
        // Per-router state is disjoint, so worklist order is irrelevant.
        for idx in 0..self.active_routers.len() {
            let r = self.active_routers[idx] as usize;
            if self.routers[r].in_count == 0 {
                continue;
            }
            let core = &mut self.routers[r];
            let ports = core.in_port_count.len();
            // Rotate the starting input each cycle for long-run fairness
            // when an output queue is nearly full.
            let start = (t as usize) % ports;
            for i in 0..ports {
                let port = (start + i) % ports;
                if core.in_port_count[port] == 0 {
                    continue;
                }
                for vc in 0..vcs {
                    let slot = port * vcs + vc;
                    while let Some(&(_, pv)) = core.inputs[slot].front() {
                        let oslot = pv.port as usize * vcs + pv.vc as usize;
                        if core.out_q[oslot].len() >= depth {
                            break; // output queue full: input backs up
                        }
                        let (flit, _) = core.inputs[slot].pop_front().unwrap();
                        core.in_count -= 1;
                        core.in_port_count[port] -= 1;
                        core.out_q[oslot].push_back((flit, slot as u16));
                        core.out_count += 1;
                        core.out_port_count[pv.port as usize] += 1;
                    }
                }
            }
        }
    }

    /// Phase 4: every output port transmits one flit, round-robin over
    /// its VC queues, subject to downstream credits; terminal outputs
    /// eject.
    fn transmit(&mut self, t: u64) {
        let vcs = self.spec.vcs;
        let in_window = self.in_window(t);
        let round_trip = matches!(self.cfg.credit_mode, CreditMode::RoundTrip { .. });
        // Iterate the active worklist; routers that end the phase fully
        // idle (no buffered flits anywhere) retire from it. Cross-router
        // order is irrelevant: each iteration touches only its own
        // router's state, its own outbound pipes, and commutative global
        // accumulators, and every credit lands on a distinct target.
        let mut i = 0;
        while i < self.active_routers.len() {
            let r = self.active_routers[i] as usize;
            if self.routers[r].out_count == 0 {
                if self.routers[r].in_count == 0 {
                    self.router_active[r] = false;
                    self.active_routers.swap_remove(i);
                } else {
                    i += 1;
                }
                continue;
            }
            // Round-trip delay baseline for this router this cycle.
            let min_td = if round_trip {
                self.net_ports[r]
                    .iter()
                    .map(|&p| self.routers[r].td[p as usize])
                    .min()
                    .unwrap_or(0)
            } else {
                0
            };
            let ports = self.spec.routers[r].ports.len();
            for out in 0..ports {
                if self.routers[r].out_port_count[out] == 0 {
                    continue;
                }
                let out_spec = self.spec.routers[r].ports[out];
                let is_terminal = matches!(out_spec.conn, Connection::Terminal { .. });
                // Pick the first eligible VC at or after the round-robin
                // pointer.
                let core = &self.routers[r];
                let rr = core.rr[out] as usize;
                let mut chosen = None;
                for i in 0..vcs {
                    let vc = (rr + i) % vcs;
                    let oslot = out * vcs + vc;
                    if core.out_q[oslot].is_empty() {
                        continue;
                    }
                    if is_terminal || core.credits[oslot] > 0 {
                        chosen = Some(vc);
                        break;
                    }
                }
                let Some(vc) = chosen else {
                    continue;
                };
                let core = &mut self.routers[r];
                core.rr[out] = ((vc + 1) % vcs) as u8;
                let oslot = out * vcs + vc;
                let (mut flit, in_slot) = core.out_q[oslot].pop_front().unwrap();
                core.out_count -= 1;
                core.out_port_count[out] -= 1;
                // Return the credit for the input slot the flit arrived
                // through, now that the flit has left the router. The
                // round-trip mechanism delays it by td(O) − min td(o)
                // (never across global channels).
                let in_port = in_slot as usize / vcs;
                let in_vc = (in_slot as usize % vcs) as u8;
                let in_spec = self.spec.routers[r].ports[in_port];
                let delay = if round_trip && in_spec.class != ChannelClass::Global {
                    self.routers[r].td[out].saturating_sub(min_td)
                } else {
                    0
                };
                let time = t + in_spec.latency as u64 + delay;
                let target = match in_spec.conn {
                    Connection::Terminal { terminal } => CreditTarget::Terminal {
                        term: terminal,
                        vc: in_vc,
                    },
                    Connection::Router { router, port } => CreditTarget::Router {
                        router,
                        port,
                        vc: in_vc,
                    },
                };
                self.credit_ring.push(t, time, target);
                let core = &mut self.routers[r];
                if is_terminal {
                    let arrival = t + out_spec.latency as u64;
                    self.eject(flit, arrival);
                } else {
                    flit.hops += 1;
                    flit.vc = vc as u8;
                    debug_assert!(core.credits[oslot] > 0);
                    core.credits[oslot] -= 1;
                    core.outstanding[out] += 1;
                    let flat = self.port_base[r] as usize + out;
                    if let CreditMode::RoundTrip { sample, .. } = self.cfg.credit_mode {
                        if core.sent_seq[out].is_multiple_of(sample) {
                            core.ctq[out].push_back(t);
                        }
                        core.sent_seq[out] = core.sent_seq[out].wrapping_add(1);
                    }
                    // Telemetry hooks: both are `None` checks when
                    // telemetry is disabled, keeping the hot path flat.
                    if let Some(s) = self.sampler.as_mut() {
                        s.sent_total[flat] += 1;
                    }
                    if flit.is_head && flit.labeled {
                        if let Some(tr) = self.tracer.as_mut() {
                            if tr.selected(flit.packet) {
                                tr.push(
                                    t,
                                    flit.packet,
                                    TraceEventKind::Hop {
                                        router: r as u32,
                                        port: out as u16,
                                        vc: vc as u8,
                                    },
                                );
                            }
                        }
                    }
                    self.pipes[flat].push_back((t + out_spec.latency as u64, flit));
                    activate(&mut self.active_pipes, &mut self.pipe_active, flat);
                    self.flit_hops += 1;
                    if in_window {
                        self.sent_in_window[flat] += 1;
                    }
                }
            }
            if self.routers[r].in_count == 0 && self.routers[r].out_count == 0 {
                self.router_active[r] = false;
                self.active_routers.swap_remove(i);
            } else {
                i += 1;
            }
        }
    }

    /// Phase 5: packet generation and injection onto terminal channels.
    ///
    /// Every terminal's injection process is polled every cycle (even
    /// idle ones) so the per-terminal RNG streams advance identically
    /// regardless of network state.
    fn inject(&mut self, t: u64) {
        let routing = self.routing;
        let pattern = self.pattern;
        let spec = self.spec;
        let packet_len = self.cfg.packet_len;
        let depth = self.cfg.buffer_depth;
        let labeled = self.in_window(t);
        // Router state is frozen during this phase, so one view serves
        // every adaptive decision this cycle; built lazily because most
        // cycles at low load inject no head flit at all.
        let routers = &self.routers;
        let mut view: Option<NetView<'_>> = None;
        for term in 0..self.terminals.len() {
            // Packet generation.
            let tc = &mut self.terminals[term];
            if tc.inj.inject(&mut tc.rng) {
                let dest = pattern.destination(term, &mut tc.rng) as u32;
                let packet = self.next_packet;
                self.next_packet += 1;
                for i in 0..packet_len {
                    tc.source.push_back(Flit {
                        packet,
                        src: term as u32,
                        dest,
                        route: RouteInfo::minimal(),
                        created: t,
                        injected: 0,
                        hops: 0,
                        vc: 0,
                        is_head: i == 0,
                        is_tail: i + 1 == packet_len,
                        labeled,
                    });
                }
                if labeled {
                    self.labeled_outstanding += 1;
                }
            }
            // Injection of the head-of-queue flit (one per cycle).
            let tc = &self.terminals[term];
            let Some(front) = tc.source.front() else {
                continue;
            };
            let (route, decision) = if front.is_head {
                // (Re-)evaluate the adaptive decision while the head flit
                // waits at the source: the packet has not entered the
                // network yet, so the freshest local state applies.
                let view = view.get_or_insert_with(|| NetView::new(spec, routers, depth, t));
                let dest = front.dest as usize;
                let tc = &mut self.terminals[term];
                let (route, decision) = routing.inject_traced(view, term, dest, &mut tc.rng);
                tc.active_route = Some(route);
                (route, decision)
            } else {
                let route = self.terminals[term]
                    .active_route
                    .expect("body flit with no active route");
                (route, DecisionRecord::default())
            };
            let vc = route.injection_vc as usize;
            let tc = &mut self.terminals[term];
            if tc.credits[vc] == 0 {
                continue;
            }
            let mut flit = tc.source.pop_front().unwrap();
            flit.route = route;
            flit.vc = vc as u8;
            flit.injected = t;
            tc.credits[vc] -= 1;
            let (r, p) = spec.terminal_port(term);
            let latency = spec.routers[r].ports[p].latency as u64;
            tc.pipe.push_back((t + latency, flit));
            if flit.is_tail {
                tc.active_route = None;
            }
            // Telemetry commits only when the head flit actually enters
            // the injection channel: the per-cycle re-evaluations above
            // are provisional while the flit waits for a credit.
            if flit.is_head && flit.labeled {
                match route.class {
                    RouteClass::Minimal => self.telemetry.minimal_takes += 1,
                    RouteClass::NonMinimal => self.telemetry.non_minimal_takes += 1,
                }
                if decision.adaptive {
                    self.telemetry.adaptive_decisions += 1;
                    if decision.estimator_disagreed {
                        self.telemetry.estimator_disagreements += 1;
                    }
                    // Estimator-accuracy scoreboard: the committed
                    // decision's estimator reading vs the oracle's.
                    self.scoreboard.record(
                        decision.q_chosen,
                        decision.oracle_chosen,
                        decision.oracle_disagreed,
                        decision.oracle_scored,
                    );
                }
                if decision.fault_avoided {
                    self.telemetry.fault_avoided_decisions += 1;
                }
                self.telemetry.dropped_candidates += decision.dropped_candidates as u64;
                self.telemetry.oracle_probe_fallbacks += decision.probe_fallbacks as u64;
                if let Some(tr) = self.tracer.as_mut() {
                    if tr.selected(flit.packet) {
                        tr.push(
                            t,
                            flit.packet,
                            TraceEventKind::Inject {
                                src: flit.src,
                                dest: flit.dest,
                                minimal: route.class == RouteClass::Minimal,
                                q_chosen: decision.q_chosen,
                                oracle: decision.oracle_chosen,
                            },
                        );
                    }
                }
            }
            activate(&mut self.active_terms, &mut self.term_active, term);
            if labeled {
                self.injected_in_window += 1;
            }
        }
    }

    /// Records an ejected flit.
    fn eject(&mut self, flit: Flit, arrival: u64) {
        if arrival >= self.win_start && arrival < self.win_end {
            self.ejected_in_window += 1;
        }
        if !(flit.is_tail && flit.labeled) {
            return;
        }
        self.labeled_outstanding -= 1;
        let latency = arrival - flit.created;
        self.latency.record(latency);
        self.hops.record(flit.hops as u64);
        self.histogram.record(latency);
        self.latency_log.record(latency);
        if let Some(tr) = self.tracer.as_mut() {
            if tr.selected(flit.packet) {
                tr.push(arrival, flit.packet, TraceEventKind::Eject { latency });
            }
        }
        match flit.route.class {
            RouteClass::Minimal => {
                self.minimal_latency.record(latency);
                self.minimal_histogram.record(latency);
            }
            RouteClass::NonMinimal => self.non_minimal_latency.record(latency),
        }
    }

    /// Builds the final statistics snapshot (cloning the histograms, so
    /// the simulation stays usable).
    fn collect(&self) -> RunStats {
        self.stats_with(
            self.histogram.clone(),
            self.minimal_histogram.clone(),
            self.latency_log.clone(),
            self.sampler.as_ref().map(|s| s.series.clone()),
            self.tracer.as_ref().map(FlitTracer::snapshot),
        )
    }

    /// Builds the final statistics snapshot, consuming the simulation so
    /// the histograms (and telemetry buffers) move instead of being
    /// cloned.
    fn collect_owned(mut self) -> RunStats {
        let histogram = std::mem::replace(&mut self.histogram, Histogram::new(1, 1));
        let minimal_histogram =
            std::mem::replace(&mut self.minimal_histogram, Histogram::new(1, 1));
        let latency_log = std::mem::take(&mut self.latency_log);
        let series = self.sampler.take().map(|s| s.series);
        let trace = self.tracer.take().map(FlitTracer::finish);
        self.stats_with(histogram, minimal_histogram, latency_log, series, trace)
    }

    fn stats_with(
        &self,
        histogram: Histogram,
        minimal_histogram: Histogram,
        latency_log: LogHistogram,
        series: Option<TimeSeries>,
        trace: Option<crate::telemetry::FlitTrace>,
    ) -> RunStats {
        let denom = (self.spec.num_terminals() as u64 * self.cfg.measure) as f64;
        let channel_loads = self
            .spec
            .network_channels()
            .map(|(r, p)| {
                let flat = self.port_base[r] as usize + p;
                let flits = self.sent_in_window[flat];
                ChannelLoad {
                    router: r,
                    port: p,
                    class: self.spec.routers[r].ports[p].class,
                    flits,
                    utilization: flits as f64 / self.cfg.measure as f64,
                }
            })
            .collect();
        RunStats {
            cycles: self.cycle,
            offered_load: self.cfg.injection.rate() * self.cfg.packet_len as f64,
            injected_rate: self.injected_in_window as f64 / denom,
            accepted_rate: self.ejected_in_window as f64 / denom,
            drained: self.labeled_outstanding == 0,
            latency: self.latency,
            minimal_latency: self.minimal_latency,
            non_minimal_latency: self.non_minimal_latency,
            hops: self.hops,
            histogram,
            minimal_histogram,
            channel_loads,
            routing: self.telemetry,
            latency_log,
            scoreboard: self.scoreboard.clone(),
            series,
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::ShortestPathRouting;
    use crate::spec::{PortSpec, RouterSpec};
    use dfly_traffic::{Shift, UniformRandom};

    fn term(t: u32) -> PortSpec {
        PortSpec {
            conn: Connection::Terminal { terminal: t },
            latency: 1,
            class: ChannelClass::Terminal,
        }
    }

    fn link(r: u32, p: u32) -> PortSpec {
        PortSpec {
            conn: Connection::Router { router: r, port: p },
            latency: 1,
            class: ChannelClass::Local,
        }
    }

    /// T0-R0 — R1 — R2-T1 line with T2 on R1.
    fn line_spec() -> NetworkSpec {
        NetworkSpec::validated(
            vec![
                RouterSpec {
                    ports: vec![term(0), link(1, 0)],
                },
                RouterSpec {
                    ports: vec![link(0, 1), link(2, 0), term(2)],
                },
                RouterSpec {
                    ports: vec![link(1, 1), term(1)],
                },
            ],
            2,
        )
        .unwrap()
    }

    fn run_line(cfg: SimConfig, pattern: &dyn TrafficPattern) -> RunStats {
        let spec = line_spec();
        let routing = ShortestPathRouting::new(&spec);
        Simulation::new(&spec, &routing, pattern, cfg)
            .unwrap()
            .run()
    }

    #[test]
    fn zero_load_latency_matches_hops() {
        // T0 -> T1 crosses: injection (1) + two links (2) + ejection (1).
        let mut cfg = SimConfig::paper_default(0.005);
        cfg.warmup = 100;
        cfg.measure = 2_000;
        cfg.seed = 3;
        let pattern = Shift::new(3, 1); // 0->1, 1->2, 2->0
        let stats = run_line(cfg, &pattern);
        assert!(stats.drained);
        assert!(stats.latency.count > 0);
        // 0->1: 4 cycles; 1->2 and 2->0: 3 cycles (one link). At
        // near-zero load the average sits between 3 and 4.
        let avg = stats.avg_latency().unwrap();
        assert!((3.0..=4.2).contains(&avg), "avg {avg}");
        assert_eq!(stats.latency.min, 3);
    }

    #[test]
    fn low_load_throughput_matches_offered() {
        let mut cfg = SimConfig::paper_default(0.2);
        cfg.warmup = 500;
        cfg.measure = 5_000;
        let pattern = UniformRandom::new(3);
        let stats = run_line(cfg, &pattern);
        assert!(stats.drained);
        assert!(
            (stats.accepted_rate - 0.2).abs() < 0.02,
            "accepted {}",
            stats.accepted_rate
        );
        assert!(
            (stats.injected_rate - 0.2).abs() < 0.02,
            "injected {}",
            stats.injected_rate
        );
    }

    #[test]
    fn credit_ring_delivers_in_push_order_and_grows() {
        let tgt = |vc: u8| CreditTarget::Terminal { term: 0, vc };
        let mut ring = CreditRing::with_horizon(2);
        assert_eq!(ring.mask, 3);
        // Same delivery cycle: FIFO. Far future: forces growth with
        // pending events that must re-slot to their absolute times.
        ring.push(0, 2, tgt(0));
        ring.push(0, 2, tgt(1));
        ring.push(0, 1, tgt(2));
        ring.push(0, 37, tgt(3));
        assert!(ring.mask >= 63);
        assert_eq!(ring.pending, 4);
        let due = ring.take_due(1);
        assert_eq!(due, vec![tgt(2)]);
        ring.restore(1, due);
        let due = ring.take_due(2);
        assert_eq!(due, vec![tgt(0), tgt(1)]);
        ring.restore(2, due);
        assert_eq!(ring.take_due(37), vec![tgt(3)]);
        assert_eq!(ring.pending, 0);
    }

    #[test]
    fn finish_and_instrumented_match_run() {
        let spec = line_spec();
        let routing = ShortestPathRouting::new(&spec);
        let pattern = UniformRandom::new(3);
        let cfg = SimConfig::paper_default(0.3).with_seed(11);
        let by_run = Simulation::new(&spec, &routing, &pattern, cfg.clone())
            .unwrap()
            .run();
        let by_finish = Simulation::new(&spec, &routing, &pattern, cfg.clone())
            .unwrap()
            .finish();
        assert_eq!(by_run, by_finish);
        let (by_inst, perf) = Simulation::new(&spec, &routing, &pattern, cfg)
            .unwrap()
            .run_instrumented();
        assert_eq!(by_run, by_inst);
        assert_eq!(perf.cycles, by_run.cycles);
        assert!(perf.flit_hops > 0);
        assert!(perf.cycles_per_sec() > 0.0);
        assert!(perf.flit_hops_per_sec() > 0.0);
        let phase_sum: std::time::Duration = perf.phases.iter().sum();
        assert!(perf.wall >= phase_sum);
    }

    #[test]
    fn worklists_empty_once_drained() {
        let mut cfg = SimConfig::paper_default(0.4);
        cfg.warmup = 200;
        cfg.measure = 1_000;
        let spec = line_spec();
        let routing = ShortestPathRouting::new(&spec);
        let pattern = UniformRandom::new(3);
        let mut sim = Simulation::new(&spec, &routing, &pattern, cfg).unwrap();
        sim.run();
        for tc in &mut sim.terminals {
            tc.inj = Injector::Bernoulli(Bernoulli::new(0.0));
        }
        for _ in 0..2_000 {
            sim.step();
        }
        assert!(sim.active_pipes.is_empty());
        assert!(sim.active_terms.is_empty());
        assert!(sim.active_routers.is_empty());
        assert_eq!(sim.credit_ring.pending, 0);
        assert!(!sim.pipe_active.iter().any(|&b| b));
        assert!(!sim.router_active.iter().any(|&b| b));
        for core in &sim.routers {
            assert!(core.outstanding.iter().all(|&o| o == 0));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let pattern = UniformRandom::new(3);
        let a = run_line(SimConfig::paper_default(0.3).with_seed(7), &pattern);
        let b = run_line(SimConfig::paper_default(0.3).with_seed(7), &pattern);
        assert_eq!(a, b);
        let c = run_line(SimConfig::paper_default(0.3).with_seed(8), &pattern);
        assert_ne!(a.latency, c.latency);
    }

    #[test]
    fn credits_conserved_after_drain() {
        let mut cfg = SimConfig::paper_default(0.4);
        cfg.warmup = 200;
        cfg.measure = 1_000;
        let spec = line_spec();
        let routing = ShortestPathRouting::new(&spec);
        let pattern = UniformRandom::new(3);
        let mut sim = Simulation::new(&spec, &routing, &pattern, cfg).unwrap();
        sim.run();
        // Stop injecting and run plenty of extra cycles.
        for tc in &mut sim.terminals {
            tc.inj = Injector::Bernoulli(Bernoulli::new(0.0));
        }
        for _ in 0..2_000 {
            sim.step();
        }
        for (r, core) in sim.routers.iter().enumerate() {
            assert_eq!(core.in_count, 0, "router {r} input stage not empty");
            assert_eq!(core.out_count, 0, "router {r} output queues not empty");
            for (slot, &c) in core.credits.iter().enumerate() {
                let port = slot / sim.spec.vcs;
                if matches!(
                    sim.spec.routers[r].ports[port].conn,
                    Connection::Router { .. }
                ) {
                    assert_eq!(c, 16, "router {r} slot {slot} credits {c}");
                }
            }
        }
        for (t, tc) in sim.terminals.iter().enumerate() {
            assert!(tc.source.is_empty(), "terminal {t} source not empty");
            for &c in &tc.credits {
                assert_eq!(c, 16, "terminal {t} credits");
            }
        }
    }

    #[test]
    fn saturated_run_reports_undrained() {
        // A single shared link at offered load ~1.0 from two senders on
        // the same router cannot drain.
        let spec = NetworkSpec::validated(
            vec![
                RouterSpec {
                    ports: vec![term(0), term(1), link(1, 0)],
                },
                RouterSpec {
                    ports: vec![link(0, 2), term(2)],
                },
            ],
            2,
        )
        .unwrap();
        let routing = ShortestPathRouting::new(&spec);
        // Everyone sends to terminal 2 on the far router.
        #[derive(Debug)]
        struct ToTwo;
        impl TrafficPattern for ToTwo {
            fn name(&self) -> &'static str {
                "to-two"
            }
            fn num_terminals(&self) -> usize {
                3
            }
            fn destination(&self, source: usize, _rng: &mut SmallRng) -> usize {
                if source == 2 {
                    0
                } else {
                    2
                }
            }
        }
        // Labelled backlog grows at ~0.8 flits/cycle over the window, so
        // a drain cap shorter than the backlog cannot complete.
        let mut cfg = SimConfig::paper_default(0.9);
        cfg.warmup = 200;
        cfg.measure = 5_000;
        cfg.drain_cap = 2_000;
        let stats = Simulation::new(&spec, &routing, &ToTwo, cfg).unwrap().run();
        assert!(!stats.drained, "two 0.9 sources through one link");
        // Hitting drain_cap means the sampled packets are the ones that
        // escaped the backlog: their mean is biased low, so the
        // aggregate accessor must refuse to report it — even though the
        // partial population itself is non-empty.
        assert!(stats.latency.count > 0, "some labelled packets escaped");
        assert_eq!(
            stats.avg_latency(),
            None,
            "undrained run must not report a biased mean"
        );
        // Terminals 0 and 1 share the link (~0.5 each) while terminal 2's
        // reverse path is free (0.9): average ~0.63, well below offered.
        assert!(
            stats.injected_rate < 0.7,
            "injected {}",
            stats.injected_rate
        );
        // The shared link runs at full utilisation.
        let load = stats
            .channel_loads
            .iter()
            .find(|c| c.router == 0 && c.port == 2)
            .unwrap();
        assert!(load.utilization > 0.95, "utilization {}", load.utilization);
    }

    #[test]
    fn output_queue_backlog_visible_to_netview() {
        // Freeze a congested instant and check NetView sees the backlog.
        let spec = NetworkSpec::validated(
            vec![
                RouterSpec {
                    ports: vec![term(0), term(1), link(1, 0)],
                },
                RouterSpec {
                    ports: vec![link(0, 2), term(2)],
                },
            ],
            2,
        )
        .unwrap();
        let routing = ShortestPathRouting::new(&spec);
        #[derive(Debug)]
        struct ToTwo;
        impl TrafficPattern for ToTwo {
            fn name(&self) -> &'static str {
                "to-two"
            }
            fn num_terminals(&self) -> usize {
                3
            }
            fn destination(&self, source: usize, _rng: &mut SmallRng) -> usize {
                if source == 2 {
                    0
                } else {
                    2
                }
            }
        }
        let mut cfg = SimConfig::paper_default(1.0);
        cfg.warmup = 10;
        cfg.measure = 10;
        cfg.drain_cap = 0;
        let mut sim = Simulation::new(&spec, &routing, &ToTwo, cfg).unwrap();
        for _ in 0..500 {
            sim.step();
        }
        let view = NetView::new(sim.spec, &sim.routers, 16, sim.cycle);
        // Router 0's output port 2 (the link) backs up with flits from
        // both terminals; only 1/cycle leaves.
        assert!(view.occupancy(0, 2) >= 8, "occ {}", view.occupancy(0, 2));
        // Its ejection ports carry no backlog.
        assert_eq!(view.occupancy(1, 1), 0);
    }

    #[test]
    fn round_trip_mode_keeps_ctq_balanced() {
        let spec = line_spec();
        let routing = ShortestPathRouting::new(&spec);
        let pattern = UniformRandom::new(3);
        let mut cfg = SimConfig::paper_default(0.6);
        cfg.warmup = 100;
        cfg.measure = 1_000;
        cfg.credit_mode = CreditMode::round_trip();
        let mut sim = Simulation::new(&spec, &routing, &pattern, cfg).unwrap();
        sim.run();
        for core in &sim.routers {
            for (p, q) in core.ctq.iter().enumerate() {
                assert!(
                    q.len() <= 16 * sim.spec.vcs,
                    "ctq at port {p} grew past outstanding credits"
                );
            }
        }
    }

    #[test]
    fn multi_flit_packets_arrive_whole() {
        let mut cfg = SimConfig::paper_default(0.05);
        cfg.packet_len = 4;
        cfg.warmup = 100;
        cfg.measure = 2_000;
        let pattern = UniformRandom::new(3);
        let stats = run_line(cfg, &pattern);
        assert!(stats.drained);
        // Offered load in flits is 4x the packet rate.
        assert!((stats.offered_load - 0.2).abs() < 1e-12);
        assert!(stats.accepted_rate > 0.15);
        // A 4-flit packet takes at least 3 extra cycles of serialisation.
        assert!(stats.latency.min >= 6);
    }

    #[test]
    fn mismatched_pattern_rejected() {
        let spec = line_spec();
        let routing = ShortestPathRouting::new(&spec);
        let pattern = UniformRandom::new(5);
        let err = Simulation::new(&spec, &routing, &pattern, SimConfig::paper_default(0.1));
        assert!(err.is_err());
    }
}
