//! Run statistics: latency, throughput, histograms, channel loads.

use crate::spec::ChannelClass;
use crate::telemetry::{EstimatorScoreboard, FlitTrace, LogHistogram, TimeSeries};

/// Streaming summary statistics for one latency population.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Sum of squared samples (for the variance).
    pub sum_sq: u128,
    /// Largest sample, 0 if none.
    pub max: u64,
    /// Smallest sample, 0 if none.
    pub min: u64,
}

impl LatencySummary {
    /// Records one latency sample.
    pub fn record(&mut self, sample: u64) {
        if self.count == 0 {
            self.min = sample;
            self.max = sample;
        } else {
            self.min = self.min.min(sample);
            self.max = self.max.max(sample);
        }
        self.count += 1;
        self.sum += sample;
        self.sum_sq += (sample as u128) * (sample as u128);
    }

    /// Mean latency, or `None` with no samples.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Population standard deviation, or `None` with no samples.
    pub fn std_dev(&self) -> Option<f64> {
        let mean = self.mean()?;
        let var = self.sum_sq as f64 / self.count as f64 - mean * mean;
        Some(var.max(0.0).sqrt())
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &LatencySummary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
    }
}

/// A fixed-width latency histogram with an overflow bucket.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    width: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `buckets` buckets of `width` cycles each.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0` or `buckets == 0`.
    pub fn new(buckets: usize, width: u64) -> Self {
        assert!(width > 0, "bucket width must be >= 1");
        assert!(buckets > 0, "bucket count must be >= 1");
        Histogram {
            buckets: vec![0; buckets],
            width,
            overflow: 0,
        }
    }

    /// Reassembles a histogram from previously exported parts (see
    /// [`Histogram::buckets`], [`Histogram::bucket_width`] and
    /// [`Histogram::overflow`]) — the decode half of a persisted run.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0` or `buckets` is empty, like
    /// [`Histogram::new`].
    pub fn from_parts(buckets: Vec<u64>, width: u64, overflow: u64) -> Self {
        assert!(width > 0, "bucket width must be >= 1");
        assert!(!buckets.is_empty(), "bucket count must be >= 1");
        Histogram {
            buckets,
            width,
            overflow,
        }
    }

    /// Records a sample.
    pub fn record(&mut self, sample: u64) {
        let idx = (sample / self.width) as usize;
        match self.buckets.get_mut(idx) {
            Some(b) => *b += 1,
            None => self.overflow += 1,
        }
    }

    /// Bucket counts; bucket `i` covers `[i*width, (i+1)*width)`.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Width of each bucket in cycles.
    pub fn bucket_width(&self) -> u64 {
        self.width
    }

    /// Samples beyond the last bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum::<u64>() + self.overflow
    }

    /// Fraction of samples in each bucket (empty if no samples).
    pub fn normalized(&self) -> Vec<f64> {
        let total = self.total();
        if total == 0 {
            return Vec::new();
        }
        self.buckets
            .iter()
            .map(|&b| b as f64 / total as f64)
            .collect()
    }

    /// Adds another histogram's counts into this one. Both histograms
    /// must have the same shape (bucket count and width); the sharded
    /// engine merges per-shard histograms built from one config, so a
    /// shape mismatch is a logic error.
    ///
    /// # Panics
    ///
    /// Panics if the bucket counts or widths differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.width, other.width, "histogram width mismatch");
        assert_eq!(
            self.buckets.len(),
            other.buckets.len(),
            "histogram bucket count mismatch"
        );
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst += *src;
        }
        self.overflow += other.overflow;
    }

    /// The `p`-quantile (0.0–1.0) of the recorded samples, resolved to
    /// the upper edge of the bucket containing it. Returns `None` with
    /// no samples, or if the quantile falls in the overflow bucket.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&p), "quantile {p} outside [0, 1]");
        let total = self.total();
        if total == 0 {
            return None;
        }
        let target = ((total as f64) * p).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return Some((i as u64 + 1) * self.width - 1);
            }
        }
        None // falls in the overflow bucket
    }
}

/// Measured load on one directed channel.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelLoad {
    /// Router owning the sending port.
    pub router: usize,
    /// Port index on that router.
    pub port: usize,
    /// Channel class.
    pub class: ChannelClass,
    /// Flits sent during the measurement window.
    pub flits: u64,
    /// Utilisation: flits per cycle of the measurement window.
    pub utilization: f64,
}

/// Per-decision routing telemetry over the measurement window: how the
/// injection-time minimal/non-minimal choice went, and how often the
/// configured congestion estimator disagreed with the plain
/// queue-occupancy baseline on the same candidates. Only labelled
/// packets (those created inside the window) are counted, and every
/// count is deterministic for a fixed seed.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouteTelemetry {
    /// Labelled packets injected on their minimal path.
    pub minimal_takes: u64,
    /// Labelled packets injected non-minimally.
    pub non_minimal_takes: u64,
    /// Injections where an adaptive minimal/non-minimal comparison ran
    /// (both candidates existed and queue state was consulted).
    pub adaptive_decisions: u64,
    /// Adaptive decisions where the configured estimator chose
    /// differently from the queue-occupancy baseline.
    pub estimator_disagreements: u64,
    /// Injections where a fault forced the route class: the usual
    /// choice (or one of the two candidates) was unusable because of a
    /// failed link, so the surviving alternative was taken without a
    /// queue comparison.
    pub fault_avoided_decisions: u64,
    /// Candidate paths discarded at injection time because a fault made
    /// them unusable (dead first hop, or a dead link further along).
    pub dropped_candidates: u64,
    /// Candidates evaluated without a probe point under a probe-needing
    /// (oracle) estimator — each one a silent UGAL-G → UGAL-L
    /// degradation that previous versions did not report.
    pub oracle_probe_fallbacks: u64,
}

impl RouteTelemetry {
    /// Fraction of labelled packets injected minimally, or `None` if no
    /// packet was injected in the window.
    pub fn minimal_take_rate(&self) -> Option<f64> {
        let total = self.minimal_takes + self.non_minimal_takes;
        (total > 0).then(|| self.minimal_takes as f64 / total as f64)
    }

    /// Fraction of adaptive decisions on which the estimator disagreed
    /// with the queue-occupancy baseline, or `None` if no adaptive
    /// decision ran.
    pub fn disagreement_rate(&self) -> Option<f64> {
        (self.adaptive_decisions > 0)
            .then(|| self.estimator_disagreements as f64 / self.adaptive_decisions as f64)
    }
}

/// Everything measured by one simulation run.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, PartialEq)]
pub struct RunStats {
    /// Cycles simulated in total (including warm-up and drain).
    pub cycles: u64,
    /// Configured average offered load (packets/terminal/cycle).
    pub offered_load: f64,
    /// Measured injection rate during the window (flits/terminal/cycle);
    /// under saturation this falls below the offered load because source
    /// queues back up.
    pub injected_rate: f64,
    /// Accepted throughput: flits ejected per terminal per cycle during
    /// the measurement window.
    pub accepted_rate: f64,
    /// Whether every labelled packet drained before the cap; `false`
    /// means the network is saturated at this load and latencies are
    /// lower bounds.
    pub drained: bool,
    /// Latency of all labelled packets (creation to ejection of the tail
    /// flit, including source queueing).
    pub latency: LatencySummary,
    /// Latency of minimally routed labelled packets.
    pub minimal_latency: LatencySummary,
    /// Latency of non-minimally routed labelled packets.
    pub non_minimal_latency: LatencySummary,
    /// Network (router-to-router) hops of labelled packets.
    pub hops: LatencySummary,
    /// Histogram over all labelled packet latencies.
    pub histogram: Histogram,
    /// Histogram over minimally routed labelled packet latencies.
    pub minimal_histogram: Histogram,
    /// Per-channel loads over the measurement window (network channels
    /// only, in `(router, port)` order).
    pub channel_loads: Vec<ChannelLoad>,
    /// Injection-decision telemetry over the measurement window.
    pub routing: RouteTelemetry,
    /// Log-bucketed latency distribution of all labelled packets —
    /// unlike [`RunStats::histogram`] it has no overflow bucket, so
    /// p50/p95/p99/max queries always resolve. Always collected.
    pub latency_log: LogHistogram,
    /// Estimator-accuracy scoreboard: the active estimator's reading
    /// vs the oracle's ground truth at each labelled adaptive
    /// decision. Always collected; empty under non-adaptive routing.
    pub scoreboard: EstimatorScoreboard,
    /// Per-channel queue/credit/utilization time series, present when
    /// [`crate::TelemetryConfig::sample_every`] was non-zero.
    pub series: Option<TimeSeries>,
    /// Sampled flit trace, present when
    /// [`crate::TelemetryConfig::trace_rate`] was non-zero.
    pub trace: Option<FlitTrace>,
    /// Cycle at which all closed-loop work finished, for
    /// [`crate::Termination::WorkComplete`] runs that completed within
    /// the cap. `None` on fixed-window runs and on runs that hit the
    /// cap with work outstanding.
    #[cfg_attr(feature = "serde", serde(default))]
    pub completion: Option<u64>,
    /// Whether the warmup interval settled before measurement began:
    /// throughput and mean latency drift between the last two warmup
    /// quarter-windows stayed within
    /// [`crate::WARMUP_DRIFT_LIMIT`]. Vacuously `true` when warmup was
    /// too short to compare (see [`crate::warmup_convergence`]).
    #[cfg_attr(feature = "serde", serde(default = "default_converged"))]
    pub converged: bool,
    /// Symmetric relative throughput difference between the last two
    /// warmup quarter-windows; `None` when there was nothing to
    /// compare.
    #[cfg_attr(feature = "serde", serde(default))]
    pub warmup_throughput_drift: Option<f64>,
    /// Symmetric relative mean-latency difference between the last two
    /// warmup quarter-windows; `None` when there was nothing to
    /// compare.
    #[cfg_attr(feature = "serde", serde(default))]
    pub warmup_latency_drift: Option<f64>,
}

/// Serde default for [`RunStats::converged`]: documents predating the
/// diagnostic carry no evidence of a drifting warmup.
#[cfg(feature = "serde")]
fn default_converged() -> bool {
    true
}

impl RunStats {
    /// Mean latency of all labelled packets — `None` unless the run
    /// drained. An undrained (saturated, or fault-starved) run has only
    /// measured the packets that escaped before the cap, so its mean is
    /// biased low; use [`RunStats::latency`] directly for that partial
    /// population.
    pub fn avg_latency(&self) -> Option<f64> {
        if !self.drained {
            return None;
        }
        self.latency.mean()
    }

    /// Fraction of labelled packets routed minimally — `None` unless
    /// the run drained. Same bias as [`RunStats::avg_latency`] on an
    /// undrained run: non-minimal packets take longer and are the ones
    /// still stuck at the cap, so the surviving population over-counts
    /// minimal ones. Use [`RunStats::routing`] (which counts at
    /// injection, not ejection) for the saturated picture.
    pub fn minimal_fraction(&self) -> Option<f64> {
        if !self.drained {
            return None;
        }
        let total = self.minimal_latency.count + self.non_minimal_latency.count;
        (total > 0).then(|| self.minimal_latency.count as f64 / total as f64)
    }

    /// Mean network hop count of labelled packets — `None` unless the
    /// run drained (the packets stuck at the cap are disproportionately
    /// the longer, non-minimal ones, biasing the surviving mean low).
    pub fn avg_hops(&self) -> Option<f64> {
        if !self.drained {
            return None;
        }
        self.hops.mean()
    }

    /// Latency at quantile `p` from the log-bucketed histogram —
    /// `None` unless the run drained, for the same reason as
    /// [`RunStats::avg_latency`]. Resolution is the containing
    /// power-of-two bucket's upper edge, clamped to the exact max.
    pub fn latency_percentile(&self, p: f64) -> Option<u64> {
        if !self.drained {
            return None;
        }
        self.latency_log.percentile(p)
    }

    /// Median labelled-packet latency (drained runs only).
    pub fn p50_latency(&self) -> Option<u64> {
        self.latency_percentile(0.50)
    }

    /// 95th-percentile labelled-packet latency (drained runs only).
    pub fn p95_latency(&self) -> Option<u64> {
        self.latency_percentile(0.95)
    }

    /// 99th-percentile labelled-packet latency (drained runs only).
    pub fn p99_latency(&self) -> Option<u64> {
        self.latency_percentile(0.99)
    }

    /// Largest labelled-packet latency (drained runs only).
    pub fn max_latency(&self) -> Option<u64> {
        if !self.drained || self.latency_log.count == 0 {
            return None;
        }
        Some(self.latency_log.max)
    }

    /// Loads of the global channels only.
    pub fn global_channel_loads(&self) -> Vec<ChannelLoad> {
        self.channel_loads
            .iter()
            .filter(|c| c.class == ChannelClass::Global)
            .copied()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn telemetry_rates() {
        let t = RouteTelemetry::default();
        assert_eq!(t.minimal_take_rate(), None);
        assert_eq!(t.disagreement_rate(), None);
        let t = RouteTelemetry {
            minimal_takes: 3,
            non_minimal_takes: 1,
            adaptive_decisions: 4,
            estimator_disagreements: 1,
            ..RouteTelemetry::default()
        };
        assert_eq!(t.minimal_take_rate(), Some(0.75));
        assert_eq!(t.disagreement_rate(), Some(0.25));
        assert_eq!(t.fault_avoided_decisions, 0);
        assert_eq!(t.dropped_candidates, 0);
        assert_eq!(t.oracle_probe_fallbacks, 0);
    }

    #[test]
    fn summary_mean_and_bounds() {
        let mut s = LatencySummary::default();
        assert_eq!(s.mean(), None);
        for v in [4, 8, 12] {
            s.record(v);
        }
        assert_eq!(s.mean(), Some(8.0));
        assert_eq!(s.min, 4);
        assert_eq!(s.max, 12);
        let sd = s.std_dev().unwrap();
        assert!((sd - (32.0f64 / 3.0).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn summary_merge() {
        let mut a = LatencySummary::default();
        a.record(2);
        let mut b = LatencySummary::default();
        b.record(10);
        b.record(6);
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert_eq!(a.mean(), Some(6.0));
        assert_eq!(a.min, 2);
        assert_eq!(a.max, 10);

        let mut empty = LatencySummary::default();
        empty.merge(&a);
        assert_eq!(empty, a);
        a.merge(&LatencySummary::default());
        assert_eq!(a.count, 3);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(4, 10);
        for v in [0, 9, 10, 39, 40, 1000] {
            h.record(v);
        }
        assert_eq!(h.buckets(), &[2, 1, 0, 1]);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 6);
        let norm = h.normalized();
        assert!((norm[0] - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_normalizes_to_empty() {
        let h = Histogram::new(4, 1);
        assert!(h.normalized().is_empty());
        assert_eq!(h.percentile(0.5), None);
    }

    #[test]
    fn percentiles_land_in_right_buckets() {
        let mut h = Histogram::new(100, 1);
        for v in 0..100u64 {
            h.record(v);
        }
        assert_eq!(h.percentile(0.0), Some(0));
        assert_eq!(h.percentile(0.5), Some(49));
        assert_eq!(h.percentile(0.95), Some(94));
        assert_eq!(h.percentile(1.0), Some(99));
        // A sample beyond the buckets pushes the tail quantile into the
        // overflow bucket.
        h.record(10_000);
        assert_eq!(h.percentile(1.0), None);
        // 101 samples now: the median target moves up one bucket.
        assert_eq!(h.percentile(0.5), Some(50));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn percentile_rejects_bad_quantile() {
        Histogram::new(4, 1).percentile(1.5);
    }

    #[test]
    fn histogram_merge_matches_single_pass() {
        let mut a = Histogram::new(4, 10);
        let mut b = Histogram::new(4, 10);
        let mut whole = Histogram::new(4, 10);
        for (i, v) in [0u64, 9, 10, 39, 40, 1000].into_iter().enumerate() {
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn histogram_merge_rejects_shape_mismatch() {
        Histogram::new(4, 10).merge(&Histogram::new(4, 20));
    }
}
