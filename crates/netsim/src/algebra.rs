//! Closed-form routing algebra.
//!
//! A [`RouteAlgebra`] answers every routing question — the minimal
//! first hop, the remaining hop count, the Valiant intermediate set,
//! the VC schedule — from `(router, dest)` index arithmetic alone. No
//! per-pair tables are built or stored: memory per router is O(radix),
//! independent of node count, which is what lets a million-terminal
//! network route without an O(routers²) `next_hop` matrix.
//!
//! Fault-free, every implementation is pure index math. Under an
//! active [`crate::FaultPlan`] implementations may consult the
//! lazily-built per-destination BFS columns of [`crate::FaultTable`] —
//! the one place tables are permitted, and then only for the
//! destinations that are actually routed to.

use crate::PortVc;

/// Computed (table-free) routing for a direct network: terminals
/// concentrated on routers, minimal paths, and a Valiant-style
/// non-minimal spread identified by per-topology integer tags.
///
/// The `salt` threaded through the minimal queries pre-selects among
/// parallel equivalent channels (e.g. the dragonfly's multiple global
/// channels per group pair); topologies with a unique minimal first
/// hop ignore it. All flits of a packet carry the same salt, so the
/// algebra is deterministic per packet.
pub trait RouteAlgebra {
    /// The router terminal `terminal` attaches to.
    fn terminal_router(&self, terminal: usize) -> usize;

    /// The port on [`Self::terminal_router`] that ejects to `terminal`.
    fn ejection_port(&self, terminal: usize) -> usize;

    /// First hop (output port + VC) of the salt-selected minimal route
    /// from `router` toward terminal `dest`. When `router` is already
    /// the destination's router this is the ejection hop on VC 0.
    fn minimal_port(&self, router: usize, dest: usize, salt: u32) -> PortVc;

    /// Router-to-router channel hops of that same minimal route
    /// (0 when `router` already hosts `dest`).
    fn minimal_hops(&self, router: usize, dest: usize, salt: u32) -> u32;

    /// Size of the Valiant intermediate set for packets from `router`
    /// to terminal `dest`: how many distinct non-minimal tags
    /// [`Self::valiant_tag`] can produce. Zero when the pair admits no
    /// useful detour (local traffic, or a topology/fault state whose
    /// routing rides tables instead of tags).
    fn valiant_degree(&self, router: usize, dest: usize) -> usize;

    /// The `i`-th Valiant tag for the pair, `i < valiant_degree`. The
    /// tag is the value stored in
    /// [`RouteInfo::non_minimal`](crate::RouteInfo::non_minimal) —
    /// an intermediate group (dragonfly), an intermediate router
    /// (flattened butterfly), an uplink index (folded Clos), or a
    /// `dim * 2 + direction` ring detour (torus).
    fn valiant_tag(&self, router: usize, dest: usize, i: usize) -> u32;

    /// Virtual channels the topology's deadlock-free schedule needs.
    fn vc_count(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 4-terminal, 2-router toy line to pin the trait's object
    /// safety and default-free surface.
    struct Line;

    impl RouteAlgebra for Line {
        fn terminal_router(&self, terminal: usize) -> usize {
            terminal / 2
        }
        fn ejection_port(&self, terminal: usize) -> usize {
            terminal % 2
        }
        fn minimal_port(&self, router: usize, dest: usize, _salt: u32) -> PortVc {
            if router == self.terminal_router(dest) {
                PortVc::new(self.ejection_port(dest), 0)
            } else {
                PortVc::new(2, 0)
            }
        }
        fn minimal_hops(&self, router: usize, dest: usize, _salt: u32) -> u32 {
            u32::from(router != self.terminal_router(dest))
        }
        fn valiant_degree(&self, _router: usize, _dest: usize) -> usize {
            0
        }
        fn valiant_tag(&self, _router: usize, _dest: usize, _i: usize) -> u32 {
            unreachable!("degree is zero")
        }
        fn vc_count(&self) -> usize {
            1
        }
    }

    #[test]
    fn trait_is_object_safe_and_computes() {
        let alg: &dyn RouteAlgebra = &Line;
        assert_eq!(alg.terminal_router(3), 1);
        assert_eq!(alg.minimal_port(0, 3, 7), PortVc::new(2, 0));
        assert_eq!(alg.minimal_port(1, 3, 7), PortVc::new(1, 0));
        assert_eq!(alg.minimal_hops(0, 3, 7), 1);
        assert_eq!(alg.vc_count(), 1);
    }
}
