//! The routing-algorithm interface and a baseline implementation.

use rand::rngs::SmallRng;

use crate::error::SimError;
use crate::flit::{Flit, RouteInfo};
use crate::sim::RouterCore;
use crate::spec::{ChannelClass, Connection, NetworkSpec};

/// An output port / virtual channel pair produced by route computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortVc {
    /// Output port index within the router.
    pub port: u16,
    /// Virtual channel on the output channel.
    pub vc: u8,
}

impl PortVc {
    /// Convenience constructor.
    pub fn new(port: usize, vc: usize) -> Self {
        PortVc {
            port: port as u16,
            vc: vc as u8,
        }
    }
}

/// A read-only window onto live simulation state, handed to routing
/// algorithms.
///
/// Occupancies are the per-output queue depths of the paper's Figure 13:
/// `occupancy(r, o)` counts the flits buffered *in router `r`* whose
/// next hop is output `o` — exactly the `q` values the UGAL family
/// compares. A real router knows these for its own outputs (they are its
/// virtual-output-queue depths, and they grow under credit backpressure
/// from downstream); querying a *remote* router's ports is what only the
/// idealised UGAL-G oracle may do.
pub struct NetView<'a> {
    spec: &'a NetworkSpec,
    // Raw pointer rather than `&'a [RouterCore]` so the sharded engine
    // can build views over its shared router table while worker threads
    // hold mutable projections to *disjoint fields* of the same cores
    // (input-side fields; the view reads only output-side fields). All
    // accessors bounds-check against `len` before dereferencing.
    routers: *const RouterCore,
    len: usize,
    buffer_depth: usize,
    cycle: u64,
    _marker: std::marker::PhantomData<&'a RouterCore>,
}

#[allow(unsafe_code)]
impl<'a> NetView<'a> {
    pub(crate) fn new(
        spec: &'a NetworkSpec,
        routers: &'a [RouterCore],
        buffer_depth: usize,
        cycle: u64,
    ) -> Self {
        NetView {
            spec,
            routers: routers.as_ptr(),
            len: routers.len(),
            buffer_depth,
            cycle,
            _marker: std::marker::PhantomData,
        }
    }

    /// Builds a view over `len` routers starting at `routers`.
    ///
    /// # Safety
    ///
    /// For the view's lifetime, `routers..routers+len` must stay valid,
    /// and no thread may mutate the output-side fields (`out_q`,
    /// `out_port_count`, `credits`, `outstanding`) of any core in that
    /// range. Mutation of the input-side fields by other threads is
    /// fine — the view never reads them.
    pub(crate) unsafe fn from_raw(
        spec: &'a NetworkSpec,
        routers: *const RouterCore,
        len: usize,
        buffer_depth: usize,
        cycle: u64,
    ) -> Self {
        NetView {
            spec,
            routers,
            len,
            buffer_depth,
            cycle,
            _marker: std::marker::PhantomData,
        }
    }

    /// Pointer to router `core`'s state, bounds-checked.
    #[inline]
    fn core(&self, router: usize) -> *const RouterCore {
        assert!(router < self.len, "router range");
        // SAFETY: in range per the assert; valid per the constructor
        // contract.
        unsafe { self.routers.add(router) }
    }

    /// The network description.
    pub fn spec(&self) -> &NetworkSpec {
        self.spec
    }

    /// Current simulation cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Buffer depth per (port, VC) in flits.
    pub fn buffer_depth(&self) -> usize {
        self.buffer_depth
    }

    /// Flits buffered in `router` whose next hop is output `port` on
    /// VC `vc` — the per-VC output queue depth (`q_vc` in the paper's
    /// UGAL-L_VC rule).
    ///
    /// # Panics
    ///
    /// Panics if `router`, `port` or `vc` is out of range.
    pub fn vc_occupancy(&self, router: usize, port: usize, vc: usize) -> usize {
        assert!(port < self.spec.routers[router].ports.len(), "port range");
        let core = self.core(router);
        // SAFETY: shared read of an output-side field, permitted by the
        // constructor contract. `&(*core).out_q` projects only that
        // field, never the whole struct. Only the queue's plain `len`
        // counter is read — never the arena the handles point into.
        unsafe { (&(*core).out_q)[port * self.spec.vcs + vc].len as usize }
    }

    /// Flits buffered in `router` whose next hop is output `port`,
    /// across all VCs — the output queue depth (`q` in the paper's UGAL
    /// rule).
    ///
    /// # Panics
    ///
    /// Panics if `router` or `port` is out of range.
    pub fn occupancy(&self, router: usize, port: usize) -> usize {
        // The engine maintains this per-port aggregate, so the hot
        // UGAL comparison is O(1) instead of a sum over VC queues.
        assert!(port < self.spec.routers[router].ports.len(), "port range");
        let core = self.core(router);
        // SAFETY: shared read of an output-side field (see `core`).
        unsafe { (&(*core).out_port_count)[port] as usize }
    }

    /// Everything `router` has committed toward output `port` on VC
    /// `vc`: its own output-queue depth **plus** the flits sent on the
    /// channel whose credits have not returned (`buffer_depth − credits`).
    ///
    /// Because credits return when a flit leaves the *downstream* router
    /// — and the credit round-trip mechanism delays them further in
    /// proportion to measured congestion — this quantity senses remote
    /// congestion within one credit round trip instead of waiting for
    /// buffers to fill. It is the congestion estimate used by the
    /// UGAL-L(CR) variant (§4.3.2 of the paper).
    ///
    /// For terminal ports this equals the queue depth (ejection consumes
    /// no credits).
    ///
    /// # Panics
    ///
    /// Panics if `router`, `port` or `vc` is out of range.
    pub fn vc_committed(&self, router: usize, port: usize, vc: usize) -> usize {
        let slot = port * self.spec.vcs + vc;
        let core = self.core(router);
        // SAFETY: shared reads of output-side fields (see `core`).
        unsafe {
            let outstanding = match self.spec.routers[router].ports[port].conn {
                Connection::Terminal { .. } => 0,
                Connection::Router { .. } => self.buffer_depth - (&(*core).credits)[slot] as usize,
            };
            (&(*core).out_q)[slot].len as usize + outstanding
        }
    }

    /// Total committed flits toward `router`'s output `port` across all
    /// VCs (see [`NetView::vc_committed`]).
    ///
    /// # Panics
    ///
    /// Panics if `router` or `port` is out of range.
    pub fn committed(&self, router: usize, port: usize) -> usize {
        // queue depth + unreturned credits, both per-port aggregates
        // the engine keeps up to date — O(1) instead of a VC sum.
        assert!(port < self.spec.routers[router].ports.len(), "port range");
        let core = self.core(router);
        // SAFETY: shared reads of output-side fields (see `core`).
        unsafe { (&(*core).out_port_count)[port] as usize + (&(*core).outstanding)[port] as usize }
    }
}

/// Telemetry describing one injection decision, reported alongside the
/// [`RouteInfo`] by [`RoutingAlgorithm::inject_traced`]. The engine
/// accumulates these into [`crate::RouteTelemetry`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecisionRecord {
    /// An adaptive minimal/non-minimal comparison actually ran (both
    /// candidates existed and queue state was consulted).
    pub adaptive: bool,
    /// The configured congestion estimator chose differently from the
    /// plain queue-occupancy baseline on the same candidates.
    pub estimator_disagreed: bool,
    /// A fault forced the outcome: the usual choice (or one of the two
    /// candidates) was unusable because of a failed link.
    pub fault_avoided: bool,
    /// Candidates the topology (or the chooser's mask) discarded because
    /// a fault made them unusable.
    pub dropped_candidates: u32,
    /// Candidates read without a probe point under a probe-needing
    /// (oracle) estimator — silent UGAL-G → UGAL-L degradations.
    pub probe_fallbacks: u32,
    /// The active estimator's reading for the path that was chosen.
    pub q_chosen: u64,
    /// The oracle's ground-truth reading for the chosen path — what a
    /// perfect (UGAL-G) estimator would have reported.
    pub oracle_chosen: u64,
    /// The UGAL rule evaluated over the oracle's readings would have
    /// picked the other path.
    pub oracle_disagreed: bool,
    /// Oracle readings were taken for this decision; the engine's
    /// estimator-accuracy scoreboard only scores records with this set.
    pub oracle_scored: bool,
}

/// A routing algorithm driving a [`crate::Simulation`].
///
/// The same object serves every router, so implementations hold only
/// immutable topology tables; all per-packet state travels in
/// [`RouteInfo`] / [`Flit`]. `Sync` is a supertrait: the sharded cycle
/// engine shares one algorithm reference across its worker threads
/// (any interior mutability must therefore be thread-safe).
pub trait RoutingAlgorithm: Sync {
    /// Algorithm name for reports, e.g. `"UGAL-L"`.
    fn name(&self) -> String;

    /// Decides the route class (and intermediate, and injection VC) for a
    /// packet about to enter the network at `src_term` destined for
    /// `dest_term`. Called at the source terminal, which is co-located
    /// with the source router; `view` provides the local (and, for
    /// idealised oracles, remote) queue state.
    fn inject(
        &self,
        view: &NetView<'_>,
        src_term: usize,
        dest_term: usize,
        rng: &mut SmallRng,
    ) -> RouteInfo;

    /// Like [`RoutingAlgorithm::inject`], but also reports per-decision
    /// telemetry. The engine calls this entry point; adaptive algorithms
    /// override it and implement `inject` as `inject_traced(..).0`.
    fn inject_traced(
        &self,
        view: &NetView<'_>,
        src_term: usize,
        dest_term: usize,
        rng: &mut SmallRng,
    ) -> (RouteInfo, DecisionRecord) {
        (
            self.inject(view, src_term, dest_term, rng),
            DecisionRecord::default(),
        )
    }

    /// Computes the output port and VC for `flit` currently buffered at
    /// `router`. Must be deterministic in `(router, flit)` so that every
    /// flit of a packet follows the same path.
    fn route(&self, view: &NetView<'_>, router: usize, flit: &Flit) -> PortVc;
}

/// One hop of a traced route.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceHop {
    /// Router the hop leaves from.
    pub router: usize,
    /// Output port taken.
    pub port: usize,
    /// Virtual channel on the outgoing channel.
    pub vc: usize,
    /// Channel class of the hop.
    pub class: ChannelClass,
}

/// Walks the exact path a packet with the given [`RouteInfo`] takes from
/// terminal `src` to terminal `dest` under `routing`, hop by hop, ending
/// with the ejection hop — the same deterministic computation the
/// simulator performs, exposed for debugging and validation on any
/// topology. The walk runs over an idle network (queue state empty), so
/// it exercises only the deterministic `route` path, never `inject`.
///
/// `hop_bound` should derive from the topology diameter (e.g. the
/// longest admissible non-minimal path plus the ejection hop).
///
/// # Errors
///
/// [`SimError::InvalidRoute`] if a terminal is out of range or the walk
/// ejects at the wrong terminal; [`SimError::RouteLoop`] if no ejection
/// occurs within `hop_bound` hops.
pub fn trace_path(
    spec: &NetworkSpec,
    routing: &dyn RoutingAlgorithm,
    src: usize,
    dest: usize,
    route: RouteInfo,
    hop_bound: usize,
) -> Result<Vec<TraceHop>, SimError> {
    if src >= spec.num_terminals() || dest >= spec.num_terminals() {
        return Err(SimError::InvalidRoute("terminal out of range".into()));
    }
    let cores: Vec<RouterCore> = Vec::new();
    let view = NetView::new(spec, &cores, 1, 0);
    let mut flit = Flit {
        packet: 0,
        src: src as u32,
        dest: dest as u32,
        route,
        created: 0,
        injected: 0,
        hops: 0,
        vc: route.injection_vc,
        is_head: true,
        is_tail: true,
        labeled: false,
        tag: 0,
    };
    let mut router = spec.terminal_router(src);
    let mut hops = Vec::new();
    for _ in 0..hop_bound {
        let pv = routing.route(&view, router, &flit);
        let port_spec = spec.routers[router].ports[pv.port as usize];
        hops.push(TraceHop {
            router,
            port: pv.port as usize,
            vc: pv.vc as usize,
            class: port_spec.class,
        });
        match port_spec.conn {
            Connection::Terminal { terminal } => {
                return if terminal as usize == dest {
                    Ok(hops)
                } else {
                    Err(SimError::InvalidRoute(format!(
                        "route ejected at terminal {terminal}, not {dest}"
                    )))
                };
            }
            Connection::Router { router: peer, .. } => {
                flit.hops += 1;
                flit.vc = pv.vc;
                router = peer as usize;
            }
        }
    }
    Err(SimError::RouteLoop {
        src,
        dest,
        bound: hop_bound,
    })
}

/// Deterministic shortest-path (table) routing with hop-indexed VCs.
///
/// Next hops are precomputed by BFS with lowest-index tie-breaking; the
/// VC is `min(hops, vcs-1)`, which suffices for deadlock freedom on
/// acyclic channel graphs (trees, stars, lines) and on any topology whose
/// BFS tables happen to be cycle-free. It is the engine's baseline
/// algorithm for tests and examples; real topologies provide their own
/// algorithms (see the `dragonfly` crate).
#[derive(Debug, Clone)]
pub struct ShortestPathRouting {
    /// `next_hop[router][dest_router]` = output port toward `dest_router`.
    next_hop: Vec<Vec<u16>>,
    /// Ejection port per terminal on its destination router.
    eject_port: Vec<u16>,
    vcs: usize,
}

impl ShortestPathRouting {
    /// Builds tables for `spec` by BFS from every router.
    ///
    /// # Panics
    ///
    /// Panics if the network is not connected (over alive links, when
    /// the spec carries faults); [`ShortestPathRouting::try_new`] is the
    /// non-panicking form.
    pub fn new(spec: &NetworkSpec) -> Self {
        match Self::try_new(spec) {
            Ok(r) => r,
            Err(SimError::Unreachable { src, dest }) => {
                panic!("network disconnected: router {src} cannot reach {dest}")
            }
            Err(e) => panic!("{e}"),
        }
    }

    /// Builds tables for `spec` by BFS from every router, skipping
    /// failed links.
    ///
    /// # Errors
    ///
    /// [`SimError::Unreachable`] (router-indexed) if some router cannot
    /// reach another over the alive links.
    pub fn try_new(spec: &NetworkSpec) -> Result<Self, SimError> {
        let n = spec.num_routers();
        // Reverse-BFS from each destination over alive router links.
        let mut next_hop = vec![vec![u16::MAX; n]; n];
        for dest in 0..n {
            // BFS from dest; next_hop[r][dest] = port of r on the first
            // edge of a shortest r -> dest path.
            let mut dist = vec![usize::MAX; n];
            dist[dest] = 0;
            let mut queue = std::collections::VecDeque::from([dest]);
            while let Some(u) = queue.pop_front() {
                // Look at routers v adjacent to u: v -> u edge means v can
                // reach dest through u (links are symmetric pairs, so the
                // reverse edge v -> u is alive iff u's port is).
                for port in spec.routers[u].ports.iter() {
                    if let Connection::Router { router, port: rp } = port.conn {
                        let v = router as usize;
                        if spec.is_failed(v, rp as usize) {
                            continue;
                        }
                        if dist[v] > dist[u] + 1 {
                            dist[v] = dist[u] + 1;
                            next_hop[v][dest] = rp as u16;
                            queue.push_back(v);
                        }
                    }
                }
            }
            for (r, row) in next_hop.iter().enumerate() {
                if r != dest && row[dest] == u16::MAX {
                    return Err(SimError::Unreachable { src: r, dest });
                }
            }
        }
        let eject_port = (0..spec.num_terminals())
            .map(|t| spec.terminal_port(t).1 as u16)
            .collect();
        Ok(ShortestPathRouting {
            next_hop,
            eject_port,
            vcs: spec.vcs,
        })
    }
}

impl RoutingAlgorithm for ShortestPathRouting {
    fn name(&self) -> String {
        "shortest path".into()
    }

    fn inject(
        &self,
        _view: &NetView<'_>,
        _src_term: usize,
        _dest_term: usize,
        _rng: &mut SmallRng,
    ) -> RouteInfo {
        RouteInfo::minimal()
    }

    fn route(&self, view: &NetView<'_>, router: usize, flit: &Flit) -> PortVc {
        let dest_router = view.spec().terminal_router(flit.dest as usize);
        if router == dest_router {
            return PortVc {
                port: self.eject_port[flit.dest as usize],
                vc: 0,
            };
        }
        PortVc {
            port: self.next_hop[router][dest_router],
            vc: (flit.hops as usize).min(self.vcs - 1) as u8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ChannelClass, PortSpec, RouterSpec};

    /// A 3-router line: T0-R0 - R1 - R2-T1, plus T2 on R1.
    fn line_spec() -> NetworkSpec {
        let term = |t: u32| PortSpec {
            conn: Connection::Terminal { terminal: t },
            latency: 1,
            class: ChannelClass::Terminal,
        };
        let link = |r: u32, p: u32| PortSpec {
            conn: Connection::Router { router: r, port: p },
            latency: 1,
            class: ChannelClass::Local,
        };
        NetworkSpec::validated(
            vec![
                RouterSpec {
                    ports: vec![term(0), link(1, 0)],
                },
                RouterSpec {
                    ports: vec![link(0, 1), link(2, 0), term(2)],
                },
                RouterSpec {
                    ports: vec![link(1, 1), term(1)],
                },
            ],
            2,
        )
        .unwrap()
    }

    #[test]
    fn tables_point_along_the_line() {
        let spec = line_spec();
        let r = ShortestPathRouting::new(&spec);
        // Router 0 reaches router 2 via port 1 (toward router 1).
        assert_eq!(r.next_hop[0][2], 1);
        assert_eq!(r.next_hop[1][2], 1);
        assert_eq!(r.next_hop[2][0], 0);
    }

    #[test]
    #[should_panic(expected = "disconnected")]
    fn disconnected_network_panics() {
        // Two isolated router pairs.
        let term = |t: u32| PortSpec {
            conn: Connection::Terminal { terminal: t },
            latency: 1,
            class: ChannelClass::Terminal,
        };
        let spec = NetworkSpec::validated(
            vec![
                RouterSpec {
                    ports: vec![term(0)],
                },
                RouterSpec {
                    ports: vec![term(1)],
                },
            ],
            1,
        )
        .unwrap();
        ShortestPathRouting::new(&spec);
    }

    #[test]
    fn try_new_routes_around_failed_links() {
        use crate::fault::FaultPlan;
        use crate::spec::tests::ring_spec;
        let spec = NetworkSpec::validated(ring_spec(4), 2).unwrap();
        // Fail the 0 <-> 1 link: router 0 must reach 1 the long way.
        let faulted = spec
            .clone()
            .with_faults(&FaultPlan::Explicit(vec![(0, 1)]))
            .unwrap();
        let r = ShortestPathRouting::try_new(&faulted).unwrap();
        // Port 2 is counter-clockwise (toward router 3).
        assert_eq!(r.next_hop[0][1], 2);
        let clean = ShortestPathRouting::try_new(&spec).unwrap();
        assert_eq!(clean.next_hop[0][1], 1);
    }

    #[test]
    fn injection_route_is_minimal_class() {
        let spec = line_spec();
        let r = ShortestPathRouting::new(&spec);
        let cores: Vec<RouterCore> = Vec::new();
        let view = NetView::new(&spec, &cores, 4, 0);
        let mut rng = dfly_traffic::rng_for(0, 0);
        let info = r.inject(&view, 0, 2, &mut rng);
        assert_eq!(info.class, crate::RouteClass::Minimal);
        assert_eq!(info.injection_vc, 0);
    }

    #[test]
    fn route_ejects_at_destination() {
        let spec = line_spec();
        let r = ShortestPathRouting::new(&spec);
        let cores: Vec<RouterCore> = Vec::new();
        let view = NetView::new(&spec, &cores, 4, 0);
        let flit = Flit {
            packet: 0,
            src: 0,
            dest: 2,
            route: RouteInfo::minimal(),
            created: 0,
            injected: 0,
            hops: 1,
            vc: 0,
            is_head: true,
            is_tail: true,
            labeled: false,
            tag: 0,
        };
        // Terminal 2 lives on router 1 port 2.
        let pv = r.route(&view, 1, &flit);
        assert_eq!(pv, PortVc::new(2, 0));
        // From router 0 it heads toward router 1 on VC min(hops, vcs-1).
        let pv = r.route(&view, 0, &flit);
        assert_eq!(pv, PortVc::new(1, 1));
    }
}
